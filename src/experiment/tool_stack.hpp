// Owned tool stacks — Hook API v2's registration surface.
//
// Before v2, every campaign site (experiment, explore, farm, the CLI, the
// triage probes) hand-rolled the same dance: allocate detectors, allocate a
// noise maker bound to one runtime, call rt.hooks().add() in the right
// order, keep the unique_ptrs alive, and rebuild all of it for every run.
// A ToolStack owns the tools once, validates the ordering invariant at
// build time (noise makers register last, so analysis tools observe each
// event before the perturbation), and re-targets the same tool objects at a
// fresh runtime per run via Listener::bindRuntime — campaign runs reuse
// tools instead of reallocating them.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/listener.hpp"
#include "coverage/coverage.hpp"
#include "deadlock/lockgraph.hpp"
#include "noise/noise.hpp"
#include "race/detectors.hpp"
#include "trace/trace.hpp"

namespace mtt::experiment {

/// An ordered, owned set of tools for one run at a time.  Move-only; build
/// through ToolStackBuilder.  attach() may be called once per run against
/// any number of successive runtimes.
class ToolStack {
 public:
  ToolStack() = default;
  ToolStack(ToolStack&&) = default;
  ToolStack& operator=(ToolStack&&) = default;
  ToolStack(const ToolStack&) = delete;
  ToolStack& operator=(const ToolStack&) = delete;

  /// Re-targets every tool at `rt` (Listener::bindRuntime) and registers
  /// the stack with rt.hooks() in build order.  The runtime must outlive
  /// the run; the stack must outlive the runtime's run() call.
  void attach(rt::Runtime& rt);

  /// Returns every tool to its freshly-constructed observable state
  /// (Listener::resetTool).  executeRun calls this at the start of each
  /// run, which is what keeps reused stacks byte-identical to the old
  /// build-tools-per-run path.
  void reset();

  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }

  /// Typed views into the stack (nullptr / empty when absent).
  const std::vector<race::RaceDetector*>& detectors() const {
    return detectors_;
  }
  deadlock::LockGraphDetector* lockGraph() const { return lockGraph_; }
  noise::NoiseMaker* noiseMaker() const { return noise_; }
  trace::TraceRecorder* traceRecorder() const { return recorder_; }
  mtt::coverage::CoverageModel* coverageModel() const { return coverage_; }

  /// All tools in registration order (owned and borrowed alike).
  const std::vector<Listener*>& listeners() const { return order_; }

 private:
  friend class ToolStackBuilder;
  std::vector<std::unique_ptr<Listener>> owned_;
  std::vector<Listener*> order_;
  std::vector<race::RaceDetector*> detectors_;
  deadlock::LockGraphDetector* lockGraph_ = nullptr;
  noise::NoiseMaker* noise_ = nullptr;
  trace::TraceRecorder* recorder_ = nullptr;
  mtt::coverage::CoverageModel* coverage_ = nullptr;
};

/// Builds a ToolStack and enforces the ordering convention the hook API has
/// always documented but never checked: analysis tools (detectors, lock
/// graph, coverage, recorders) first, noise makers last.  Adding an
/// analysis tool after a noise maker throws std::logic_error at the
/// offending call.
class ToolStackBuilder {
 public:
  /// Race detector by name ("eraser", "djit", "fasttrack", "hybrid");
  /// throws std::runtime_error on unknown names.
  ToolStackBuilder& detector(const std::string& name);

  /// The potential-deadlock lock-order detector.
  ToolStackBuilder& lockGraph();

  /// A trace recorder (bindRuntime supplies the symbol source per run).
  ToolStackBuilder& traceRecorder();

  /// A coverage model by factory name (coverage::makeCoverage); the model
  /// resolves object names through the runtime it is bound to per run.
  /// Throws std::invalid_argument on unknown names.
  ToolStackBuilder& coverage(const std::string& name);

  /// Any owned coverage model (e.g. one with a custom name resolver).
  ToolStackBuilder& coverageModel(
      std::unique_ptr<mtt::coverage::CoverageModel> model);

  /// Any owned analysis listener (coverage models, custom tools).
  ToolStackBuilder& listener(std::unique_ptr<Listener> tool);

  /// A borrowed analysis listener the caller keeps alive (e.g. a
  /// stack-local collector); the ToolStack registers but does not own it.
  ToolStackBuilder& borrowed(Listener* tool);

  /// Noise heuristic by factory name; "targeted" requires targetedNoise().
  /// Throws std::runtime_error on unknown names.
  ToolStackBuilder& noise(const std::string& name,
                          noise::NoiseOptions opts = {});

  /// TargetedNoise over a shared-variable name set.
  ToolStackBuilder& targetedNoise(std::set<std::string> sharedVarNames,
                                  noise::NoiseOptions opts = {});

  /// Any owned noise maker.
  ToolStackBuilder& noiseMaker(std::unique_ptr<noise::NoiseMaker> nm);

  ToolStack build();

 private:
  void addAnalysis(Listener* raw, std::unique_ptr<Listener> owned);
  void addNoise(std::unique_ptr<noise::NoiseMaker> nm);

  ToolStack stack_;
  bool sawNoise_ = false;
};

/// A thread-safe pool of interchangeable ToolStacks for parallel campaigns:
/// each worker leases a stack per run instead of rebuilding the tool set.
/// Locking happens only at run boundaries (acquire/release), never on the
/// event path.  The pool's internals are shared-ptr managed, so a lease
/// held by an abandoned (timed-out) worker stays valid even after the
/// campaign and pool are gone.
class ToolStackPool {
 public:
  explicit ToolStackPool(std::function<ToolStack()> factory);

  class Lease {
   public:
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;
    ~Lease();

    ToolStack& operator*() { return *stack_; }
    ToolStack* operator->() { return stack_.get(); }

   private:
    friend class ToolStackPool;
    struct Shared;
    Lease(std::shared_ptr<Shared> shared, std::unique_ptr<ToolStack> stack);
    std::shared_ptr<Shared> shared_;
    std::unique_ptr<ToolStack> stack_;
  };

  /// Pops a pooled stack or builds a fresh one; the lease returns it on
  /// destruction.
  Lease acquire();

 private:
  std::shared_ptr<Lease::Shared> shared_;
};

}  // namespace mtt::experiment
