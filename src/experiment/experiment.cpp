#include "experiment/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/table.hpp"
#include "deadlock/lockgraph.hpp"
#include "model/static.hpp"
#include "race/detectors.hpp"

namespace mtt::experiment {

std::string ToolConfig::label() const {
  std::string l = noiseName;
  if (noiseName == "targeted" && !noiseTargets.empty()) {
    l += "(" + std::to_string(noiseTargets.size()) + " vars)";
  }
  for (const auto& d : detectors) l += "+" + d;
  if (lockGraph) l += "+lockgraph";
  if (!coverage.empty()) {
    l += "+cov:" + coverage;
    if (coverageClosedUniverse) l += "(closed)";
  }
  l += mode == RuntimeMode::Controlled ? "/ctl-" + policy : "/native";
  return l;
}

namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

constexpr const char* kPolicyGrammar =
    "rr | random[:switch=P] | pct[:d=D,k=K] | pos | priority[:d=D,k=K]";

[[noreturn]] void badPolicy(const std::string& name, const std::string& why) {
  throw std::runtime_error("malformed schedule policy '" + name + "': " +
                           why + " (grammar: " + kPolicyGrammar + ")");
}

/// Parses the `key=value[,key=value...]` parameter list of a policy spec.
std::vector<std::pair<std::string, std::string>> parsePolicyParams(
    const std::string& name, const std::string& params) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos <= params.size()) {
    std::size_t comma = params.find(',', pos);
    if (comma == std::string::npos) comma = params.size();
    const std::string item = params.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0 ||
        eq + 1 == item.size()) {
      badPolicy(name, "expected key=value, got '" + item + "'");
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  return out;
}

std::uint64_t policyUint(const std::string& name, const std::string& key,
                         const std::string& value) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size()) {
    badPolicy(name, key + " must be a non-negative integer, got '" + value +
                        "'");
  }
  return v;
}

double policyProb(const std::string& name, const std::string& key,
                  const std::string& value) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || v < 0.0 || v > 1.0) {
    badPolicy(name, key + " must be a probability in [0,1], got '" + value +
                        "'");
  }
  return v;
}

}  // namespace

std::unique_ptr<rt::SchedulePolicy> makePolicy(const std::string& name) {
  const std::size_t colon = name.find(':');
  const std::string base = name.substr(0, colon);
  std::vector<std::pair<std::string, std::string>> params;
  if (colon != std::string::npos) {
    params = parsePolicyParams(name, name.substr(colon + 1));
  }
  auto rejectParams = [&] {
    if (!params.empty()) {
      badPolicy(name, "'" + base + "' takes no parameters");
    }
  };
  if (base == "rr") {
    rejectParams();
    return std::make_unique<rt::RoundRobinPolicy>();
  }
  if (base == "random") {
    double switchProb = 1.0;
    for (const auto& [k, v] : params) {
      if (k == "switch") {
        switchProb = policyProb(name, k, v);
      } else {
        badPolicy(name, "unknown parameter '" + k + "'");
      }
    }
    return std::make_unique<rt::RandomPolicy>(switchProb);
  }
  if (base == "pct" || base == "priority") {
    // `priority` is the historical name of the PCT scheduler; both spell
    // the same policy.  d = priority-change points (bug depth to target),
    // k = run-length window (0/absent = adaptive estimate).
    std::uint64_t d = 3;
    std::uint64_t k = 0;
    for (const auto& [key, v] : params) {
      if (key == "d") {
        d = policyUint(name, key, v);
        if (d == 0) badPolicy(name, "d must be >= 1");
      } else if (key == "k") {
        k = policyUint(name, key, v);
      } else {
        badPolicy(name, "unknown parameter '" + key + "'");
      }
    }
    return std::make_unique<rt::PriorityPolicy>(static_cast<int>(d), k);
  }
  if (base == "pos") {
    rejectParams();
    return std::make_unique<rt::POSPolicy>();
  }
  throw std::runtime_error("unknown schedule policy '" + name +
                           "' (valid: " + joinNames(policyNames()) +
                           "; grammar: " + kPolicyGrammar + ")");
}

std::vector<std::string> policyNames() {
  return {"random", "rr", "pct", "pos", "priority"};
}

void validateToolConfig(const ToolConfig& tool) {
  if (tool.mode == RuntimeMode::Controlled) {
    makePolicy(tool.policy);  // throws with the valid list on unknown names
  }
  if (tool.noiseName != "targeted") {
    // Probe the factory without a runtime: the name list is authoritative.
    const auto names = noise::noiseNames();
    if (std::find(names.begin(), names.end(), tool.noiseName) ==
        names.end()) {
      throw std::runtime_error("unknown noise heuristic '" +
                               tool.noiseName +
                               "' (valid: " + joinNames(names) +
                               ", targeted)");
    }
  }
  for (const auto& d : tool.detectors) {
    // "mmrace" is resolved by ToolStackBuilder::detector (it lives in
    // mtt::mem, outside race::detectorNames()).
    if (d != "mmrace" && !race::makeDetector(d)) {
      throw std::runtime_error("unknown detector '" + d + "' (valid: " +
                               joinNames(race::detectorNames()) +
                               ", mmrace)");
    }
  }
  if (!tool.coverage.empty()) {
    const auto names = coverage::coverageNames();
    if (std::find(names.begin(), names.end(), tool.coverage) == names.end()) {
      throw std::runtime_error("unknown coverage model '" + tool.coverage +
                               "' (valid: " + joinNames(names) + ")");
    }
  }
}

ToolStack makeToolStack(const ToolConfig& tool) {
  // Canonical assembly order: detectors observe first, noise perturbs last.
  ToolStackBuilder b;
  for (const auto& d : tool.detectors) b.detector(d);
  if (tool.lockGraph) b.lockGraph();
  if (!tool.coverage.empty()) b.coverage(tool.coverage);
  if (tool.noiseName == "targeted") {
    b.targetedNoise(tool.noiseTargets, tool.noiseOpts);
  } else {
    b.noise(tool.noiseName, tool.noiseOpts);
  }
  return b.build();
}

RunObservation executeRun(const RunSpec& spec, std::size_t i) {
  ToolStack tools = makeToolStack(spec.tool);
  return executeRun(spec, i, tools);
}

RunObservation executeRun(const RunSpec& spec, std::size_t i,
                          ToolStack& tools) {
  auto program = suite::makeProgram(spec.programName);
  program->reset();

  std::unique_ptr<rt::SchedulePolicy> policy;
  if (spec.tool.mode == RuntimeMode::Controlled) {
    policy = spec.policyFactory ? spec.policyFactory()
                                : makePolicy(spec.tool.policy);
  }
  auto rt = rt::makeRuntime(spec.tool.mode, std::move(policy));

  // reset() first: a reused stack must start every run in the same state a
  // freshly-built stack would, or reports stop being seed-deterministic.
  tools.reset();
  tools.attach(*rt);
  if (tools.coverageModel() != nullptr && spec.tool.coverageClosedUniverse) {
    if (const model::Program* ir = program->irModel()) {
      tools.coverageModel()->declareTasks(model::contentionTaskUniverse(*ir));
    }
  }

  rt::RunOptions opts =
      spec.runOptions ? *spec.runOptions : program->defaultRunOptions();
  opts.seed = spec.seedBase + i;
  opts.programName = spec.programName;
  if (spec.forceSeqCst) opts.forceSeqCst = true;

  // When the worker process has the flight recorder armed (farm Process
  // model with a postmortem dir), describe the run so a crash mid-run
  // dumps a replayable scenario.
  if (rt::fr::armed()) {
    rt::fr::RunMeta meta;
    meta.program = spec.programName.c_str();
    meta.seed = opts.seed;
    meta.policy = spec.tool.policy.c_str();
    meta.noise = spec.tool.noiseName.empty() ? "none"
                                             : spec.tool.noiseName.c_str();
    meta.strength = spec.tool.noiseOpts.strength;
    rt::fr::beginRun(meta);
  }

  rt::RunResult r =
      rt->run([&](rt::Runtime& rr) { program->body(rr); }, opts);
  rt::fr::endRun();

  RunObservation obs;
  obs.runIndex = i;
  obs.seed = opts.seed;
  obs.status = std::string(to_string(r.status));
  obs.manifested = program->evaluate(r) == suite::Verdict::BugManifested;
  obs.hasDetectors = !tools.detectors().empty();
  for (race::RaceDetector* det : tools.detectors()) {
    obs.warnings += det->warningCount();
    obs.trueWarnings += det->trueAlarms();
    obs.falseWarnings += det->falseAlarms();
    obs.detectorHit = obs.detectorHit || det->foundAnnotatedBug();
  }
  if (tools.lockGraph() != nullptr) {
    obs.deadlockPotentials = tools.lockGraph()->warnings().size();
  }
  obs.wallSeconds = r.wallSeconds;
  obs.events = r.events;
  if (tools.noiseMaker() != nullptr) {
    obs.noiseInjections = tools.noiseMaker()->injections();
  }
  obs.outcome = program->outcome();
  obs.failureMessage = r.failureMessage;
  obs.dispatchDeliveries = r.dispatch.deliveries;
  obs.dispatchNsPerEvent = r.dispatch.nsPerEvent();
  if (tools.coverageModel() != nullptr) {
    // runSnapshot, not snapshot: the record must be a pure function of the
    // run (a reused stack's accumulated universe would otherwise leak into
    // it and break the farm's byte-determinism across worker counts).
    obs.coverage = tools.coverageModel()->runSnapshot().encode();
  }
  return obs;
}

void accumulate(ExperimentResult& result, const RunObservation& obs) {
  if (obs.supervised()) {
    // A timed-out / crashed / irrecoverable run yields no measurements;
    // it counts as a non-manifestation and is visible in statusCounts
    // and in the outcome distribution.
    result.manifested.add(false);
    if (obs.hasDetectors) result.detectorHit.add(false);
    result.outcomes.add("farm:" + obs.status);
    result.statusCounts[obs.status]++;
    return;
  }
  result.manifested.add(obs.manifested);
  result.warnings += obs.warnings;
  result.trueWarnings += obs.trueWarnings;
  result.falseWarnings += obs.falseWarnings;
  if (obs.hasDetectors) result.detectorHit.add(obs.detectorHit);
  result.deadlockPotentials += obs.deadlockPotentials;
  result.wallSeconds.add(obs.wallSeconds);
  result.events.add(static_cast<double>(obs.events));
  result.noiseInjections += obs.noiseInjections;
  result.outcomes.add(obs.outcome);
  result.statusCounts[obs.status]++;
}

void mergeInto(ExperimentResult& into, const ExperimentResult& part) {
  if (into.runs == 0) {
    into.programName = part.programName;
    into.toolLabel = part.toolLabel;
  }
  into.runs += part.runs;
  into.manifested.merge(part.manifested);
  into.detectorHit.merge(part.detectorHit);
  into.warnings += part.warnings;
  into.trueWarnings += part.trueWarnings;
  into.falseWarnings += part.falseWarnings;
  into.deadlockPotentials += part.deadlockPotentials;
  into.wallSeconds.merge(part.wallSeconds);
  into.events.merge(part.events);
  into.noiseInjections += part.noiseInjections;
  into.outcomes.merge(part.outcomes);
  for (const auto& [status, n] : part.statusCounts) {
    into.statusCounts[status] += n;
  }
}

ExperimentResult runExperiment(const ExperimentSpec& spec) {
  validateToolConfig(spec.tool);
  ExperimentResult result;
  result.programName = spec.programName;
  result.toolLabel = spec.tool.label();
  result.runs = spec.runs;
  // One stack for the whole campaign: executeRun resets it per run.
  ToolStack tools = makeToolStack(spec.tool);
  for (std::size_t i = 0; i < spec.runs; ++i) {
    accumulate(result, executeRun(spec, i, tools));
  }
  return result;
}

std::string findRateReport(const std::string& title,
                           const std::vector<ExperimentResult>& results,
                           const ReportOptions& opts) {
  TextTable t(title);
  std::vector<std::string> head = {"program", "tool", "manifested",
                                   "95% CI", "avg events"};
  if (opts.timing) head.push_back("avg ms");
  head.push_back("injections");
  t.header(head);
  for (const auto& r : results) {
    std::vector<std::string> row = {
        r.programName, r.toolLabel,
        TextTable::frac(r.manifested.successes, r.manifested.trials),
        "[" + TextTable::num(r.manifested.wilsonLow(), 2) + ", " +
            TextTable::num(r.manifested.wilsonHigh(), 2) + "]",
        TextTable::num(r.events.mean(), 0)};
    if (opts.timing) row.push_back(TextTable::num(r.wallSeconds.mean() * 1e3, 2));
    row.push_back(std::to_string(r.noiseInjections));
    t.row(std::move(row));
  }
  return t.render();
}

std::string detectorReport(const std::string& title,
                           const std::vector<ExperimentResult>& results) {
  TextTable t(title);
  t.header({"program", "tool", "runs-with-hit", "warnings", "true", "false",
            "false-rate"});
  for (const auto& r : results) {
    t.row({r.programName, r.toolLabel,
           TextTable::frac(r.detectorHit.successes, r.detectorHit.trials),
           std::to_string(r.warnings), std::to_string(r.trueWarnings),
           std::to_string(r.falseWarnings),
           TextTable::num(r.falseAlarmRate() * 100, 1) + "%"});
  }
  return t.render();
}

}  // namespace mtt::experiment
