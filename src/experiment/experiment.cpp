#include "experiment/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/table.hpp"
#include "deadlock/lockgraph.hpp"
#include "model/static.hpp"
#include "race/detectors.hpp"

namespace mtt::experiment {

std::string ToolConfig::label() const {
  std::string l = noiseName;
  if (noiseName == "targeted" && !noiseTargets.empty()) {
    l += "(" + std::to_string(noiseTargets.size()) + " vars)";
  }
  for (const auto& d : detectors) l += "+" + d;
  if (lockGraph) l += "+lockgraph";
  if (!coverage.empty()) {
    l += "+cov:" + coverage;
    if (coverageClosedUniverse) l += "(closed)";
  }
  l += mode == RuntimeMode::Controlled ? "/ctl-" + policy : "/native";
  return l;
}

namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

std::unique_ptr<rt::SchedulePolicy> makePolicy(const std::string& name) {
  if (name == "rr") return std::make_unique<rt::RoundRobinPolicy>();
  if (name == "priority") return std::make_unique<rt::PriorityPolicy>();
  if (name == "random") return std::make_unique<rt::RandomPolicy>();
  throw std::runtime_error("unknown schedule policy '" + name +
                           "' (valid: " + joinNames(policyNames()) + ")");
}

std::vector<std::string> policyNames() { return {"random", "rr", "priority"}; }

void validateToolConfig(const ToolConfig& tool) {
  if (tool.mode == RuntimeMode::Controlled) {
    makePolicy(tool.policy);  // throws with the valid list on unknown names
  }
  if (tool.noiseName != "targeted") {
    // Probe the factory without a runtime: the name list is authoritative.
    const auto names = noise::noiseNames();
    if (std::find(names.begin(), names.end(), tool.noiseName) ==
        names.end()) {
      throw std::runtime_error("unknown noise heuristic '" +
                               tool.noiseName +
                               "' (valid: " + joinNames(names) +
                               ", targeted)");
    }
  }
  for (const auto& d : tool.detectors) {
    if (!race::makeDetector(d)) {
      throw std::runtime_error("unknown detector '" + d + "' (valid: " +
                               joinNames(race::detectorNames()) + ")");
    }
  }
  if (!tool.coverage.empty()) {
    const auto names = coverage::coverageNames();
    if (std::find(names.begin(), names.end(), tool.coverage) == names.end()) {
      throw std::runtime_error("unknown coverage model '" + tool.coverage +
                               "' (valid: " + joinNames(names) + ")");
    }
  }
}

ToolStack makeToolStack(const ToolConfig& tool) {
  // Canonical assembly order: detectors observe first, noise perturbs last.
  ToolStackBuilder b;
  for (const auto& d : tool.detectors) b.detector(d);
  if (tool.lockGraph) b.lockGraph();
  if (!tool.coverage.empty()) b.coverage(tool.coverage);
  if (tool.noiseName == "targeted") {
    b.targetedNoise(tool.noiseTargets, tool.noiseOpts);
  } else {
    b.noise(tool.noiseName, tool.noiseOpts);
  }
  return b.build();
}

RunObservation executeRun(const RunSpec& spec, std::size_t i) {
  ToolStack tools = makeToolStack(spec.tool);
  return executeRun(spec, i, tools);
}

RunObservation executeRun(const RunSpec& spec, std::size_t i,
                          ToolStack& tools) {
  auto program = suite::makeProgram(spec.programName);
  program->reset();

  std::unique_ptr<rt::SchedulePolicy> policy;
  if (spec.tool.mode == RuntimeMode::Controlled) {
    policy = spec.policyFactory ? spec.policyFactory()
                                : makePolicy(spec.tool.policy);
  }
  auto rt = rt::makeRuntime(spec.tool.mode, std::move(policy));

  // reset() first: a reused stack must start every run in the same state a
  // freshly-built stack would, or reports stop being seed-deterministic.
  tools.reset();
  tools.attach(*rt);
  if (tools.coverageModel() != nullptr && spec.tool.coverageClosedUniverse) {
    if (const model::Program* ir = program->irModel()) {
      tools.coverageModel()->declareTasks(model::contentionTaskUniverse(*ir));
    }
  }

  rt::RunOptions opts =
      spec.runOptions ? *spec.runOptions : program->defaultRunOptions();
  opts.seed = spec.seedBase + i;
  opts.programName = spec.programName;

  // When the worker process has the flight recorder armed (farm Process
  // model with a postmortem dir), describe the run so a crash mid-run
  // dumps a replayable scenario.
  if (rt::fr::armed()) {
    rt::fr::RunMeta meta;
    meta.program = spec.programName.c_str();
    meta.seed = opts.seed;
    meta.policy = spec.tool.policy.c_str();
    meta.noise = spec.tool.noiseName.empty() ? "none"
                                             : spec.tool.noiseName.c_str();
    meta.strength = spec.tool.noiseOpts.strength;
    rt::fr::beginRun(meta);
  }

  rt::RunResult r =
      rt->run([&](rt::Runtime& rr) { program->body(rr); }, opts);
  rt::fr::endRun();

  RunObservation obs;
  obs.runIndex = i;
  obs.seed = opts.seed;
  obs.status = std::string(to_string(r.status));
  obs.manifested = program->evaluate(r) == suite::Verdict::BugManifested;
  obs.hasDetectors = !tools.detectors().empty();
  for (race::RaceDetector* det : tools.detectors()) {
    obs.warnings += det->warningCount();
    obs.trueWarnings += det->trueAlarms();
    obs.falseWarnings += det->falseAlarms();
    obs.detectorHit = obs.detectorHit || det->foundAnnotatedBug();
  }
  if (tools.lockGraph() != nullptr) {
    obs.deadlockPotentials = tools.lockGraph()->warnings().size();
  }
  obs.wallSeconds = r.wallSeconds;
  obs.events = r.events;
  if (tools.noiseMaker() != nullptr) {
    obs.noiseInjections = tools.noiseMaker()->injections();
  }
  obs.outcome = program->outcome();
  obs.failureMessage = r.failureMessage;
  obs.dispatchDeliveries = r.dispatch.deliveries;
  obs.dispatchNsPerEvent = r.dispatch.nsPerEvent();
  if (tools.coverageModel() != nullptr) {
    // runSnapshot, not snapshot: the record must be a pure function of the
    // run (a reused stack's accumulated universe would otherwise leak into
    // it and break the farm's byte-determinism across worker counts).
    obs.coverage = tools.coverageModel()->runSnapshot().encode();
  }
  return obs;
}

void accumulate(ExperimentResult& result, const RunObservation& obs) {
  if (obs.supervised()) {
    // A timed-out / crashed / irrecoverable run yields no measurements;
    // it counts as a non-manifestation and is visible in statusCounts
    // and in the outcome distribution.
    result.manifested.add(false);
    if (obs.hasDetectors) result.detectorHit.add(false);
    result.outcomes.add("farm:" + obs.status);
    result.statusCounts[obs.status]++;
    return;
  }
  result.manifested.add(obs.manifested);
  result.warnings += obs.warnings;
  result.trueWarnings += obs.trueWarnings;
  result.falseWarnings += obs.falseWarnings;
  if (obs.hasDetectors) result.detectorHit.add(obs.detectorHit);
  result.deadlockPotentials += obs.deadlockPotentials;
  result.wallSeconds.add(obs.wallSeconds);
  result.events.add(static_cast<double>(obs.events));
  result.noiseInjections += obs.noiseInjections;
  result.outcomes.add(obs.outcome);
  result.statusCounts[obs.status]++;
}

void mergeInto(ExperimentResult& into, const ExperimentResult& part) {
  if (into.runs == 0) {
    into.programName = part.programName;
    into.toolLabel = part.toolLabel;
  }
  into.runs += part.runs;
  into.manifested.merge(part.manifested);
  into.detectorHit.merge(part.detectorHit);
  into.warnings += part.warnings;
  into.trueWarnings += part.trueWarnings;
  into.falseWarnings += part.falseWarnings;
  into.deadlockPotentials += part.deadlockPotentials;
  into.wallSeconds.merge(part.wallSeconds);
  into.events.merge(part.events);
  into.noiseInjections += part.noiseInjections;
  into.outcomes.merge(part.outcomes);
  for (const auto& [status, n] : part.statusCounts) {
    into.statusCounts[status] += n;
  }
}

ExperimentResult runExperiment(const ExperimentSpec& spec) {
  validateToolConfig(spec.tool);
  ExperimentResult result;
  result.programName = spec.programName;
  result.toolLabel = spec.tool.label();
  result.runs = spec.runs;
  // One stack for the whole campaign: executeRun resets it per run.
  ToolStack tools = makeToolStack(spec.tool);
  for (std::size_t i = 0; i < spec.runs; ++i) {
    accumulate(result, executeRun(spec, i, tools));
  }
  return result;
}

std::string findRateReport(const std::string& title,
                           const std::vector<ExperimentResult>& results,
                           const ReportOptions& opts) {
  TextTable t(title);
  std::vector<std::string> head = {"program", "tool", "manifested",
                                   "95% CI", "avg events"};
  if (opts.timing) head.push_back("avg ms");
  head.push_back("injections");
  t.header(head);
  for (const auto& r : results) {
    std::vector<std::string> row = {
        r.programName, r.toolLabel,
        TextTable::frac(r.manifested.successes, r.manifested.trials),
        "[" + TextTable::num(r.manifested.wilsonLow(), 2) + ", " +
            TextTable::num(r.manifested.wilsonHigh(), 2) + "]",
        TextTable::num(r.events.mean(), 0)};
    if (opts.timing) row.push_back(TextTable::num(r.wallSeconds.mean() * 1e3, 2));
    row.push_back(std::to_string(r.noiseInjections));
    t.row(std::move(row));
  }
  return t.render();
}

std::string detectorReport(const std::string& title,
                           const std::vector<ExperimentResult>& results) {
  TextTable t(title);
  t.header({"program", "tool", "runs-with-hit", "warnings", "true", "false",
            "false-rate"});
  for (const auto& r : results) {
    t.row({r.programName, r.toolLabel,
           TextTable::frac(r.detectorHit.successes, r.detectorHit.trials),
           std::to_string(r.warnings), std::to_string(r.trueWarnings),
           std::to_string(r.falseWarnings),
           TextTable::num(r.falseAlarmRate() * 100, 1) + "%"});
  }
  return t.render();
}

}  // namespace mtt::experiment
