#include "experiment/experiment.hpp"

#include <stdexcept>

#include "core/table.hpp"
#include "deadlock/lockgraph.hpp"
#include "race/detectors.hpp"

namespace mtt::experiment {

std::string ToolConfig::label() const {
  std::string l = noiseName;
  if (noiseName == "targeted" && !noiseTargets.empty()) {
    l += "(" + std::to_string(noiseTargets.size()) + " vars)";
  }
  for (const auto& d : detectors) l += "+" + d;
  if (lockGraph) l += "+lockgraph";
  l += mode == RuntimeMode::Controlled ? "/ctl-" + policy : "/native";
  return l;
}

std::unique_ptr<rt::SchedulePolicy> makePolicy(const std::string& name) {
  if (name == "rr") return std::make_unique<rt::RoundRobinPolicy>();
  if (name == "priority") return std::make_unique<rt::PriorityPolicy>();
  if (name == "random") return std::make_unique<rt::RandomPolicy>();
  throw std::runtime_error("mtt: unknown schedule policy " + name);
}

ExperimentResult runExperiment(const ExperimentSpec& spec) {
  auto program = suite::makeProgram(spec.programName);

  ExperimentResult result;
  result.programName = spec.programName;
  result.toolLabel = spec.tool.label();
  result.runs = spec.runs;

  for (std::size_t i = 0; i < spec.runs; ++i) {
    program->reset();

    auto rt = rt::makeRuntime(
        spec.tool.mode, spec.tool.mode == RuntimeMode::Controlled
                            ? makePolicy(spec.tool.policy)
                            : nullptr);

    // Tool assembly: detectors observe first, noise perturbs last.
    std::vector<std::unique_ptr<race::RaceDetector>> detectors;
    for (const auto& d : spec.tool.detectors) {
      auto det = race::makeDetector(d);
      if (!det) throw std::runtime_error("mtt: unknown detector " + d);
      rt->hooks().add(det.get());
      detectors.push_back(std::move(det));
    }
    deadlock::LockGraphDetector lockGraph;
    if (spec.tool.lockGraph) rt->hooks().add(&lockGraph);

    std::unique_ptr<noise::NoiseMaker> noiseMaker;
    if (spec.tool.noiseName == "targeted") {
      noiseMaker = std::make_unique<noise::TargetedNoise>(
          *rt, spec.tool.noiseTargets, spec.tool.noiseOpts);
    } else {
      noiseMaker =
          noise::makeNoise(spec.tool.noiseName, *rt, spec.tool.noiseOpts);
      if (!noiseMaker) {
        throw std::runtime_error("mtt: unknown noise heuristic " +
                                 spec.tool.noiseName);
      }
    }
    rt->hooks().add(noiseMaker.get());

    rt::RunOptions opts =
        spec.runOptions ? *spec.runOptions : program->defaultRunOptions();
    opts.seed = spec.seedBase + i;
    opts.programName = spec.programName;

    rt::RunResult r = rt->run([&](rt::Runtime& rr) { program->body(rr); },
                              opts);

    result.manifested.add(program->evaluate(r) ==
                          suite::Verdict::BugManifested);
    bool hit = false;
    for (const auto& det : detectors) {
      result.warnings += det->warningCount();
      result.trueWarnings += det->trueAlarms();
      result.falseWarnings += det->falseAlarms();
      hit = hit || det->foundAnnotatedBug();
    }
    if (!detectors.empty()) result.detectorHit.add(hit);
    result.deadlockPotentials += lockGraph.warnings().size();
    result.wallSeconds.add(r.wallSeconds);
    result.events.add(static_cast<double>(r.events));
    result.noiseInjections += noiseMaker->injections();
    result.outcomes.add(program->outcome());
    result.statusCounts[std::string(to_string(r.status))]++;
  }
  return result;
}

std::string findRateReport(const std::string& title,
                           const std::vector<ExperimentResult>& results) {
  TextTable t(title);
  t.header({"program", "tool", "manifested", "95% CI", "avg events",
            "avg ms", "injections"});
  for (const auto& r : results) {
    t.row({r.programName, r.toolLabel,
           TextTable::frac(r.manifested.successes, r.manifested.trials),
           "[" + TextTable::num(r.manifested.wilsonLow(), 2) + ", " +
               TextTable::num(r.manifested.wilsonHigh(), 2) + "]",
           TextTable::num(r.events.mean(), 0),
           TextTable::num(r.wallSeconds.mean() * 1e3, 2),
           std::to_string(r.noiseInjections)});
  }
  return t.render();
}

std::string detectorReport(const std::string& title,
                           const std::vector<ExperimentResult>& results) {
  TextTable t(title);
  t.header({"program", "tool", "runs-with-hit", "warnings", "true", "false",
            "false-rate"});
  for (const auto& r : results) {
    t.row({r.programName, r.toolLabel,
           TextTable::frac(r.detectorHit.successes, r.detectorHit.trials),
           std::to_string(r.warnings), std::to_string(r.trueWarnings),
           std::to_string(r.falseWarnings),
           TextTable::num(r.falseAlarmRate() * 100, 1) + "%"});
  }
  return t.render();
}

}  // namespace mtt::experiment
