#include "experiment/tool_stack.hpp"

#include <stdexcept>
#include <utility>

#include "mem/mmrace.hpp"
#include "rt/runtime.hpp"

namespace mtt::experiment {

void ToolStack::attach(rt::Runtime& rt) {
  for (Listener* l : order_) {
    l->bindRuntime(rt);
    rt.hooks().add(l);
  }
}

void ToolStack::reset() {
  for (Listener* l : order_) l->resetTool();
}

void ToolStackBuilder::addAnalysis(Listener* raw,
                                   std::unique_ptr<Listener> owned) {
  if (sawNoise_) {
    throw std::logic_error(
        "ToolStackBuilder: analysis tool added after a noise maker; "
        "noise makers must register last so analysis tools observe each "
        "event before the perturbation");
  }
  stack_.order_.push_back(raw);
  if (owned) stack_.owned_.push_back(std::move(owned));
}

void ToolStackBuilder::addNoise(std::unique_ptr<noise::NoiseMaker> nm) {
  noise::NoiseMaker* raw = nm.get();
  if (stack_.noise_ == nullptr) stack_.noise_ = raw;
  stack_.order_.push_back(raw);
  stack_.owned_.push_back(std::move(nm));
  sawNoise_ = true;
}

ToolStackBuilder& ToolStackBuilder::detector(const std::string& name) {
  std::unique_ptr<race::RaceDetector> det = race::makeDetector(name);
  // The memory-model-aware check lives in mtt::mem (it consumes the Atomic
  // event kinds, not variable accesses), so it is resolved here rather than
  // in race::detectorNames() — the classic four-column analyze reports stay
  // byte-stable.
  if (!det && name == "mmrace") {
    det = std::make_unique<mem::MemoryModelRaceDetector>();
  }
  if (!det) throw std::runtime_error("unknown detector " + name);
  race::RaceDetector* raw = det.get();
  stack_.detectors_.push_back(raw);
  addAnalysis(raw, std::move(det));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::lockGraph() {
  auto lg = std::make_unique<deadlock::LockGraphDetector>();
  deadlock::LockGraphDetector* raw = lg.get();
  stack_.lockGraph_ = raw;
  addAnalysis(raw, std::move(lg));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::traceRecorder() {
  auto rec = std::make_unique<trace::TraceRecorder>();
  trace::TraceRecorder* raw = rec.get();
  stack_.recorder_ = raw;
  addAnalysis(raw, std::move(rec));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::coverage(const std::string& name) {
  return coverageModel(mtt::coverage::makeCoverage(name));
}

ToolStackBuilder& ToolStackBuilder::coverageModel(
    std::unique_ptr<mtt::coverage::CoverageModel> model) {
  mtt::coverage::CoverageModel* raw = model.get();
  if (stack_.coverage_ == nullptr) stack_.coverage_ = raw;
  addAnalysis(raw, std::move(model));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::listener(std::unique_ptr<Listener> tool) {
  Listener* raw = tool.get();
  addAnalysis(raw, std::move(tool));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::borrowed(Listener* tool) {
  addAnalysis(tool, nullptr);
  return *this;
}

ToolStackBuilder& ToolStackBuilder::noise(const std::string& name,
                                          noise::NoiseOptions opts) {
  auto nm = noise::makeNoise(name, opts);
  if (!nm) throw std::runtime_error("unknown noise heuristic " + name);
  addNoise(std::move(nm));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::targetedNoise(
    std::set<std::string> sharedVarNames, noise::NoiseOptions opts) {
  addNoise(std::make_unique<noise::TargetedNoise>(std::move(sharedVarNames),
                                                 opts));
  return *this;
}

ToolStackBuilder& ToolStackBuilder::noiseMaker(
    std::unique_ptr<noise::NoiseMaker> nm) {
  addNoise(std::move(nm));
  return *this;
}

ToolStack ToolStackBuilder::build() { return std::move(stack_); }

// --- ToolStackPool -----------------------------------------------------------

struct ToolStackPool::Lease::Shared {
  std::mutex mu;
  std::vector<std::unique_ptr<ToolStack>> free;
  std::function<ToolStack()> factory;
};

ToolStackPool::ToolStackPool(std::function<ToolStack()> factory)
    : shared_(std::make_shared<Lease::Shared>()) {
  shared_->factory = std::move(factory);
}

ToolStackPool::Lease::Lease(std::shared_ptr<Shared> shared,
                            std::unique_ptr<ToolStack> stack)
    : shared_(std::move(shared)), stack_(std::move(stack)) {}

ToolStackPool::Lease::~Lease() {
  if (shared_ == nullptr || stack_ == nullptr) return;
  std::lock_guard<std::mutex> lk(shared_->mu);
  shared_->free.push_back(std::move(stack_));
}

ToolStackPool::Lease ToolStackPool::acquire() {
  {
    std::lock_guard<std::mutex> lk(shared_->mu);
    if (!shared_->free.empty()) {
      std::unique_ptr<ToolStack> s = std::move(shared_->free.back());
      shared_->free.pop_back();
      return Lease(shared_, std::move(s));
    }
  }
  // Build outside the lock: stack construction allocates tools.
  return Lease(shared_, std::make_unique<ToolStack>(shared_->factory()));
}

}  // namespace mtt::experiment
