// The prepared experiment — component 2 of the paper's benchmark:
//
//   "The experiment part of the benchmark contains prepared scripts with
//    which programs such as race detection and noise can be evaluated as to
//    how frequently they uncover faults, and if they raise false alarms.
//    The analysis of the executions and statistics on the performance of
//    the technologies is also executed with a script.  This script produces
//    a prepared evaluation report [...] with the push of a button."
//
// An ExperimentSpec is (program × tool configuration × N seeded runs); the
// harness runs it, gathering exactly the statistics the paper names: bug-
// finding frequency, true/false alarm counts, runtime overhead, and the
// outcome distribution.  Every bench binary is "a push of the button".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "noise/noise.hpp"
#include "rt/harness.hpp"
#include "suite/program.hpp"

namespace mtt::experiment {

/// Which tools run alongside the program.
struct ToolConfig {
  /// Noise heuristic name ("none", "yield", "sleep", "mixed",
  /// "coverage-directed") or "targeted" (uses noiseTargets).
  std::string noiseName = "none";
  noise::NoiseOptions noiseOpts;
  /// Variable names for TargetedNoise (typically escape-analysis output).
  std::set<std::string> noiseTargets;
  /// Race detectors to attach ("eraser", "djit", "fasttrack", "hybrid").
  std::vector<std::string> detectors;
  /// Attach the potential-deadlock lock-graph detector.
  bool lockGraph = false;
  RuntimeMode mode = RuntimeMode::Controlled;
  /// Controlled-mode policy: "random", "rr", "priority".
  std::string policy = "random";

  std::string label() const;
};

struct ExperimentSpec {
  std::string programName;
  ToolConfig tool;
  std::size_t runs = 100;
  std::uint64_t seedBase = 0;
  /// Overrides the program's default run options when set.
  std::optional<rt::RunOptions> runOptions;
};

struct ExperimentResult {
  std::string programName;
  std::string toolLabel;
  std::size_t runs = 0;

  /// "how frequently they uncover faults"
  Proportion manifested;
  /// Runs where >= 1 detector raised a warning on an annotated bug site.
  Proportion detectorHit;
  /// "if they raise false alarms"
  std::size_t warnings = 0;
  std::size_t trueWarnings = 0;
  std::size_t falseWarnings = 0;
  std::size_t deadlockPotentials = 0;

  /// "performance overhead"
  OnlineStats wallSeconds;
  OnlineStats events;
  std::uint64_t noiseInjections = 0;

  OutcomeDistribution outcomes;
  std::map<std::string, std::size_t> statusCounts;

  double falseAlarmRate() const {
    return warnings == 0 ? 0.0
                         : static_cast<double>(falseWarnings) /
                               static_cast<double>(warnings);
  }
};

/// Builds a fresh policy by name ("random", "rr", "priority").
std::unique_ptr<rt::SchedulePolicy> makePolicy(const std::string& name);

/// Runs the experiment.  Fully deterministic in controlled mode for a given
/// (spec.seedBase, spec.runs).
ExperimentResult runExperiment(const ExperimentSpec& spec);

/// Renders the standard find-rate comparison table (one row per result).
std::string findRateReport(const std::string& title,
                           const std::vector<ExperimentResult>& results);

/// Renders the detector-quality table (warnings / true / false / rate).
std::string detectorReport(const std::string& title,
                           const std::vector<ExperimentResult>& results);

}  // namespace mtt::experiment
