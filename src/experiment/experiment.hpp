// The prepared experiment — component 2 of the paper's benchmark:
//
//   "The experiment part of the benchmark contains prepared scripts with
//    which programs such as race detection and noise can be evaluated as to
//    how frequently they uncover faults, and if they raise false alarms.
//    The analysis of the executions and statistics on the performance of
//    the technologies is also executed with a script.  This script produces
//    a prepared evaluation report [...] with the push of a button."
//
// An ExperimentSpec is (program × tool configuration × N seeded runs); the
// harness runs it, gathering exactly the statistics the paper names: bug-
// finding frequency, true/false alarm counts, runtime overhead, and the
// outcome distribution.  Every bench binary is "a push of the button".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "experiment/tool_stack.hpp"
#include "noise/noise.hpp"
#include "rt/harness.hpp"
#include "suite/program.hpp"

namespace mtt::experiment {

/// Which tools run alongside the program.
struct ToolConfig {
  /// Noise heuristic name ("none", "yield", "sleep", "mixed",
  /// "coverage-directed") or "targeted" (uses noiseTargets).
  std::string noiseName = "none";
  noise::NoiseOptions noiseOpts;
  /// Variable names for TargetedNoise (typically escape-analysis output).
  std::set<std::string> noiseTargets;
  /// Race detectors to attach ("eraser", "djit", "fasttrack", "hybrid").
  std::vector<std::string> detectors;
  /// Attach the potential-deadlock lock-graph detector.
  bool lockGraph = false;
  RuntimeMode mode = RuntimeMode::Controlled;
  /// Controlled-mode policy: "random", "rr", "priority".
  std::string policy = "random";
  /// Coverage model attached to the stack ("" = none; a
  /// coverage::makeCoverage name otherwise).  The per-run snapshot flows
  /// into RunObservation::coverage and from there through the farm pipe and
  /// journal into campaign control (mtt::guide).
  std::string coverage;
  /// Close the coverage universe from the program's static IR model when it
  /// has one (model::contentionTaskUniverse) — the paper's feasibility
  /// filter.  Meaningful for "var-contention"; ignored without an IR model.
  bool coverageClosedUniverse = false;

  std::string label() const;
};

/// The per-run recipe: program, tool stack, seed base, and run-option
/// overrides — the one knob struct consumed by executeRun, the explorer
/// (exploreSpec), and the farm.  Campaign engines vary a single field per
/// run (noise arm, seed) instead of copying three parallel structs.
struct RunSpec {
  std::string programName;
  ToolConfig tool;
  std::uint64_t seedBase = 0;
  /// Overrides the program's default run options when set.
  std::optional<rt::RunOptions> runOptions;
  /// Forces seq_cst semantics on every mem::Atomic operation (the
  /// "does the bug need weak memory?" control; `--seq-cst` on the CLI).
  /// Applied on top of whichever run options are in effect.
  bool forceSeqCst = false;
  /// When set (controlled mode), each run schedules under a fresh policy
  /// from this factory instead of tool.policy — how guide's corpus-seeded
  /// schedule mutators ride an otherwise unchanged spec.  Must be safe to
  /// invoke concurrently.
  std::function<std::unique_ptr<rt::SchedulePolicy>()> policyFactory;
};

/// A RunSpec with a fixed run budget (the classic `--runs N` campaign).
struct ExperimentSpec : RunSpec {
  std::size_t runs = 100;
};

struct ExperimentResult {
  std::string programName;
  std::string toolLabel;
  std::size_t runs = 0;

  /// "how frequently they uncover faults"
  Proportion manifested;
  /// Runs where >= 1 detector raised a warning on an annotated bug site.
  Proportion detectorHit;
  /// "if they raise false alarms"
  std::size_t warnings = 0;
  std::size_t trueWarnings = 0;
  std::size_t falseWarnings = 0;
  std::size_t deadlockPotentials = 0;

  /// "performance overhead"
  OnlineStats wallSeconds;
  OnlineStats events;
  std::uint64_t noiseInjections = 0;

  OutcomeDistribution outcomes;
  std::map<std::string, std::size_t> statusCounts;

  double falseAlarmRate() const {
    return warnings == 0 ? 0.0
                         : static_cast<double>(falseWarnings) /
                               static_cast<double>(warnings);
  }
};

/// Everything observed in one seeded run — the unit of work the farm ships
/// between workers (and across the process-isolation pipe) and folds back
/// into an ExperimentResult.  Folding observations in runIndex order through
/// accumulate() reproduces the serial runExperiment aggregation exactly.
struct RunObservation {
  std::uint64_t runIndex = 0;
  std::uint64_t seed = 0;
  std::string status;  ///< rt::to_string(RunStatus)
  bool manifested = false;
  bool hasDetectors = false;
  bool detectorHit = false;
  std::uint64_t warnings = 0;
  std::uint64_t trueWarnings = 0;
  std::uint64_t falseWarnings = 0;
  std::uint64_t deadlockPotentials = 0;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t noiseInjections = 0;
  std::string outcome;
  std::string failureMessage;
  /// Dispatch observability (Hook API v2): listener deliveries this run
  /// (events × subscribed tools) and, when RunOptions::dispatchTiming was
  /// on, mean nanoseconds of tool time per event.
  std::uint64_t dispatchDeliveries = 0;
  double dispatchNsPerEvent = 0.0;
  /// Postmortem scenario dumped by the flight recorder when this run
  /// crashed or timed out under the forked-worker model; empty otherwise.
  /// Replayable (mtt replay / shrink accept it) and ingestible into the
  /// triage corpus.
  std::string postmortemPath;
  /// Per-run coverage delta when the tool config attached a coverage model:
  /// the binary encoding (MSNP1) of the run's coverage::Snapshot.  Rides
  /// hex-encoded in the farm pipe record and the journal, which is how
  /// coverage feedback survives worker isolation and campaign resume.
  std::string coverage;
  /// Farm bookkeeping: how many attempts this run took (retries + 1).
  std::uint32_t attempts = 1;

  /// True for farm-assigned supervision statuses (timeout / crashed /
  /// infra-error): the run produced no usable measurements.
  bool supervised() const {
    return status == "timeout" || status == "crashed" ||
           status == "infra-error";
  }
};

/// Builds a fresh policy from a parameterized policy spec.  Grammar:
///   rr | random[:switch=P] | pct[:d=D,k=K] | pos | priority[:d=D,k=K]
/// where P is a probability, D the PCT priority-change-point count (>= 1)
/// and K the run-length window (0/absent = adaptive).  "priority" is the
/// historical alias of "pct".  Throws std::runtime_error naming the valid
/// policies and the grammar on unknown names or malformed parameters.
std::unique_ptr<rt::SchedulePolicy> makePolicy(const std::string& name);
/// All valid base policy names, for error messages and CLI validation.
std::vector<std::string> policyNames();

/// Throws std::runtime_error on the first unknown policy / noise heuristic /
/// detector name in the config, listing the valid alternatives.  Campaign
/// drivers call this once up front so configuration mistakes fail fast
/// instead of surfacing as per-run infrastructure errors.
void validateToolConfig(const ToolConfig& tool);

/// Builds the owned tool stack a ToolConfig describes, in the canonical
/// order: detectors (config order), then the lock-graph detector if
/// requested, then the noise maker.  Throws std::runtime_error on unknown
/// detector / noise names (validateToolConfig reports the same failures
/// with nicer messages).
ToolStack makeToolStack(const ToolConfig& tool);

/// Executes run `i` of the spec (seed = spec.seedBase + i) on the calling
/// thread.  Thread-safe: each call builds its own program instance,
/// runtime, and tool stack, so any number of runs of the same spec may
/// execute concurrently.
RunObservation executeRun(const RunSpec& spec, std::size_t i);

/// Same, but attaches a caller-provided tool stack instead of building one
/// per run — campaign loops build the stack once and reuse it.  The stack
/// is reset() at the start of the run, so the observation is identical to
/// the build-per-run overload for the same (spec, i).  Not thread-safe with
/// respect to `tools`: one stack serves one run at a time.
RunObservation executeRun(const RunSpec& spec, std::size_t i,
                          ToolStack& tools);

/// Folds one observation into the aggregate (exact serial semantics).
void accumulate(ExperimentResult& result, const RunObservation& obs);

/// Merges a partial result into `into` using the stats merge() operations.
/// Counts are exact; OnlineStats fields are algebraically exact but may
/// differ from a sequential fold in the last float bits (see OnlineStats).
void mergeInto(ExperimentResult& into, const ExperimentResult& part);

/// Runs the experiment serially in-process.  Fully deterministic in
/// controlled mode for a given (spec.seedBase, spec.runs).  For parallel /
/// fault-isolated campaigns, see farm::runExperimentFarm.
ExperimentResult runExperiment(const ExperimentSpec& spec);

struct ReportOptions {
  /// Include wall-clock timing columns.  Disable for byte-stable reports:
  /// in controlled mode everything except wall time is a pure function of
  /// (program, tool config, seedBase, runs), so timing-free reports are
  /// bitwise identical no matter how the campaign was scheduled.
  bool timing = true;
};

/// Renders the standard find-rate comparison table (one row per result).
std::string findRateReport(const std::string& title,
                           const std::vector<ExperimentResult>& results,
                           const ReportOptions& opts = {});

/// Renders the detector-quality table (warnings / true / false / rate).
std::string detectorReport(const std::string& title,
                           const std::vector<ExperimentResult>& results);

}  // namespace mtt::experiment
