#include "deadlock/lockgraph.hpp"

#include <algorithm>
#include <functional>
#include <iterator>

#include "core/site.hpp"

namespace mtt::deadlock {

std::string DeadlockWarning::describe() const {
  std::string out = "potential deadlock: lock cycle";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    out += (i == 0 ? " " : " -> ");
    out += "lock#" + std::to_string(cycle[i]);
  }
  if (!acquisitionSites.empty()) {
    out += " (acquired at";
    for (SiteId s : acquisitionSites) {
      out += ' ' + SiteRegistry::instance().describe(s);
    }
    out += ')';
  }
  if (gateProtected) {
    out += " [gate-protected by lock#" + std::to_string(gateLock) +
           ": likely false positive]";
  }
  if (onBugSite) out += " [annotated bug]";
  return out;
}

std::size_t LockGraphDetector::unguardedWarningCount() const {
  std::size_t n = 0;
  for (const auto& w : warnings_) {
    if (!w.gateProtected) ++n;
  }
  return n;
}

void LockGraphDetector::onRunStart(const RunInfo& info) {
  (void)info;
  std::lock_guard<std::mutex> lk(mu_);
  held_.clear();
  edges_.clear();
  edgeInfo_.clear();
  warnings_.clear();
}

void LockGraphDetector::resetTool() {
  std::lock_guard<std::mutex> lk(mu_);
  held_.clear();
  edges_.clear();
  edgeInfo_.clear();
  warnings_.clear();
}

void LockGraphDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (e.kind) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite: {
      auto& stack = held_[e.thread];
      for (ObjectId h : stack) {
        if (h == e.object) continue;  // recursive re-acquire
        if (edges_[h].insert(e.object).second) {
          EdgeInfo info;
          info.site = e.syncSite;
          info.bug = e.bugSite == BugMark::Yes;
          info.heldAtAcquire.insert(stack.begin(), stack.end());
          info.heldAtAcquire.erase(h);
          info.heldAtAcquire.erase(e.object);
          edgeInfo_[{h, e.object}] = std::move(info);
        }
      }
      stack.push_back(e.object);
      break;
    }
    case EventKind::MutexUnlock:
    case EventKind::RwUnlockRead:
    case EventKind::RwUnlockWrite: {
      auto& stack = held_[e.thread];
      auto it = std::find(stack.rbegin(), stack.rend(), e.object);
      if (it != stack.rend()) stack.erase(std::next(it).base());
      break;
    }
    case EventKind::CondWaitBegin: {
      // The wait releases the mutex in arg.
      auto& stack = held_[e.thread];
      auto it = std::find(stack.rbegin(), stack.rend(),
                          static_cast<ObjectId>(e.arg));
      if (it != stack.rend()) stack.erase(std::next(it).base());
      break;
    }
    case EventKind::CondWaitEnd:
      held_[e.thread].push_back(static_cast<ObjectId>(e.arg));
      break;
    default:
      break;
  }
}

void LockGraphDetector::onRunEnd() { findCyclesNow(); }

void LockGraphDetector::mergeEdges(const LockGraphDetector& other) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [from, tos] : other.edges_) {
    for (ObjectId to : tos) {
      if (edges_[from].insert(to).second) {
        auto it = other.edgeInfo_.find({from, to});
        if (it != other.edgeInfo_.end()) edgeInfo_[{from, to}] = it->second;
      }
    }
  }
}

void LockGraphDetector::findCyclesNow() {
  std::lock_guard<std::mutex> lk(mu_);
  warnings_.clear();
  // DFS with colors; report each cycle once via its normalized (minimum
  // rotation) form.
  std::set<std::vector<ObjectId>> seen;
  std::map<ObjectId, int> color;  // 0 white, 1 gray, 2 black
  std::vector<ObjectId> path;

  std::function<void(ObjectId)> dfs = [&](ObjectId n) {
    color[n] = 1;
    path.push_back(n);
    auto it = edges_.find(n);
    if (it != edges_.end()) {
      for (ObjectId m : it->second) {
        if (color[m] == 1) {
          // Found a cycle: the path suffix from m.
          auto start = std::find(path.begin(), path.end(), m);
          std::vector<ObjectId> cycle(start, path.end());
          // Normalize: rotate so the smallest id is first.
          auto mn = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), mn, cycle.end());
          if (seen.insert(cycle).second) {
            DeadlockWarning w;
            w.cycle = cycle;
            // Gate-lock refinement: intersect the held-sets of every edge
            // (excluding the cycle's own locks).
            std::set<ObjectId> gates;
            bool first = true;
            for (std::size_t i = 0; i < cycle.size(); ++i) {
              ObjectId from = cycle[i];
              ObjectId to = cycle[(i + 1) % cycle.size()];
              auto ei = edgeInfo_.find({from, to});
              if (ei != edgeInfo_.end()) {
                w.acquisitionSites.push_back(ei->second.site);
                w.onBugSite = w.onBugSite || ei->second.bug;
                std::set<ObjectId> held = ei->second.heldAtAcquire;
                for (ObjectId c : cycle) held.erase(c);
                if (first) {
                  gates = std::move(held);
                  first = false;
                } else {
                  std::set<ObjectId> inter;
                  std::set_intersection(gates.begin(), gates.end(),
                                        held.begin(), held.end(),
                                        std::inserter(inter, inter.begin()));
                  gates = std::move(inter);
                }
              } else {
                gates.clear();
                first = false;
              }
            }
            if (!gates.empty()) {
              w.gateProtected = true;
              w.gateLock = *gates.begin();
            }
            warnings_.push_back(std::move(w));
          }
        } else if (color[m] == 0) {
          dfs(m);
        }
      }
    }
    path.pop_back();
    color[n] = 2;
  };
  for (const auto& [n, _] : edges_) {
    if (color[n] == 0) dfs(n);
  }
}

}  // namespace mtt::deadlock
