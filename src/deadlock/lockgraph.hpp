// Potential-deadlock detection via lock-order graphs (the GoodLock
// algorithm family; the paper cites Harrow's Visual Threads and Havelund's
// Java PathExplorer as trace-based deadlock-potential analyzers: "they look
// for cycles in lock graphs").
//
// The detector watches lock acquisition events: acquiring m2 while holding
// m1 adds edge m1 -> m2 (labeled with the acquisition site).  A cycle in the
// accumulated graph is a potential deadlock, reported even on runs where the
// deadlock did not manifest — the complementary strength to the controlled
// runtime's actual-deadlock detection.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/listener.hpp"

namespace mtt::deadlock {

/// One lock-order cycle: the locks involved, in cycle order.
struct DeadlockWarning {
  std::vector<ObjectId> cycle;         ///< lock ids, cycle order
  std::vector<SiteId> acquisitionSites;  ///< site of each edge's acquisition
  bool onBugSite = false;              ///< any involved site bug-annotated
  /// GoodLock's "gate lock" refinement: when every edge of the cycle was
  /// acquired while some common outer lock was held, the cycle cannot
  /// actually deadlock (the gate serializes the contenders).  Such warnings
  /// are kept but downgraded — the classic false-positive class of plain
  /// lock-order analysis.
  bool gateProtected = false;
  ObjectId gateLock = kNoObject;
  std::string describe() const;
};

/// Online (Listener) and offline (trace::feed) potential-deadlock detector.
class LockGraphDetector final : public Listener {
 public:
  void onRunStart(const RunInfo& info) override;
  void onEvent(const Event& e) override;
  void onRunEnd() override;

  /// Lock-order analysis only needs acquire/release-shaped events (plus the
  /// condvar wait boundary, which releases and re-acquires the mutex).
  EventMask subscribedEvents() const override {
    return (EventMask::locks().without(EventKind::MutexTryLockFail) |
            EventMask{EventKind::CondWaitBegin, EventKind::CondWaitEnd});
  }
  std::string_view listenerName() const override { return "lockgraph"; }
  void resetTool() override;

  /// Warnings found (populated during onRunEnd; one per distinct cycle).
  const std::vector<DeadlockWarning>& warnings() const { return warnings_; }
  bool foundPotentialDeadlock() const { return !warnings_.empty(); }
  /// Warnings that survive the gate-lock refinement (the high-confidence
  /// subset).
  std::size_t unguardedWarningCount() const;

  /// Accumulated edges (m1 -> m2 means m2 acquired while holding m1).
  const std::map<ObjectId, std::set<ObjectId>>& edges() const {
    return edges_;
  }

  /// Merges another run's graph into this one (cross-run accumulation, as a
  /// trace repository analysis would do); re-run cycle detection with
  /// findCyclesNow().
  void mergeEdges(const LockGraphDetector& other);
  void findCyclesNow();

 private:
  struct EdgeInfo {
    SiteId site = kNoSite;
    bool bug = false;
    /// Other locks held when the edge was first observed (for the gate-lock
    /// refinement).
    std::set<ObjectId> heldAtAcquire;
  };
  std::map<ThreadId, std::vector<ObjectId>> held_;  // acquisition order
  std::map<ObjectId, std::set<ObjectId>> edges_;
  std::map<std::pair<ObjectId, ObjectId>, EdgeInfo> edgeInfo_;
  std::vector<DeadlockWarning> warnings_;
  std::mutex mu_;
};

}  // namespace mtt::deadlock
