// The chaos campaign driver: runs one experiment campaign through the
// fleet under an installed FaultPlan and delivers a verdict against the
// chaos invariant:
//
//   For every injected fault class, the campaign either COMPLETES with a
//   report and journal byte-identical to the fault-free `--jobs 1` run of
//   the same spec, or TERMINATES PROMPTLY with a resumable journal and a
//   diagnostic naming the fault — never a hang, never silent corruption.
//
// Mechanics: a fault-free serial baseline is executed first (no injector
// installed); then the same spec runs as a fleet campaign — coordinator on
// a Unix socket plus in-process reconnecting worker threads — with the
// FaultPlan installed and a wall-clock watchdog armed.  A completed chaos
// run must match the baseline bit for bit; an aborted one must carry a
// diagnostic and leave a journal that, resumed fault-free and serially,
// reconstructs the baseline exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "chaos/chaos.hpp"
#include "experiment/experiment.hpp"

namespace mtt::chaos {

enum class ChaosVerdict : std::uint8_t {
  /// Campaign completed; report + journal byte-identical to the baseline.
  Recovered,
  /// Campaign aborted with a diagnostic; the journal resumed fault-free to
  /// the exact baseline.
  DegradedResumable,
  /// Output diverged from the baseline (the invariant's "silent
  /// corruption" arm) — always a bug.
  Corruption,
  /// The wall-clock cap fired before the campaign terminated on its own —
  /// the invariant's "never a hang" arm.  Always a bug.
  Hang,
  /// The campaign stopped abnormally without naming its fault, or the
  /// degraded journal could not be resumed.
  Failed,
};

const char* to_string(ChaosVerdict v);

struct ChaosOptions {
  /// Fault plan spec (chaos::parsePlan grammar / preset names).
  std::string plan = "sever";
  /// Seed for the deterministic fault sequence (same seed + same plan =
  /// same injected faults at every site).
  std::uint64_t seed = 1;
  /// In-process fleet workers serving the campaign.
  std::size_t workers = 2;
  /// Runs-per-lease sharding; deliberately small so faults land between
  /// many protocol edges.
  std::size_t leaseSize = 7;
  /// Worker idle-heartbeat cadence (must stay below leaseTimeout).
  std::chrono::milliseconds heartbeat{200};
  /// Coordinator lease timeout (hung-worker quarantine deadline).  Kept
  /// short: a worker-side sever is invisible to the coordinator until the
  /// lease expires, so this bounds the recovery latency per injected fault.
  std::chrono::milliseconds leaseTimeout{2000};
  /// Coordinator degraded-mode deadline: no workers + no records for this
  /// long aborts the campaign with a diagnostic.
  std::chrono::milliseconds noProgressTimeout{3000};
  /// Hard wall-clock cap on the chaos run; exceeding it is verdict Hang.
  std::chrono::milliseconds wallCap{60000};
  /// Scratch directory for sockets/journals; empty = a fresh directory
  /// under the system temp path, removed afterwards unless keepArtifacts.
  std::string workDir;
  bool keepArtifacts = false;
};

struct ChaosReport {
  ChaosVerdict verdict = ChaosVerdict::Failed;
  /// The campaign's abort diagnostic (degraded path) or an explanation of
  /// the verdict (corruption/hang/failure); empty for a clean Recovered.
  std::string diagnostic;
  /// Injected-fault counters and the deterministic trigger trace.
  FaultPlanStats faults;
  std::uint64_t runs = 0;           ///< requested campaign size
  std::uint64_t delivered = 0;      ///< records the chaos run produced
  std::uint64_t workerReconnects = 0;
  bool resumedToBaseline = false;   ///< degraded path resumed successfully
  double wallSeconds = 0.0;

  bool passed() const {
    return verdict == ChaosVerdict::Recovered ||
           verdict == ChaosVerdict::DegradedResumable;
  }
};

/// Runs the full baseline / chaos / verify sequence.  Throws
/// std::runtime_error on configuration errors (bad plan spec, unknown
/// program); fault consequences are reported in the verdict, not thrown.
ChaosReport runChaosCampaign(const experiment::ExperimentSpec& spec,
                             const ChaosOptions& options);

/// Human-readable multi-line rendering of a report (CLI epilogue).
std::string renderChaosReport(const ChaosReport& report);

}  // namespace mtt::chaos
