#include "chaos/chaos.hpp"

#include <algorithm>
#include <cerrno>
#include <functional>
#include <stdexcept>
#include <string_view>

#include "core/backoff.hpp"

namespace mtt::chaos {

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::Sever: return "sever";
    case FaultClass::Stall: return "stall";
    case FaultClass::ShortRead: return "short-read";
    case FaultClass::HeartbeatDup: return "hb-dup";
    case FaultClass::HeartbeatDelay: return "hb-delay";
    case FaultClass::DiskShort: return "disk-short";
    case FaultClass::DiskFull: return "disk-full";
    case FaultClass::FsyncFail: return "fsync-fail";
  }
  return "?";
}

namespace {

/// Which operations a fault class can fire on.
bool classMatchesOp(FaultClass c, core::FaultOp op) {
  switch (c) {
    case FaultClass::Sever:
    case FaultClass::Stall:
      return op == core::FaultOp::NetSend || op == core::FaultOp::NetRecv;
    case FaultClass::ShortRead:
      return op == core::FaultOp::NetRecv;
    case FaultClass::HeartbeatDup:
    case FaultClass::HeartbeatDelay:
      return op == core::FaultOp::HeartbeatSend;
    case FaultClass::DiskShort:
    case FaultClass::DiskFull:
      return op == core::FaultOp::DiskWrite;
    case FaultClass::FsyncFail:
      return op == core::FaultOp::DiskFsync;
  }
  return false;
}

bool parseClass(const std::string& name, FaultClass& out) {
  for (FaultClass c :
       {FaultClass::Sever, FaultClass::Stall, FaultClass::ShortRead,
        FaultClass::HeartbeatDup, FaultClass::HeartbeatDelay,
        FaultClass::DiskShort, FaultClass::DiskFull, FaultClass::FsyncFail}) {
    if (name == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

[[noreturn]] void badPlan(const std::string& why) {
  throw std::runtime_error(
      "bad chaos plan: " + why +
      "\nplan grammar: rule[:key=value,...][+rule...]; rules: sever, stall, "
      "short-read, hb-dup, hb-delay, disk-short, disk-full, fsync-fail; "
      "keys: site=, prob=, after=, times=, ms=, bytes=; presets: sever, "
      "stall, partial, heartbeat, disk-full, fsync-fail");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

/// Curated presets the CLI and the CI soak job reference by name.  A preset
/// is recognized only as a bare rule name with no keys; "sever:prob=0.1"
/// always means the raw rule.
std::vector<FaultRule> presetRules(const std::string& name) {
  auto rule = [](FaultClass cls, double prob) {
    FaultRule r;
    r.cls = cls;
    r.prob = prob;
    return r;
  };
  std::vector<FaultRule> out;
  if (name == "sever") {
    // Cut connections on both directions, but only once a little traffic
    // has flowed — severing the very first HELLO bytes every time would
    // starve the handshake instead of exercising mid-campaign recovery.
    FaultRule r = rule(FaultClass::Sever, 0.02);
    r.afterBytes = 1024;
    out.push_back(r);
  } else if (name == "stall") {
    FaultRule r = rule(FaultClass::Stall, 0.05);
    r.delay = std::chrono::milliseconds(40);
    out.push_back(r);
  } else if (name == "partial") {
    FaultRule r = rule(FaultClass::ShortRead, 0.25);
    r.bytes = 3;  // frames arrive in crumbs; parsers must hold state
    out.push_back(r);
  } else if (name == "heartbeat") {
    FaultRule d = rule(FaultClass::HeartbeatDup, 0.5);
    FaultRule l = rule(FaultClass::HeartbeatDelay, 0.5);
    l.delay = std::chrono::milliseconds(120);
    out.push_back(d);
    out.push_back(l);
  } else if (name == "disk-full") {
    FaultRule r = rule(FaultClass::DiskFull, 1.0);
    r.afterBytes = 4096;  // let the campaign make progress, then ENOSPC
    r.times = 1;
    r.site = "farm.journal";
    out.push_back(r);
  } else if (name == "fsync-fail") {
    FaultRule r = rule(FaultClass::FsyncFail, 1.0);
    r.times = 1;
    r.site = "farm.journal";
    out.push_back(r);
  }
  return out;
}

}  // namespace

std::vector<FaultRule> parsePlan(const std::string& spec) {
  if (spec.empty()) badPlan("empty spec");
  std::vector<FaultRule> rules;
  for (const std::string& part : split(spec, '+')) {
    if (part.empty()) badPlan("empty rule in '" + spec + "'");
    const std::size_t colon = part.find(':');
    const std::string name = part.substr(0, colon);
    if (colon == std::string::npos) {
      std::vector<FaultRule> preset = presetRules(name);
      if (!preset.empty()) {
        rules.insert(rules.end(), preset.begin(), preset.end());
        continue;
      }
    }
    FaultRule r;
    if (!parseClass(name, r.cls)) badPlan("unknown rule '" + name + "'");
    // Class-appropriate defaults before key overrides.
    if (r.cls == FaultClass::DiskFull || r.cls == FaultClass::FsyncFail) {
      r.prob = 1.0;
      r.times = 1;
    }
    if (colon != std::string::npos) {
      for (const std::string& kv : split(part.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          badPlan("bad key=value '" + kv + "' in rule '" + part + "'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        try {
          if (key == "site") {
            r.site = val;
          } else if (key == "prob") {
            r.prob = std::stod(val);
            if (r.prob < 0.0 || r.prob > 1.0) throw std::out_of_range("prob");
          } else if (key == "after") {
            r.afterBytes = std::stoull(val);
          } else if (key == "times") {
            r.times = std::stoull(val);
          } else if (key == "ms") {
            r.delay = std::chrono::milliseconds(std::stoll(val));
          } else if (key == "bytes") {
            r.bytes = std::stoull(val);
            if (r.bytes == 0) throw std::out_of_range("bytes");
          } else {
            badPlan("unknown key '" + key + "' in rule '" + part + "'");
          }
        } catch (const std::runtime_error&) {
          throw;  // badPlan already formatted it
        } catch (const std::exception&) {
          badPlan("bad value '" + val + "' for key '" + key + "' in rule '" +
                  part + "'");
        }
      }
    }
    rules.push_back(r);
  }
  return rules;
}

std::string plansHelp() {
  return
      "  sever       cut connections at byte boundaries (after some traffic)\n"
      "  stall       delay sends/recvs by tens of milliseconds\n"
      "  partial     deliver frames in 3-byte crumbs (short reads)\n"
      "  heartbeat   duplicate and delay idle worker heartbeats\n"
      "  disk-full   journal write fails with ENOSPC after 4 KiB\n"
      "  fsync-fail  journal fsync fails with EIO\n";
}

FaultPlan::FaultPlan(std::vector<FaultRule> rules, std::uint64_t seed)
    : rules_(std::move(rules)),
      seed_(seed),
      triggersPerRule_(rules_.size(), 0) {}

core::FaultDecision FaultPlan::onOp(core::FaultOp op, const char* site,
                                    std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  SiteState& st = sites_[site];
  const std::uint64_t opIndex = st.ops++;
  const std::uint64_t seenBytes = st.bytes;
  st.bytes += bytes;
  ++stats_.opsObserved;

  const std::uint64_t siteHash = core::backoff_detail::mix(
      std::hash<std::string_view>{}(std::string_view(site)));
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (!classMatchesOp(r.cls, op)) continue;
    if (!r.site.empty() &&
        std::string_view(site).find(r.site) == std::string_view::npos) {
      continue;
    }
    if (seenBytes < r.afterBytes) continue;
    if (r.times != 0 && triggersPerRule_[i] >= r.times) continue;
    // The deterministic draw: a pure mix of (seed, site, rule, op counter).
    // Thread interleaving changes which thread asks, never the answer a
    // given (site, opIndex) receives.
    const std::uint64_t draw = core::backoff_detail::mix(
        (seed_ ^ siteHash ^ (0x9e3779b97f4a7c15ull * (i + 1))) + opIndex);
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u >= r.prob) continue;

    ++triggersPerRule_[i];
    ++stats_.triggers;
    ++stats_.triggersByClass[to_string(r.cls)];
    stats_.trace.push_back(std::string(site) + "#" +
                           std::to_string(opIndex) + ":" + to_string(r.cls));

    core::FaultDecision d;
    using Action = core::FaultDecision::Action;
    switch (r.cls) {
      case FaultClass::Sever:
        d.action = Action::Sever;
        // Let a deterministic fraction of the requested bytes through so
        // the cut lands mid-frame, not only on frame boundaries.
        d.count = bytes > 1 ? (draw % bytes) : 0;
        break;
      case FaultClass::Stall:
        d.action = Action::Stall;
        d.delay = r.delay;
        break;
      case FaultClass::ShortRead:
        d.action = Action::Short;
        d.count = std::max<std::size_t>(r.bytes, 1);
        break;
      case FaultClass::HeartbeatDup:
        d.action = Action::Duplicate;
        d.count = 1;
        break;
      case FaultClass::HeartbeatDelay:
        d.action = Action::Stall;
        d.delay = r.delay;
        break;
      case FaultClass::DiskShort:
        d.action = Action::Short;
        d.count = std::min(std::max<std::size_t>(r.bytes, 1),
                           bytes > 0 ? bytes - 1 : 0);
        break;
      case FaultClass::DiskFull:
        d.action = Action::Fail;
        d.err = ENOSPC;
        break;
      case FaultClass::FsyncFail:
        d.action = Action::Fail;
        d.err = EIO;
        break;
    }
    return d;
  }
  return {};
}

FaultPlanStats FaultPlan::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  FaultPlanStats s = stats_;
  std::sort(s.trace.begin(), s.trace.end());
  return s;
}

}  // namespace mtt::chaos
