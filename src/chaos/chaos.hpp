// mtt::chaos — deterministic, seed-driven fault injection for the
// fleet/farm campaign service.
//
// A FaultPlan is a set of rules ("sever network sends", "fail disk writes
// with ENOSPC after 4 KiB", ...) compiled from a small spec grammar and
// installed process-wide through the core::FaultInjector seam.  Every
// instrumented I/O site (fleet sends/recvs, worker heartbeats, journal
// appends, atomic file writes) consults the plan, and the plan answers with
// a decision that is a PURE function of (plan seed, site name, per-site
// operation counter) — never of wall-clock time or thread interleaving.
// Two campaigns under the same plan and seed therefore see the same fault
// sequence at every site, which is what makes a chaos failure replayable.
//
// Plan spec grammar (parsePlan):
//
//   plan   := rule ("+" rule)*
//   rule   := name [":" kv ("," kv)*]
//   kv     := key "=" value
//
// Rule names (FaultClass) and their tunables:
//
//   sever        cut a connection at a byte boundary     [prob, after, times]
//   stall        delay a send/recv before it proceeds    [prob, ms, times]
//   short-read   truncate a recv (partial frames)        [prob, bytes, times]
//   hb-dup       duplicate an idle heartbeat             [prob, times]
//   hb-delay     delay an idle heartbeat                 [prob, ms, times]
//   disk-short   short write to the journal/atomic file  [prob, after, bytes, times]
//   disk-full    fail a disk write with ENOSPC           [prob, after, times]
//   fsync-fail   fail an fsync with EIO                  [prob, after, times]
//
// Common keys: site=<substring> restricts a rule to matching site tags
// (e.g. site=fleet.worker); prob=<0..1> is the per-operation trigger
// probability; after=<bytes> arms the rule only once the site has seen that
// many cumulative bytes; times=<n> caps total triggers; ms=<n> sets the
// delay; bytes=<n> the short-I/O size.
//
// Named presets (spelled like a rule with no keys, expanded by parsePlan):
// "sever", "stall", "partial", "heartbeat", "disk-full", "fsync-fail" —
// curated rule sets the CLI and CI soak job use.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.hpp"

namespace mtt::chaos {

enum class FaultClass : std::uint8_t {
  Sever,
  Stall,
  ShortRead,
  HeartbeatDup,
  HeartbeatDelay,
  DiskShort,
  DiskFull,
  FsyncFail,
};

const char* to_string(FaultClass c);

/// One compiled fault rule.
struct FaultRule {
  FaultClass cls = FaultClass::Sever;
  /// Substring filter on the site tag; empty = every site the class's
  /// operation reaches.
  std::string site;
  /// Per-operation trigger probability in [0, 1].
  double prob = 0.05;
  /// Arm only after this many cumulative bytes at the site.
  std::uint64_t afterBytes = 0;
  /// Total trigger budget across the whole run (0 = unlimited).
  std::size_t times = 0;
  /// Stall/delay duration.
  std::chrono::milliseconds delay{25};
  /// Short-I/O size (bytes let through before the fault).
  std::size_t bytes = 1;
};

/// Parses a plan spec (grammar above; presets expanded).  Throws
/// std::runtime_error naming the defect and the grammar on malformed input.
std::vector<FaultRule> parsePlan(const std::string& spec);

/// One line per preset, for --help output.
std::string plansHelp();

/// Injection counters, per fault class, plus the deterministic trigger
/// trace (one "site#opIndex:class" string per injected fault, sorted —
/// per-site sequences are reproducible, cross-site interleaving is not).
struct FaultPlanStats {
  std::map<std::string, std::uint64_t> triggersByClass;
  std::uint64_t opsObserved = 0;
  std::uint64_t triggers = 0;
  std::vector<std::string> trace;
};

/// The injector: thread-safe, deterministic per (seed, site, op counter).
/// Install with core::FaultScope for the duration of a campaign.
class FaultPlan final : public core::FaultInjector {
 public:
  FaultPlan(std::vector<FaultRule> rules, std::uint64_t seed);

  core::FaultDecision onOp(core::FaultOp op, const char* site,
                           std::size_t bytes) override;

  /// Snapshot of the counters (trace sorted for stable comparison).
  FaultPlanStats stats() const;

 private:
  struct SiteState {
    std::uint64_t ops = 0;    ///< operations seen at this site
    std::uint64_t bytes = 0;  ///< cumulative bytes seen at this site
  };

  const std::vector<FaultRule> rules_;
  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::vector<std::uint64_t> triggersPerRule_;
  FaultPlanStats stats_;
};

}  // namespace mtt::chaos
