#include "chaos/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/stats.hpp"
#include "farm/farm.hpp"
#include "farm/journal.hpp"
#include "farm/record_io.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/worker.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace mtt::chaos {

namespace fs = std::filesystem;

const char* to_string(ChaosVerdict v) {
  switch (v) {
    case ChaosVerdict::Recovered: return "recovered";
    case ChaosVerdict::DegradedResumable: return "degraded-resumable";
    case ChaosVerdict::Corruption: return "corruption";
    case ChaosVerdict::Hang: return "hang";
    case ChaosVerdict::Failed: return "failed";
  }
  return "?";
}

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The timing-free report text both sides of every comparison use.
std::string reportText(const experiment::ExperimentResult& r) {
  experiment::ReportOptions ro;
  ro.timing = false;
  return experiment::findRateReport("chaos", {r}, ro);
}

/// Canonical journal content: records sorted by run index, re-encoded.
/// A completed fleet campaign writes this byte sequence directly (the
/// reorder buffer delivers in index order); an aborted-then-resumed journal
/// appends the resumed tail after the pre-abort records, so the file is a
/// permutation of the baseline — canonicalization makes "same records,
/// bit for bit" comparable in both cases.
std::string canonicalJournal(const std::string& path) {
  farm::JournalData jd = farm::loadJournal(path);
  std::sort(jd.records.begin(), jd.records.end(),
            [](const experiment::RunObservation& a,
               const experiment::RunObservation& b) {
              return a.runIndex < b.runIndex;
            });
  std::string out;
  for (const experiment::RunObservation& obs : jd.records) {
    out += farm::encodePipeRecord(obs);
    out += '\n';
  }
  return out;
}

/// A wall-clock watchdog that flips the shared stop latch when the cap
/// expires.  Every loop in the coordinator, the workers, and the farm polls
/// that latch, so the campaign winds down promptly once it fires — but the
/// cap having fired at all already means the run failed the promptness arm.
class Watchdog {
 public:
  Watchdog(std::chrono::milliseconds cap, std::atomic<bool>& stop)
      : cap_(cap), stop_(stop), thread_([this] { run(); }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  bool fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    if (cv_.wait_for(lk, cap_, [this] { return done_; })) return;
    fired_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
  }

  const std::chrono::milliseconds cap_;
  std::atomic<bool>& stop_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace

ChaosReport runChaosCampaign(const experiment::ExperimentSpec& spec,
                             const ChaosOptions& options) {
  // Configuration errors throw before any campaign starts.
  std::vector<FaultRule> rules = parsePlan(options.plan);
  Stopwatch wall;

#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  fs::path dir = options.workDir.empty()
                     ? fs::temp_directory_path() /
                           ("mtt-chaos-" + std::to_string(pid))
                     : fs::path(options.workDir);
  fs::create_directories(dir);
  const std::string baselineJournal = (dir / "baseline.journal").string();
  const std::string chaosJournal = (dir / "chaos.journal").string();
  const std::string sockPath = (dir / "chaos.sock").string();
  fs::remove(baselineJournal);
  fs::remove(chaosJournal);
  fs::remove(sockPath);

  ChaosReport report;
  report.runs = spec.runs;

  // --- 1. fault-free serial baseline (no injector installed) -------------
  farm::FarmOptions serial;
  serial.jobs = 1;
  serial.scrubTiming = true;
  serial.journalPath = baselineJournal;
  farm::ExperimentCampaign baseline = farm::runExperimentFarm(spec, serial);
  const std::string baselineReport = reportText(baseline.result);
  const std::string baselineCanon = canonicalJournal(baselineJournal);

  // --- 2. the chaos run: fleet + workers under the installed plan --------
  std::atomic<bool> stop{false};
  fleet::FleetOptions fl;
  fl.listen = "unix:" + sockPath;
  fl.leaseSize = options.leaseSize;
  fl.heartbeatInterval = options.heartbeat;
  fl.leaseTimeout = options.leaseTimeout;
  fl.noProgressTimeout = options.noProgressTimeout;
  // Injected transport faults are not program crashes: a severed run is
  // always safe to re-execute, so the per-index give-up budget (meant for
  // poison runs that kill every worker they touch) must not convert chaos
  // into synthesized "crashed" records.  Termination is the watchdog's job.
  fl.indexGiveUp = 64;
  fl.farm.scrubTiming = true;
  fl.farm.journalPath = chaosJournal;
  fl.farm.stopFlag = &stop;

  FaultPlan plan(std::move(rules), options.seed);
  farm::ExperimentCampaign chaosRun;
  std::vector<fleet::WorkerStats> workerStats(options.workers);
  bool watchdogFired = false;
  {
    core::FaultScope scope(&plan);
    Watchdog watchdog(options.wallCap, stop);
    std::vector<std::thread> workers;
    workers.reserve(options.workers);
    for (std::size_t i = 0; i < options.workers; ++i) {
      workers.emplace_back([&, i] {
        fleet::WorkerOptions wo;
        wo.connect = "unix:" + sockPath;
        wo.connectTimeout = std::chrono::milliseconds(5000);
        wo.heartbeatInterval = options.heartbeat;
        wo.reconnect = true;
        wo.reconnectAttempts = 4;
        wo.stopFlag = &stop;
        try {
          workerStats[i] = fleet::runWorker(wo);
        } catch (const std::exception& e) {
          workerStats[i].exitReason = std::string("worker died: ") + e.what();
        }
      });
    }
    try {
      chaosRun = fleet::runExperimentFleet(spec, fl);
    } catch (const std::exception& e) {
      // A fault can kill the campaign before it starts (e.g. an injected
      // fsync failure while the journal header is written).  That is a
      // degraded exit, not a driver crash: the exception becomes the
      // diagnostic and the workers must still be joined.
      chaosRun.campaign.abortDiagnostic =
          std::string("campaign failed: ") + e.what() +
          "; the campaign journal is resumable";
    }
    // The campaign is over; release any worker still in an idle/reconnect
    // loop (QUIT may have been lost to an injected sever).
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    watchdogFired = watchdog.fired();
  }
  report.faults = plan.stats();
  report.delivered = chaosRun.campaign.records.size();
  for (const fleet::WorkerStats& ws : workerStats) {
    report.workerReconnects += ws.reconnects;
  }

  // --- 3. the verdict ----------------------------------------------------
  if (watchdogFired) {
    report.verdict = ChaosVerdict::Hang;
    report.diagnostic =
        "campaign did not terminate within the " +
        std::to_string(options.wallCap.count()) +
        " ms wall cap (delivered " + std::to_string(report.delivered) +
        " of " + std::to_string(report.runs) + " records)";
  } else if (report.delivered == spec.runs &&
             chaosRun.campaign.abortDiagnostic.empty()) {
    // Completed under faults: the recovery machinery absorbed everything.
    // The claim is bitwise — the journal FILE matches, not just its records.
    const std::string chaosReport = reportText(chaosRun.result);
    if (chaosReport == baselineReport &&
        readFile(chaosJournal) == readFile(baselineJournal)) {
      report.verdict = ChaosVerdict::Recovered;
    } else {
      report.verdict = ChaosVerdict::Corruption;
      report.diagnostic =
          chaosReport == baselineReport
              ? "campaign completed but its journal diverges from the "
                "fault-free --jobs 1 journal"
              : "campaign completed but its report diverges from the "
                "fault-free --jobs 1 report";
    }
  } else if (chaosRun.campaign.abortDiagnostic.empty()) {
    report.verdict = ChaosVerdict::Failed;
    report.diagnostic = "campaign stopped early (" +
                        std::to_string(report.delivered) + " of " +
                        std::to_string(report.runs) +
                        " records) without naming its fault";
  } else {
    // Degraded exit: the diagnostic names the fault; the journal must now
    // resume fault-free (no injector installed) to the exact baseline.
    report.diagnostic = chaosRun.campaign.abortDiagnostic;
    try {
      farm::FarmOptions resume;
      resume.jobs = 1;
      resume.scrubTiming = true;
      resume.journalPath = chaosJournal;
      resume.resume = true;
      farm::ExperimentCampaign resumed = farm::runExperimentFarm(spec, resume);
      const bool match = reportText(resumed.result) == baselineReport &&
                         canonicalJournal(chaosJournal) == baselineCanon;
      report.resumedToBaseline = match;
      report.verdict =
          match ? ChaosVerdict::DegradedResumable : ChaosVerdict::Corruption;
      if (!match) {
        report.diagnostic +=
            "; resumed campaign diverges from the fault-free baseline";
      }
    } catch (const std::exception& e) {
      report.verdict = ChaosVerdict::Failed;
      report.diagnostic += std::string("; journal resume failed: ") + e.what();
    }
  }

  report.wallSeconds = wall.elapsedSeconds();
  if (!options.keepArtifacts && options.workDir.empty()) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  return report;
}

std::string renderChaosReport(const ChaosReport& report) {
  std::ostringstream out;
  out << "chaos verdict: " << to_string(report.verdict) << "\n";
  out << "  runs: " << report.delivered << "/" << report.runs
      << "  reconnects: " << report.workerReconnects << "  faults injected: "
      << report.faults.triggers << " (of " << report.faults.opsObserved
      << " ops)\n";
  for (const auto& [cls, n] : report.faults.triggersByClass) {
    out << "    " << cls << ": " << n << "\n";
  }
  if (!report.diagnostic.empty()) {
    out << "  diagnostic: " << report.diagnostic << "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "  wall: %.2fs\n", report.wallSeconds);
  out << buf;
  return out.str();
}

}  // namespace mtt::chaos
