// Minimal single-run harness: builds a runtime for a mode, registers
// listeners, runs one body.  The full prepared-experiment machinery lives in
// mtt::experiment; this helper keeps tests and examples terse.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rt/controlled_runtime.hpp"
#include "rt/flight_recorder.hpp"
#include "rt/native_runtime.hpp"
#include "rt/policy.hpp"

namespace mtt::rt {

/// Creates a fresh runtime of the given mode.  `policy` is used only in
/// controlled mode (RandomPolicy by default).
std::unique_ptr<Runtime> makeRuntime(
    RuntimeMode mode, std::unique_ptr<SchedulePolicy> policy = nullptr);

/// Runs `body` once on a fresh runtime with the given listeners registered.
RunResult runOnce(RuntimeMode mode, std::function<void(Runtime&)> body,
                  const RunOptions& opts = {},
                  const std::vector<Listener*>& listeners = {},
                  std::unique_ptr<SchedulePolicy> policy = nullptr);

}  // namespace mtt::rt
