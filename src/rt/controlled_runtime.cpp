#include "rt/controlled_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/stats.hpp"
#include "rt/flight_recorder.hpp"

namespace mtt::rt {

namespace {
// The managed thread currently executing on this OS thread (one runtime's
// managed threads never share an OS thread with another runtime's).
thread_local void* tl_current = nullptr;

// --- vector-clock helpers (weak-memory model) ------------------------------
// Clocks are indexed by ThreadId (slot 0, kNoThread, stays unused); all
// access happens under the scheduler lock.

std::uint64_t vcAt(const std::vector<std::uint64_t>& vc, ThreadId t) {
  return t < vc.size() ? vc[t] : 0;
}

void vcJoin(std::vector<std::uint64_t>& dst,
            const std::vector<std::uint64_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (dst[i] < src[i]) dst[i] = src[i];
  }
}

std::uint64_t vcTick(std::vector<std::uint64_t>& vc, ThreadId t) {
  if (vc.size() <= t) vc.resize(t + 1, 0);
  return ++vc[t];
}

bool isAcquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

bool isRelease(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

/// Per-location store-history cap: the oldest record is dropped past this.
/// Sound — dropping history only shrinks observable sets toward the SC
/// (coherence-newest) value, never adds behaviours.
constexpr std::size_t kMaxStoreHistory = 64;

}  // namespace

ControlledRuntime::ControlledRuntime(std::unique_ptr<SchedulePolicy> policy)
    : policy_(policy ? std::move(policy)
                     : std::make_unique<RandomPolicy>()) {}

ControlledRuntime::~ControlledRuntime() {
  // run() joins all OS threads before returning; nothing outstanding here.
  assert(osThreads_.empty());
}

void ControlledRuntime::setPolicy(std::unique_ptr<SchedulePolicy> p) {
  if (p) policy_ = std::move(p);
}

ControlledRuntime::Tcb& ControlledRuntime::tcbOf(ThreadId id) const {
  return *tcbs_[id - 1];
}

ControlledRuntime::Tcb* ControlledRuntime::currentTcb() const {
  return static_cast<Tcb*>(tl_current);
}

ThreadId ControlledRuntime::currentThread() const {
  Tcb* t = currentTcb();
  return t ? t->id : kNoThread;
}

std::string ControlledRuntime::threadName(ThreadId t) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (t == kNoThread || t > tcbs_.size()) return "T?";
  return tcbs_[t - 1]->name;
}

bool ControlledRuntime::enabledLocked(const Tcb& t) const {
  if (t.st != St::Parked) return false;
  const PendingOp& op = t.pending;
  switch (op.code) {
    case OpCode::Lock:
      return op.m->owner == kNoThread ||
             (op.m->recursive && op.m->owner == t.id && !op.condResume);
    case OpCode::SemAcquire:
      return op.sem->permits > 0;
    case OpCode::RwRead:
      return op.rw->writer == kNoThread;
    case OpCode::RwWrite:
      return op.rw->writer == kNoThread && op.rw->readers == 0;
    case OpCode::Join:
      return tcbOf(op.target).st == St::Finished;
    case OpCode::Sleep:
      return steps_ >= op.wakeStep;
    default:
      return true;
  }
}

PendingOpInfo ControlledRuntime::opInfoOf(const Tcb& t) const {
  PendingOpInfo info;
  info.thread = t.id;
  const PendingOp& op = t.pending;
  switch (op.code) {
    case OpCode::Start: info.kind = OpKind::ThreadStart; break;
    case OpCode::Spawn: info.kind = OpKind::Spawn; break;
    case OpCode::Lock:
      info.kind = OpKind::MutexLock;
      info.object = op.m->id;
      break;
    case OpCode::TryLock:
      info.kind = OpKind::MutexTryLock;
      info.object = op.m->id;
      break;
    case OpCode::Unlock:
      info.kind = OpKind::MutexUnlock;
      info.object = op.m->id;
      break;
    case OpCode::CondWait:
      info.kind = OpKind::CondWait;
      info.object = op.c->id;
      info.object2 = op.m->id;
      break;
    case OpCode::CondSignal:
      info.kind = OpKind::CondSignal;
      info.object = op.c->id;
      break;
    case OpCode::CondBroadcast:
      info.kind = OpKind::CondBroadcast;
      info.object = op.c->id;
      break;
    case OpCode::SemAcquire:
      info.kind = OpKind::SemAcquire;
      info.object = op.sem->id;
      break;
    case OpCode::SemTryAcquire:
      info.kind = OpKind::SemTryAcquire;
      info.object = op.sem->id;
      break;
    case OpCode::SemRelease:
      info.kind = OpKind::SemRelease;
      info.object = op.sem->id;
      break;
    case OpCode::BarrierArrive:
      info.kind = OpKind::BarrierArrive;
      info.object = op.b->id;
      break;
    case OpCode::RwRead:
      info.kind = OpKind::RwRead;
      info.object = op.rw->id;
      break;
    case OpCode::RwWrite:
      info.kind = OpKind::RwWrite;
      info.object = op.rw->id;
      break;
    case OpCode::RwUnlockR:
      info.kind = OpKind::RwUnlockRead;
      info.object = op.rw->id;
      break;
    case OpCode::RwUnlockW:
      info.kind = OpKind::RwUnlockWrite;
      info.object = op.rw->id;
      break;
    case OpCode::Join:
      info.kind = OpKind::Join;
      info.object = op.target;
      break;
    case OpCode::VarAccess:
      info.kind =
          op.access == Access::Write ? OpKind::VarWrite : OpKind::VarRead;
      info.object = op.var;
      break;
    case OpCode::EvPoint:
      info.kind = OpKind::Task;
      info.object = op.var;  // the loop/queue object id
      break;
    case OpCode::AtomicLoad:
      info.kind = OpKind::AtomicLoad;
      info.object = op.at->id;
      break;
    case OpCode::AtomicStore:
      info.kind = OpKind::AtomicStore;
      info.object = op.at->id;
      break;
    case OpCode::AtomicRmw:
      info.kind = OpKind::AtomicRMW;
      info.object = op.at->id;
      break;
    case OpCode::Fence: info.kind = OpKind::Fence; break;
    case OpCode::Yield: info.kind = OpKind::Yield; break;
    case OpCode::Sleep: info.kind = OpKind::Sleep; break;
    case OpCode::Finish: info.kind = OpKind::Finish; break;
  }
  return info;
}

void ControlledRuntime::scheduleNextLocked() {
  for (;;) {
    std::vector<ThreadId> enabled;
    enabled.reserve(tcbs_.size());
    bool anySleeper = false;
    std::uint64_t minWake = ~std::uint64_t{0};
    bool allFinished = true;
    for (const auto& t : tcbs_) {
      if (t->st != St::Finished) allFinished = false;
      if (t->st != St::Parked) continue;
      if (t->pending.code == OpCode::Sleep && steps_ < t->pending.wakeStep) {
        anySleeper = true;
        minWake = std::min(minWake, t->pending.wakeStep);
        continue;
      }
      if (enabledLocked(*t)) {
        enabled.push_back(t->id);
      } else if (t->pending.code == OpCode::Lock ||
                 t->pending.code == OpCode::SemAcquire ||
                 t->pending.code == OpCode::RwRead ||
                 t->pending.code == OpCode::RwWrite) {
        // Remember contention: the eventual MutexLock/SemAcquire event
        // carries arg=1 so coverage models can count contended acquires.
        t->pending.everBlocked = true;
      }
    }
    if (!enabled.empty()) {
      if (steps_ >= maxSteps_) {
        beginAbortLocked(RunStatus::StepLimit);
        return;
      }
      bool yielding = false;
      if (lastRunning_ != kNoThread) {
        const Tcb& prev = tcbOf(lastRunning_);
        yielding = prev.st == St::Parked &&
                   (prev.pending.code == OpCode::Yield ||
                    prev.pending.code == OpCode::Sleep);
      }
      std::vector<PendingOpInfo> ops;
      ops.reserve(enabled.size());
      for (ThreadId t : enabled) ops.push_back(opInfoOf(tcbOf(t)));
      PickContext ctx;
      ctx.enabled = std::span<const ThreadId>(enabled);
      ctx.ops = std::span<const PendingOpInfo>(ops);
      ctx.current = lastRunning_;
      ctx.currentYielding = yielding;
      ctx.step = steps_;
      ThreadId choice = policy_->pick(ctx);
      if (std::find(enabled.begin(), enabled.end(), choice) == enabled.end()) {
        choice = enabled.front();  // defensive: policies must pick enabled
      }
      ++steps_;
      // Mirror the committed (post-correction) decision into the flight
      // recorder: this is exactly what a RecordingPolicy would record, so
      // a postmortem dump replays like a normal recording.
      fr::recordDecision(this, choice);
      Tcb& c = tcbOf(choice);
      decisionNoise_.push_back(c.pending.injected);
      c.go = true;
      c.cv.notify_one();
      return;
    }
    if (anySleeper) {
      // Every runnable thread is asleep: advance virtual time.  This is how
      // sleep-based "synchronization" stays runnable yet unreliable.
      steps_ = minWake;
      continue;
    }
    if (allFinished) {
      doneCv_.notify_all();
      return;
    }
    beginAbortLocked(RunStatus::Deadlock);
    return;
  }
}

bool ControlledRuntime::waitForTurnLocked(std::unique_lock<std::mutex>& lk,
                                          Tcb& self) {
  // During an abort, ignore scheduling and wait for this thread's unwind
  // turn instead (see advanceUnwindLocked).
  self.cv.wait(lk, [&] { return abort_ ? unwindTurn_ == self.id : self.go; });
  if (abort_) {
    self.go = false;
    return false;
  }
  self.go = false;
  self.st = St::Running;
  lastRunning_ = self.id;
  return true;
}

void ControlledRuntime::releaseMutexFullyLocked(MutexState& m) {
  m.owner = kNoThread;
  m.depth = 0;
  fr::lockReleased(this, m.id);
}

std::string ControlledRuntime::describeWait(const Tcb& t) const {
  auto objName = [&](ObjectId id) { return objectInfo(id).name; };
  switch (t.st) {
    case St::WaitCond:
      return "condvar " + objName(t.pending.c ? t.pending.c->id : kNoObject);
    case St::WaitBarrier:
      return "barrier " + objName(t.pending.b ? t.pending.b->id : kNoObject);
    case St::Parked:
      switch (t.pending.code) {
        case OpCode::Lock: {
          std::string s = "mutex " + objName(t.pending.m->id);
          if (t.pending.m->owner != kNoThread) {
            s += " (held by " + tcbOf(t.pending.m->owner).name + ")";
          }
          if (t.pending.condResume) s += " [reacquire after wait]";
          return s;
        }
        case OpCode::SemAcquire:
          return "semaphore " + objName(t.pending.sem->id);
        case OpCode::RwRead:
          return "rwlock " + objName(t.pending.rw->id) + " (read)";
        case OpCode::RwWrite: {
          std::string out = "rwlock " + objName(t.pending.rw->id) + " (write";
          if (t.pending.rw->readers > 0) {
            out += ", " + std::to_string(t.pending.rw->readers) +
                   " reader(s) active";
          }
          return out + ")";
        }
        case OpCode::Join:
          return "join " + tcbOf(t.pending.target).name;
        case OpCode::Sleep:
          return "sleeping";
        default:
          return "runnable";
      }
    default:
      return "?";
  }
}

void ControlledRuntime::collectBlockedLocked() {
  blocked_.clear();
  for (const auto& t : tcbs_) {
    if (t->st == St::Finished) continue;
    BlockedThreadInfo info;
    info.thread = t->id;
    info.threadName = t->name;
    info.waitingFor = describeWait(*t);
    if (t->st == St::Parked && t->pending.code == OpCode::Lock) {
      info.object = t->pending.m->id;
    } else if (t->st == St::WaitCond && t->pending.c) {
      info.object = t->pending.c->id;
    }
    blocked_.push_back(std::move(info));
  }
}

void ControlledRuntime::advanceUnwindLocked() {
  unwindTurn_ = kNoThread;
  for (const auto& t : tcbs_) {
    if (t->st != St::Finished) unwindTurn_ = t->id;  // ids ascend: keeps max
  }
  if (unwindTurn_ != kNoThread) tcbOf(unwindTurn_).cv.notify_all();
}

void ControlledRuntime::beginAbortLocked(RunStatus status) {
  if (abort_) return;
  abort_ = true;
  status_ = status;
  if (status == RunStatus::Deadlock) collectBlockedLocked();
  advanceUnwindLocked();
  for (const auto& t : tcbs_) t->cv.notify_all();
  doneCv_.notify_all();
}

void ControlledRuntime::failLocked(std::unique_lock<std::mutex>& lk,
                                   std::string msg) {
  if (!abort_) {
    failureMessage_ = std::move(msg);
    beginAbortLocked(RunStatus::AssertFailed);
  }
  // Wait for our unwind turn: every thread we spawned (higher id) must
  // finish unwinding before our stack objects die.
  Tcb* self = currentTcb();
  if (self != nullptr && self->st != St::Finished) {
    self->cv.wait(lk, [&] { return unwindTurn_ == self->id; });
  }
  throw RunAborted{};
}

void ControlledRuntime::fail(std::string msg) {
  std::unique_lock<std::mutex> lk(mu_);
  failLocked(lk, std::move(msg));
}

ControlledRuntime::AtomicLoc& ControlledRuntime::locOf(AtomicState& a) {
  auto [it, inserted] = atomics_.try_emplace(a.id);
  AtomicLoc& loc = it->second;
  if (inserted) {
    // Seed with the initial-value pseudo-store (seq 0, no storer): it
    // happens-before everything, so an untouched cell always loads init.
    AtomicStoreRec init;
    init.value = a.init;
    init.storer = kNoThread;
    loc.stores.push_back(std::move(init));
    a.value = a.init;
  }
  return loc;
}

std::memory_order ControlledRuntime::effectiveOrder(std::uint8_t mo) const {
  if (forceSeqCst_) return std::memory_order_seq_cst;
  auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_consume ? std::memory_order_acquire : m;
}

bool ControlledRuntime::hbVisible(const Tcb& t,
                                  const AtomicStoreRec& rec) const {
  return rec.storer == kNoThread || rec.stamp <= vcAt(t.vc, rec.storer);
}

std::uint64_t ControlledRuntime::performAtomicLoadLocked(Tcb& self,
                                                         PendingOp& op) {
  AtomicState& a = *op.at;
  AtomicLoc& loc = locOf(a);
  const std::memory_order mo = effectiveOrder(op.memOrder);
  if (mo == std::memory_order_seq_cst) vcJoin(self.vc, scClock_);

  // The load may observe any store at or past its floor: hbFloor is the
  // newest store that happens-before the load (coherence forbids reading
  // past it backwards), readFloor the per-(thread, location) monotonic-read
  // floor.
  std::uint64_t floor = 0;
  for (const AtomicStoreRec& rec : loc.stores) {
    if (hbVisible(self, rec) && rec.seq > floor) floor = rec.seq;
  }
  auto rf = self.readFloor.find(a.id);
  if (rf != self.readFloor.end() && rf->second > floor) floor = rf->second;

  // Candidate indices into loc.stores, newest first: cand[0] is the
  // coherence-newest store, i.e. the SC value.  Non-empty by construction
  // (the newest store's seq is the per-location maximum, hence >= floor).
  std::vector<std::size_t> cand;
  for (std::size_t i = loc.stores.size(); i-- > 0;) {
    if (loc.stores[i].seq < floor) break;  // seq ascends; rest are older
    cand.push_back(i);
  }

  std::uint32_t pick = 0;
  if (cand.size() > 1) {
    // A real choice point: ask the policy which store to observe and commit
    // the answer as a StorePick decision.  Singleton sets never reach the
    // policy, so SC-only programs record pure thread-pick schedules.
    std::vector<StoreOption> opts;
    opts.reserve(cand.size());
    for (std::size_t i : cand) {
      const AtomicStoreRec& rec = loc.stores[i];
      opts.push_back(StoreOption{rec.storer, rec.value, rec.stamp});
    }
    StorePickContext ctx;
    ctx.object = a.id;
    ctx.thread = self.id;
    ctx.options = std::span<const StoreOption>(opts);
    ctx.step = steps_;
    pick = policy_->pickStore(ctx);
    if (pick >= cand.size()) pick = 0;  // defensive, mirrors RecordingPolicy
    ++steps_;
    fr::recordStorePick(this, pick);
    // Store picks are never noise-injected; keep the provenance vector
    // parallel to the decision sequence.
    decisionNoise_.push_back(false);
  }

  const AtomicStoreRec& rec = loc.stores[cand[pick]];
  bool synced = false;
  if (rec.release && rec.storer != kNoThread) {
    if (isAcquire(mo)) {
      vcJoin(self.vc, rec.clock);
      synced = true;
    } else {
      // Relaxed load of a release store: the synchronization is deferred
      // until this thread's next acquire fence claims pendingAcq.
      vcJoin(self.pendingAcq, rec.clock);
    }
  }
  // An observation of a store that already happens-before the loader is a
  // synchronized observation regardless of the load's own order (e.g. a
  // relaxed payload load after an acquire-of-release publication) — the
  // memory-model race check keys off this bit.
  if (!synced && rec.storer != kNoThread &&
      rec.stamp <= vcAt(self.vc, rec.storer)) {
    synced = true;
  }
  std::uint64_t& floorSlot = self.readFloor[a.id];
  if (floorSlot < rec.seq) floorSlot = rec.seq;
  if (mo == std::memory_order_seq_cst) vcJoin(scClock_, self.vc);
  emit(EventKind::AtomicLoad, self.id, a.id, op.site,
       AtomicArg::pack(static_cast<std::memory_order>(op.memOrder), synced,
                       pick, rec.storer));
  return rec.value;
}

void ControlledRuntime::performAtomicStoreLocked(Tcb& self, PendingOp& op) {
  AtomicState& a = *op.at;
  AtomicLoc& loc = locOf(a);
  const std::memory_order mo = effectiveOrder(op.memOrder);
  if (mo == std::memory_order_seq_cst) vcJoin(self.vc, scClock_);
  AtomicStoreRec rec;
  rec.value = op.aval;
  rec.storer = self.id;
  rec.stamp = vcTick(self.vc, self.id);
  rec.seq = loc.nextSeq++;
  rec.release = isRelease(mo) || self.releaseFence;
  if (rec.release) rec.clock = self.vc;
  const bool release = rec.release;
  const std::uint64_t seq = rec.seq;
  loc.stores.push_back(std::move(rec));
  if (loc.stores.size() > kMaxStoreHistory) loc.stores.erase(loc.stores.begin());
  a.value = op.aval;
  std::uint64_t& floorSlot = self.readFloor[a.id];
  if (floorSlot < seq) floorSlot = seq;
  if (mo == std::memory_order_seq_cst) vcJoin(scClock_, self.vc);
  emit(EventKind::AtomicStore, self.id, a.id, op.site,
       AtomicArg::pack(static_cast<std::memory_order>(op.memOrder), release, 0,
                       self.id));
}

std::uint64_t ControlledRuntime::performAtomicRmwLocked(Tcb& self,
                                                        PendingOp& op) {
  AtomicState& a = *op.at;
  AtomicLoc& loc = locOf(a);
  const std::memory_order mo = effectiveOrder(op.memOrder);
  if (mo == std::memory_order_seq_cst) vcJoin(self.vc, scClock_);
  // Atomicity: an RMW always reads the coherence-newest store, so it is
  // never a StorePick choice point.  (Copy: the push_back below reallocates.)
  const AtomicStoreRec cur = loc.stores.back();
  const std::uint64_t old = cur.value;
  if (cur.release && cur.storer != kNoThread) {
    if (isAcquire(mo)) vcJoin(self.vc, cur.clock);
    else vcJoin(self.pendingAcq, cur.clock);
  }
  bool ok = true;
  std::uint64_t newVal = old;
  switch (op.rmwOp) {
    case RmwOp::Exchange: newVal = op.aval; break;
    case RmwOp::FetchAdd: newVal = old + op.aval; break;
    case RmwOp::CompareExchange:
      ok = old == op.aexp;
      if (ok) newVal = op.aval;
      break;
  }
  std::uint64_t newFloor = cur.seq;
  if (ok) {
    AtomicStoreRec rec;
    rec.value = newVal;
    rec.storer = self.id;
    rec.stamp = vcTick(self.vc, self.id);
    rec.seq = loc.nextSeq++;
    rec.release = isRelease(mo) || self.releaseFence;
    if (rec.release) rec.clock = self.vc;
    newFloor = rec.seq;
    loc.stores.push_back(std::move(rec));
    if (loc.stores.size() > kMaxStoreHistory) {
      loc.stores.erase(loc.stores.begin());
    }
    a.value = newVal;
  }
  std::uint64_t& floorSlot = self.readFloor[a.id];
  if (floorSlot < newFloor) floorSlot = newFloor;
  if (mo == std::memory_order_seq_cst) vcJoin(scClock_, self.vc);
  self.tryResult = ok;
  emit(EventKind::AtomicRMW, self.id, a.id, op.site,
       AtomicArg::pack(static_cast<std::memory_order>(op.memOrder), ok, 0,
                       cur.storer));
  return old;
}

void ControlledRuntime::performFenceLocked(Tcb& self, PendingOp& op) {
  const std::memory_order mo = effectiveOrder(op.memOrder);
  if (mo == std::memory_order_seq_cst) vcJoin(self.vc, scClock_);
  if (isAcquire(mo) && !self.pendingAcq.empty()) {
    // Claim the release clocks earlier relaxed loads observed.
    vcJoin(self.vc, self.pendingAcq);
    self.pendingAcq.clear();
  }
  if (isRelease(mo)) self.releaseFence = true;
  if (mo == std::memory_order_seq_cst) vcJoin(scClock_, self.vc);
  emit(EventKind::Fence, self.id, kNoObject, op.site,
       AtomicArg::pack(static_cast<std::memory_order>(op.memOrder), false, 0,
                       kNoThread));
}

bool ControlledRuntime::performOpLocked(std::unique_lock<std::mutex>& lk,
                                        Tcb& self) {
  PendingOp& op = self.pending;
  switch (op.code) {
    case OpCode::Start:
      emit(EventKind::ThreadStart, self.id, self.id, op.site);
      return true;

    case OpCode::Spawn: {
      ThreadId cid = static_cast<ThreadId>(tcbs_.size() + 1);
      auto child = std::make_unique<Tcb>();
      child->id = cid;
      child->name = self.spawnName.empty() ? "T" + std::to_string(cid)
                                           : std::move(self.spawnName);
      child->st = St::Parked;
      child->pending = PendingOp{};
      child->pending.code = OpCode::Start;
      child->body = std::move(self.spawnFn);
      // Spawn is a happens-before edge: the child starts with the parent's
      // clock and per-location coherence floors.
      child->vc = self.vc;
      child->readFloor = self.readFloor;
      Tcb* raw = child.get();
      tcbs_.push_back(std::move(child));
      osThreads_.emplace_back([this, raw] { trampoline(raw); });
      emit(EventKind::ThreadSpawn, self.id, cid, op.site);
      op.target = cid;  // result read by spawnThread
      return true;
    }

    case OpCode::Lock:
      if (op.m->owner == self.id && op.m->recursive) {
        ++op.m->depth;
      } else {
        op.m->owner = self.id;
        op.m->depth = op.condResume ? std::max<std::uint32_t>(op.arg, 1) : 1;
        fr::lockAcquired(this, op.m->id, self.id);
        vcJoin(self.vc, op.m->relClock);  // acquire: sync with releasers
      }
      emit(op.condResume ? EventKind::CondWaitEnd : EventKind::MutexLock,
           self.id, op.m->id, op.site,
           op.condResume ? op.m->id : (op.everBlocked ? 1 : 0));
      return true;

    case OpCode::TryLock:
      if (op.m->owner == kNoThread ||
          (op.m->recursive && op.m->owner == self.id)) {
        if (op.m->owner == self.id) {
          ++op.m->depth;
        } else {
          op.m->owner = self.id;
          op.m->depth = 1;
          fr::lockAcquired(this, op.m->id, self.id);
          vcJoin(self.vc, op.m->relClock);
        }
        self.tryResult = true;
        emit(EventKind::MutexTryLockOk, self.id, op.m->id, op.site);
      } else {
        self.tryResult = false;
        emit(EventKind::MutexTryLockFail, self.id, op.m->id, op.site);
      }
      return true;

    case OpCode::Unlock:
      if (op.m->owner != self.id) {
        // Program error.  Abort without throwing: unlock is reachable from
        // destructors (LockGuard).
        if (!abort_) {
          failureMessage_ = "unlock of mutex " + objectInfo(op.m->id).name +
                            " not owned by " + self.name;
          beginAbortLocked(RunStatus::AssertFailed);
        }
        return false;
      }
      emit(EventKind::MutexUnlock, self.id, op.m->id, op.site);
      if (--op.m->depth == 0) {
        vcJoin(op.m->relClock, self.vc);  // release: publish our clock
        op.m->owner = kNoThread;
        fr::lockReleased(this, op.m->id);
      }
      return true;

    case OpCode::CondWait: {
      if (op.m->owner != self.id) {
        failLocked(lk, "condition wait on " + objectInfo(op.c->id).name +
                           " without holding its mutex");
      }
      // arg carries the mutex id: happens-before analyses need the implicit
      // release/reacquire edges of the wait.
      emit(EventKind::CondWaitBegin, self.id, op.c->id, op.site, op.m->id);
      std::uint32_t savedDepth = op.m->depth;
      vcJoin(op.m->relClock, self.vc);  // wait releases the mutex
      releaseMutexFullyLocked(*op.m);
      CondState* c = op.c;
      // Re-arm the pending op as the post-signal reacquire; the signaler
      // flips our state to Parked and the policy schedules the reacquire
      // once the mutex is free.
      MutexState* m = op.m;
      Site st = op.site;
      self.pending = PendingOp{};
      self.pending.code = OpCode::Lock;
      self.pending.m = m;
      self.pending.c = c;  // kept for deadlock diagnostics
      self.pending.condResume = true;
      self.pending.arg = savedDepth;
      self.pending.site = st;
      self.st = St::WaitCond;
      c->waiters.push_back(self.id);
      scheduleNextLocked();
      if (!waitForTurnLocked(lk, self)) return false;
      // Scheduled again: the reacquire is enabled, perform it.
      m->owner = self.id;
      m->depth = savedDepth;
      fr::lockAcquired(this, m->id, self.id);
      vcJoin(self.vc, m->relClock);
      emit(EventKind::CondWaitEnd, self.id, c->id, st, m->id);
      return true;
    }

    case OpCode::CondSignal: {
      std::uint32_t woken = 0;
      if (!op.c->waiters.empty()) {
        ThreadId w = op.c->waiters.front();
        op.c->waiters.pop_front();
        tcbOf(w).st = St::Parked;  // now competes to reacquire its mutex
        woken = 1;
      }
      emit(EventKind::CondSignal, self.id, op.c->id, op.site, woken);
      return true;
    }

    case OpCode::CondBroadcast: {
      std::uint32_t woken = 0;
      while (!op.c->waiters.empty()) {
        ThreadId w = op.c->waiters.front();
        op.c->waiters.pop_front();
        tcbOf(w).st = St::Parked;
        ++woken;
      }
      emit(EventKind::CondBroadcast, self.id, op.c->id, op.site, woken);
      return true;
    }

    case OpCode::SemAcquire:
      --op.sem->permits;
      vcJoin(self.vc, op.sem->relClock);
      emit(EventKind::SemAcquire, self.id, op.sem->id, op.site,
           op.everBlocked ? 1 : 0);
      return true;

    case OpCode::RwRead:
      ++op.rw->readers;
      vcJoin(self.vc, op.rw->relClockW);  // readers sync with prior writers
      emit(EventKind::RwLockRead, self.id, op.rw->id, op.site,
           op.everBlocked ? 1 : 0);
      return true;

    case OpCode::RwWrite:
      op.rw->writer = self.id;
      vcJoin(self.vc, op.rw->relClockW);  // writers sync with everyone
      vcJoin(self.vc, op.rw->relClockR);
      emit(EventKind::RwLockWrite, self.id, op.rw->id, op.site,
           op.everBlocked ? 1 : 0);
      return true;

    case OpCode::RwUnlockR:
      if (op.rw->readers == 0) {
        if (!abort_) {
          failureMessage_ = "read-unlock of rwlock " +
                            objectInfo(op.rw->id).name + " with no readers";
          beginAbortLocked(RunStatus::AssertFailed);
        }
        return false;
      }
      emit(EventKind::RwUnlockRead, self.id, op.rw->id, op.site);
      vcJoin(op.rw->relClockR, self.vc);
      --op.rw->readers;
      return true;

    case OpCode::RwUnlockW:
      if (op.rw->writer != self.id) {
        if (!abort_) {
          failureMessage_ = "write-unlock of rwlock " +
                            objectInfo(op.rw->id).name + " not owned by " +
                            self.name;
          beginAbortLocked(RunStatus::AssertFailed);
        }
        return false;
      }
      emit(EventKind::RwUnlockWrite, self.id, op.rw->id, op.site);
      vcJoin(op.rw->relClockW, self.vc);
      op.rw->writer = kNoThread;
      return true;

    case OpCode::SemTryAcquire:
      if (op.sem->permits > 0) {
        --op.sem->permits;
        vcJoin(self.vc, op.sem->relClock);
        self.tryResult = true;
        emit(EventKind::SemAcquire, self.id, op.sem->id, op.site);
      } else {
        self.tryResult = false;
      }
      return true;

    case OpCode::SemRelease:
      op.sem->permits += op.arg;
      vcJoin(op.sem->relClock, self.vc);
      emit(EventKind::SemRelease, self.id, op.sem->id, op.site, op.arg);
      return true;

    case OpCode::BarrierArrive: {
      BarrierState* b = op.b;
      emit(EventKind::BarrierEnter, self.id, b->id, op.site,
           static_cast<std::uint32_t>(b->generation));
      vcJoin(b->clock, self.vc);  // arrival publishes to the generation
      ++b->arrived;
      Site st = op.site;
      if (b->arrived >= b->parties) {
        ++b->generation;
        b->arrived = 0;
        // Release every thread parked on this generation (including self).
        for (const auto& t : tcbs_) {
          if (t->st == St::WaitBarrier && t->pending.b == b) {
            t->st = St::Parked;
          }
        }
        self.st = St::Parked;
      } else {
        self.st = St::WaitBarrier;
      }
      scheduleNextLocked();
      if (!waitForTurnLocked(lk, self)) return false;
      vcJoin(self.vc, b->clock);  // exit syncs with every arriver
      emit(EventKind::BarrierExit, self.id, b->id, st,
           static_cast<std::uint32_t>(b->generation));
      return true;
    }

    case OpCode::Join:
      // Join is a happens-before edge from everything the target did.
      vcJoin(self.vc, tcbOf(op.target).vc);
      emit(EventKind::ThreadJoin, self.id, op.target, op.site);
      return true;

    case OpCode::VarAccess:
      emit(op.access == Access::Write ? EventKind::VarWrite
                                      : EventKind::VarRead,
           self.id, op.var, op.site);
      return true;

    case OpCode::EvPoint:
      emit(op.evKind, self.id, op.var, op.site, op.arg);
      return true;

    case OpCode::AtomicLoad:
      self.atomicResult = performAtomicLoadLocked(self, op);
      return true;

    case OpCode::AtomicStore:
      performAtomicStoreLocked(self, op);
      return true;

    case OpCode::AtomicRmw:
      self.atomicResult = performAtomicRmwLocked(self, op);
      return true;

    case OpCode::Fence:
      performFenceLocked(self, op);
      return true;

    case OpCode::Yield:
      emit(EventKind::Yield, self.id, kNoObject, op.site);
      return true;

    case OpCode::Sleep:
      emit(EventKind::Yield, self.id, kNoObject, op.site, op.arg);
      return true;

    case OpCode::Finish:
      // Handled by threadFinish.
      return true;
  }
  return true;
}

void ControlledRuntime::visibleOp(PendingOp op, bool mayThrow,
                                  bool applyNoise) {
  Tcb* selfp = currentTcb();
  if (selfp == nullptr) {
    throw std::logic_error(
        "mtt: runtime operation called outside a managed thread");
  }
  Tcb& self = *selfp;
  if (applyNoise && self.noise.kind != NoiseRequest::Kind::None) {
    NoiseRequest nr = self.noise;
    self.noise = NoiseRequest{};
    if (nr.kind == NoiseRequest::Kind::Yield) {
      for (std::uint32_t i = 0; i < std::max<std::uint32_t>(nr.amount, 1);
           ++i) {
        PendingOp y;
        y.code = OpCode::Yield;
        y.injected = true;
        visibleOp(y, mayThrow, /*applyNoise=*/false);
      }
    } else if (nr.kind == NoiseRequest::Kind::Sleep) {
      PendingOp sl;
      sl.code = OpCode::Sleep;
      sl.arg = std::max<std::uint32_t>(nr.amount, 1);
      sl.injected = true;
      visibleOp(sl, mayThrow, /*applyNoise=*/false);
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (abort_) {
    if (mayThrow) throw RunAborted{};
    return;
  }
  if (op.code == OpCode::Sleep) {
    op.wakeStep = steps_ + std::max<std::uint32_t>(op.arg, 1);
  }
  self.pending = op;
  self.st = St::Parked;
  scheduleNextLocked();
  if (!waitForTurnLocked(lk, self)) {
    if (mayThrow) throw RunAborted{};
    return;
  }
  if (!performOpLocked(lk, self)) {
    if (mayThrow) throw RunAborted{};
    return;
  }
}

void ControlledRuntime::trampoline(Tcb* self) {
  tl_current = self;
  bool started = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!abort_ && waitForTurnLocked(lk, *self)) {
      emit(EventKind::ThreadStart, self->id, self->id, Site{});
      started = true;
    }
  }
  if (started) {
    try {
      self->body();
    } catch (const RunAborted&) {
      // Expected unwind path during aborts.
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> lk(mu_);
      if (!abort_) {
        failureMessage_ =
            "uncaught exception in " + self->name + ": " + e.what();
        beginAbortLocked(RunStatus::AssertFailed);
      }
    }
  }
  threadFinish(*self);
  tl_current = nullptr;
}

void ControlledRuntime::threadFinish(Tcb& self) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!abort_) {
    self.pending = PendingOp{};
    self.pending.code = OpCode::Finish;
    self.st = St::Parked;
    scheduleNextLocked();
    if (waitForTurnLocked(lk, self)) {
      emit(EventKind::ThreadFinish, self.id, self.id, Site{});
    }
  }
  self.st = St::Finished;
  ++finishedCount_;
  if (!abort_) {
    scheduleNextLocked();
  } else {
    advanceUnwindLocked();
  }
  doneCv_.notify_all();
}

RunResult ControlledRuntime::run(std::function<void(Runtime&)> body,
                                 const RunOptions& opts) {
  if (runActive_) {
    throw std::logic_error("mtt: ControlledRuntime::run is not reentrant");
  }
  runActive_ = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    tcbs_.clear();
    finishedCount_ = 0;
    lastRunning_ = kNoThread;
    abort_ = false;
    status_ = RunStatus::Completed;
    failureMessage_.clear();
    steps_ = 0;
    maxSteps_ = opts.maxSteps == 0 ? ~std::uint64_t{0} : opts.maxSteps;
    blocked_.clear();
    decisionNoise_.clear();
    atomics_.clear();
    scClock_.clear();
    forceSeqCst_ = opts.forceSeqCst;
    resetEventCount();
  }
  policy_->onRunStart(opts.seed);
  // Bind the (process-global) flight recorder to this runtime for the
  // duration of the run; a no-op unless fr::arm was called.
  fr::claim(this);
  hooks_.setTimingEnabled(opts.dispatchTiming);
  RunInfo info;
  info.programName = internName(opts.programName);
  info.seed = opts.seed;
  info.mode = RuntimeMode::Controlled;
  hooks_.dispatchRunStart(info);

  Stopwatch sw;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto main = std::make_unique<Tcb>();
    main->id = kMainThread;
    main->name = "main";
    main->st = St::Parked;
    main->pending = PendingOp{};
    main->pending.code = OpCode::Start;
    main->body = [this, b = std::move(body)] { b(*this); };
    Tcb* raw = main.get();
    tcbs_.push_back(std::move(main));
    osThreads_.emplace_back([this, raw] { trampoline(raw); });
    scheduleNextLocked();
    doneCv_.wait(lk, [&] {
      return !tcbs_.empty() && finishedCount_ == tcbs_.size();
    });
  }
  for (auto& t : osThreads_) t.join();
  osThreads_.clear();

  RunResult result;
  {
    std::lock_guard<std::mutex> lk(mu_);
    result.status = status_;
    result.failureMessage = failureMessage_;
    result.steps = steps_;
    result.blocked = blocked_;
  }
  result.events = eventCount();
  result.wallSeconds = sw.elapsedSeconds();
  hooks_.dispatchRunEnd();
  result.dispatch = hooks_.stats();
  policy_->onRunEnd();
  fr::release(this);
  runActive_ = false;
  return result;
}

ThreadId ControlledRuntime::spawnThread(std::string name,
                                        std::function<void()> fn) {
  Tcb* self = currentTcb();
  if (self == nullptr) {
    throw std::logic_error("mtt: spawnThread outside a managed thread");
  }
  self->spawnName = std::move(name);
  self->spawnFn = std::move(fn);
  PendingOp op;
  op.code = OpCode::Spawn;
  op.site = site("spawn");
  visibleOp(op);
  return self->pending.target;
}

void ControlledRuntime::joinThread(ThreadId target, Site s) {
  PendingOp op;
  op.code = OpCode::Join;
  op.target = target;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::reapThread(ThreadId target) noexcept {
  if (currentTcb() == nullptr) return;
  // A reap is a managed join that must not throw: during aborts it returns
  // immediately (serial unwinding already guarantees the target finished
  // before this frame unwinds); otherwise it blocks like a normal join.
  PendingOp op;
  op.code = OpCode::Join;
  op.target = target;
  try {
    visibleOp(op, /*mayThrow=*/false);
  } catch (...) {
    // visibleOp(mayThrow=false) only throws on API misuse; ignore in a dtor.
  }
}

void ControlledRuntime::yieldNow(Site s) {
  PendingOp op;
  op.code = OpCode::Yield;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::sleepFor(std::chrono::microseconds d) {
  PendingOp op;
  op.code = OpCode::Sleep;
  // 1 virtual tick per 100us of requested sleep, clamped to keep virtual
  // time commensurate with maxSteps.
  auto ticks = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(d.count() / 100, 1, 100000));
  op.arg = ticks;
  visibleOp(op);
}

void ControlledRuntime::evloopPoint(EventKind kind, ObjectId obj, Site s,
                                    std::uint32_t arg) {
  PendingOp op;
  op.code = OpCode::EvPoint;
  op.evKind = kind;
  op.var = obj;
  op.site = s;
  op.arg = arg;
  visibleOp(op);
}

void ControlledRuntime::postNoise(const NoiseRequest& req) {
  Tcb* self = currentTcb();
  if (self != nullptr) self->noise = req;
}

void ControlledRuntime::mutexLock(MutexState& m, Site s) {
  PendingOp op;
  op.code = OpCode::Lock;
  op.m = &m;
  op.site = s;
  visibleOp(op);
}

bool ControlledRuntime::mutexTryLock(MutexState& m, Site s) {
  PendingOp op;
  op.code = OpCode::TryLock;
  op.m = &m;
  op.site = s;
  visibleOp(op);
  return currentTcb()->tryResult;
}

void ControlledRuntime::mutexUnlock(MutexState& m, Site s) {
  PendingOp op;
  op.code = OpCode::Unlock;
  op.m = &m;
  op.site = s;
  visibleOp(op, /*mayThrow=*/false);
}

void ControlledRuntime::condWait(CondState& c, MutexState& m, Site s) {
  PendingOp op;
  op.code = OpCode::CondWait;
  op.c = &c;
  op.m = &m;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::condSignal(CondState& c, Site s) {
  PendingOp op;
  op.code = OpCode::CondSignal;
  op.c = &c;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::condBroadcast(CondState& c, Site s) {
  PendingOp op;
  op.code = OpCode::CondBroadcast;
  op.c = &c;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::semAcquire(SemState& sem, Site s) {
  PendingOp op;
  op.code = OpCode::SemAcquire;
  op.sem = &sem;
  op.site = s;
  visibleOp(op);
}

bool ControlledRuntime::semTryAcquire(SemState& sem, Site s) {
  PendingOp op;
  op.code = OpCode::SemTryAcquire;
  op.sem = &sem;
  op.site = s;
  visibleOp(op);
  return currentTcb()->tryResult;
}

void ControlledRuntime::semRelease(SemState& sem, std::uint32_t n, Site s) {
  PendingOp op;
  op.code = OpCode::SemRelease;
  op.sem = &sem;
  op.arg = n;
  op.site = s;
  visibleOp(op, /*mayThrow=*/false);
}

void ControlledRuntime::rwLockRead(RwState& rw, Site s) {
  PendingOp op;
  op.code = OpCode::RwRead;
  op.rw = &rw;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::rwUnlockRead(RwState& rw, Site s) {
  PendingOp op;
  op.code = OpCode::RwUnlockR;
  op.rw = &rw;
  op.site = s;
  visibleOp(op, /*mayThrow=*/false);
}

void ControlledRuntime::rwLockWrite(RwState& rw, Site s) {
  PendingOp op;
  op.code = OpCode::RwWrite;
  op.rw = &rw;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::rwUnlockWrite(RwState& rw, Site s) {
  PendingOp op;
  op.code = OpCode::RwUnlockW;
  op.rw = &rw;
  op.site = s;
  visibleOp(op, /*mayThrow=*/false);
}

void ControlledRuntime::barrierWait(BarrierState& b, Site s) {
  PendingOp op;
  op.code = OpCode::BarrierArrive;
  op.b = &b;
  op.site = s;
  visibleOp(op);
}

void ControlledRuntime::varAccess(ObjectId var, Access a, Site s) {
  PendingOp op;
  op.code = OpCode::VarAccess;
  op.var = var;
  op.access = a;
  op.site = s;
  visibleOp(op);
}

std::uint64_t ControlledRuntime::atomicLoad(AtomicState& a,
                                            std::memory_order mo, Site s) {
  PendingOp op;
  op.code = OpCode::AtomicLoad;
  op.at = &a;
  op.memOrder = static_cast<std::uint8_t>(mo);
  op.site = s;
  visibleOp(op);
  return currentTcb()->atomicResult;
}

void ControlledRuntime::atomicStore(AtomicState& a, std::uint64_t v,
                                    std::memory_order mo, Site s) {
  PendingOp op;
  op.code = OpCode::AtomicStore;
  op.at = &a;
  op.aval = v;
  op.memOrder = static_cast<std::uint8_t>(mo);
  op.site = s;
  visibleOp(op);
}

std::uint64_t ControlledRuntime::atomicRmw(AtomicState& a, RmwOp rop,
                                           std::uint64_t operand,
                                           std::uint64_t expected,
                                           std::memory_order mo, Site s,
                                           bool* ok) {
  PendingOp op;
  op.code = OpCode::AtomicRmw;
  op.at = &a;
  op.rmwOp = rop;
  op.aval = operand;
  op.aexp = expected;
  op.memOrder = static_cast<std::uint8_t>(mo);
  op.site = s;
  visibleOp(op);
  Tcb* self = currentTcb();
  if (ok != nullptr) *ok = self->tryResult;
  return self->atomicResult;
}

void ControlledRuntime::atomicFence(std::memory_order mo, Site s) {
  PendingOp op;
  op.code = OpCode::Fence;
  op.memOrder = static_cast<std::uint8_t>(mo);
  op.site = s;
  visibleOp(op);
}

}  // namespace mtt::rt
