// ControlledRuntime: the cooperative, fully deterministic scheduler.
//
// Exactly one managed thread executes at a time.  Every visible operation
// (lock, unlock, wait, signal, semaphore, barrier, variable access, spawn,
// join, yield, sleep, finish) parks the calling thread with a pending-op
// descriptor; the runtime computes the set of *enabled* pending operations
// and asks the SchedulePolicy which one executes next.  Consequences:
//
//  * Determinism: (program, policy, seed) fully determines the run — the
//    substrate for replay (record the decision sequence, re-apply it) and
//    for systematic state-space exploration (enumerate decision sequences).
//  * Deadlock detection for free: if no pending operation is enabled and not
//    every thread has finished, the run is deadlocked; the runtime reports
//    each blocked thread and what it waits on.
//  * Livelock guard: runs abort after RunOptions::maxSteps decisions.
//
// Hooks are dispatched with the scheduler lock held (events are therefore
// totally ordered and listeners need no internal locking in this mode);
// listeners must not call runtime operations from onEvent — noise makers use
// Runtime::postNoise, which is applied before the thread's next operation.
// Weak-memory extension (Decision API v3): mtt::mem::Atomic operations are
// visible ops like any other, but an atomic *load* additionally computes its
// observable-store set — the per-location store history filtered by a
// vector-clock happens-before / coherence check — and, when that set has
// more than one element, asks the policy which store to observe
// (SchedulePolicy::pickStore, recorded as a StorePick decision).  The model
// is deliberately a little stronger than C11 (sound for bug hunting: every
// behaviour it produces is C11-allowed):
//  * per-location modification order == execution order of the stores
//    (execution is serialized, so stores are totally ordered anyway);
//  * a load may observe any store S with S.seq >= max(hbFloor, readFloor),
//    where hbFloor is the newest store that happens-before the load and
//    readFloor is the loading thread's per-location coherence floor
//    (advanced by its own reads and stores, inherited across spawn);
//  * observing a release store with an acquire load joins the storer's
//    clock snapshot (relaxed loads defer the join to a later acquire fence);
//  * seq_cst operations additionally join a global SC clock both ways, so
//    all-seq_cst programs always observe the newest store (singleton set =
//    no choice point = byte-identical SC schedules).
#pragma once

#include <memory>
#include <thread>
#include <unordered_map>

#include "rt/policy.hpp"
#include "rt/runtime.hpp"

namespace mtt::rt {

class ControlledRuntime final : public Runtime {
 public:
  /// Uses RandomPolicy if none is given.
  explicit ControlledRuntime(std::unique_ptr<SchedulePolicy> policy = nullptr);
  ~ControlledRuntime() override;

  RuntimeMode mode() const override { return RuntimeMode::Controlled; }

  SchedulePolicy& policy() { return *policy_; }
  void setPolicy(std::unique_ptr<SchedulePolicy> p);

  RunResult run(std::function<void(Runtime&)> body,
                const RunOptions& opts) override;

  /// Per-decision provenance of the last run, parallel to a recorded
  /// Schedule: true where the decision scheduled a noise-injected yield or
  /// sleep (Runtime::postNoise), false for the program's own operations.
  /// Projecting the noise decisions out of a recording yields the schedule
  /// of the same run with no noise maker attached (triage's noise-strip).
  const std::vector<bool>& decisionNoise() const { return decisionNoise_; }

  ThreadId spawnThread(std::string name, std::function<void()> fn) override;
  void joinThread(ThreadId target, Site s) override;
  void reapThread(ThreadId target) noexcept override;
  ThreadId currentThread() const override;
  std::string threadName(ThreadId t) const override;
  void yieldNow(Site s) override;
  void sleepFor(std::chrono::microseconds d) override;
  void postNoise(const NoiseRequest& req) override;
  void fail(std::string msg) override;

  void mutexLock(MutexState& m, Site s) override;
  bool mutexTryLock(MutexState& m, Site s) override;
  void mutexUnlock(MutexState& m, Site s) override;
  void condWait(CondState& c, MutexState& m, Site s) override;
  void condSignal(CondState& c, Site s) override;
  void condBroadcast(CondState& c, Site s) override;
  void semAcquire(SemState& sem, Site s) override;
  bool semTryAcquire(SemState& sem, Site s) override;
  void semRelease(SemState& sem, std::uint32_t n, Site s) override;
  void barrierWait(BarrierState& b, Site s) override;
  void rwLockRead(RwState& rw, Site s) override;
  void rwUnlockRead(RwState& rw, Site s) override;
  void rwLockWrite(RwState& rw, Site s) override;
  void rwUnlockWrite(RwState& rw, Site s) override;
  void varAccess(ObjectId var, Access a, Site s) override;
  void evloopPoint(EventKind kind, ObjectId obj, Site s,
                   std::uint32_t arg) override;
  std::uint64_t atomicLoad(AtomicState& a, std::memory_order mo,
                           Site s) override;
  void atomicStore(AtomicState& a, std::uint64_t v, std::memory_order mo,
                   Site s) override;
  std::uint64_t atomicRmw(AtomicState& a, RmwOp op, std::uint64_t operand,
                          std::uint64_t expected, std::memory_order mo, Site s,
                          bool* ok) override;
  void atomicFence(std::memory_order mo, Site s) override;

 private:
  enum class OpCode : std::uint8_t {
    Start,
    Spawn,
    Lock,
    TryLock,
    Unlock,
    CondWait,
    CondSignal,
    CondBroadcast,
    SemAcquire,
    SemTryAcquire,
    SemRelease,
    BarrierArrive,
    RwRead,
    RwWrite,
    RwUnlockR,
    RwUnlockW,
    Join,
    VarAccess,
    EvPoint,  ///< event-loop task boundary (Runtime::evloopPoint)
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    Fence,
    Yield,
    Sleep,
    Finish,
  };

  struct PendingOp {
    OpCode code = OpCode::Yield;
    MutexState* m = nullptr;
    CondState* c = nullptr;
    RwState* rw = nullptr;
    SemState* sem = nullptr;
    BarrierState* b = nullptr;
    AtomicState* at = nullptr;    ///< Atomic*/Fence state block
    ObjectId var = kNoObject;
    Access access = Access::None;
    ThreadId target = kNoThread;  ///< join target / spawned child
    EventKind evKind = EventKind::Yield;  ///< EvPoint: kind to emit
    Site site{};
    std::uint32_t arg = 0;        ///< sem release count / saved mutex depth
    std::uint64_t wakeStep = 0;   ///< sleep expiry (virtual step)
    std::uint8_t memOrder = 0;    ///< Atomic*/Fence: std::memory_order
    RmwOp rmwOp = RmwOp::Exchange;
    std::uint64_t aval = 0;       ///< store value / RMW operand
    std::uint64_t aexp = 0;       ///< CompareExchange comparand
    bool condResume = false;      ///< Lock is a reacquire after cond wait
    bool everBlocked = false;     ///< op was seen disabled at least once
    bool injected = false;        ///< noise-injected yield/sleep (postNoise)
  };

  enum class St : std::uint8_t {
    Parked,       ///< has a pending op, competing for scheduling
    Running,      ///< executing user code (at most one thread)
    WaitCond,     ///< in a condition wait, not schedulable until signaled
    WaitBarrier,  ///< arrived at a barrier, waiting for the generation
    Finished,
  };

  struct Tcb {
    ThreadId id = kNoThread;
    std::string name;
    St st = St::Parked;
    PendingOp pending{};
    bool go = false;
    bool tryResult = false;  ///< out-param of TryLock / SemTryAcquire / CAS
    std::uint64_t atomicResult = 0;  ///< out-param of AtomicLoad / AtomicRmw
    NoiseRequest noise{};    ///< posted by listeners, applied at next op
    std::condition_variable cv;
    std::function<void()> body;
    // Staging area for a pending Spawn op (per-thread, so concurrent
    // spawners don't clobber each other).
    std::string spawnName;
    std::function<void()> spawnFn;
    // Weak-memory bookkeeping (scheduler lock protects).
    std::vector<std::uint64_t> vc;  ///< vector clock, indexed by ThreadId
    /// Deferred acquire clock: release clocks observed by relaxed loads,
    /// claimed by this thread's next acquire (or stronger) fence.
    std::vector<std::uint64_t> pendingAcq;
    /// Per-atomic coherence floor: modification-order index of the newest
    /// store this thread has observed (read or written).  Inherited across
    /// spawn (spawn is a happens-before edge).
    std::unordered_map<ObjectId, std::uint64_t> readFloor;
    /// A release (or stronger) fence was issued: subsequent relaxed stores
    /// carry release semantics.
    bool releaseFence = false;
  };

  /// One committed store of an atomic location (controlled mode).
  struct AtomicStoreRec {
    std::uint64_t value = 0;
    ThreadId storer = kNoThread;  ///< kNoThread for the initial value
    std::uint64_t stamp = 0;      ///< storer's own clock at the store
    std::uint64_t seq = 0;        ///< per-location modification-order index
    bool release = false;         ///< store had release semantics
    std::vector<std::uint64_t> clock;  ///< storer's clock snapshot
  };

  /// Per-location store history: ascending seq, back() = coherence-newest.
  struct AtomicLoc {
    std::vector<AtomicStoreRec> stores;
    std::uint64_t nextSeq = 1;  // seq 0 is the initial-value pseudo-store
  };

  // The generic gateway for visible operations of the current thread.
  // Applies any posted noise first, parks, schedules, waits for its turn and
  // performs the op.  mayThrow=false is used by operations reachable from
  // destructors (unlock): on abort they return without effect.
  void visibleOp(PendingOp op, bool mayThrow = true, bool applyNoise = true);

  // All *Locked functions require mu_ held.
  Tcb& tcbOf(ThreadId id) const;
  Tcb* currentTcb() const;
  bool enabledLocked(const Tcb& t) const;
  // Policy-facing descriptor of a parked thread's pending operation.
  PendingOpInfo opInfoOf(const Tcb& t) const;
  // Picks and wakes the next thread (or fast-forwards virtual time, or
  // detects completion / deadlock / step-limit).
  void scheduleNextLocked();
  // Waits until this thread is scheduled.  Returns false if the run aborted.
  bool waitForTurnLocked(std::unique_lock<std::mutex>& lk, Tcb& self);
  // Executes self.pending; emits events; may internally block (cond/barrier)
  // and re-schedule.  Returns false if the run aborted mid-operation.
  bool performOpLocked(std::unique_lock<std::mutex>& lk, Tcb& self);
  void beginAbortLocked(RunStatus status);
  // Abort teardown is serialized: threads unwind one at a time in reverse
  // thread-id order (children before their spawners, since ids are assigned
  // in spawn order), so a thread never destroys stack objects that a
  // still-unwinding thread it spawned references.  advanceUnwindLocked moves
  // the turn to the highest-id unfinished thread.
  void advanceUnwindLocked();
  void collectBlockedLocked();
  // Weak-memory helpers (mu_ held).  locOf lazily seeds the history with
  // the initial-value pseudo-store; effectiveOrder applies forceSeqCst and
  // maps consume to acquire.
  AtomicLoc& locOf(AtomicState& a);
  std::memory_order effectiveOrder(std::uint8_t mo) const;
  bool hbVisible(const Tcb& t, const AtomicStoreRec& rec) const;
  std::uint64_t performAtomicLoadLocked(Tcb& self, PendingOp& op);
  void performAtomicStoreLocked(Tcb& self, PendingOp& op);
  std::uint64_t performAtomicRmwLocked(Tcb& self, PendingOp& op);
  void performFenceLocked(Tcb& self, PendingOp& op);
  std::string describeWait(const Tcb& t) const;
  void releaseMutexFullyLocked(MutexState& m);
  void trampoline(Tcb* self);
  void threadFinish(Tcb& self);
  [[noreturn]] void failLocked(std::unique_lock<std::mutex>& lk,
                               std::string msg);

  std::unique_ptr<SchedulePolicy> policy_;

  mutable std::mutex mu_;
  std::condition_variable doneCv_;
  std::vector<std::unique_ptr<Tcb>> tcbs_;   // index = id - 1
  std::vector<std::thread> osThreads_;
  std::size_t finishedCount_ = 0;
  ThreadId lastRunning_ = kNoThread;
  bool abort_ = false;
  ThreadId unwindTurn_ = kNoThread;  ///< whose turn to unwind during abort
  RunStatus status_ = RunStatus::Completed;
  std::string failureMessage_;
  std::uint64_t steps_ = 0;
  std::uint64_t maxSteps_ = 0;
  std::vector<BlockedThreadInfo> blocked_;
  std::vector<bool> decisionNoise_;
  bool runActive_ = false;
  // Weak-memory state (scheduler lock protects; reset per run).
  std::unordered_map<ObjectId, AtomicLoc> atomics_;
  std::vector<std::uint64_t> scClock_;  ///< global seq_cst order clock
  bool forceSeqCst_ = false;
};

}  // namespace mtt::rt
