// The instrumented runtime: the substrate every tool in mtt builds on.
//
// The paper assumes a Java bytecode instrumentor that inserts a call at every
// "concurrent location".  C++ has no bytecode layer, so mtt substitutes an
// *instrumented concurrency API*: benchmark programs use mtt primitives
// (Thread, Mutex, CondVar, Semaphore, Barrier, SharedVar) whose every
// operation is an instrumentation point.  Each point (a) emits an Event to
// the registered HookChain and (b) in controlled mode, is a scheduling
// decision where a pluggable SchedulePolicy picks the next thread to run.
//
// Two runtimes implement one interface:
//  * NativeRuntime     — real std::threads under the OS scheduler; hooks run
//    inline on the executing thread (so noise makers can inject real delays).
//    Blocking operations carry a timeout watchdog so that runs of programs
//    with real deadlocks terminate and report instead of hanging.
//  * ControlledRuntime — cooperative serialization: exactly one managed
//    thread runs at a time; every visible operation parks the thread and a
//    SchedulePolicy chooses which enabled pending operation executes next.
//    This gives deterministic, seedable, replayable schedules, built-in
//    deadlock detection (empty enabled set), and is the substrate for the
//    replay and systematic state-space exploration tools.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/ids.hpp"
#include "core/listener.hpp"
#include "core/site.hpp"

namespace mtt::rt {

/// Kind of an instrumented object, for registries and traces.
enum class ObjectKind : std::uint8_t {
  Mutex,
  RwLock,
  CondVar,
  Semaphore,
  Barrier,
  Variable,
  Thread,
  TaskQueue,  ///< an mtt::evloop::EventLoop's ready queue
  Atomic,     ///< an mtt::mem::Atomic<T> cell
};

std::string_view to_string(ObjectKind k);

struct ObjectInfo {
  ObjectKind kind = ObjectKind::Variable;
  std::string name;
};

/// Options controlling one run.
struct RunOptions {
  /// Seed forwarded to the schedule policy (controlled) and available to
  /// listeners via RunInfo (noise makers derive their streams from it).
  std::uint64_t seed = 0;
  /// Controlled mode: abort the run after this many scheduled operations
  /// (livelock guard).
  std::uint64_t maxSteps = 2'000'000;
  /// Native mode: watchdog timeout for blocking operations.  A lock or
  /// condition wait that exceeds it aborts the run and reports a suspected
  /// deadlock / lost wakeup, so native runs of deadlocking programs always
  /// terminate.
  std::chrono::milliseconds blockTimeout{500};
  /// Name reported to listeners in RunInfo.
  std::string programName;
  /// Collect per-listener dispatch time attribution into
  /// RunResult::dispatch (two clock reads per delivery; off by default).
  bool dispatchTiming = false;
  /// Weak-memory control: treat every mtt::mem::Atomic operation as if it
  /// carried std::memory_order_seq_cst.  Under the controlled store-buffer
  /// runtime this collapses every observable-store set to the newest store,
  /// so no StorePick choice points occur and the run is exactly the SC
  /// execution of the same schedule — the "does the bug need weak memory?"
  /// control knob (`mtt hunt --seq-cst`).
  bool forceSeqCst = false;
};

/// Why a run ended.  The first four are produced by the runtimes themselves;
/// the last three are assigned by the mtt::farm campaign engine, which
/// supervises runs from the outside (wall-clock watchdog, forked-worker
/// crash containment, infrastructure retry exhaustion) and records every
/// failure mode as an outcome instead of aborting the campaign.
enum class RunStatus : std::uint8_t {
  Completed,      ///< all managed threads finished
  Deadlock,       ///< controlled: no enabled thread; native: watchdog fired
  AssertFailed,   ///< Runtime::fail / Runtime::check aborted the run
  StepLimit,      ///< controlled: maxSteps exceeded (possible livelock)
  Timeout,        ///< farm: per-run wall-clock watchdog fired
  Crashed,        ///< farm: isolated worker process died (signal/abort)
  InfraError,     ///< farm: harness failure persisted through all retries
};

std::string_view to_string(RunStatus s);

/// One blocked thread in a deadlock report.
struct BlockedThreadInfo {
  ThreadId thread = kNoThread;
  std::string threadName;
  std::string waitingFor;  ///< human-readable: "mutex forks[1]" etc.
  ObjectId object = kNoObject;
};

/// Result of one run.
struct RunResult {
  RunStatus status = RunStatus::Completed;
  std::string failureMessage;  ///< set when status == AssertFailed
  std::uint64_t events = 0;    ///< instrumentation points executed
  std::uint64_t steps = 0;     ///< controlled: scheduling decisions taken
  double wallSeconds = 0.0;
  std::vector<BlockedThreadInfo> blocked;  ///< deadlock participants
  /// Hook-chain observability: per-kind event counts (always), plus
  /// per-listener time attribution when RunOptions::dispatchTiming was set.
  DispatchStats dispatch;

  bool ok() const { return status == RunStatus::Completed; }
  bool deadlocked() const { return status == RunStatus::Deadlock; }
};

/// Thrown by runtime operations to unwind managed threads when a run aborts
/// (deadlock detected, assertion failed, step limit).  Benchmark programs
/// must let it propagate (they do; it is caught by the thread trampoline).
struct RunAborted {};

// ---------------------------------------------------------------------------
// Primitive state blocks.  Primitives (rt/primitives.hpp) own one of these
// and pass it to the runtime; each block carries both the native
// implementation object and the bookkeeping fields the controlled scheduler
// uses (the latter are only touched under the scheduler lock).
// ---------------------------------------------------------------------------

struct MutexState {
  ObjectId id = kNoObject;
  bool recursive = false;
  // Native mode.  nativeOwner/nativeDepth implement recursion on top of the
  // timed mutex (nativeDepth is only touched by the owning thread).
  std::timed_mutex native;
  std::atomic<ThreadId> nativeOwner{kNoThread};
  std::uint32_t nativeDepth = 0;
  // Controlled mode (scheduler lock protects).
  ThreadId owner = kNoThread;
  std::uint32_t depth = 0;
  // Weak-memory bookkeeping: join of every releaser's vector clock, so the
  // store-buffer runtime sees lock-protected publication as happens-before.
  std::vector<std::uint64_t> relClock;
};

struct CondState {
  ObjectId id = kNoObject;
  // Native mode.
  std::condition_variable_any native;
  // Controlled mode: waiting thread ids, FIFO.
  std::deque<ThreadId> waiters;
};

struct RwState {
  ObjectId id = kNoObject;
  // Native mode.
  std::shared_timed_mutex native;
  // Controlled mode (scheduler lock protects).
  ThreadId writer = kNoThread;
  std::uint32_t readers = 0;
  // Weak-memory bookkeeping: writer releases publish to relClockW, reader
  // releases to relClockR; writers acquire both, readers acquire relClockW.
  std::vector<std::uint64_t> relClockW;
  std::vector<std::uint64_t> relClockR;
};

struct SemState {
  ObjectId id = kNoObject;
  // Shared counter; in native mode guarded by nm, in controlled mode by the
  // scheduler lock.
  std::int64_t permits = 0;
  // Native mode.
  std::mutex nm;
  std::condition_variable ncv;
  // Controlled mode, weak-memory bookkeeping (scheduler lock protects).
  std::vector<std::uint64_t> relClock;
};

struct BarrierState {
  ObjectId id = kNoObject;
  std::uint32_t parties = 0;
  std::uint32_t arrived = 0;
  std::uint64_t generation = 0;
  // Native mode.
  std::mutex nm;
  std::condition_variable ncv;
  // Controlled mode, weak-memory bookkeeping (scheduler lock protects):
  // join of every arriver's vector clock this generation.
  std::vector<std::uint64_t> clock;
};

/// State block of one mtt::mem::Atomic<T> cell.  The wrapper owns it and
/// funnels every operation through Runtime::atomic*(); values travel as raw
/// 64-bit images (the wrapper memcpys T in and out).
struct AtomicState {
  ObjectId id = kNoObject;
  /// Initial value; seeds the store history in controlled mode.
  std::uint64_t init = 0;
  // Native mode: the real cell, operated on with the caller's memory order.
  std::atomic<std::uint64_t> native{0};
  // Controlled mode (scheduler lock protects): the coherence-newest value.
  // The per-location store *history* — what weak loads may still observe —
  // lives inside ControlledRuntime, keyed by id.
  std::uint64_t value = 0;
};

/// Read-modify-write flavours of mtt::mem::Atomic.  Every RMW reads the
/// coherence-newest store (atomicity), so RMWs are never StorePick choice
/// points.
enum class RmwOp : std::uint8_t {
  Exchange,         ///< unconditionally store the operand, return the old value
  FetchAdd,         ///< store old + operand, return the old value
  CompareExchange,  ///< store the operand iff old == expected
};

/// Packing of the `Event::arg` payload of the EventMask::atomics() kinds:
/// bits 0-2 the std::memory_order the program wrote, bit 3 a per-kind flag
/// (load: the observation is synchronized — the store's release clock was
/// acquired, or the store already happens-before the loader; store: the
/// store has release semantics; RMW: the compare-exchange succeeded), bits 4-11
/// the observable-store index the load picked (0 = coherence-newest, i.e.
/// the SC value), bits 12-31 the storing thread observed by a load/RMW.
struct AtomicArg {
  static constexpr std::uint32_t pack(std::memory_order mo, bool flag,
                                      std::uint32_t age, ThreadId storer) {
    return (static_cast<std::uint32_t>(mo) & 0x7u) |
           (flag ? 0x8u : 0u) |
           ((age > 0xffu ? 0xffu : age) << 4) |
           ((storer & 0xfffffu) << 12);
  }
  static constexpr std::memory_order order(std::uint32_t arg) {
    return static_cast<std::memory_order>(arg & 0x7u);
  }
  static constexpr bool flag(std::uint32_t arg) { return (arg & 0x8u) != 0; }
  static constexpr std::uint32_t age(std::uint32_t arg) {
    return (arg >> 4) & 0xffu;
  }
  static constexpr ThreadId storer(std::uint32_t arg) {
    return static_cast<ThreadId>(arg >> 12);
  }
};

// ---------------------------------------------------------------------------
// Runtime interface.
// ---------------------------------------------------------------------------

class Runtime {
 public:
  virtual ~Runtime() = default;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  virtual RuntimeMode mode() const = 0;

  /// The hook chain: tools register here before run().
  HookChain& hooks() { return hooks_; }

  /// Optional event filter: when set, events for which it returns false are
  /// not dispatched to listeners (the operation itself still executes).
  /// This is the "static analysis decides on a subset of the points to be
  /// instrumented" flow of Section 3 of the paper.
  void setEventFilter(std::function<bool(const Event&)> f) {
    filter_ = std::move(f);
  }

  /// Executes `body` as the managed main thread (ThreadId 1) and returns
  /// when every managed thread has finished or the run aborted.
  /// A Runtime instance is intended for a single run; create a fresh one per
  /// run for deterministic object ids (TestHarness does).
  virtual RunResult run(std::function<void(Runtime&)> body,
                        const RunOptions& opts) = 0;

  // --- thread operations (called by the Thread wrapper / program code) ----
  virtual ThreadId spawnThread(std::string name,
                               std::function<void()> fn) = 0;
  virtual void joinThread(ThreadId target, Site s) = 0;
  /// Called by ~Thread for threads that were never joined: blocks until the
  /// target has finished, so stack objects shared with it stay alive while
  /// it unwinds.  Never throws (it runs from destructors during aborts).
  virtual void reapThread(ThreadId target) noexcept = 0;
  virtual ThreadId currentThread() const = 0;
  /// Resolves a managed thread's name ("main", or the name given at spawn).
  virtual std::string threadName(ThreadId t) const = 0;
  /// A scheduling point with no effect on program state; noise makers call
  /// this to perturb the interleaving.
  virtual void yieldNow(Site s) = 0;
  /// Native: real sleep.  Controlled: the thread is not schedulable for
  /// roughly `d` virtual ticks (1 tick per scheduled operation), so
  /// sleep-based "synchronization" misbehaves under adversarial schedules
  /// exactly as the paper describes.
  virtual void sleepFor(std::chrono::microseconds d) = 0;

  // --- noise injection ------------------------------------------------------
  /// How a noise maker asks the runtime to perturb the current thread.
  /// Listeners must use this (not yieldNow/sleepFor) from onEvent: in
  /// controlled mode hooks are dispatched under the scheduler lock, so
  /// re-entering a scheduling operation would self-deadlock.  The request is
  /// applied right before the thread's next visible operation (controlled)
  /// or immediately after hook dispatch (native).
  struct NoiseRequest {
    enum class Kind : std::uint8_t { None, Yield, Sleep };
    Kind kind = Kind::None;
    /// Yield: number of yields.  Sleep: virtual ticks (controlled) or
    /// microseconds (native).
    std::uint32_t amount = 0;
  };
  virtual void postNoise(const NoiseRequest& req) = 0;

  // --- failure reporting --------------------------------------------------
  /// Records the first failure message and aborts the run.
  virtual void fail(std::string msg) = 0;
  /// fail(msg) unless cond holds.
  void check(bool cond, std::string_view msg) {
    if (!cond) fail(std::string(msg));
  }

  // --- object registry ----------------------------------------------------
  ObjectId registerObject(ObjectKind kind, std::string name);
  ObjectInfo objectInfo(ObjectId id) const;
  std::size_t objectCount() const;

  // --- primitive operations (called by rt/primitives.hpp) -----------------
  virtual void mutexLock(MutexState& m, Site s) = 0;
  virtual bool mutexTryLock(MutexState& m, Site s) = 0;
  virtual void mutexUnlock(MutexState& m, Site s) = 0;
  virtual void condWait(CondState& c, MutexState& m, Site s) = 0;
  virtual void condSignal(CondState& c, Site s) = 0;
  virtual void condBroadcast(CondState& c, Site s) = 0;
  virtual void semAcquire(SemState& sem, Site s) = 0;
  virtual bool semTryAcquire(SemState& sem, Site s) = 0;
  virtual void semRelease(SemState& sem, std::uint32_t n, Site s) = 0;
  virtual void barrierWait(BarrierState& b, Site s) = 0;
  virtual void rwLockRead(RwState& rw, Site s) = 0;
  virtual void rwUnlockRead(RwState& rw, Site s) = 0;
  virtual void rwLockWrite(RwState& rw, Site s) = 0;
  virtual void rwUnlockWrite(RwState& rw, Site s) = 0;
  /// Instrumentation for a shared-variable access; the actual load/store is
  /// performed by SharedVar around this call.
  virtual void varAccess(ObjectId var, Access a, Site s) = 0;
  /// Instrumentation point for an event-loop task boundary (mtt::evloop).
  /// `kind` must be one of the EventMask::evloop() kinds; `obj` is the loop's
  /// registered TaskQueue object and `arg` the task id.  Controlled mode
  /// parks the thread like any visible operation (so the schedule policy
  /// decides when the boundary executes); native mode runs pre-op gates and
  /// emits inline, so noise makers can jitter callback dispatch.
  virtual void evloopPoint(EventKind kind, ObjectId obj, Site s,
                           std::uint32_t arg = 0) = 0;

  // --- instrumented atomics (called by mem/atomic.hpp) --------------------
  /// Atomic load with the given memory order; returns the observed value.
  /// Controlled mode computes the observable-store set and may consult the
  /// schedule policy (a StorePick choice point); native mode performs the
  /// real std::atomic load.
  virtual std::uint64_t atomicLoad(AtomicState& a, std::memory_order mo,
                                   Site s) = 0;
  /// Atomic store with the given memory order.
  virtual void atomicStore(AtomicState& a, std::uint64_t v,
                           std::memory_order mo, Site s) = 0;
  /// Read-modify-write: returns the value read (the coherence-newest store).
  /// For CompareExchange, `expected` is the comparand and `*ok` (when
  /// non-null) receives whether the store happened; other flavours always
  /// store and set *ok = true.
  virtual std::uint64_t atomicRmw(AtomicState& a, RmwOp op,
                                  std::uint64_t operand,
                                  std::uint64_t expected, std::memory_order mo,
                                  Site s, bool* ok = nullptr) = 0;
  /// Standalone memory fence with the given order.
  virtual void atomicFence(std::memory_order mo, Site s) = 0;

 protected:
  Runtime() = default;

  /// Builds an Event (assigning the next sequence number), applies the
  /// filter, and dispatches to hooks.  Returns the assigned sequence number.
  std::uint64_t emit(EventKind kind, ThreadId thread, ObjectId object, Site s,
                     std::uint32_t arg = 0);

  std::uint64_t eventCount() const {
    return seq_.load(std::memory_order_relaxed);
  }
  void resetEventCount() { seq_.store(0, std::memory_order_relaxed); }

  HookChain hooks_;
  std::function<bool(const Event&)> filter_;

 private:
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex objMu_;
  std::vector<ObjectInfo> objects_;  // index 0 reserved (kNoObject)
};

}  // namespace mtt::rt
