// The instrumented concurrency primitives benchmark programs are written
// against.  Every operation on these types is an instrumentation point: it
// emits an Event to the runtime's hook chain and, in controlled mode, is a
// scheduling decision.  This API is the C++ substitute for the paper's
// instrumented Java bytecode (see DESIGN.md, substitution table).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "rt/runtime.hpp"

namespace mtt::rt {

/// Instrumented mutual-exclusion lock (optionally recursive).
class Mutex {
 public:
  Mutex(Runtime& rt, std::string name, bool recursive = false)
      : rt_(&rt), recursive_(recursive) {
    st_.id = rt.registerObject(ObjectKind::Mutex, std::move(name));
    st_.recursive = recursive;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(Site s = site()) { rt_->mutexLock(st_, s); }
  bool tryLock(Site s = site()) { return rt_->mutexTryLock(st_, s); }
  void unlock(Site s = site()) { rt_->mutexUnlock(st_, s); }

  ObjectId id() const { return st_.id; }
  bool isRecursive() const { return recursive_; }
  MutexState& state() { return st_; }

 private:
  Runtime* rt_;
  bool recursive_;
  MutexState st_;
};

/// RAII lock ownership for Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m, Site s = site()) : m_(&m) { m.lock(s); }
  ~LockGuard() {
    if (m_ != nullptr) m_->unlock();
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  /// Releases early (idempotent).
  void unlock(Site s = site()) {
    if (m_ != nullptr) {
      m_->unlock(s);
      m_ = nullptr;
    }
  }

 private:
  Mutex* m_;
};

/// Instrumented readers-writer lock: any number of concurrent readers OR a
/// single writer.  Not recursive and not upgradable: requesting the write
/// lock while holding the read lock self-deadlocks — which is exactly the
/// classic "rwlock upgrade" bug the suite documents.
class RwLock {
 public:
  RwLock(Runtime& rt, std::string name) : rt_(&rt) {
    st_.id = rt.registerObject(ObjectKind::RwLock, std::move(name));
  }
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lockRead(Site s = site()) { rt_->rwLockRead(st_, s); }
  void unlockRead(Site s = site()) { rt_->rwUnlockRead(st_, s); }
  void lockWrite(Site s = site()) { rt_->rwLockWrite(st_, s); }
  void unlockWrite(Site s = site()) { rt_->rwUnlockWrite(st_, s); }

  ObjectId id() const { return st_.id; }
  RwState& state() { return st_; }

 private:
  Runtime* rt_;
  RwState st_;
};

/// RAII shared ownership of an RwLock.
class ReadGuard {
 public:
  explicit ReadGuard(RwLock& l, Site s = site()) : l_(&l) { l.lockRead(s); }
  ~ReadGuard() {
    if (l_ != nullptr) l_->unlockRead();
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  void unlock(Site s = site()) {
    if (l_ != nullptr) {
      l_->unlockRead(s);
      l_ = nullptr;
    }
  }

 private:
  RwLock* l_;
};

/// RAII exclusive ownership of an RwLock.
class WriteGuard {
 public:
  explicit WriteGuard(RwLock& l, Site s = site()) : l_(&l) { l.lockWrite(s); }
  ~WriteGuard() {
    if (l_ != nullptr) l_->unlockWrite();
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;
  void unlock(Site s = site()) {
    if (l_ != nullptr) {
      l_->unlockWrite(s);
      l_ = nullptr;
    }
  }

 private:
  RwLock* l_;
};

/// Instrumented condition variable.  No timed waits: the runtime's watchdog
/// converts a never-signaled wait into a reported hang, which is exactly how
/// the benchmark treats lost-wakeup bugs.
class CondVar {
 public:
  CondVar(Runtime& rt, std::string name) : rt_(&rt) {
    st_.id = rt.registerObject(ObjectKind::CondVar, std::move(name));
  }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold m.  Releases m, blocks until signaled, reacquires m.
  /// May wake spuriously in native mode; use the while-loop idiom (the
  /// bounded_buffer_bug suite program deliberately uses `if` instead).
  void wait(Mutex& m, Site s = site()) { rt_->condWait(st_, m.state(), s); }
  void signal(Site s = site()) { rt_->condSignal(st_, s); }
  void broadcast(Site s = site()) { rt_->condBroadcast(st_, s); }

  ObjectId id() const { return st_.id; }

 private:
  Runtime* rt_;
  CondState st_;
};

/// Instrumented counting semaphore.
class Semaphore {
 public:
  Semaphore(Runtime& rt, std::string name, std::int64_t initial = 0)
      : rt_(&rt) {
    st_.id = rt.registerObject(ObjectKind::Semaphore, std::move(name));
    st_.permits = initial;
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void acquire(Site s = site()) { rt_->semAcquire(st_, s); }
  bool tryAcquire(Site s = site()) { return rt_->semTryAcquire(st_, s); }
  void release(std::uint32_t n = 1, Site s = site()) {
    rt_->semRelease(st_, n, s);
  }

  ObjectId id() const { return st_.id; }

 private:
  Runtime* rt_;
  SemState st_;
};

/// Instrumented cyclic barrier.
class Barrier {
 public:
  Barrier(Runtime& rt, std::string name, std::uint32_t parties) : rt_(&rt) {
    st_.id = rt.registerObject(ObjectKind::Barrier, std::move(name));
    st_.parties = parties;
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arriveAndWait(Site s = site()) { rt_->barrierWait(st_, s); }

  ObjectId id() const { return st_.id; }

 private:
  Runtime* rt_;
  BarrierState st_;
};

/// An instrumented shared variable.
///
/// T must be trivially copyable and lock-free-atomic-capable.  Storage is a
/// relaxed std::atomic<T>: *logical* data races (interleavings that corrupt
/// read-modify-write sequences, publish uninitialized data, etc.) manifest
/// exactly as in unsynchronized code, while the C++ program itself stays
/// free of undefined behaviour — the standard substitution when porting
/// racy Java benchmarks.
template <typename T>
class SharedVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "SharedVar requires a trivially copyable type");

 public:
  SharedVar(Runtime& rt, std::string name, T init = T{})
      : rt_(&rt), value_(init) {
    id_ = rt.registerObject(ObjectKind::Variable, std::move(name));
  }
  SharedVar(const SharedVar&) = delete;
  SharedVar& operator=(const SharedVar&) = delete;

  /// Instrumented read: emits VarRead (a scheduling point), then loads.
  T read(Site s = site()) {
    rt_->varAccess(id_, Access::Read, s);
    return value_.load(std::memory_order_relaxed);
  }

  /// Instrumented write: emits VarWrite (a scheduling point), then stores.
  void write(T v, Site s = site()) {
    rt_->varAccess(id_, Access::Write, s);
    value_.store(v, std::memory_order_relaxed);
  }

  /// Uninstrumented access for oracles / setup outside the measured run.
  T plainGet() const { return value_.load(std::memory_order_relaxed); }
  void plainSet(T v) { value_.store(v, std::memory_order_relaxed); }

  ObjectId id() const { return id_; }

 private:
  Runtime* rt_;
  ObjectId id_ = kNoObject;
  std::atomic<T> value_;
};

/// A fixed-size array of instrumented shared slots; each slot is its own
/// object (own id, own race-detection state), named "name[i]".
template <typename T>
class SharedArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SharedArray(Runtime& rt, const std::string& name, std::size_t n,
              T init = T{})
      : rt_(&rt), n_(n), ids_(new ObjectId[n]), slots_(new std::atomic<T>[n]) {
    for (std::size_t i = 0; i < n; ++i) {
      ids_[i] = rt.registerObject(ObjectKind::Variable,
                                  name + "[" + std::to_string(i) + "]");
      slots_[i].store(init, std::memory_order_relaxed);
    }
  }
  SharedArray(const SharedArray&) = delete;
  SharedArray& operator=(const SharedArray&) = delete;
  ~SharedArray() {
    delete[] ids_;
    delete[] slots_;
  }

  std::size_t size() const { return n_; }

  T read(std::size_t i, Site s = site()) {
    rt_->varAccess(ids_[i], Access::Read, s);
    return slots_[i].load(std::memory_order_relaxed);
  }
  void write(std::size_t i, T v, Site s = site()) {
    rt_->varAccess(ids_[i], Access::Write, s);
    slots_[i].store(v, std::memory_order_relaxed);
  }
  T plainGet(std::size_t i) const {
    return slots_[i].load(std::memory_order_relaxed);
  }
  void plainSet(std::size_t i, T v) {
    slots_[i].store(v, std::memory_order_relaxed);
  }
  ObjectId idOf(std::size_t i) const { return ids_[i]; }

 private:
  Runtime* rt_;
  std::size_t n_;
  ObjectId* ids_;
  std::atomic<T>* slots_;
};

/// A managed thread.  Spawning and joining are instrumentation points.
/// Movable so programs can keep std::vector<Thread>.
class Thread {
 public:
  Thread(Runtime& rt, std::string name, std::function<void()> fn)
      : rt_(&rt), id_(rt.spawnThread(std::move(name), std::move(fn))) {}
  Thread(Thread&& o) noexcept
      : rt_(o.rt_), id_(o.id_), joined_(o.joined_) {
    o.id_ = kNoThread;
    o.joined_ = true;
  }
  Thread& operator=(Thread&&) = delete;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  /// The runtime owns the OS thread, but a thread that was never joined is
  /// reaped here: the destructor blocks until the thread has finished, so
  /// that objects on this stack frame (which the thread's body typically
  /// captures by reference) outlive every use — including during the stack
  /// unwinding of an aborted run.
  ~Thread() {
    if (!joined_ && id_ != kNoThread) rt_->reapThread(id_);
  }

  void join(Site s = site()) {
    if (!joined_ && id_ != kNoThread) {
      rt_->joinThread(id_, s);
      joined_ = true;
    }
  }

  ThreadId id() const { return id_; }

 private:
  Runtime* rt_;
  ThreadId id_ = kNoThread;
  bool joined_ = false;
};

}  // namespace mtt::rt
