#include "rt/flight_recorder.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define MTT_FR_POSIX 1
#else
#define MTT_FR_POSIX 0
#endif

namespace mtt::rt::fr {

namespace {

// All state is preallocated and process-global: the handler must never
// touch the allocator.  Sized for one run at a time (the forked-worker
// model), guarded by the owner slot.
struct EventEntry {
  std::uint8_t kind = 0;
  ThreadId thread = kNoThread;
  ObjectId object = kNoObject;
};

struct HeldLock {
  ObjectId object = kNoObject;
  ThreadId holder = kNoThread;
  bool active = false;
};

char g_path[1024];
char g_header[4096];
std::atomic<bool> g_armed{false};
std::atomic<bool> g_runActive{false};
std::atomic<const void*> g_owner{nullptr};

// A decision slot holds either a thread pick (the chosen ThreadId) or a
// store-observation pick (the observable-set index).  The kind lives in a
// parallel byte array so the hot thread-pick path keeps its single-word
// store; g_storePicks lets the dump pick the v2 magic (byte-identical to
// the pre-weak-memory format) when no store picks were recorded.
ThreadId g_decisions[kMaxDecisions];
std::uint8_t g_decisionIsStore[kMaxDecisions];
std::atomic<std::uint32_t> g_decisionCount{0};
std::atomic<std::uint32_t> g_storePicks{0};
std::atomic<bool> g_truncated{false};

EventEntry g_events[kEventRing];
std::atomic<std::uint64_t> g_eventTotal{0};

HeldLock g_locks[kMaxHeldLocks];

// --- async-signal-safe output ---------------------------------------------

/// Tiny buffered writer over write(2); everything it calls is on the
/// POSIX async-signal-safe list.
struct Writer {
  int fd = -1;
  char buf[4096];
  std::size_t n = 0;
  bool failed = false;

  void flush() {
#if MTT_FR_POSIX
    std::size_t off = 0;
    while (off < n) {
      ssize_t w = ::write(fd, buf + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        failed = true;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
#endif
    n = 0;
  }

  void put(const char* s, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      if (n == sizeof buf) flush();
      buf[n++] = s[i];
    }
  }
  void put(const char* s) { put(s, std::strlen(s)); }
  void putU64(std::uint64_t v) {
    char tmp[24];
    std::size_t i = sizeof tmp;
    do {
      tmp[--i] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    put(tmp + i, sizeof tmp - i);
  }
};

void formatHeader(const RunMeta& meta) {
  // snprintf is NOT async-signal-safe, which is exactly why the header is
  // preformatted here, outside any handler.
  // The magic line is written by dumpNow: the version depends on whether
  // the run recorded store picks, which is unknown at beginRun time.
  std::snprintf(g_header, sizeof g_header,
                "program %s\n"
                "seed %llu\n"
                "policy %s\n"
                "noise %s\n"
                "strength %.17g\n",
                meta.program, static_cast<unsigned long long>(meta.seed),
                meta.policy, meta.noise, meta.strength);
}

}  // namespace

void arm(const char* dumpPath) {
  std::snprintf(g_path, sizeof g_path, "%s", dumpPath);
  g_runActive.store(false, std::memory_order_relaxed);
  g_owner.store(nullptr, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

void disarm() {
  g_armed.store(false, std::memory_order_release);
  g_runActive.store(false, std::memory_order_relaxed);
  g_owner.store(nullptr, std::memory_order_relaxed);
}

void beginRun(const RunMeta& meta) {
  if (!armed()) return;
  formatHeader(meta);
  g_decisionCount.store(0, std::memory_order_relaxed);
  g_storePicks.store(0, std::memory_order_relaxed);
  g_truncated.store(false, std::memory_order_relaxed);
  g_eventTotal.store(0, std::memory_order_relaxed);
  for (HeldLock& l : g_locks) l.active = false;
  g_runActive.store(true, std::memory_order_release);
}

void endRun() { g_runActive.store(false, std::memory_order_release); }

bool claim(const void* runtime) {
  if (!armed()) return false;
  const void* expected = nullptr;
  return g_owner.compare_exchange_strong(expected,
                                         runtime,
                                         std::memory_order_acq_rel) ||
         expected == runtime;
}

void release(const void* runtime) {
  const void* expected = runtime;
  g_owner.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel);
}

bool isOwner(const void* runtime) {
  return runtime != nullptr &&
         g_owner.load(std::memory_order_acquire) == runtime;
}

void recordDecision(const void* runtime, ThreadId chosen) {
  if (!isOwner(runtime)) return;
  std::uint32_t n = g_decisionCount.load(std::memory_order_relaxed);
  if (n >= kMaxDecisions) {
    g_truncated.store(true, std::memory_order_relaxed);
    return;
  }
  g_decisions[n] = chosen;
  g_decisionIsStore[n] = 0;
  // Publish after the slot is written: a handler interrupting here sees a
  // consistent prefix.
  g_decisionCount.store(n + 1, std::memory_order_release);
}

void recordStorePick(const void* runtime, std::uint32_t age) {
  if (!isOwner(runtime)) return;
  std::uint32_t n = g_decisionCount.load(std::memory_order_relaxed);
  if (n >= kMaxDecisions) {
    g_truncated.store(true, std::memory_order_relaxed);
    return;
  }
  g_decisions[n] = age;
  g_decisionIsStore[n] = 1;
  g_storePicks.store(g_storePicks.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  g_decisionCount.store(n + 1, std::memory_order_release);
}

void recordEvent(const void* runtime, EventKind kind, ThreadId thread,
                 ObjectId object) {
  if (!isOwner(runtime)) return;
  std::uint64_t n = g_eventTotal.load(std::memory_order_relaxed);
  EventEntry& e = g_events[n % kEventRing];
  e.kind = static_cast<std::uint8_t>(kind);
  e.thread = thread;
  e.object = object;
  g_eventTotal.store(n + 1, std::memory_order_release);
}

void lockAcquired(const void* runtime, ObjectId object, ThreadId holder) {
  if (!isOwner(runtime)) return;
  for (HeldLock& l : g_locks) {
    if (!l.active) {
      l.object = object;
      l.holder = holder;
      l.active = true;
      return;
    }
  }
}

void lockReleased(const void* runtime, ObjectId object) {
  if (!isOwner(runtime)) return;
  for (HeldLock& l : g_locks) {
    if (l.active && l.object == object) {
      l.active = false;
      return;
    }
  }
}

int dumpNow(int signo) {
  if (!armed() || !g_runActive.load(std::memory_order_acquire)) return -1;
#if MTT_FR_POSIX
  int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return -1;
  Writer w;
  w.fd = fd;

  // A valid scenario: magic, header, decision list, "end".  Runs without
  // store picks dump the historical v2 format byte-for-byte.
  std::uint32_t n = g_decisionCount.load(std::memory_order_acquire);
  bool v3 = g_storePicks.load(std::memory_order_relaxed) != 0;
  w.put(v3 ? "MTTSCHED 3\n" : "MTTSCHED 2\n");
  w.put(g_header);
  w.put("decisions ");
  w.putU64(n);
  w.put("\n");
  for (std::uint32_t i = 0; i < n; ++i) {
    if (g_decisionIsStore[i]) w.put("s ");
    w.putU64(g_decisions[i]);
    w.put("\n");
  }
  w.put("end\n");

  // Annotations past the trailer: loadScenario stops at "end", so the file
  // stays replayable while carrying the postmortem diagnostics.
  w.put("postmortem signal ");
  w.putU64(static_cast<std::uint64_t>(signo < 0 ? 0 : signo));
  w.put("\n");
  if (g_truncated.load(std::memory_order_relaxed)) w.put("truncated\n");
  for (const HeldLock& l : g_locks) {
    if (!l.active) continue;
    w.put("heldlock ");
    w.putU64(l.object);
    w.put(" ");
    w.putU64(l.holder);
    w.put("\n");
  }
  std::uint64_t total = g_eventTotal.load(std::memory_order_acquire);
  std::uint64_t first = total > kEventRing ? total - kEventRing : 0;
  for (std::uint64_t i = first; i < total; ++i) {
    const EventEntry& e = g_events[i % kEventRing];
    w.put("event ");
    w.put(to_string(static_cast<EventKind>(e.kind)).data(),
          to_string(static_cast<EventKind>(e.kind)).size());
    w.put(" ");
    w.putU64(e.thread);
    w.put(" ");
    w.putU64(e.object);
    w.put("\n");
  }
  w.put("endpostmortem\n");
  w.flush();
  ::close(fd);
  return w.failed ? -1 : 0;
#else
  (void)signo;
  return -1;
#endif
}

#if MTT_FR_POSIX
namespace {

void fatalHandler(int signo) {
  dumpNow(signo);
  // SA_RESETHAND restored the default disposition: re-raising terminates
  // the process with the original signal, so the farm parent still
  // observes the crash.
  ::raise(signo);
}

void drainHandler(int signo) {
  dumpNow(signo);
  ::_exit(126);
}

}  // namespace
#endif

void installCrashHandlers() {
#if MTT_FR_POSIX
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = fatalHandler;
  sa.sa_flags = SA_RESETHAND;
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &sa, nullptr);
  }
  sa.sa_handler = drainHandler;
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
#endif
}

}  // namespace mtt::rt::fr
