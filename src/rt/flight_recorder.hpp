// Postmortem flight recorder: async-signal-safe export of the in-progress
// schedule recording.
//
// A controlled run that segfaults, aborts, or is killed by the watchdog
// used to deliver nothing to triage — the schedule that produced the crash
// died with the worker.  The flight recorder closes that loop: while a run
// is in progress it mirrors every scheduling decision into a preallocated
// buffer, and a fatal-signal handler (or the SIGTERM drain the farm parent
// sends before SIGKILL) dumps the partial recording as a valid scenario
// file (v2, or v3 when the run recorded store-observation picks),
// annotated (after the "end" trailer, which the scenario loader
// ignores) with the signal, the last-N-events ring, and the held-lock set.
// The dumped file replays directly: `mtt replay` / `mtt shrink` accept it.
//
// Signal-safety rules (DESIGN.md "Durability & postmortem"):
//  * all buffers are preallocated; the handler never allocates,
//  * the scenario header is preformatted at beginRun (snprintf is not
//    async-signal-safe), the handler only formats integers,
//  * the dump uses open/write/close exclusively,
//  * decision count is published with release stores so a handler that
//    interrupts the recording thread reads a consistent prefix.
//
// The recorder is process-global with a single run slot (claim/release):
// it exists for the forked-worker model, where each worker process runs
// one run at a time.  In-process use (thread model) is unsupported —
// claim() simply fails for a second concurrent runtime and those runs are
// not recorded.
#pragma once

#include <cstdint>

#include "core/event.hpp"
#include "core/ids.hpp"

namespace mtt::rt::fr {

/// Campaign-side identity of the run, preformatted into the scenario
/// header.  Pointers must stay valid for the duration of the beginRun call
/// only (the text is copied).
struct RunMeta {
  const char* program = "";
  std::uint64_t seed = 0;
  const char* policy = "";
  const char* noise = "";
  double strength = 0.0;
};

/// Arms the recorder: partial recordings will be dumped to `dumpPath` on a
/// fatal signal or an explicit dumpNow.  Idempotent; not thread-safe
/// against concurrent runs (arm before the first run).
void arm(const char* dumpPath);
bool armed();
void disarm();

/// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump the partial
/// recording and re-raise (the process still dies with the original
/// signal, so the farm parent observes the crash), plus a SIGTERM drain
/// handler that dumps and _exit(126)s — the parent watchdog sends SIGTERM
/// before SIGKILL to collect a witness from a hung run.  POSIX only; a
/// no-op elsewhere.
void installCrashHandlers();

/// Marks a run in progress and preformats its scenario header.  Resets the
/// decision buffer, event ring, and held-lock table.
void beginRun(const RunMeta& meta);
/// Marks the run finished: later signals dump nothing (a run that ended
/// cleanly needs no postmortem).
void endRun();

/// Binds the single recording slot to `runtime`; false when the recorder
/// is disarmed or another runtime holds the slot.
bool claim(const void* runtime);
void release(const void* runtime);
bool isOwner(const void* runtime);

/// Mirrors one committed scheduling decision (the post-correction pick, so
/// the dump matches what a RecordingPolicy would have recorded).
void recordDecision(const void* runtime, ThreadId chosen);
/// Mirrors one committed store-observation pick (weak-memory runs).  A
/// dump containing at least one store pick is written as a v3 scenario
/// ("s <idx>" decision lines); otherwise the dump stays byte-identical to
/// the historical v2 format.
void recordStorePick(const void* runtime, std::uint32_t age);
/// Feeds the last-N-events diagnostic ring.
void recordEvent(const void* runtime, EventKind kind, ThreadId thread,
                 ObjectId object);
/// Held-lock set maintenance (callers hold the scheduler lock).
void lockAcquired(const void* runtime, ObjectId object, ThreadId holder);
void lockReleased(const void* runtime, ObjectId object);

/// Dumps the current partial recording to the armed path.  Async-signal-
/// safe.  Returns 0 on success, -1 when disarmed, no run is active, or the
/// write failed.  `signo` (0 for an explicit drain) lands in the
/// postmortem annotations.
int dumpNow(int signo);

/// Capacity of the decision buffer; recordings past it set the
/// "truncated" annotation instead of growing.
inline constexpr std::uint32_t kMaxDecisions = 1u << 20;
/// Size of the last-events diagnostic ring.
inline constexpr std::uint32_t kEventRing = 64;
/// Capacity of the held-lock table.
inline constexpr std::uint32_t kMaxHeldLocks = 256;

}  // namespace mtt::rt::fr
