#include "rt/harness.hpp"

namespace mtt::rt {

std::unique_ptr<Runtime> makeRuntime(RuntimeMode mode,
                                     std::unique_ptr<SchedulePolicy> policy) {
  if (mode == RuntimeMode::Controlled) {
    return std::make_unique<ControlledRuntime>(std::move(policy));
  }
  return std::make_unique<NativeRuntime>();
}

RunResult runOnce(RuntimeMode mode, std::function<void(Runtime&)> body,
                  const RunOptions& opts,
                  const std::vector<Listener*>& listeners,
                  std::unique_ptr<SchedulePolicy> policy) {
  auto rt = makeRuntime(mode, std::move(policy));
  for (Listener* l : listeners) rt->hooks().add(l);
  return rt->run(std::move(body), opts);
}

}  // namespace mtt::rt
