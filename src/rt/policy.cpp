#include "rt/policy.hpp"

#include <algorithm>

namespace mtt::rt {

namespace {

bool contains(std::span<const ThreadId> ids, ThreadId t) {
  return std::find(ids.begin(), ids.end(), t) != ids.end();
}

/// Lowest enabled id strictly greater than `current`, wrapping to the lowest
/// overall.  `enabled` is sorted ascending and non-empty.
ThreadId nextAfter(std::span<const ThreadId> enabled, ThreadId current) {
  for (ThreadId t : enabled) {
    if (t > current) return t;
  }
  return enabled.front();
}

/// Namespace of an operation's object id: object ids are allocated per
/// primitive kind, so (class, id) — not id alone — names an object.
enum class ObjClass : std::uint8_t {
  None, Mutex, Cond, Sem, Barrier, Rw, Var, Thread, Queue, Atomic
};

ObjClass classOf(OpKind k) {
  switch (k) {
    case OpKind::MutexLock:
    case OpKind::MutexTryLock:
    case OpKind::MutexUnlock:
      return ObjClass::Mutex;
    case OpKind::CondWait:
    case OpKind::CondSignal:
    case OpKind::CondBroadcast:
      return ObjClass::Cond;
    case OpKind::SemAcquire:
    case OpKind::SemTryAcquire:
    case OpKind::SemRelease:
      return ObjClass::Sem;
    case OpKind::BarrierArrive:
      return ObjClass::Barrier;
    case OpKind::RwRead:
    case OpKind::RwWrite:
    case OpKind::RwUnlockRead:
    case OpKind::RwUnlockWrite:
      return ObjClass::Rw;
    case OpKind::VarRead:
    case OpKind::VarWrite:
      return ObjClass::Var;
    case OpKind::Join:
      return ObjClass::Thread;
    case OpKind::Task:
      return ObjClass::Queue;
    case OpKind::AtomicLoad:
    case OpKind::AtomicStore:
    case OpKind::AtomicRMW:
      return ObjClass::Atomic;
    default:
      return ObjClass::None;
  }
}

struct Touch {
  ObjClass cls;
  ObjectId id;
  OpKind kind;
};

/// The (class, id) pairs an operation touches — at most two (CondWait
/// releases and reacquires its mutex alongside the condvar).
int touchesOf(const PendingOpInfo& o, Touch out[2]) {
  int n = 0;
  ObjClass c = classOf(o.kind);
  if (c != ObjClass::None) out[n++] = {c, o.object, o.kind};
  if (o.kind == OpKind::CondWait) {
    out[n++] = {ObjClass::Mutex, o.object2, OpKind::MutexLock};
  }
  return n;
}

/// Both operations touch a common object with a non-commuting access pair.
bool conflictOn(const PendingOpInfo& a, const PendingOpInfo& b) {
  Touch ta[2], tb[2];
  const int na = touchesOf(a, ta);
  const int nb = touchesOf(b, tb);
  for (int i = 0; i < na; ++i) {
    for (int j = 0; j < nb; ++j) {
      if (ta[i].cls != tb[j].cls || ta[i].id != tb[j].id) continue;
      // Read-read pairs commute; everything else on a shared object may not.
      if (ta[i].kind == OpKind::VarRead && tb[j].kind == OpKind::VarRead) {
        continue;
      }
      // Atomic loads of the same object do NOT commute under the
      // store-buffer runtime: the observable-store set a load is offered
      // depends on the loading thread's coherence floor, which the other
      // load advances.  Keep them dependent (conservative and sound).
      if (ta[i].kind == OpKind::RwRead && tb[j].kind == OpKind::RwRead) {
        continue;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::ThreadStart: return "ThreadStart";
    case OpKind::Spawn: return "Spawn";
    case OpKind::MutexLock: return "MutexLock";
    case OpKind::MutexTryLock: return "MutexTryLock";
    case OpKind::MutexUnlock: return "MutexUnlock";
    case OpKind::CondWait: return "CondWait";
    case OpKind::CondSignal: return "CondSignal";
    case OpKind::CondBroadcast: return "CondBroadcast";
    case OpKind::SemAcquire: return "SemAcquire";
    case OpKind::SemTryAcquire: return "SemTryAcquire";
    case OpKind::SemRelease: return "SemRelease";
    case OpKind::BarrierArrive: return "BarrierArrive";
    case OpKind::RwRead: return "RwRead";
    case OpKind::RwWrite: return "RwWrite";
    case OpKind::RwUnlockRead: return "RwUnlockRead";
    case OpKind::RwUnlockWrite: return "RwUnlockWrite";
    case OpKind::Join: return "Join";
    case OpKind::VarRead: return "VarRead";
    case OpKind::VarWrite: return "VarWrite";
    case OpKind::Task: return "Task";
    case OpKind::AtomicLoad: return "AtomicLoad";
    case OpKind::AtomicStore: return "AtomicStore";
    case OpKind::AtomicRMW: return "AtomicRMW";
    case OpKind::Fence: return "Fence";
    case OpKind::Yield: return "Yield";
    case OpKind::Sleep: return "Sleep";
    case OpKind::Finish: return "Finish";
  }
  return "?";
}

std::string describe(const PendingOpInfo& op) {
  const char* tag = nullptr;
  switch (classOf(op.kind)) {
    case ObjClass::Mutex: tag = "m"; break;
    case ObjClass::Cond: tag = "c"; break;
    case ObjClass::Sem: tag = "s"; break;
    case ObjClass::Barrier: tag = "b"; break;
    case ObjClass::Rw: tag = "rw"; break;
    case ObjClass::Var: tag = "v"; break;
    case ObjClass::Thread: tag = "t"; break;
    case ObjClass::Queue: tag = "q"; break;
    case ObjClass::Atomic: tag = "a"; break;
    case ObjClass::None: break;
  }
  std::string s = to_string(op.kind);
  if (tag != nullptr) {
    s += "(";
    s += tag;
    s += std::to_string(op.object);
    if (op.kind == OpKind::CondWait) {
      s += ",m" + std::to_string(op.object2);
    }
    s += ")";
  }
  return s;
}

bool independent(const PendingOpInfo& a, const PendingOpInfo& b) {
  if (a.thread == b.thread) return false;
  // Spawn/Spawn: thread-id assignment order is visible state.
  if (a.kind == OpKind::Spawn && b.kind == OpKind::Spawn) return false;
  // Finish enables the Join waiting on that thread.
  if (a.kind == OpKind::Finish && b.kind == OpKind::Join &&
      b.object == a.thread) {
    return false;
  }
  if (b.kind == OpKind::Finish && a.kind == OpKind::Join &&
      a.object == b.thread) {
    return false;
  }
  // A fence changes the visibility frontier of every atomic operation (it
  // promotes/absorbs release-acquire edges and joins the SC order), so it
  // commutes with nothing atomic — including other fences.
  auto fenceLike = [](OpKind k) {
    return k == OpKind::Fence || k == OpKind::AtomicLoad ||
           k == OpKind::AtomicStore || k == OpKind::AtomicRMW;
  };
  if ((a.kind == OpKind::Fence && fenceLike(b.kind)) ||
      (b.kind == OpKind::Fence && fenceLike(a.kind))) {
    return false;
  }
  return !conflictOn(a, b);
}

ThreadId RoundRobinPolicy::pick(const PickContext& ctx) {
  if (!ctx.currentYielding && contains(ctx.enabled, ctx.current)) {
    return ctx.current;
  }
  return nextAfter(ctx.enabled, ctx.current);
}

ThreadId RandomPolicy::pick(const PickContext& ctx) {
  if (switchProb_ < 1.0 && contains(ctx.enabled, ctx.current) &&
      !ctx.currentYielding && !rng_.chance(switchProb_)) {
    return ctx.current;
  }
  return ctx.enabled[rng_.below(ctx.enabled.size())];
}

std::uint32_t RandomPolicy::pickStore(const StorePickContext& ctx) {
  return static_cast<std::uint32_t>(rng_.below(ctx.options.size()));
}

void PriorityPolicy::onRunStart(std::uint64_t seed) {
  rng_ = Rng(seed);
  priority_.assign(2, 0);
  nextPriority_ = 0;
  lastStep_ = 0;
  window_ = fixedWindow_ != 0 ? fixedWindow_ : estimate_;
  changeAt_.clear();
  // Spread the d priority-change points over the run-length window.
  for (int i = 0; i < changePoints_; ++i) {
    changeAt_.push_back(rng_.below(window_) + 1);
  }
  std::sort(changeAt_.begin(), changeAt_.end());
}

std::uint32_t PriorityPolicy::pickStore(const StorePickContext& ctx) {
  // Store choices are orthogonal to the thread-priority machinery: sample
  // uniformly so PCT hunts cover the weak-memory axis too.  The draw comes
  // from the same per-run rng, so runs stay deterministic per seed.
  return static_cast<std::uint32_t>(rng_.below(ctx.options.size()));
}

void PriorityPolicy::onRunEnd() {
  if (fixedWindow_ != 0) return;
  // Fold the observed run length into the adaptive k estimate: jump up to a
  // longer run immediately, decay toward shorter ones gradually.
  const std::uint64_t observed = lastStep_ + 1;
  estimate_ = std::max<std::uint64_t>(
      {16, observed, (estimate_ + observed + 1) / 2});
}

std::uint64_t PriorityPolicy::priorityFor(ThreadId t) {
  if (t >= priority_.size()) priority_.resize(t + 1, 0);
  if (priority_[t] == 0) {
    // Fresh threads draw a random high priority band; ties broken by id.
    priority_[t] = (rng_.below(1u << 20) << 16) | t;
  }
  return priority_[t];
}

ThreadId PriorityPolicy::pick(const PickContext& ctx) {
  lastStep_ = ctx.step;
  if (fixedWindow_ == 0 && !changeAt_.empty() && ctx.step > window_) {
    // The run outlived the estimated length: double the window and re-spread
    // the unconsumed change points over the extension, instead of letting
    // them all fire in an immediate burst (which would concentrate the
    // priority drops at one point and void the PCT guarantee).
    const std::size_t left = changeAt_.size();
    const std::uint64_t lo = window_ + 1;
    window_ *= 2;
    changeAt_.clear();
    for (std::size_t i = 0; i < left; ++i) {
      changeAt_.push_back(lo + rng_.below(window_ - lo + 1));
    }
    std::sort(changeAt_.begin(), changeAt_.end());
  }
  if (!changeAt_.empty() && ctx.step >= changeAt_.front()) {
    changeAt_.erase(changeAt_.begin());
    if (ctx.current != kNoThread) {
      // Drop the running thread below every band; nextPriority_ keeps later
      // drops even lower so the order of drops is preserved.
      if (ctx.current >= priority_.size()) priority_.resize(ctx.current + 1, 0);
      priority_[ctx.current] = ++nextPriority_;
    }
  }
  ThreadId best = ctx.enabled.front();
  std::uint64_t bestPrio = 0;
  for (ThreadId t : ctx.enabled) {
    std::uint64_t p = priorityFor(t);
    if (p >= bestPrio) {
      bestPrio = p;
      best = t;
    }
  }
  return best;
}

void POSPolicy::onRunStart(std::uint64_t seed) {
  rng_ = Rng(seed);
  prio_.assign(2, 0);
  assignedFor_.assign(2, PendingOpInfo{});
}

std::uint64_t POSPolicy::freshPriority() {
  std::uint64_t p;
  do {
    p = rng_.next();
  } while (p == 0);  // 0 is the "unassigned" sentinel
  return p;
}

ThreadId POSPolicy::pick(const PickContext& ctx) {
  if (ctx.ops.empty()) {
    // Hand-built context without descriptors: fall back to uniform random.
    return ctx.enabled[rng_.below(ctx.enabled.size())];
  }
  // Assign priorities to operations seen for the first time (or to threads
  // whose pending operation changed since the last assignment).
  const std::size_t maxId = ctx.enabled.back();
  if (maxId >= prio_.size()) {
    prio_.resize(maxId + 1, 0);
    assignedFor_.resize(maxId + 1, PendingOpInfo{});
  }
  for (std::size_t i = 0; i < ctx.enabled.size(); ++i) {
    const ThreadId t = ctx.enabled[i];
    const PendingOpInfo& op = ctx.ops[i];
    if (prio_[t] == 0 || !(assignedFor_[t] == op)) {
      prio_[t] = freshPriority();
      assignedFor_[t] = op;
    }
  }
  // Execute the highest-priority enabled operation (ties, which are
  // astronomically unlikely, break toward the higher thread id).
  ThreadId best = ctx.enabled.front();
  std::uint64_t bestPrio = 0;
  for (ThreadId t : ctx.enabled) {
    if (prio_[t] >= bestPrio) {
      bestPrio = prio_[t];
      best = t;
    }
  }
  // Reassignment: the chosen operation executes (its thread's next op draws
  // fresh), and every enabled operation racing with it re-rolls, so each
  // racing pair's ordering is re-randomized as the race resolves.
  const PendingOpInfo chosen = *ctx.opOf(best);
  prio_[best] = 0;
  for (std::size_t i = 0; i < ctx.enabled.size(); ++i) {
    const ThreadId t = ctx.enabled[i];
    if (t == best) continue;
    if (!independent(ctx.ops[i], chosen)) {
      prio_[t] = freshPriority();
      assignedFor_[t] = ctx.ops[i];
    }
  }
  return best;
}

std::uint32_t POSPolicy::pickStore(const StorePickContext& ctx) {
  // Same rationale as PriorityPolicy: a uniform draw per store-choice point.
  return static_cast<std::uint32_t>(rng_.below(ctx.options.size()));
}

bool Schedule::threadPicksOnly() const {
  for (const Decision& d : decisions) {
    if (!d.isThread()) return false;
  }
  return true;
}

std::vector<ThreadId> Schedule::threadPicks() const {
  std::vector<ThreadId> out;
  out.reserve(decisions.size());
  for (const Decision& d : decisions) {
    if (d.isThread()) out.push_back(static_cast<ThreadId>(d.value));
  }
  return out;
}

Schedule Schedule::fromThreads(const std::vector<ThreadId>& ids) {
  Schedule s;
  s.decisions.reserve(ids.size());
  for (ThreadId t : ids) s.decisions.push_back(Decision::thread(t));
  return s;
}

void RecordingPolicy::onRunStart(std::uint64_t seed) {
  schedule_.decisions.clear();
  inner_->onRunStart(seed);
}

ThreadId RecordingPolicy::pick(const PickContext& ctx) {
  ThreadId t = inner_->pick(ctx);
  schedule_.decisions.push_back(Decision::thread(t));
  return t;
}

std::uint32_t RecordingPolicy::pickStore(const StorePickContext& ctx) {
  std::uint32_t age = inner_->pickStore(ctx);
  // Clamp exactly like the runtime does before recording, so the recorded
  // decision is the committed one and a replay never diverges on it.
  if (age >= ctx.options.size()) age = 0;
  schedule_.decisions.push_back(Decision::store(age));
  return age;
}

void ReplayPolicy::onRunStart(std::uint64_t seed) {
  (void)seed;
  next_ = 0;
  diverged_ = false;
  divergenceStep_ = 0;
}

ThreadId ReplayPolicy::pick(const PickContext& ctx) {
  if (!diverged_) {
    if (next_ >= schedule_.decisions.size() ||
        !schedule_.decisions[next_].isThread()) {
      // Exhausted, or the schedule expects a store choice here: the run no
      // longer matches the recording.
      diverged_ = true;
      divergenceStep_ = ctx.step;
    } else {
      auto want = static_cast<ThreadId>(schedule_.decisions[next_].value);
      if (contains(ctx.enabled, want)) {
        ++next_;
        return want;
      }
      diverged_ = true;
      divergenceStep_ = ctx.step;
    }
  }
  return fallback_.pick(ctx);
}

std::uint32_t ReplayPolicy::pickStore(const StorePickContext& ctx) {
  if (!diverged_) {
    if (next_ < schedule_.decisions.size() &&
        schedule_.decisions[next_].isStore() &&
        schedule_.decisions[next_].value < ctx.options.size()) {
      return schedule_.decisions[next_++].value;
    }
    diverged_ = true;
    divergenceStep_ = ctx.step;
  }
  // Observe-newest is the deterministic fallback (the SC value).
  return 0;
}

}  // namespace mtt::rt
