#include "rt/policy.hpp"

#include <algorithm>

namespace mtt::rt {

namespace {

bool contains(std::span<const ThreadId> ids, ThreadId t) {
  return std::find(ids.begin(), ids.end(), t) != ids.end();
}

/// Lowest enabled id strictly greater than `current`, wrapping to the lowest
/// overall.  `enabled` is sorted ascending and non-empty.
ThreadId nextAfter(std::span<const ThreadId> enabled, ThreadId current) {
  for (ThreadId t : enabled) {
    if (t > current) return t;
  }
  return enabled.front();
}

}  // namespace

ThreadId RoundRobinPolicy::pick(const PickContext& ctx) {
  if (!ctx.currentYielding && contains(ctx.enabled, ctx.current)) {
    return ctx.current;
  }
  return nextAfter(ctx.enabled, ctx.current);
}

ThreadId RandomPolicy::pick(const PickContext& ctx) {
  if (switchProb_ < 1.0 && contains(ctx.enabled, ctx.current) &&
      !ctx.currentYielding && !rng_.chance(switchProb_)) {
    return ctx.current;
  }
  return ctx.enabled[rng_.below(ctx.enabled.size())];
}

void PriorityPolicy::onRunStart(std::uint64_t seed) {
  rng_ = Rng(seed);
  priority_.assign(2, 0);
  nextPriority_ = 0;
  changeAt_.clear();
  // Spread the priority-change points over a window of plausible run length;
  // re-rolled lazily as the run grows past the window.
  for (int i = 0; i < changePoints_; ++i) {
    changeAt_.push_back(rng_.below(expectedSteps_) + 1);
  }
  std::sort(changeAt_.begin(), changeAt_.end());
}

std::uint64_t PriorityPolicy::priorityFor(ThreadId t) {
  if (t >= priority_.size()) priority_.resize(t + 1, 0);
  if (priority_[t] == 0) {
    // Fresh threads draw a random high priority band; ties broken by id.
    priority_[t] = (rng_.below(1u << 20) << 16) | t;
  }
  return priority_[t];
}

ThreadId PriorityPolicy::pick(const PickContext& ctx) {
  if (!changeAt_.empty() && ctx.step >= changeAt_.front()) {
    changeAt_.erase(changeAt_.begin());
    if (ctx.current != kNoThread) {
      // Drop the running thread below every band; nextPriority_ keeps later
      // drops even lower so the order of drops is preserved.
      if (ctx.current >= priority_.size()) priority_.resize(ctx.current + 1, 0);
      priority_[ctx.current] = ++nextPriority_;
    }
  }
  ThreadId best = ctx.enabled.front();
  std::uint64_t bestPrio = 0;
  for (ThreadId t : ctx.enabled) {
    std::uint64_t p = priorityFor(t);
    if (p >= bestPrio) {
      bestPrio = p;
      best = t;
    }
  }
  return best;
}

void RecordingPolicy::onRunStart(std::uint64_t seed) {
  schedule_.decisions.clear();
  inner_->onRunStart(seed);
}

ThreadId RecordingPolicy::pick(const PickContext& ctx) {
  ThreadId t = inner_->pick(ctx);
  schedule_.decisions.push_back(t);
  return t;
}

void ReplayPolicy::onRunStart(std::uint64_t seed) {
  (void)seed;
  next_ = 0;
  diverged_ = false;
  divergenceStep_ = 0;
}

ThreadId ReplayPolicy::pick(const PickContext& ctx) {
  if (!diverged_) {
    if (next_ >= schedule_.decisions.size()) {
      diverged_ = true;
      divergenceStep_ = ctx.step;
    } else {
      ThreadId want = schedule_.decisions[next_];
      if (contains(ctx.enabled, want)) {
        ++next_;
        return want;
      }
      diverged_ = true;
      divergenceStep_ = ctx.step;
    }
  }
  return fallback_.pick(ctx);
}

}  // namespace mtt::rt
