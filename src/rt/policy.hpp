// Schedule policies for the controlled runtime.
//
// At every visible operation the controlled runtime asks its SchedulePolicy
// which enabled pending operation executes next.  Policies are the place
// where "the behaviour of other possible schedulers" (paper, Section 2.2) is
// simulated:
//  * RoundRobinPolicy — the deterministic scheduler of "the simple conditions
//    of unit testing" where "executing the same tests repeatedly does not
//    help"; it runs a thread until it blocks, yields or finishes.
//  * RandomPolicy     — a uniformly random scheduler; every decision point
//    picks uniformly among enabled threads.
//  * PriorityPolicy   — PCT (Probabilistic Concurrency Testing): random
//    thread priorities plus d priority-change points over an adaptively
//    estimated run length k.
//  * POSPolicy        — Partial Order Sampling: per-*operation* random
//    priorities, reassigned for racing (dependent) operations.
//  * RecordingPolicy  — decorator capturing the decision sequence (the
//    record phase of replay).
//  * ReplayPolicy     — re-applies a recorded decision sequence (the playback
//    phase); detects divergence.
// Systematic exploration drives its own policy (mtt::explore::ExplorerPolicy).
//
// Choice-point API v2: alongside the enabled thread ids, PickContext carries
// a PendingOpInfo descriptor per enabled thread (abstract operation kind +
// object id) and the independent() predicate over descriptors — the
// information POS, sleep-set pruning, and other partial-order-aware
// algorithms need.
//
// Decision API v3 (weak memory): a schedule is no longer a bare ThreadId
// vector.  Under the store-buffer runtime an atomic load whose
// observable-store set has several elements is itself a choice point, so a
// recorded run interleaves two decision kinds: ThreadPick (which enabled
// thread runs) and StorePick (which observable store a load reads).  Both
// are carried by the tagged Decision type below; policies answer StorePicks
// via pickStore(), which defaults to "observe the coherence-newest store" —
// exactly sequentially-consistent behaviour — so SC-only programs record
// zero StorePicks and every pre-v3 schedule, scenario file, and journal
// stays byte-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"

namespace mtt::rt {

/// Abstract kind of the operation an enabled thread is about to perform.
/// This is the policy-facing projection of the runtime's internal pending-op
/// descriptor: enough structure to reason about commutativity, nothing about
/// call sites or runtime internals.
enum class OpKind : std::uint8_t {
  ThreadStart,   ///< first scheduling of a spawned thread
  Spawn,         ///< about to create a thread (assigns the next ThreadId)
  MutexLock,     ///< object = mutex
  MutexTryLock,  ///< object = mutex
  MutexUnlock,   ///< object = mutex
  CondWait,      ///< object = condvar, object2 = the mutex it releases
  CondSignal,    ///< object = condvar
  CondBroadcast, ///< object = condvar
  SemAcquire,    ///< object = semaphore
  SemTryAcquire, ///< object = semaphore
  SemRelease,    ///< object = semaphore
  BarrierArrive, ///< object = barrier
  RwRead,        ///< object = rwlock (shared acquire)
  RwWrite,       ///< object = rwlock (exclusive acquire)
  RwUnlockRead,  ///< object = rwlock
  RwUnlockWrite, ///< object = rwlock
  Join,          ///< object = joined ThreadId
  VarRead,       ///< object = instrumented variable
  VarWrite,      ///< object = instrumented variable
  Task,          ///< event-loop task boundary; object = loop/queue id
  AtomicLoad,    ///< object = instrumented atomic
  AtomicStore,   ///< object = instrumented atomic
  AtomicRMW,     ///< object = instrumented atomic
  Fence,         ///< standalone memory fence (no object)
  Yield,         ///< voluntary yield (including injected noise)
  Sleep,         ///< sleep expiry (including injected noise)
  Finish,        ///< thread about to finish
};

const char* to_string(OpKind k);

/// Pending-operation descriptor for one enabled thread at a choice point.
struct PendingOpInfo {
  ThreadId thread = kNoThread;
  OpKind kind = OpKind::Yield;
  /// Primary object the operation touches (mutex/condvar/semaphore/barrier/
  /// rwlock/variable/queue id, or the target ThreadId for Join).  kNoObject
  /// for purely thread-local operations (yield, sleep, start, finish).
  ObjectId object = kNoObject;
  /// Secondary object: CondWait's released mutex; kNoObject otherwise.
  ObjectId object2 = kNoObject;

  friend bool operator==(const PendingOpInfo&, const PendingOpInfo&) = default;
};

/// "MutexLock(m3)", "SemAcquire(s1)", "Task(q7)", "Yield" — for logs/tests.
std::string describe(const PendingOpInfo& op);

/// Conservative independence (commutativity) predicate: true only when
/// executing `a` then `b` provably reaches the same state as `b` then `a`.
/// Operations of the same thread are never independent; object-scoped
/// operations are independent when their object sets are disjoint, or when
/// they share an object with compatible (read-read) access; thread-local
/// operations are independent with everything except the pairs that move
/// shared scheduler state (Spawn/Spawn id assignment, Finish vs. its Join).
bool independent(const PendingOpInfo& a, const PendingOpInfo& b);

/// Context handed to a policy at each decision point.
struct PickContext {
  /// Enabled pending operations, as thread ids sorted ascending.  Never
  /// empty when pick() is called.
  std::span<const ThreadId> enabled;
  /// Pending-operation descriptors parallel to `enabled` (ops[i] describes
  /// enabled[i]'s next operation).  May be empty for hand-built contexts;
  /// operation-aware policies must degrade gracefully then.
  std::span<const PendingOpInfo> ops;
  /// Thread that executed the previous operation (kNoThread at run start).
  ThreadId current = kNoThread;
  /// True when `current` is enabled and its pending operation is an explicit
  /// yield/sleep-expiry — i.e. the thread itself requested descheduling.
  bool currentYielding = false;
  /// Scheduling decisions taken so far in this run.
  std::uint64_t step = 0;

  /// Descriptor of thread `t`, or nullptr when descriptors are absent.
  const PendingOpInfo* opOf(ThreadId t) const {
    for (const PendingOpInfo& o : ops) {
      if (o.thread == t) return &o;
    }
    return nullptr;
  }
};

/// One observable store an atomic load may read, as shown to policies.
/// Options are ordered newest-first: options[0] is the coherence-newest
/// store — the value sequential consistency would deliver — and higher
/// indices are progressively staler stores still admitted by the runtime's
/// happens-before / coherence filter.
struct StoreOption {
  ThreadId storer = kNoThread;  ///< thread that performed the store
  std::uint64_t value = 0;      ///< stored value (raw 64-bit image)
  std::uint64_t stamp = 0;      ///< storer-local timestamp of the store
};

/// Context handed to a policy at a store-choice point: an atomic load whose
/// observable-store set has more than one element under the weak-memory
/// runtime.  Loads with a singleton set never consult the policy, so SC-only
/// programs see no store-choice points at all.
struct StorePickContext {
  ObjectId object = kNoObject;  ///< the atomic object being loaded
  ThreadId thread = kNoThread;  ///< the loading thread
  /// Observable stores, newest first; always size() >= 2 when a policy is
  /// consulted.
  std::span<const StoreOption> options;
  /// Scheduling decisions taken so far in this run (ThreadPicks and
  /// StorePicks combined).
  std::uint64_t step = 0;
};

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  /// Called once at the start of each run with the run's seed.
  virtual void onRunStart(std::uint64_t seed) { (void)seed; }
  /// Returns the thread whose pending operation executes next; must be a
  /// member of ctx.enabled.
  virtual ThreadId pick(const PickContext& ctx) = 0;
  /// Returns the index into ctx.options of the store the pending atomic
  /// load observes.  The default — index 0, the coherence-newest store — is
  /// exactly sequentially-consistent behaviour, so policies that predate the
  /// weak-memory runtime remain correct (and deterministic) unchanged.
  virtual std::uint32_t pickStore(const StorePickContext& ctx) {
    (void)ctx;
    return 0;
  }
  virtual void onRunEnd() {}
};

/// Deterministic cooperative scheduler: keeps running the current thread
/// while it is enabled and not yielding; otherwise the lowest-id enabled
/// thread strictly greater than current (wrapping).  Models the
/// "deterministic scheduler" of naive unit testing.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  ThreadId pick(const PickContext& ctx) override;
};

/// Uniformly random choice among enabled threads at every decision point.
class RandomPolicy final : public SchedulePolicy {
 public:
  /// With probability (1 - switchProbability) the current thread continues
  /// when enabled; 1.0 means a fully uniform pick at every point.
  explicit RandomPolicy(double switchProbability = 1.0)
      : switchProb_(switchProbability) {}
  void onRunStart(std::uint64_t seed) override { rng_ = Rng(seed); }
  ThreadId pick(const PickContext& ctx) override;
  /// Uniform draw over the observable stores (weak-memory choice points).
  std::uint32_t pickStore(const StorePickContext& ctx) override;

 private:
  double switchProb_;
  Rng rng_{0};
};

/// PCT (Probabilistic Concurrency Testing) priority scheduler: assigns
/// random priorities to threads and always runs the highest-priority enabled
/// thread; at d random decision points, the running thread's priority is
/// dropped below everyone else's.  For a bug of depth d, PCT guarantees a
/// manifestation probability of at least 1/(n·k^(d-1)) per run — provided
/// the change points are drawn from the actual run length k.
///
/// k handling (the "true PCT" part): with expectedSteps == 0 (the default)
/// the run-length estimate is adaptive — the draw window starts at 64,
/// doubles mid-run whenever the run outlives it (the remaining change points
/// are re-spread over the extension instead of degenerating into an
/// immediate burst), and onRunEnd() folds the observed run length into the
/// estimate the next run driven by this instance draws from.  A nonzero
/// expectedSteps pins k (the `pct:d=D,k=K` spelling).
class PriorityPolicy final : public SchedulePolicy {
 public:
  /// changePoints is PCT's d parameter (bug depth to target); expectedSteps
  /// is PCT's k, 0 meaning "estimate adaptively from prior runs".
  explicit PriorityPolicy(int changePoints = 3,
                          std::uint64_t expectedSteps = 0)
      : changePoints_(changePoints), fixedWindow_(expectedSteps) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  /// Uniform draw over the observable stores (weak-memory choice points).
  std::uint32_t pickStore(const StorePickContext& ctx) override;
  void onRunEnd() override;

  /// Current run-length estimate k (the next run's draw window).
  std::uint64_t runLengthEstimate() const {
    return fixedWindow_ != 0 ? fixedWindow_ : estimate_;
  }

 private:
  int changePoints_;
  Rng rng_{0};
  std::vector<std::uint64_t> priority_;  // indexed by ThreadId
  std::vector<std::uint64_t> changeAt_;  // steps at which to deprioritize
  std::uint64_t nextPriority_ = 0;
  std::uint64_t fixedWindow_;     // explicit k; 0 = adaptive
  std::uint64_t estimate_ = 64;   // adaptive k, learned across runs
  std::uint64_t window_ = 64;     // draw window of the current run
  std::uint64_t lastStep_ = 0;    // highest step seen this run
  std::uint64_t priorityFor(ThreadId t);
};

/// Partial Order Sampling (POS): every pending *operation* — not thread —
/// carries a uniformly random priority, and the highest-priority enabled
/// operation executes.  After each decision the executed operation's
/// priority is discarded (its thread's next operation draws fresh) and every
/// enabled operation racing with it (dependent per independent()) is
/// reassigned a fresh priority.  Reassignment is what gives POS its
/// near-uniform coverage of partial orders: the ordering of each racing pair
/// is re-randomized every time the race is about to resolve, instead of
/// being frozen by one priority draw at spawn time.  Degrades to a uniform
/// random pick when the context carries no operation descriptors.
class POSPolicy final : public SchedulePolicy {
 public:
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  /// Uniform draw over the observable stores (weak-memory choice points).
  std::uint32_t pickStore(const StorePickContext& ctx) override;

 private:
  std::uint64_t freshPriority();
  Rng rng_{0};
  std::vector<std::uint64_t> prio_;          // by ThreadId: pending op's prio
  std::vector<PendingOpInfo> assignedFor_;   // op the priority was drawn for
};

/// One recorded scheduling decision — the tagged unit of the Decision API.
///
/// ThreadPick carries the ThreadId whose pending operation executed;
/// StorePick carries the index into the observable-store set (newest first,
/// so 0 means "the SC value") an atomic load observed.  The controlled
/// runtime is deterministic given the same program and decision sequence, so
/// a vector of these is a complete schedule representation ("scenario" in
/// the paper's state-space-exploration terminology).
struct Decision {
  enum class Kind : std::uint8_t { ThreadPick, StorePick };
  Kind kind = Kind::ThreadPick;
  /// ThreadId for ThreadPick; observable-store index (0 = newest) for
  /// StorePick.
  std::uint32_t value = kNoThread;

  static constexpr Decision thread(ThreadId t) {
    return Decision{Kind::ThreadPick, t};
  }
  static constexpr Decision store(std::uint32_t age) {
    return Decision{Kind::StorePick, age};
  }
  constexpr bool isThread() const { return kind == Kind::ThreadPick; }
  constexpr bool isStore() const { return kind == Kind::StorePick; }

  friend constexpr bool operator==(const Decision&, const Decision&) = default;
};

/// The recorded decision sequence of one run.
struct Schedule {
  std::vector<Decision> decisions;
  bool empty() const { return decisions.empty(); }
  std::size_t size() const { return decisions.size(); }

  /// True when every decision is a ThreadPick — an SC-only schedule, which
  /// serializes in the pre-weak-memory scenario format byte-identically.
  bool threadPicksOnly() const;
  /// Thread ids of the ThreadPick decisions in order (StorePicks skipped).
  std::vector<ThreadId> threadPicks() const;
  /// Builds an SC-only schedule from bare thread ids.
  static Schedule fromThreads(const std::vector<ThreadId>& ids);
};

/// Decorator: forwards to an inner policy and records every decision (thread
/// picks and store picks, interleaved in the order the runtime asked).
class RecordingPolicy final : public SchedulePolicy {
 public:
  explicit RecordingPolicy(std::unique_ptr<SchedulePolicy> inner)
      : inner_(std::move(inner)) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  std::uint32_t pickStore(const StorePickContext& ctx) override;
  void onRunEnd() override { inner_->onRunEnd(); }
  const Schedule& schedule() const { return schedule_; }

  /// Pre-Decision-API accessor: the recorded thread picks as a bare id
  /// vector.  Superseded by schedule().decisions, which also carries the
  /// weak-memory StorePick decisions this projection silently drops.
  [[deprecated("use schedule().decisions (tagged Decision API)")]]
  std::vector<ThreadId> decisionThreads() const {
    return schedule_.threadPicks();
  }

 private:
  std::unique_ptr<SchedulePolicy> inner_;
  Schedule schedule_;
};

/// Replays a recorded schedule.  If the recorded decision does not fit the
/// choice point the runtime presents — the thread is not enabled, the
/// decision kinds misalign (a ThreadPick where the runtime asks for a store,
/// or vice versa), a StorePick index is out of range, or the schedule is
/// exhausted while the run continues — the policy marks divergence and falls
/// back to round-robin / observe-newest so the run still terminates.
class ReplayPolicy final : public SchedulePolicy {
 public:
  explicit ReplayPolicy(Schedule schedule) : schedule_(std::move(schedule)) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  std::uint32_t pickStore(const StorePickContext& ctx) override;
  bool diverged() const { return diverged_; }
  /// Step at which divergence occurred (meaningful only when diverged()).
  std::uint64_t divergenceStep() const { return divergenceStep_; }

 private:
  Schedule schedule_;
  std::size_t next_ = 0;
  bool diverged_ = false;
  std::uint64_t divergenceStep_ = 0;
  RoundRobinPolicy fallback_;
};

/// Non-owning adapter: lets a caller keep ownership of a policy (e.g. to
/// read a RecordingPolicy's schedule after the run) while the runtime holds
/// only this forwarding shim.
class PolicyRef final : public SchedulePolicy {
 public:
  explicit PolicyRef(SchedulePolicy& p) : p_(&p) {}
  void onRunStart(std::uint64_t seed) override { p_->onRunStart(seed); }
  ThreadId pick(const PickContext& ctx) override { return p_->pick(ctx); }
  std::uint32_t pickStore(const StorePickContext& ctx) override {
    return p_->pickStore(ctx);
  }
  void onRunEnd() override { p_->onRunEnd(); }

 private:
  SchedulePolicy* p_;
};

}  // namespace mtt::rt
