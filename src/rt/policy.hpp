// Schedule policies for the controlled runtime.
//
// At every visible operation the controlled runtime asks its SchedulePolicy
// which enabled pending operation executes next.  Policies are the place
// where "the behaviour of other possible schedulers" (paper, Section 2.2) is
// simulated:
//  * RoundRobinPolicy — the deterministic scheduler of "the simple conditions
//    of unit testing" where "executing the same tests repeatedly does not
//    help"; it runs a thread until it blocks, yields or finishes.
//  * RandomPolicy     — a uniformly random scheduler; every decision point
//    picks uniformly among enabled threads.
//  * RecordingPolicy  — decorator capturing the decision sequence (the
//    record phase of replay).
//  * ReplayPolicy     — re-applies a recorded decision sequence (the playback
//    phase); detects divergence.
// Systematic exploration drives its own policy (mtt::explore::ExplorerPolicy).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"

namespace mtt::rt {

/// Context handed to a policy at each decision point.
struct PickContext {
  /// Enabled pending operations, as thread ids sorted ascending.  Never
  /// empty when pick() is called.
  std::span<const ThreadId> enabled;
  /// Thread that executed the previous operation (kNoThread at run start).
  ThreadId current = kNoThread;
  /// True when `current` is enabled and its pending operation is an explicit
  /// yield/sleep-expiry — i.e. the thread itself requested descheduling.
  bool currentYielding = false;
  /// Scheduling decisions taken so far in this run.
  std::uint64_t step = 0;
};

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  /// Called once at the start of each run with the run's seed.
  virtual void onRunStart(std::uint64_t seed) { (void)seed; }
  /// Returns the thread whose pending operation executes next; must be a
  /// member of ctx.enabled.
  virtual ThreadId pick(const PickContext& ctx) = 0;
  virtual void onRunEnd() {}
};

/// Deterministic cooperative scheduler: keeps running the current thread
/// while it is enabled and not yielding; otherwise the lowest-id enabled
/// thread strictly greater than current (wrapping).  Models the
/// "deterministic scheduler" of naive unit testing.
class RoundRobinPolicy final : public SchedulePolicy {
 public:
  ThreadId pick(const PickContext& ctx) override;
};

/// Uniformly random choice among enabled threads at every decision point.
class RandomPolicy final : public SchedulePolicy {
 public:
  /// With probability (1 - switchProbability) the current thread continues
  /// when enabled; 1.0 means a fully uniform pick at every point.
  explicit RandomPolicy(double switchProbability = 1.0)
      : switchProb_(switchProbability) {}
  void onRunStart(std::uint64_t seed) override { rng_ = Rng(seed); }
  ThreadId pick(const PickContext& ctx) override;

 private:
  double switchProb_;
  Rng rng_{0};
};

/// PCT-inspired priority scheduler: assigns random priorities to threads at
/// run start and always runs the highest-priority enabled thread; at `depth`
/// random decision points, the running thread's priority is dropped below
/// everyone else's.  Good at exposing ordering bugs with few preemptions.
class PriorityPolicy final : public SchedulePolicy {
 public:
  /// changePoints ~ the bug depth to target plus one (PCT's d parameter);
  /// expectedSteps is the window the change points are drawn from — it
  /// should be on the order of the run's step count (PCT assumes the run
  /// length k is known; 64 suits the benchmark suite's small programs).
  explicit PriorityPolicy(int changePoints = 3,
                          std::uint64_t expectedSteps = 64)
      : changePoints_(changePoints), expectedSteps_(expectedSteps) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;

 private:
  int changePoints_;
  Rng rng_{0};
  std::vector<std::uint64_t> priority_;  // indexed by ThreadId
  std::vector<std::uint64_t> changeAt_;  // steps at which to deprioritize
  std::uint64_t nextPriority_ = 0;
  std::uint64_t expectedSteps_;
  std::uint64_t priorityFor(ThreadId t);
};

/// The recorded decision sequence of one run.  Decisions are thread ids; the
/// controlled runtime is deterministic given the same program and sequence,
/// so this is a complete schedule representation ("scenario" in the paper's
/// state-space-exploration terminology).
struct Schedule {
  std::vector<ThreadId> decisions;
  bool empty() const { return decisions.empty(); }
  std::size_t size() const { return decisions.size(); }
};

/// Decorator: forwards to an inner policy and records every decision.
class RecordingPolicy final : public SchedulePolicy {
 public:
  explicit RecordingPolicy(std::unique_ptr<SchedulePolicy> inner)
      : inner_(std::move(inner)) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  void onRunEnd() override { inner_->onRunEnd(); }
  const Schedule& schedule() const { return schedule_; }

 private:
  std::unique_ptr<SchedulePolicy> inner_;
  Schedule schedule_;
};

/// Replays a recorded schedule.  If the recorded thread is not enabled at
/// some step, or the schedule is exhausted while the run continues, the
/// policy marks divergence and falls back to round-robin so the run still
/// terminates.
class ReplayPolicy final : public SchedulePolicy {
 public:
  explicit ReplayPolicy(Schedule schedule) : schedule_(std::move(schedule)) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const PickContext& ctx) override;
  bool diverged() const { return diverged_; }
  /// Step at which divergence occurred (meaningful only when diverged()).
  std::uint64_t divergenceStep() const { return divergenceStep_; }

 private:
  Schedule schedule_;
  std::size_t next_ = 0;
  bool diverged_ = false;
  std::uint64_t divergenceStep_ = 0;
  RoundRobinPolicy fallback_;
};

/// Non-owning adapter: lets a caller keep ownership of a policy (e.g. to
/// read a RecordingPolicy's schedule after the run) while the runtime holds
/// only this forwarding shim.
class PolicyRef final : public SchedulePolicy {
 public:
  explicit PolicyRef(SchedulePolicy& p) : p_(&p) {}
  void onRunStart(std::uint64_t seed) override { p_->onRunStart(seed); }
  ThreadId pick(const PickContext& ctx) override { return p_->pick(ctx); }
  void onRunEnd() override { p_->onRunEnd(); }

 private:
  SchedulePolicy* p_;
};

}  // namespace mtt::rt
