#include "rt/runtime.hpp"

#include "rt/flight_recorder.hpp"

namespace mtt::rt {

std::string_view to_string(ObjectKind k) {
  switch (k) {
    case ObjectKind::Mutex: return "mutex";
    case ObjectKind::RwLock: return "rwlock";
    case ObjectKind::CondVar: return "condvar";
    case ObjectKind::Semaphore: return "semaphore";
    case ObjectKind::Barrier: return "barrier";
    case ObjectKind::Variable: return "variable";
    case ObjectKind::Thread: return "thread";
    case ObjectKind::TaskQueue: return "taskqueue";
    case ObjectKind::Atomic: return "atomic";
  }
  return "?";
}

std::string_view to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Completed: return "completed";
    case RunStatus::Deadlock: return "deadlock";
    case RunStatus::AssertFailed: return "assert-failed";
    case RunStatus::StepLimit: return "step-limit";
    case RunStatus::Timeout: return "timeout";
    case RunStatus::Crashed: return "crashed";
    case RunStatus::InfraError: return "infra-error";
  }
  return "?";
}

ObjectId Runtime::registerObject(ObjectKind kind, std::string name) {
  std::lock_guard<std::mutex> lk(objMu_);
  if (objects_.empty()) {
    objects_.push_back(ObjectInfo{ObjectKind::Variable, "<none>"});
  }
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(ObjectInfo{kind, std::move(name)});
  return id;
}

ObjectInfo Runtime::objectInfo(ObjectId id) const {
  std::lock_guard<std::mutex> lk(objMu_);
  if (id >= objects_.size()) return ObjectInfo{ObjectKind::Variable, "<?>"};
  return objects_[id];
}

std::size_t Runtime::objectCount() const {
  std::lock_guard<std::mutex> lk(objMu_);
  return objects_.empty() ? 0 : objects_.size() - 1;
}

std::uint64_t Runtime::emit(EventKind kind, ThreadId thread, ObjectId object,
                            Site s, std::uint32_t arg) {
  Event e;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  e.thread = thread;
  e.kind = kind;
  e.object = object;
  e.syncSite = s.id;
  e.access = access_of(kind);
  e.bugSite = s.bug;
  e.arg = arg;
  fr::recordEvent(this, kind, thread, object);
  if (!filter_ || filter_(e)) hooks_.dispatchEvent(e);
  return e.seq;
}

}  // namespace mtt::rt
