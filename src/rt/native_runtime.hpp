// NativeRuntime: real std::threads under the OS scheduler.
//
// Instrumentation points emit events inline on the executing thread, so a
// noise maker's delay (posted via Runtime::postNoise, applied immediately in
// this mode) delays exactly the thread that hit the point — the paper's
// native noise-making model.  Listeners may be invoked concurrently and must
// synchronize internally in this mode.
//
// Every blocking operation carries a watchdog (RunOptions::blockTimeout):
// a lock, condition wait, semaphore acquire, or barrier wait that exceeds it
// aborts the run with RunStatus::Deadlock, so native runs of deadlocking or
// lost-wakeup programs terminate and report instead of hanging the harness.
#pragma once

#include <atomic>
#include <thread>

#include "rt/runtime.hpp"

namespace mtt::rt {

/// Hook invoked before each instrumented operation in native mode; may
/// block the calling thread.  This is the mechanism partial replay uses to
/// force the recorded synchronization order (mtt::replay::SyncOrderEnforcer)
/// without any cooperation from the OS scheduler.
class PreOpGate {
 public:
  virtual ~PreOpGate() = default;
  /// kind is the operation's event-kind class (try-lock outcomes are not
  /// known yet and arrive as MutexTryLockOk).
  virtual void beforeOp(ThreadId t, EventKind kind, ObjectId obj) = 0;
};

class NativeRuntime final : public Runtime {
 public:
  NativeRuntime() = default;
  ~NativeRuntime() override;

  RuntimeMode mode() const override { return RuntimeMode::Native; }

  RunResult run(std::function<void(Runtime&)> body,
                const RunOptions& opts) override;

  /// Installs (or clears, with nullptr) the pre-operation gate.  Set before
  /// run(); the gate must outlive the run.
  void setPreOpGate(PreOpGate* gate) {
    gates_.clear();
    if (gate != nullptr) gates_.push_back(gate);
  }
  /// Appends a gate; gates run in installation order (e.g. an enforcer
  /// first, then a recorder observing the enforced order).
  void addPreOpGate(PreOpGate* gate) {
    if (gate != nullptr) gates_.push_back(gate);
  }

  ThreadId spawnThread(std::string name, std::function<void()> fn) override;
  void joinThread(ThreadId target, Site s) override;
  void reapThread(ThreadId target) noexcept override;
  ThreadId currentThread() const override;
  std::string threadName(ThreadId t) const override;
  void yieldNow(Site s) override;
  void sleepFor(std::chrono::microseconds d) override;
  void postNoise(const NoiseRequest& req) override;
  void fail(std::string msg) override;

  void mutexLock(MutexState& m, Site s) override;
  bool mutexTryLock(MutexState& m, Site s) override;
  void mutexUnlock(MutexState& m, Site s) override;
  void condWait(CondState& c, MutexState& m, Site s) override;
  void condSignal(CondState& c, Site s) override;
  void condBroadcast(CondState& c, Site s) override;
  void semAcquire(SemState& sem, Site s) override;
  bool semTryAcquire(SemState& sem, Site s) override;
  void semRelease(SemState& sem, std::uint32_t n, Site s) override;
  void barrierWait(BarrierState& b, Site s) override;
  void rwLockRead(RwState& rw, Site s) override;
  void rwUnlockRead(RwState& rw, Site s) override;
  void rwLockWrite(RwState& rw, Site s) override;
  void rwUnlockWrite(RwState& rw, Site s) override;
  void varAccess(ObjectId var, Access a, Site s) override;
  void evloopPoint(EventKind kind, ObjectId obj, Site s,
                   std::uint32_t arg) override;
  // Atomics run on the real std::atomic cell with the caller's memory
  // order: native mode provides no store-buffer simulation, the hardware's
  // weak behaviours are whatever the host exhibits.
  std::uint64_t atomicLoad(AtomicState& a, std::memory_order mo,
                           Site s) override;
  void atomicStore(AtomicState& a, std::uint64_t v, std::memory_order mo,
                   Site s) override;
  std::uint64_t atomicRmw(AtomicState& a, RmwOp op, std::uint64_t operand,
                          std::uint64_t expected, std::memory_order mo, Site s,
                          bool* ok) override;
  void atomicFence(std::memory_order mo, Site s) override;

 private:
  struct Tcb {
    ThreadId id = kNoThread;
    std::string name;
    std::atomic<bool> finished{false};
  };

  Tcb* currentTcb() const;
  void checkAbort() const;  // throws RunAborted when the run is aborting
  void gate(EventKind kind, ObjectId obj) {
    // Inert during aborts: teardown must not wait on replay ordering.
    if (!gates_.empty() && !abort_.load(std::memory_order_acquire)) {
      for (PreOpGate* g : gates_) g->beforeOp(currentThread(), kind, obj);
    }
  }
  // Records a watchdog expiry as a suspected deadlock and aborts.
  [[noreturn]] void watchdogFired(const std::string& waitingFor,
                                  ObjectId obj);
  void trampoline(Tcb* self, std::function<void()> fn);

  std::chrono::milliseconds blockTimeout_{500};
  std::atomic<bool> abort_{false};
  std::vector<PreOpGate*> gates_;

  mutable std::mutex mu_;
  std::condition_variable joinCv_;  // signaled when any thread finishes
  std::vector<std::unique_ptr<Tcb>> tcbs_;
  std::vector<std::thread> osThreads_;
  RunStatus status_ = RunStatus::Completed;
  std::string failureMessage_;
  std::vector<BlockedThreadInfo> blocked_;
  bool runActive_ = false;
};

}  // namespace mtt::rt
