#include "rt/native_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/stats.hpp"

namespace mtt::rt {

namespace {
thread_local void* tl_native_current = nullptr;

// Abort-responsiveness granularity for watchdog waits.
constexpr std::chrono::milliseconds kSlice{10};
// Poll granularity for contended mutex acquisition (see mutexLock).
constexpr std::chrono::microseconds kLockPoll{100};
}  // namespace

NativeRuntime::~NativeRuntime() { assert(osThreads_.empty()); }

NativeRuntime::Tcb* NativeRuntime::currentTcb() const {
  return static_cast<Tcb*>(tl_native_current);
}

ThreadId NativeRuntime::currentThread() const {
  Tcb* t = currentTcb();
  return t ? t->id : kNoThread;
}

std::string NativeRuntime::threadName(ThreadId t) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (t == kNoThread || t > tcbs_.size()) return "T?";
  return tcbs_[t - 1]->name;
}

void NativeRuntime::checkAbort() const {
  if (abort_.load(std::memory_order_acquire)) throw RunAborted{};
}

void NativeRuntime::watchdogFired(const std::string& waitingFor,
                                  ObjectId obj) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!abort_.load(std::memory_order_relaxed)) {
      status_ = RunStatus::Deadlock;
      Tcb* self = currentTcb();
      BlockedThreadInfo info;
      info.thread = self ? self->id : kNoThread;
      info.threadName = self ? self->name : "?";
      info.waitingFor = waitingFor;
      info.object = obj;
      blocked_.push_back(std::move(info));
      abort_.store(true, std::memory_order_release);
    }
  }
  joinCv_.notify_all();
  throw RunAborted{};
}

void NativeRuntime::fail(std::string msg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!abort_.load(std::memory_order_relaxed)) {
      status_ = RunStatus::AssertFailed;
      failureMessage_ = std::move(msg);
      abort_.store(true, std::memory_order_release);
    }
  }
  joinCv_.notify_all();
  throw RunAborted{};
}

void NativeRuntime::trampoline(Tcb* self, std::function<void()> fn) {
  tl_native_current = self;
  emit(EventKind::ThreadStart, self->id, self->id, Site{});
  try {
    fn();
    emit(EventKind::ThreadFinish, self->id, self->id, Site{});
  } catch (const RunAborted&) {
    // Expected unwind during aborts.
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!abort_.load(std::memory_order_relaxed)) {
      status_ = RunStatus::AssertFailed;
      failureMessage_ =
          "uncaught exception in " + self->name + ": " + e.what();
      abort_.store(true, std::memory_order_release);
    }
  }
  self->finished.store(true, std::memory_order_release);
  joinCv_.notify_all();
  tl_native_current = nullptr;
}

RunResult NativeRuntime::run(std::function<void(Runtime&)> body,
                             const RunOptions& opts) {
  if (runActive_) {
    throw std::logic_error("mtt: NativeRuntime::run is not reentrant");
  }
  runActive_ = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    tcbs_.clear();
    status_ = RunStatus::Completed;
    failureMessage_.clear();
    blocked_.clear();
    abort_.store(false, std::memory_order_relaxed);
    blockTimeout_ = opts.blockTimeout;
    resetEventCount();
  }
  hooks_.setTimingEnabled(opts.dispatchTiming);
  RunInfo info;
  info.programName = internName(opts.programName);
  info.seed = opts.seed;
  info.mode = RuntimeMode::Native;
  hooks_.dispatchRunStart(info);

  Stopwatch sw;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto main = std::make_unique<Tcb>();
    main->id = kMainThread;
    main->name = "main";
    Tcb* raw = main.get();
    tcbs_.push_back(std::move(main));
    osThreads_.emplace_back([this, raw, b = std::move(body)]() mutable {
      trampoline(raw, [this, &b] { b(*this); });
    });
  }
  // Threads may spawn further threads; join until the set quiesces.  Every
  // blocking operation has a watchdog, so all threads terminate.
  for (std::size_t joined = 0;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (joined == osThreads_.size()) break;
      t = std::move(osThreads_[joined]);
    }
    t.join();
    ++joined;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    osThreads_.clear();
  }

  RunResult result;
  {
    std::lock_guard<std::mutex> lk(mu_);
    result.status = status_;
    result.failureMessage = failureMessage_;
    result.blocked = blocked_;
  }
  result.events = eventCount();
  result.wallSeconds = sw.elapsedSeconds();
  hooks_.dispatchRunEnd();
  result.dispatch = hooks_.stats();
  runActive_ = false;
  return result;
}

ThreadId NativeRuntime::spawnThread(std::string name,
                                    std::function<void()> fn) {
  checkAbort();
  Tcb* self = currentTcb();
  if (self == nullptr) {
    throw std::logic_error("mtt: spawnThread outside a managed thread");
  }
  Tcb* raw = nullptr;
  ThreadId cid = kNoThread;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cid = static_cast<ThreadId>(tcbs_.size() + 1);
    auto child = std::make_unique<Tcb>();
    child->id = cid;
    child->name = name.empty() ? "T" + std::to_string(cid) : std::move(name);
    raw = child.get();
    tcbs_.push_back(std::move(child));
  }
  // Emit the spawn before launching so every listener observes the spawn
  // strictly before any event of the child (the happens-before edge race
  // detectors rely on).
  gate(EventKind::ThreadSpawn, cid);
  emit(EventKind::ThreadSpawn, self->id, cid, site("spawn"));
  {
    std::lock_guard<std::mutex> lk(mu_);
    osThreads_.emplace_back(
        [this, raw, f = std::move(fn)]() mutable { trampoline(raw, std::move(f)); });
  }
  return cid;
}

void NativeRuntime::joinThread(ThreadId target, Site s) {
  checkAbort();
  gate(EventKind::ThreadJoin, target);
  Tcb* t = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (target == kNoThread || target > tcbs_.size()) {
      throw std::logic_error("mtt: join of unknown thread");
    }
    t = tcbs_[target - 1].get();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Even during an abort, wait for the target to actually finish: the
    // target may reference objects on this thread's stack, which must not
    // unwind first.  The target always finishes — every blocking operation
    // has a watchdog and aborts propagate at the next instrumentation point.
    joinCv_.wait(lk,
                 [&] { return t->finished.load(std::memory_order_acquire); });
  }
  checkAbort();
  emit(EventKind::ThreadJoin, currentThread(), target, s);
}

void NativeRuntime::reapThread(ThreadId target) noexcept {
  Tcb* t = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (target == kNoThread || target > tcbs_.size()) return;
    t = tcbs_[target - 1].get();
  }
  std::unique_lock<std::mutex> lk(mu_);
  joinCv_.wait(lk,
               [&] { return t->finished.load(std::memory_order_acquire); });
}

void NativeRuntime::yieldNow(Site s) {
  checkAbort();
  emit(EventKind::Yield, currentThread(), kNoObject, s);
  std::this_thread::yield();
}

void NativeRuntime::sleepFor(std::chrono::microseconds d) {
  checkAbort();
  std::this_thread::sleep_for(d);
}

void NativeRuntime::evloopPoint(EventKind kind, ObjectId obj, Site s,
                                std::uint32_t arg) {
  checkAbort();
  gate(kind, obj);
  emit(kind, currentThread(), obj, s, arg);
}

void NativeRuntime::postNoise(const NoiseRequest& req) {
  // Native mode: apply immediately on the posting thread.
  switch (req.kind) {
    case NoiseRequest::Kind::Yield:
      for (std::uint32_t i = 0; i < std::max<std::uint32_t>(req.amount, 1);
           ++i) {
        std::this_thread::yield();
      }
      break;
    case NoiseRequest::Kind::Sleep:
      std::this_thread::sleep_for(std::chrono::microseconds(req.amount));
      break;
    case NoiseRequest::Kind::None:
      break;
  }
}

void NativeRuntime::mutexLock(MutexState& m, Site s) {
  checkAbort();
  gate(EventKind::MutexLock, m.id);
  ThreadId self = currentThread();
  if (m.recursive && m.nativeOwner.load(std::memory_order_acquire) == self) {
    ++m.nativeDepth;
    emit(EventKind::MutexLock, self, m.id, s);
    return;
  }
  bool contended = false;
  if (!m.native.try_lock()) {
    contended = true;
    auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
    // Poll with try_lock instead of blocking in try_lock_for: glibc
    // implements timed_mutex::try_lock_for via pthread_mutex_clocklock,
    // which TSan does not intercept — an acquisition through it is
    // invisible to the tool, so the owner-bookkeeping writes below and the
    // eventual unlock get reported as races on a mutex TSan believes is
    // unlocked.  try_lock maps to pthread_mutex_trylock, which TSan models.
    for (;;) {
      if (m.native.try_lock()) break;
      std::this_thread::sleep_for(kLockPoll);
      checkAbort();
      if (std::chrono::steady_clock::now() >= deadline) {
        watchdogFired("mutex " + objectInfo(m.id).name, m.id);
      }
    }
  }
  m.nativeOwner.store(self, std::memory_order_release);
  m.nativeDepth = 1;
  emit(EventKind::MutexLock, self, m.id, s, contended ? 1 : 0);
}

bool NativeRuntime::mutexTryLock(MutexState& m, Site s) {
  checkAbort();
  gate(EventKind::MutexTryLockOk, m.id);
  ThreadId self = currentThread();
  if (m.recursive && m.nativeOwner.load(std::memory_order_acquire) == self) {
    ++m.nativeDepth;
    emit(EventKind::MutexTryLockOk, self, m.id, s);
    return true;
  }
  if (m.native.try_lock()) {
    m.nativeOwner.store(self, std::memory_order_release);
    m.nativeDepth = 1;
    emit(EventKind::MutexTryLockOk, self, m.id, s);
    return true;
  }
  emit(EventKind::MutexTryLockFail, self, m.id, s);
  return false;
}

void NativeRuntime::mutexUnlock(MutexState& m, Site s) {
  // No checkAbort: unlock is reachable from destructors and must release the
  // native lock so peers blocked on it can observe the abort and unwind.
  gate(EventKind::MutexUnlock, m.id);
  emit(EventKind::MutexUnlock, currentThread(), m.id, s);
  if (m.nativeDepth > 1) {
    --m.nativeDepth;
    return;
  }
  m.nativeDepth = 0;
  m.nativeOwner.store(kNoThread, std::memory_order_release);
  m.native.unlock();
}

void NativeRuntime::condWait(CondState& c, MutexState& m, Site s) {
  checkAbort();
  gate(EventKind::CondWaitBegin, c.id);
  ThreadId self = currentThread();
  emit(EventKind::CondWaitBegin, self, c.id, s, m.id);
  std::unique_lock<std::timed_mutex> ul(m.native, std::adopt_lock);
  m.nativeOwner.store(kNoThread, std::memory_order_release);
  auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
  bool signaled = false;
  while (!signaled) {
    auto st = c.native.wait_for(ul, kSlice);
    if (st == std::cv_status::no_timeout) {
      signaled = true;  // may be spurious; callers wait in loops
      break;
    }
    if (abort_.load(std::memory_order_acquire)) {
      // Keep the mutex "held" from the caller's perspective so its guard
      // unwinds consistently; mark ourselves the owner again.
      m.nativeOwner.store(self, std::memory_order_release);
      ul.release();
      throw RunAborted{};
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      m.nativeOwner.store(self, std::memory_order_release);
      ul.release();
      watchdogFired("condvar " + objectInfo(c.id).name +
                        " (possible lost wakeup)",
                    c.id);
    }
  }
  m.nativeOwner.store(self, std::memory_order_release);
  ul.release();
  emit(EventKind::CondWaitEnd, self, c.id, s, m.id);
}

void NativeRuntime::condSignal(CondState& c, Site s) {
  checkAbort();
  gate(EventKind::CondSignal, c.id);
  c.native.notify_one();
  emit(EventKind::CondSignal, currentThread(), c.id, s);
}

void NativeRuntime::condBroadcast(CondState& c, Site s) {
  checkAbort();
  gate(EventKind::CondBroadcast, c.id);
  c.native.notify_all();
  emit(EventKind::CondBroadcast, currentThread(), c.id, s);
}

void NativeRuntime::semAcquire(SemState& sem, Site s) {
  checkAbort();
  gate(EventKind::SemAcquire, sem.id);
  auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
  bool contended = false;
  {
    std::unique_lock<std::mutex> lk(sem.nm);
    while (sem.permits <= 0) {
      contended = true;
      sem.ncv.wait_for(lk, kSlice);
      if (abort_.load(std::memory_order_acquire)) throw RunAborted{};
      if (sem.permits <= 0 && std::chrono::steady_clock::now() >= deadline) {
        lk.unlock();
        watchdogFired("semaphore " + objectInfo(sem.id).name, sem.id);
      }
    }
    --sem.permits;
  }
  emit(EventKind::SemAcquire, currentThread(), sem.id, s, contended ? 1 : 0);
}

bool NativeRuntime::semTryAcquire(SemState& sem, Site s) {
  checkAbort();
  gate(EventKind::SemAcquire, sem.id);
  {
    std::lock_guard<std::mutex> lk(sem.nm);
    if (sem.permits <= 0) return false;
    --sem.permits;
  }
  emit(EventKind::SemAcquire, currentThread(), sem.id, s);
  return true;
}

void NativeRuntime::semRelease(SemState& sem, std::uint32_t n, Site s) {
  // No checkAbort: release is cleanup-path-safe by design.
  gate(EventKind::SemRelease, sem.id);
  {
    std::lock_guard<std::mutex> lk(sem.nm);
    sem.permits += n;
  }
  sem.ncv.notify_all();
  emit(EventKind::SemRelease, currentThread(), sem.id, s, n);
}

void NativeRuntime::barrierWait(BarrierState& b, Site s) {
  checkAbort();
  gate(EventKind::BarrierEnter, b.id);
  ThreadId self = currentThread();
  auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
  std::uint64_t myGen = 0;
  {
    std::unique_lock<std::mutex> lk(b.nm);
    myGen = b.generation;
    emit(EventKind::BarrierEnter, self, b.id, s,
         static_cast<std::uint32_t>(myGen));
    if (++b.arrived >= b.parties) {
      b.arrived = 0;
      ++b.generation;
      b.ncv.notify_all();
    } else {
      while (b.generation == myGen) {
        b.ncv.wait_for(lk, kSlice);
        if (abort_.load(std::memory_order_acquire)) throw RunAborted{};
        if (b.generation == myGen &&
            std::chrono::steady_clock::now() >= deadline) {
          lk.unlock();
          watchdogFired("barrier " + objectInfo(b.id).name, b.id);
        }
      }
    }
  }
  emit(EventKind::BarrierExit, self, b.id, s,
       static_cast<std::uint32_t>(myGen + 1));
}

void NativeRuntime::rwLockRead(RwState& rw, Site s) {
  checkAbort();
  gate(EventKind::RwLockRead, rw.id);
  bool contended = false;
  if (!rw.native.try_lock_shared()) {
    contended = true;
    auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
    for (;;) {
      if (rw.native.try_lock_shared_for(kSlice)) break;
      checkAbort();
      if (std::chrono::steady_clock::now() >= deadline) {
        watchdogFired("rwlock " + objectInfo(rw.id).name + " (read)", rw.id);
      }
    }
  }
  emit(EventKind::RwLockRead, currentThread(), rw.id, s, contended ? 1 : 0);
}

void NativeRuntime::rwUnlockRead(RwState& rw, Site s) {
  // No checkAbort: cleanup-path-safe (guards unlock during unwinding).
  gate(EventKind::RwUnlockRead, rw.id);
  emit(EventKind::RwUnlockRead, currentThread(), rw.id, s);
  rw.native.unlock_shared();
}

void NativeRuntime::rwLockWrite(RwState& rw, Site s) {
  checkAbort();
  gate(EventKind::RwLockWrite, rw.id);
  bool contended = false;
  if (!rw.native.try_lock()) {
    contended = true;
    auto deadline = std::chrono::steady_clock::now() + blockTimeout_;
    for (;;) {
      if (rw.native.try_lock_for(kSlice)) break;
      checkAbort();
      if (std::chrono::steady_clock::now() >= deadline) {
        watchdogFired("rwlock " + objectInfo(rw.id).name + " (write)", rw.id);
      }
    }
  }
  emit(EventKind::RwLockWrite, currentThread(), rw.id, s, contended ? 1 : 0);
}

void NativeRuntime::rwUnlockWrite(RwState& rw, Site s) {
  // No checkAbort: cleanup-path-safe.
  gate(EventKind::RwUnlockWrite, rw.id);
  emit(EventKind::RwUnlockWrite, currentThread(), rw.id, s);
  rw.native.unlock();
}

void NativeRuntime::varAccess(ObjectId var, Access a, Site s) {
  checkAbort();
  gate(a == Access::Write ? EventKind::VarWrite : EventKind::VarRead, var);
  emit(a == Access::Write ? EventKind::VarWrite : EventKind::VarRead,
       currentThread(), var, s);
}

std::uint64_t NativeRuntime::atomicLoad(AtomicState& a, std::memory_order mo,
                                        Site s) {
  checkAbort();
  gate(EventKind::AtomicLoad, a.id);
  std::uint64_t v = a.native.load(mo);
  // Native mode has no store history: the observed storer is unknown and
  // the age reads as 0 (whatever the hardware made newest).
  emit(EventKind::AtomicLoad, currentThread(), a.id, s,
       AtomicArg::pack(mo, false, 0, kNoThread));
  return v;
}

void NativeRuntime::atomicStore(AtomicState& a, std::uint64_t v,
                                std::memory_order mo, Site s) {
  checkAbort();
  gate(EventKind::AtomicStore, a.id);
  a.native.store(v, mo);
  emit(EventKind::AtomicStore, currentThread(), a.id, s,
       AtomicArg::pack(mo, mo == std::memory_order_release ||
                               mo == std::memory_order_acq_rel ||
                               mo == std::memory_order_seq_cst,
                       0, currentThread()));
}

std::uint64_t NativeRuntime::atomicRmw(AtomicState& a, RmwOp op,
                                       std::uint64_t operand,
                                       std::uint64_t expected,
                                       std::memory_order mo, Site s,
                                       bool* ok) {
  checkAbort();
  gate(EventKind::AtomicRMW, a.id);
  std::uint64_t old = 0;
  bool success = true;
  switch (op) {
    case RmwOp::Exchange: old = a.native.exchange(operand, mo); break;
    case RmwOp::FetchAdd: old = a.native.fetch_add(operand, mo); break;
    case RmwOp::CompareExchange: {
      std::uint64_t exp = expected;
      success = a.native.compare_exchange_strong(exp, operand, mo);
      old = exp;
      break;
    }
  }
  if (ok != nullptr) *ok = success;
  emit(EventKind::AtomicRMW, currentThread(), a.id, s,
       AtomicArg::pack(mo, success, 0, kNoThread));
  return old;
}

void NativeRuntime::atomicFence(std::memory_order mo, Site s) {
  checkAbort();
  gate(EventKind::Fence, kNoObject);
  std::atomic_thread_fence(mo);
  emit(EventKind::Fence, currentThread(), kNoObject, s,
       AtomicArg::pack(mo, false, 0, kNoThread));
}

}  // namespace mtt::rt
