#include "triage/signature.hpp"

#include <algorithm>
#include <cstdio>

#include "core/site.hpp"

namespace mtt::triage {

std::string_view to_string(FailureKind k) {
  switch (k) {
    case FailureKind::None:
      return "none";
    case FailureKind::Assert:
      return "assert";
    case FailureKind::Oracle:
      return "oracle";
    case FailureKind::Deadlock:
      return "deadlock";
    case FailureKind::StepLimit:
      return "step-limit";
    case FailureKind::Crash:
      return "crash";
    case FailureKind::Timeout:
      return "timeout";
  }
  return "none";
}

bool failure_kind_from_string(std::string_view name, FailureKind& out) {
  for (FailureKind k : {FailureKind::None, FailureKind::Assert,
                        FailureKind::Oracle, FailureKind::Deadlock,
                        FailureKind::StepLimit, FailureKind::Crash,
                        FailureKind::Timeout}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string normalizeTokens(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool inDigits = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      if (!inDigits) out += '#';
      inDigits = true;
    } else {
      inDigits = false;
      out += c;
    }
  }
  return out;
}

std::string FailureSignature::canonical() const {
  std::string out = "kind: ";
  out += to_string(kind);
  out += '\n';
  for (const auto& s : bugSites) {
    out += "site: ";
    out += s;
    out += '\n';
  }
  for (const auto& s : shape) {
    out += "shape: ";
    out += s;
    out += '\n';
  }
  return out;
}

std::string FailureSignature::fingerprint() const {
  // FNV-1a 64-bit over the canonical text: stable across platforms and
  // process runs (no pointers, no std::hash).
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : canonical()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void SignatureCollector::onRunStart(const RunInfo& info) {
  (void)info;
  std::lock_guard<std::mutex> lk(mu_);
  tags_.clear();
}

void SignatureCollector::resetTool() {
  std::lock_guard<std::mutex> lk(mu_);
  tags_.clear();
}

void SignatureCollector::onEvent(const Event& e) {
  if (e.bugSite != BugMark::Yes) return;
  const SiteInfo& si = SiteRegistry::instance().lookup(e.syncSite);
  std::string tag =
      si.tag.empty() ? si.file + ":" + std::to_string(si.line) : si.tag;
  std::lock_guard<std::mutex> lk(mu_);
  tags_.insert(std::move(tag));
}

std::vector<std::string> SignatureCollector::bugSiteTags() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {tags_.begin(), tags_.end()};
}

FailureSignature makeSignature(const rt::RunResult& r, bool manifested,
                               const std::string& outcome,
                               std::vector<std::string> bugSiteTags) {
  FailureSignature sig;
  switch (r.status) {
    case rt::RunStatus::AssertFailed:
      sig.kind = FailureKind::Assert;
      sig.shape.push_back(normalizeTokens(r.failureMessage));
      break;
    case rt::RunStatus::Deadlock:
      sig.kind = FailureKind::Deadlock;
      for (const auto& b : r.blocked) {
        sig.shape.push_back(
            normalizeTokens(b.threadName + " waits " + b.waitingFor));
      }
      std::sort(sig.shape.begin(), sig.shape.end());
      break;
    case rt::RunStatus::StepLimit:
      sig.kind = FailureKind::StepLimit;
      break;
    case rt::RunStatus::Completed:
      if (manifested) {
        sig.kind = FailureKind::Oracle;
        sig.shape.push_back(normalizeTokens(outcome));
      }
      break;
    default:
      // Farm-supervised statuses (timeout/crashed/infra-error) never reach
      // signature computation: they carry no run to fingerprint.
      break;
  }
  sig.bugSites = std::move(bugSiteTags);
  std::sort(sig.bugSites.begin(), sig.bugSites.end());
  sig.bugSites.erase(std::unique(sig.bugSites.begin(), sig.bugSites.end()),
                     sig.bugSites.end());
  return sig;
}

}  // namespace mtt::triage
