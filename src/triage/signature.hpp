// mtt::triage — failure fingerprinting: turning one failing run into a
// canonical, seed-independent identity for its root cause.
//
// The paper's repository component promises *reusable* failure artifacts —
// scenarios that can be re-executed "with the push of a button" (§4).  A raw
// counterexample is tied to the seed that found it; two seeds tripping the
// same bug produce two different schedules.  The FailureSignature abstracts
// a failing run to what actually identifies the root cause:
//
//   * the outcome kind  — assert / oracle / deadlock / livelock-step-limit;
//   * the bug-involved site set — which BugMark::Yes instrumentation sites
//     the run exercised (the benchmark's machine-readable bug annotation);
//   * a normalized lock/thread shape — e.g. for a deadlock, the multiset of
//     "<thread> waits <object>" lines with digit runs collapsed, so
//     philosopher2-waits-fork0 and philosopher0-waits-fork1 coincide.
//
// Equal signatures bucket together in the scenario corpus (corpus.hpp) and
// define the validity predicate for schedule minimization (shrink.hpp): a
// shrunken schedule is a witness iff its signature still matches.
#pragma once

#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/listener.hpp"
#include "rt/runtime.hpp"

namespace mtt::triage {

/// Why a run counts as failing.  None means the run passed its oracle.
enum class FailureKind : std::uint8_t {
  None,       ///< completed and the oracle passed
  Assert,     ///< Runtime::fail / Runtime::check aborted the run
  Oracle,     ///< completed but the program's oracle flagged the bug
  Deadlock,   ///< controlled scheduler found an empty enabled set
  StepLimit,  ///< livelock guard: maxSteps exceeded
  /// Postmortem kinds: the run never reported in-process — the farm
  /// observed the worker die (Crash) or killed it at the watchdog deadline
  /// (Timeout), and the flight recorder's dump is the witness.
  /// makeSignature never produces these; postmortem ingestion does.
  Crash,
  Timeout,
};

std::string_view to_string(FailureKind k);
bool failure_kind_from_string(std::string_view name, FailureKind& out);

/// The canonical identity of a failure.  Value-comparable; stable across
/// seeds, schedules, and worker counts for the same root cause.
struct FailureSignature {
  FailureKind kind = FailureKind::None;
  /// Sorted unique tags of bug-marked sites exercised in the run.
  std::vector<std::string> bugSites;
  /// Normalized shape lines, sorted: blocked-thread wait edges for a
  /// deadlock, the normalized failure message for an assert, the normalized
  /// outcome string for an oracle failure.
  std::vector<std::string> shape;

  bool failure() const { return kind != FailureKind::None; }
  /// Stable multi-line text form (the corpus stores it verbatim).
  std::string canonical() const;
  /// 16-hex-digit FNV-1a hash of canonical(): the corpus bucket name.
  std::string fingerprint() const;

  friend bool operator==(const FailureSignature&,
                         const FailureSignature&) = default;
};

/// Collapses every maximal digit run to '#': "philosopher2 waits fork0"
/// -> "philosopher# waits fork#".  This is the normalization that makes
/// shapes rotation/seed independent.
std::string normalizeTokens(std::string_view s);

/// Listener collecting the bug-involved site set during a run.  Register
/// with the runtime's hooks before run(); thread-safe for native mode.
class SignatureCollector final : public Listener {
 public:
  void onRunStart(const RunInfo& info) override;
  void onEvent(const Event& e) override;

  // Subscribes to everything: a bug-marked site can appear on any kind.
  std::string_view listenerName() const override { return "signature"; }
  void resetTool() override;

  /// Sorted unique tags of BugMark::Yes sites seen since run start.
  std::vector<std::string> bugSiteTags() const;

 private:
  mutable std::mutex mu_;
  std::set<std::string> tags_;
};

/// Builds the signature of one observed run.  `manifested` is the program
/// oracle's verdict, `outcome` the program's outcome string.
FailureSignature makeSignature(const rt::RunResult& r, bool manifested,
                               const std::string& outcome,
                               std::vector<std::string> bugSiteTags);

}  // namespace mtt::triage
