// Schedule minimization — delta debugging over the decision vector.
//
// A hunted counterexample carries every scheduling decision of the run that
// found it, including noise-injected yields/sleeps and scheduling churn that
// has nothing to do with the bug.  shrinkScenario reduces it to a small
// witness with the SAME failure signature:
//
//   1. reproduce the original under exact replay and take its signature as
//      the target;
//   2. noise-strip baseline: re-run the decisions *without* the noise maker
//      (exact decision control makes noise redundant) — kept if the
//      signature still matches, dropping every noise-injected operation;
//   3. ddmin (Zeller/Hildebrandt) over the decision vector: repeatedly
//      delete chunks, re-executing each candidate in repair mode
//      (probeCandidate) and accepting it iff the signature matches and the
//      re-recorded schedule is strictly shorter;
//   4. a preemption-lowering pass: rewrite context switches to let the
//      previous thread continue, accepting signature-preserving candidates
//      with strictly fewer preemptions — witnesses end up "mostly
//      sequential", which is what a human wants to read; a sibling
//      store-lowering pass rewrites weak-memory StorePick decisions to
//      "observe the coherence-newest store" (the SC behaviour), so the
//      witness keeps only the stale reads the bug actually needs;
//   5. final exact-replay verification of the minimized witness.
//
// Candidate batches are evaluated in parallel through farm::scanCandidates;
// because the scan always selects the smallest accepted candidate index, the
// minimized schedule is byte-identical for any --jobs value.
#pragma once

#include <cstdint>

#include "replay/replay.hpp"
#include "triage/signature.hpp"

namespace mtt::triage {

struct ShrinkOptions {
  /// Workers for candidate evaluation; 0 = hardware concurrency, 1 = serial.
  std::size_t jobs = 1;
  /// Hard cap on candidate executions (the shrink budget).
  std::uint64_t maxValidations = 50'000;
  /// Try dropping the noise maker from the replay tool stack first.
  bool allowNoiseStrip = true;
};

struct ShrinkResult {
  /// The input scenario reproduced its failure under exact replay.  When
  /// false, nothing was minimized and `minimized` echoes the input.
  bool reproduced = false;
  /// The minimized witness exact-replays (no divergence) with the target
  /// signature.
  bool verifiedExact = false;
  /// The witness no longer needs the noise maker attached.
  bool noiseStripped = false;
  /// The target signature every accepted candidate matched.
  FailureSignature signature;

  rt::Schedule original;
  replay::Scenario minimized;
  std::size_t originalPreemptions = 0;
  std::size_t minimizedPreemptions = 0;
  /// Candidate/replay executions performed.
  std::uint64_t validations = 0;
  /// Accepted improvements (size or preemption reductions).
  std::uint64_t rounds = 0;

  double removedRatio() const {
    if (original.size() == 0) return 0.0;
    double kept = static_cast<double>(minimized.schedule.size()) /
                  static_cast<double>(original.size());
    return kept < 1.0 ? 1.0 - kept : 0.0;
  }
};

/// Minimizes a failing scenario.  Deterministic for a given input and any
/// ShrinkOptions::jobs value.
ShrinkResult shrinkScenario(const replay::Scenario& s,
                            const ShrinkOptions& opts = {});

}  // namespace mtt::triage
