#include "triage/shrink.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "farm/farm.hpp"
#include "triage/probe.hpp"

namespace mtt::triage {

namespace {

using Decisions = std::vector<ThreadId>;

/// current minus its i-th of n chunks (ddmin complement).
Decisions dropChunk(const Decisions& current, std::size_t n, std::size_t i) {
  std::size_t len = current.size();
  std::size_t lo = i * len / n;
  std::size_t hi = (i + 1) * len / n;
  Decisions out;
  out.reserve(len - (hi - lo));
  out.insert(out.end(), current.begin(), current.begin() + lo);
  out.insert(out.end(), current.begin() + hi, current.end());
  return out;
}

/// Indices of context switches in `current` (candidate positions for the
/// preemption-lowering pass).
std::vector<std::size_t> switchPositions(const Decisions& current) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i < current.size(); ++i) {
    if (current[i] != current[i - 1]) out.push_back(i);
  }
  return out;
}

struct Shrinker {
  const std::string& program;
  ReplayToolConfig cfg;
  FailureSignature target;
  ShrinkOptions opts;
  std::atomic<std::uint64_t> validations{0};

  bool budgetLeft() const {
    return validations.load(std::memory_order_relaxed) < opts.maxValidations;
  }

  ProbeResult probe(const Decisions& d) {
    validations.fetch_add(1, std::memory_order_relaxed);
    return probeCandidate(program, d, cfg);
  }

  /// One ddmin fixpoint: returns true if `current` shrank.
  bool ddmin(Decisions& current, std::uint64_t& rounds) {
    bool improvedEver = false;
    std::size_t n = 2;
    while (current.size() >= 2 && budgetLeft()) {
      if (n > current.size()) n = current.size();
      const Decisions snapshot = current;
      const std::size_t curSize = snapshot.size();
      auto accept = [&](std::uint64_t i) {
        ProbeResult p = probe(dropChunk(snapshot, n, static_cast<std::size_t>(i)));
        return p.signature == target && p.recorded.size() < curSize;
      };
      farm::CandidateScan scan = farm::scanCandidates(n, accept, opts.jobs);
      if (scan.found) {
        // Deterministic winner: smallest accepted chunk index.  Re-probe it
        // to obtain the re-recorded (repaired) schedule.
        ProbeResult p = probe(
            dropChunk(snapshot, n, static_cast<std::size_t>(scan.index)));
        current = p.recorded.decisions;
        improvedEver = true;
        ++rounds;
        n = n > 2 ? n - 1 : 2;
      } else {
        if (n >= current.size()) break;
        n = std::min(n * 2, current.size());
      }
    }
    return improvedEver;
  }

  /// One preemption-lowering fixpoint: returns true if preemptions dropped.
  bool lowerPreemptions(Decisions& current, std::uint64_t& rounds) {
    bool improvedEver = false;
    while (budgetLeft()) {
      const Decisions snapshot = current;
      const std::size_t curSize = snapshot.size();
      const std::size_t curPre = countPreemptions(snapshot);
      if (curPre == 0) break;
      std::vector<std::size_t> positions = switchPositions(snapshot);
      auto accept = [&](std::uint64_t i) {
        Decisions cand = snapshot;
        std::size_t pos = positions[static_cast<std::size_t>(i)];
        cand[pos] = cand[pos - 1];  // let the previous thread keep running
        ProbeResult p = probe(cand);
        return p.signature == target &&
               countPreemptions(p.recorded.decisions) < curPre &&
               p.recorded.size() <= curSize;
      };
      farm::CandidateScan scan =
          farm::scanCandidates(positions.size(), accept, opts.jobs);
      if (!scan.found) break;
      Decisions winner = snapshot;
      std::size_t pos = positions[static_cast<std::size_t>(scan.index)];
      winner[pos] = winner[pos - 1];
      ProbeResult p = probe(winner);
      current = p.recorded.decisions;
      improvedEver = true;
      ++rounds;
    }
    return improvedEver;
  }
};

}  // namespace

ShrinkResult shrinkScenario(const replay::Scenario& s,
                            const ShrinkOptions& opts) {
  ShrinkResult res;
  res.original = s.schedule;
  res.originalPreemptions = countPreemptions(s.schedule.decisions);
  res.minimized = s;

  Shrinker sh{s.program, toolConfigOf(s), {}, opts};

  // 1. Reproduce the original and pin the target signature.
  sh.validations.fetch_add(1);
  ProbeResult base = probeExact(s.program, s.schedule, sh.cfg);
  if (!base.signature.failure()) {
    res.validations = sh.validations.load();
    res.minimizedPreemptions = res.originalPreemptions;
    return res;  // reproduced stays false
  }
  res.reproduced = true;
  sh.target = base.signature;
  res.signature = base.signature;
  Decisions current = base.recorded.decisions;

  // 2. Noise-strip baseline: with exact decision control the noise maker is
  // redundant.  Project the noise-injected decisions out of the recording
  // (ControlledRuntime::decisionNoise marks them): what remains schedules
  // the run's real operations in their original global order, so replaying
  // it with no noise attached reproduces the same interleaving — exactly for
  // sleep-free programs, best-effort (repair mode) otherwise.  Kept only
  // when the target signature survives; the noisy tool stack is the
  // fallback.
  if (opts.allowNoiseStrip && sh.cfg.noiseName != "none" &&
      !sh.cfg.noiseName.empty()) {
    Decisions projected;
    projected.reserve(current.size());
    for (std::size_t i = 0; i < base.recorded.decisions.size(); ++i) {
      bool noiseOp = i < base.noiseDecisions.size() && base.noiseDecisions[i];
      if (!noiseOp) projected.push_back(base.recorded.decisions[i]);
    }
    ReplayToolConfig bare = sh.cfg;
    bare.noiseName = "none";
    sh.validations.fetch_add(1);
    ProbeResult stripped = probeCandidate(s.program, projected, bare);
    if (stripped.signature == sh.target) {
      sh.cfg = bare;
      res.noiseStripped = true;
      current = stripped.recorded.decisions;
      ++res.rounds;
    }
  }

  // 3./4. Alternate ddmin and preemption lowering to a joint fixpoint.
  for (;;) {
    bool improved = sh.ddmin(current, res.rounds);
    improved = sh.lowerPreemptions(current, res.rounds) || improved;
    if (!improved || !sh.budgetLeft()) break;
  }

  // 5. Exact-replay verification of the minimized witness.
  sh.validations.fetch_add(1);
  ProbeResult fin = probeExact(s.program, rt::Schedule{current}, sh.cfg);
  res.verifiedExact = fin.exact && fin.signature == sh.target;

  res.minimized.schedule.decisions = current;
  res.minimized.noise = sh.cfg.noiseName;
  res.minimizedPreemptions = countPreemptions(current);
  res.validations = sh.validations.load();
  return res;
}

}  // namespace mtt::triage
