#include "triage/shrink.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "farm/farm.hpp"
#include "triage/probe.hpp"

namespace mtt::triage {

namespace {

using Decisions = std::vector<rt::Decision>;

/// current minus its i-th of n chunks (ddmin complement).  Chunks are cut
/// over the raw decision vector — StorePick decisions are removable entries
/// like any other, and probeCandidate repairs whatever misalignment a cut
/// produces.
Decisions dropChunk(const Decisions& current, std::size_t n, std::size_t i) {
  std::size_t len = current.size();
  std::size_t lo = i * len / n;
  std::size_t hi = (i + 1) * len / n;
  Decisions out;
  out.reserve(len - (hi - lo));
  out.insert(out.end(), current.begin(), current.begin() + lo);
  out.insert(out.end(), current.begin() + hi, current.end());
  return out;
}

/// Positions of context switches in `current`, paired with the thread pick
/// that precedes them (candidates for the preemption-lowering pass).  Store
/// picks are transparent: a switch is a thread pick whose nearest preceding
/// thread pick names a different thread.
struct SwitchPos {
  std::size_t pos;    ///< index of the switching thread pick
  ThreadId prev;      ///< thread of the nearest preceding thread pick
};

std::vector<SwitchPos> switchPositions(const Decisions& current) {
  std::vector<SwitchPos> out;
  bool havePrev = false;
  ThreadId prev = 0;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (!current[i].isThread()) continue;
    auto t = static_cast<ThreadId>(current[i].value);
    if (havePrev && t != prev) out.push_back(SwitchPos{i, prev});
    prev = t;
    havePrev = true;
  }
  return out;
}

/// Positions of non-default store observations (candidates for the
/// store-lowering pass: rewriting them to 0 means "observe the
/// coherence-newest store", the SC behaviour).
std::vector<std::size_t> weakPickPositions(const Decisions& current) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i].isStore() && current[i].value != 0) out.push_back(i);
  }
  return out;
}

std::size_t countWeakPicks(const Decisions& current) {
  std::size_t n = 0;
  for (const rt::Decision& d : current) {
    if (d.isStore() && d.value != 0) ++n;
  }
  return n;
}

struct Shrinker {
  const std::string& program;
  ReplayToolConfig cfg;
  FailureSignature target;
  ShrinkOptions opts;
  std::atomic<std::uint64_t> validations{0};

  bool budgetLeft() const {
    return validations.load(std::memory_order_relaxed) < opts.maxValidations;
  }

  ProbeResult probe(const Decisions& d) {
    validations.fetch_add(1, std::memory_order_relaxed);
    return probeCandidate(program, d, cfg);
  }

  /// One ddmin fixpoint: returns true if `current` shrank.
  bool ddmin(Decisions& current, std::uint64_t& rounds) {
    bool improvedEver = false;
    std::size_t n = 2;
    while (current.size() >= 2 && budgetLeft()) {
      if (n > current.size()) n = current.size();
      const Decisions snapshot = current;
      const std::size_t curSize = snapshot.size();
      auto accept = [&](std::uint64_t i) {
        ProbeResult p = probe(dropChunk(snapshot, n, static_cast<std::size_t>(i)));
        return p.signature == target && p.recorded.size() < curSize;
      };
      farm::CandidateScan scan = farm::scanCandidates(n, accept, opts.jobs);
      if (scan.found) {
        // Deterministic winner: smallest accepted chunk index.  Re-probe it
        // to obtain the re-recorded (repaired) schedule.
        ProbeResult p = probe(
            dropChunk(snapshot, n, static_cast<std::size_t>(scan.index)));
        current = p.recorded.decisions;
        improvedEver = true;
        ++rounds;
        n = n > 2 ? n - 1 : 2;
      } else {
        if (n >= current.size()) break;
        n = std::min(n * 2, current.size());
      }
    }
    return improvedEver;
  }

  /// One preemption-lowering fixpoint: returns true if preemptions dropped.
  bool lowerPreemptions(Decisions& current, std::uint64_t& rounds) {
    bool improvedEver = false;
    while (budgetLeft()) {
      const Decisions snapshot = current;
      const std::size_t curSize = snapshot.size();
      const std::size_t curPre = countPreemptions(snapshot);
      if (curPre == 0) break;
      std::vector<SwitchPos> positions = switchPositions(snapshot);
      auto accept = [&](std::uint64_t i) {
        Decisions cand = snapshot;
        const SwitchPos& sw = positions[static_cast<std::size_t>(i)];
        // Let the previous thread keep running.
        cand[sw.pos] = rt::Decision::thread(sw.prev);
        ProbeResult p = probe(cand);
        return p.signature == target &&
               countPreemptions(p.recorded.decisions) < curPre &&
               p.recorded.size() <= curSize;
      };
      farm::CandidateScan scan =
          farm::scanCandidates(positions.size(), accept, opts.jobs);
      if (!scan.found) break;
      Decisions winner = snapshot;
      const SwitchPos& sw = positions[static_cast<std::size_t>(scan.index)];
      winner[sw.pos] = rt::Decision::thread(sw.prev);
      ProbeResult p = probe(winner);
      current = p.recorded.decisions;
      improvedEver = true;
      ++rounds;
    }
    return improvedEver;
  }

  /// One store-lowering fixpoint: rewrite non-default store observations to
  /// "observe the coherence-newest store" (index 0, the SC behaviour),
  /// accepting signature-preserving candidates with strictly fewer weak
  /// picks — minimized weak-memory witnesses keep only the stale reads the
  /// bug actually needs.  Returns true if the weak-pick count dropped.
  bool lowerStorePicks(Decisions& current, std::uint64_t& rounds) {
    bool improvedEver = false;
    while (budgetLeft()) {
      const Decisions snapshot = current;
      const std::size_t curSize = snapshot.size();
      const std::size_t curWeak = countWeakPicks(snapshot);
      if (curWeak == 0) break;
      std::vector<std::size_t> positions = weakPickPositions(snapshot);
      auto accept = [&](std::uint64_t i) {
        Decisions cand = snapshot;
        cand[positions[static_cast<std::size_t>(i)]] = rt::Decision::store(0);
        ProbeResult p = probe(cand);
        return p.signature == target &&
               countWeakPicks(p.recorded.decisions) < curWeak &&
               p.recorded.size() <= curSize;
      };
      farm::CandidateScan scan =
          farm::scanCandidates(positions.size(), accept, opts.jobs);
      if (!scan.found) break;
      Decisions winner = snapshot;
      winner[positions[static_cast<std::size_t>(scan.index)]] =
          rt::Decision::store(0);
      ProbeResult p = probe(winner);
      current = p.recorded.decisions;
      improvedEver = true;
      ++rounds;
    }
    return improvedEver;
  }
};

}  // namespace

ShrinkResult shrinkScenario(const replay::Scenario& s,
                            const ShrinkOptions& opts) {
  ShrinkResult res;
  res.original = s.schedule;
  res.originalPreemptions = countPreemptions(s.schedule.decisions);
  res.minimized = s;

  Shrinker sh{s.program, toolConfigOf(s), {}, opts};

  // 1. Reproduce the original and pin the target signature.
  sh.validations.fetch_add(1);
  ProbeResult base = probeExact(s.program, s.schedule, sh.cfg);
  if (!base.signature.failure()) {
    res.validations = sh.validations.load();
    res.minimizedPreemptions = res.originalPreemptions;
    return res;  // reproduced stays false
  }
  res.reproduced = true;
  sh.target = base.signature;
  res.signature = base.signature;
  Decisions current = base.recorded.decisions;

  // 2. Noise-strip baseline: with exact decision control the noise maker is
  // redundant.  Project the noise-injected decisions out of the recording
  // (ControlledRuntime::decisionNoise marks them): what remains schedules
  // the run's real operations in their original global order, so replaying
  // it with no noise attached reproduces the same interleaving — exactly for
  // sleep-free programs, best-effort (repair mode) otherwise.  Kept only
  // when the target signature survives; the noisy tool stack is the
  // fallback.
  if (opts.allowNoiseStrip && sh.cfg.noiseName != "none" &&
      !sh.cfg.noiseName.empty()) {
    Decisions projected;
    projected.reserve(current.size());
    for (std::size_t i = 0; i < base.recorded.decisions.size(); ++i) {
      bool noiseOp = i < base.noiseDecisions.size() && base.noiseDecisions[i];
      if (!noiseOp) projected.push_back(base.recorded.decisions[i]);
    }
    ReplayToolConfig bare = sh.cfg;
    bare.noiseName = "none";
    sh.validations.fetch_add(1);
    ProbeResult stripped = probeCandidate(s.program, projected, bare);
    if (stripped.signature == sh.target) {
      sh.cfg = bare;
      res.noiseStripped = true;
      current = stripped.recorded.decisions;
      ++res.rounds;
    }
  }

  // 3./4. Alternate ddmin, preemption lowering and store-pick lowering to a
  // joint fixpoint.
  for (;;) {
    bool improved = sh.ddmin(current, res.rounds);
    improved = sh.lowerPreemptions(current, res.rounds) || improved;
    improved = sh.lowerStorePicks(current, res.rounds) || improved;
    if (!improved || !sh.budgetLeft()) break;
  }

  // 5. Exact-replay verification of the minimized witness.
  sh.validations.fetch_add(1);
  ProbeResult fin = probeExact(s.program, rt::Schedule{current}, sh.cfg);
  res.verifiedExact = fin.exact && fin.signature == sh.target;

  res.minimized.schedule.decisions = current;
  res.minimized.noise = sh.cfg.noiseName;
  res.minimizedPreemptions = countPreemptions(current);
  res.validations = sh.validations.load();
  return res;
}

}  // namespace mtt::triage
