// Postmortem ingestion: turning a flight-recorder dump into a corpus entry.
//
// A crashed or timed-out run never reports in-process, so the usual triage
// path (record the run, fingerprint the observed failure) cannot execute —
// replaying a scenario that segfaults the process would segfault triage
// too.  Instead, ingestion synthesizes the failure signature directly from
// the dump: the kind is Crash or Timeout (from the farm's run status), and
// the shape comes from the dump's postmortem annotations (signal, held
// locks, last events), normalized the same way in-process shapes are.  The
// witness is inserted unverified (replayVerified=false); a later
// `mtt replay` in a soft configuration (the crash programs are env-gated)
// or `mtt corpus verify` can upgrade confidence manually.
#pragma once

#include <cstdint>
#include <string>

#include "triage/corpus.hpp"
#include "triage/signature.hpp"

namespace mtt::triage {

/// What a postmortem scenario file carries beyond the replayable schedule.
struct PostmortemInfo {
  replay::Scenario scenario;
  FailureSignature signature;
  int signal = 0;       ///< signal from the dump annotations (0 = drain)
  bool truncated = false;
};

/// Parses a flight-recorder dump: the scenario header/decisions plus the
/// annotations after the "end" trailer.  `status` is the farm run status
/// ("crashed" or "timeout") and selects the signature kind.  Throws
/// std::runtime_error on an unreadable scenario.
PostmortemInfo loadPostmortem(const std::string& path,
                              const std::string& status);

/// Loads the dump at `path` and inserts it into the corpus as an
/// unverified witness.  Returns the insert outcome (bucketed by the
/// synthesized signature's fingerprint).
InsertResult ingestPostmortem(Corpus& corpus, const std::string& path,
                              const std::string& status,
                              std::uint64_t discoveredEpoch);

}  // namespace mtt::triage
