#include "triage/probe.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "experiment/experiment.hpp"
#include "noise/noise.hpp"
#include "rt/controlled_runtime.hpp"
#include "suite/program.hpp"

namespace mtt::triage {

namespace {

/// Repair-mode schedule application, the minimizer's evaluation primitive.
/// A ddmin candidate is an edited decision vector, so some decisions may
/// name threads that are no longer enabled at their step (the deleted chunk
/// changed the interleaving).  Those decisions are consumed and skipped; an
/// exhausted vector falls back to deterministic round-robin.  The run the
/// repair actually produced is captured by the surrounding RecordingPolicy
/// and IS exactly replayable — that recording, not the edited input, becomes
/// the next current schedule.
class CandidatePolicy final : public rt::SchedulePolicy {
 public:
  explicit CandidatePolicy(std::vector<rt::Decision> decisions)
      : decisions_(std::move(decisions)) {}

  void onRunStart(std::uint64_t seed) override {
    (void)seed;
    next_ = 0;
    skips_ = 0;
    tailPicks_ = 0;
  }

  ThreadId pick(const rt::PickContext& ctx) override {
    while (next_ < decisions_.size()) {
      rt::Decision d = decisions_[next_++];
      if (!d.isThread()) {
        // A store pick where the run wants a thread: the edit misaligned
        // the vectors — drop it and keep the thread picks flowing.
        ++skips_;
        continue;
      }
      auto want = static_cast<ThreadId>(d.value);
      if (std::find(ctx.enabled.begin(), ctx.enabled.end(), want) !=
          ctx.enabled.end()) {
        return want;
      }
      ++skips_;
    }
    ++tailPicks_;
    return fallback_.pick(ctx);
  }

  std::uint32_t pickStore(const rt::StorePickContext& ctx) override {
    if (next_ < decisions_.size() && decisions_[next_].isStore()) {
      std::uint32_t age = decisions_[next_++].value;
      if (age < ctx.options.size()) return age;
      ++skips_;
      return 0;
    }
    // The vector expects a thread pick (or is exhausted) at this store
    // choice point: repair by observing the coherence-newest store without
    // consuming, so the thread picks stay aligned.
    ++skips_;
    return 0;
  }

  /// No decision was skipped and the round-robin tail never ran.
  bool exact() const { return skips_ == 0 && tailPicks_ == 0; }

 private:
  std::vector<rt::Decision> decisions_;
  std::size_t next_ = 0;
  std::uint64_t skips_ = 0;
  std::uint64_t tailPicks_ = 0;
  rt::RoundRobinPolicy fallback_;
};

/// Shared probe body: builds program + controlled runtime around `inner`
/// (ownership stays with the caller), attaches the scenario's tool stack,
/// runs once, and signs the result.  `exact` is sampled after the run.
ProbeResult executeProbe(const std::string& program, rt::SchedulePolicy& inner,
                         const ReplayToolConfig& cfg,
                         const std::function<bool()>& exact) {
  auto prog = suite::makeProgram(program);
  prog->reset();

  rt::RecordingPolicy recording(std::make_unique<rt::PolicyRef>(inner));
  rt::ControlledRuntime rt(std::make_unique<rt::PolicyRef>(recording));

  SignatureCollector collector;
  experiment::ToolStackBuilder builder;
  builder.borrowed(&collector);
  if (cfg.noiseName != "none" && !cfg.noiseName.empty()) {
    noise::NoiseOptions nopts;
    nopts.strength = cfg.strength;
    try {
      builder.noise(cfg.noiseName, nopts);
    } catch (const std::runtime_error&) {
      throw std::runtime_error("unknown noise heuristic '" + cfg.noiseName +
                               "' in replay tool config");
    }
  }
  experiment::ToolStack tools = builder.build();
  tools.attach(rt);

  rt::RunOptions opts = prog->defaultRunOptions();
  opts.seed = cfg.seed;
  opts.programName = program;

  ProbeResult out;
  out.result = rt.run([&](rt::Runtime& rr) { prog->body(rr); }, opts);
  bool manifested =
      prog->evaluate(out.result) == suite::Verdict::BugManifested;
  out.outcome = prog->outcome();
  out.signature = makeSignature(out.result, manifested, out.outcome,
                                collector.bugSiteTags());
  out.recorded = recording.schedule();
  out.noiseDecisions = rt.decisionNoise();
  out.exact = exact();
  return out;
}

}  // namespace

ReplayToolConfig toolConfigOf(const replay::Scenario& s) {
  ReplayToolConfig cfg;
  cfg.noiseName = s.noise;
  cfg.strength = s.strength;
  cfg.seed = s.seed;
  return cfg;
}

ProbeResult recordRun(const std::string& program, const std::string& policy,
                      const ReplayToolConfig& cfg) {
  auto inner = experiment::makePolicy(policy);
  return executeProbe(program, *inner, cfg, [] { return true; });
}

ProbeResult probeExact(const std::string& program, const rt::Schedule& s,
                       const ReplayToolConfig& cfg) {
  rt::ReplayPolicy rep(s);
  return executeProbe(program, rep, cfg, [&rep] { return !rep.diverged(); });
}

ProbeResult probeCandidate(const std::string& program,
                           const std::vector<rt::Decision>& decisions,
                           const ReplayToolConfig& cfg) {
  CandidatePolicy cand(decisions);
  return executeProbe(program, cand, cfg, [&cand] { return cand.exact(); });
}

std::size_t countPreemptions(const std::vector<rt::Decision>& decisions) {
  // Store picks are transparent: they belong to the thread scheduled just
  // before them, so the switch structure lives in the thread picks alone.
  std::vector<ThreadId> threads;
  threads.reserve(decisions.size());
  for (const rt::Decision& d : decisions) {
    if (d.isThread()) threads.push_back(static_cast<ThreadId>(d.value));
  }
  if (threads.size() < 2) return 0;
  // lastAt[t] = last index where thread t is scheduled.
  std::vector<std::size_t> lastAt;
  auto noteLast = [&lastAt](ThreadId t, std::size_t i) {
    if (t >= lastAt.size()) lastAt.resize(t + 1, 0);
    lastAt[t] = i;
  };
  for (std::size_t i = 0; i < threads.size(); ++i) {
    noteLast(threads[i], i);
  }
  std::size_t preemptions = 0;
  for (std::size_t i = 1; i < threads.size(); ++i) {
    ThreadId prev = threads[i - 1];
    if (threads[i] != prev && lastAt[prev] >= i) ++preemptions;
  }
  return preemptions;
}

}  // namespace mtt::triage
