#include "triage/postmortem.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mtt::triage {

namespace {

/// The dump's annotation block: everything after the scenario's "end"
/// trailer, which replay::loadScenario deliberately ignores.
std::vector<std::string> annotationLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open postmortem file " + path);
  std::vector<std::string> out;
  bool past = false;
  for (std::string line; std::getline(in, line);) {
    if (!past) {
      past = line == "end";
      continue;
    }
    if (line == "endpostmortem") break;
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace

PostmortemInfo loadPostmortem(const std::string& path,
                              const std::string& status) {
  PostmortemInfo info;
  info.scenario = replay::loadScenario(path);

  info.signature.kind =
      status == "timeout" ? FailureKind::Timeout : FailureKind::Crash;

  // The shape mirrors the in-process signatures: normalized, sorted lines.
  // The signal stays verbatim (normalizing "signal 11" to "signal #" would
  // merge SIGSEGV and SIGBUS buckets); event/heldlock lines are normalized
  // so object and thread ids do not split buckets.
  std::vector<std::string> eventTail;
  for (const std::string& line : annotationLines(path)) {
    if (line.rfind("postmortem signal ", 0) == 0) {
      info.signal = std::atoi(line.c_str() + 18);
      info.signature.shape.push_back("signal " +
                                     std::to_string(info.signal));
    } else if (line == "truncated") {
      info.truncated = true;
    } else if (line.rfind("heldlock ", 0) == 0) {
      info.signature.shape.push_back(normalizeTokens(line));
    } else if (line.rfind("event ", 0) == 0) {
      eventTail.push_back(normalizeTokens(line));
    }
  }
  // The last few events describe where the run died; a single combined
  // line keeps the order (a sorted shape would scramble it).
  const std::size_t keep = 8;
  if (!eventTail.empty()) {
    std::string tail = "tail:";
    std::size_t first = eventTail.size() > keep ? eventTail.size() - keep : 0;
    for (std::size_t i = first; i < eventTail.size(); ++i) {
      tail += " " + eventTail[i].substr(6);  // strip "event "
    }
    info.signature.shape.push_back(tail);
  }
  std::sort(info.signature.shape.begin(), info.signature.shape.end());
  return info;
}

InsertResult ingestPostmortem(Corpus& corpus, const std::string& path,
                              const std::string& status,
                              std::uint64_t discoveredEpoch) {
  PostmortemInfo info = loadPostmortem(path, status);
  return corpus.insert(info.scenario, info.signature,
                       /*replayVerified=*/false, /*shrunk=*/false,
                       discoveredEpoch);
}

}  // namespace mtt::triage
