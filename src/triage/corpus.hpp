// Scenario corpus — the on-disk repository of reproducible failure
// witnesses, organized by failure fingerprint:
//
//   <root>/index.tsv                              one line per entry
//   <root>/<program>/<fingerprint>/witness.scenario   v2 scenario file
//   <root>/<program>/<fingerprint>/meta               entry metadata
//
// One entry per (program, fingerprint): inserting a second witness for the
// same root cause keeps the *smaller* one (fewer decisions, then fewer
// preemptions), so over a long hunting campaign each bucket converges to its
// best-known minimal reproduction.  The paper's benchmark component 1 asks
// for "tests for the programs and test drivers" kept alongside documented
// bugs; the corpus is that artifact for schedule-level counterexamples —
// each witness re-runs with `mtt replay` (push-of-a-button, §4).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "replay/replay.hpp"
#include "triage/signature.hpp"

namespace mtt::triage {

/// One corpus entry (the parsed `meta` file).
struct CorpusEntry {
  std::string program;
  std::string fingerprint;
  std::string kind;       ///< to_string(FailureKind)
  std::string canonical;  ///< full signature text (multi-line)
  std::uint64_t seed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t discovered = 0;  ///< unix epoch seconds of first discovery
  bool replayVerified = false;   ///< witness was replay-checked at insert
  bool shrunk = false;           ///< witness went through the minimizer
  std::string noise = "none";
  double strength = 0.25;
  std::filesystem::path scenarioPath;  ///< the witness.scenario file
};

struct InsertResult {
  bool inserted = false;  ///< a new fingerprint bucket was created
  bool replaced = false;  ///< an existing witness was improved
  std::string fingerprint;
  std::filesystem::path witness;
};

struct VerifyOutcome {
  std::size_t checked = 0;
  std::size_t passed = 0;
  /// "<program>/<fingerprint>: <why>" per failing entry.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

class Corpus {
 public:
  explicit Corpus(std::filesystem::path root) : root_(std::move(root)) {}

  const std::filesystem::path& root() const { return root_; }

  /// Inserts (or improves) the bucket for the scenario's signature.
  /// Dedup-on-insert: an existing witness is replaced only by a strictly
  /// smaller one (fewer decisions; tie broken by fewer preemptions), and the
  /// bucket keeps its original discovery time.  `discoveredEpoch` is passed
  /// by the caller so tests stay deterministic.  Throws on a non-failure
  /// signature or an I/O error.
  InsertResult insert(const replay::Scenario& s, const FailureSignature& sig,
                      bool replayVerified, bool shrunk,
                      std::uint64_t discoveredEpoch);

  /// All entries (optionally for one program), sorted by (program,
  /// fingerprint).  Unreadable buckets are skipped.
  std::vector<CorpusEntry> entries(const std::string& programFilter = "") const;

  std::optional<CorpusEntry> find(const std::string& program,
                                  const std::string& fingerprint) const;

  std::filesystem::path witnessPath(const std::string& program,
                                    const std::string& fingerprint) const;

  /// Re-executes every witness under exact replay and checks that the
  /// observed signature still matches the stored fingerprint.
  VerifyOutcome verify(const std::string& programFilter = "") const;

  /// Removes buckets whose witness or metadata no longer loads (corrupt,
  /// truncated, deleted by hand) and rewrites the index.  Returns the number
  /// of buckets removed.
  std::size_t gc();

  /// Rewrites index.tsv from the on-disk buckets.
  void rebuildIndex() const;

 private:
  std::filesystem::path bucketDir(const std::string& program,
                                  const std::string& fingerprint) const;
  std::optional<CorpusEntry> loadEntry(
      const std::filesystem::path& dir) const;

  std::filesystem::path root_;
};

}  // namespace mtt::triage
