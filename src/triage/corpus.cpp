#include "triage/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"
#include "triage/probe.hpp"

namespace mtt::triage {

namespace fs = std::filesystem;

namespace {

constexpr const char* kWitnessFile = "witness.scenario";
constexpr const char* kMetaFile = "meta";
constexpr const char* kIndexFile = "index.tsv";
constexpr const char* kLockFile = ".lock";

void writeMeta(const fs::path& path, const CorpusEntry& e) {
  std::ostringstream out;
  out << "MTTMETA 1\n";
  out << "program " << e.program << '\n';
  out << "fingerprint " << e.fingerprint << '\n';
  out << "kind " << e.kind << '\n';
  out << "seed " << e.seed << '\n';
  out << "decisions " << e.decisions << '\n';
  out << "preemptions " << e.preemptions << '\n';
  out << "discovered " << e.discovered << '\n';
  out << "verified " << (e.replayVerified ? 1 : 0) << '\n';
  out << "shrunk " << (e.shrunk ? 1 : 0) << '\n';
  out << "noise " << e.noise << '\n';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", e.strength);
  out << "strength " << buf << '\n';
  std::istringstream canon(e.canonical);
  for (std::string line; std::getline(canon, line);) {
    out << "sig " << line << '\n';
  }
  out << "end\n";
  core::atomicWriteFile(path.string(), out.str());
}

bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end && *end == '\0';
}

}  // namespace

fs::path Corpus::bucketDir(const std::string& program,
                           const std::string& fingerprint) const {
  return root_ / program / fingerprint;
}

fs::path Corpus::witnessPath(const std::string& program,
                             const std::string& fingerprint) const {
  return bucketDir(program, fingerprint) / kWitnessFile;
}

std::optional<CorpusEntry> Corpus::loadEntry(const fs::path& dir) const {
  std::ifstream in(dir / kMetaFile);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "MTTMETA 1") return std::nullopt;
  CorpusEntry e;
  bool sawEnd = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      sawEnd = true;
      break;
    }
    auto space = line.find(' ');
    std::string key = line.substr(0, space);
    std::string val = space == std::string::npos ? "" : line.substr(space + 1);
    std::uint64_t n = 0;
    if (key == "program") {
      e.program = val;
    } else if (key == "fingerprint") {
      e.fingerprint = val;
    } else if (key == "kind") {
      e.kind = val;
    } else if (key == "seed" && parseU64(val, n)) {
      e.seed = n;
    } else if (key == "decisions" && parseU64(val, n)) {
      e.decisions = n;
    } else if (key == "preemptions" && parseU64(val, n)) {
      e.preemptions = n;
    } else if (key == "discovered" && parseU64(val, n)) {
      e.discovered = n;
    } else if (key == "verified") {
      e.replayVerified = val == "1";
    } else if (key == "shrunk") {
      e.shrunk = val == "1";
    } else if (key == "noise") {
      e.noise = val;
    } else if (key == "strength") {
      e.strength = std::strtod(val.c_str(), nullptr);
    } else if (key == "sig") {
      e.canonical += val;
      e.canonical += '\n';
    } else {
      return std::nullopt;  // unknown key: treat the bucket as corrupt
    }
  }
  if (!sawEnd || e.program.empty() || e.fingerprint.empty()) {
    return std::nullopt;
  }
  e.scenarioPath = dir / kWitnessFile;
  std::error_code ec;
  if (!fs::exists(e.scenarioPath, ec)) return std::nullopt;
  return e;
}

InsertResult Corpus::insert(const replay::Scenario& s,
                            const FailureSignature& sig, bool replayVerified,
                            bool shrunk, std::uint64_t discoveredEpoch) {
  if (!sig.failure()) {
    throw std::runtime_error(
        "corpus: refusing to insert a non-failing scenario");
  }
  if (s.program.empty()) {
    throw std::runtime_error("corpus: scenario has no program name");
  }
  InsertResult res;
  res.fingerprint = sig.fingerprint();
  fs::path dir = bucketDir(s.program, res.fingerprint);
  res.witness = dir / kWitnessFile;

  // Serialize against concurrent inserts/gc from other processes (e.g. two
  // farm campaigns sharing one corpus): the whole read-compare-write cycle
  // runs under the corpus-wide lock, so the smallest-witness comparison
  // and the index rewrite cannot interleave.
  std::error_code lec;
  fs::create_directories(root_, lec);
  core::FileLock lock((root_ / kLockFile).string());

  CorpusEntry e;
  e.program = s.program;
  e.fingerprint = res.fingerprint;
  e.kind = std::string(to_string(sig.kind));
  e.canonical = sig.canonical();
  e.seed = s.seed;
  e.decisions = s.schedule.size();
  e.preemptions = countPreemptions(s.schedule.decisions);
  e.discovered = discoveredEpoch;
  e.replayVerified = replayVerified;
  e.shrunk = shrunk;
  e.noise = s.noise;
  e.strength = s.strength;
  e.scenarioPath = res.witness;

  std::optional<CorpusEntry> existing = loadEntry(dir);
  if (existing) {
    bool better = e.decisions < existing->decisions ||
                  (e.decisions == existing->decisions &&
                   e.preemptions < existing->preemptions);
    if (!better) return res;  // bucket already holds a witness at least as small
    e.discovered = existing->discovered;  // first discovery time sticks
    res.replaced = true;
  } else {
    res.inserted = true;
  }

  std::error_code ec;
  fs::create_directories(dir, ec);
  replay::saveScenario(s, res.witness.string());
  writeMeta(dir / kMetaFile, e);
  rebuildIndex();
  return res;
}

std::vector<CorpusEntry> Corpus::entries(
    const std::string& programFilter) const {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  if (!fs::is_directory(root_, ec)) return out;
  for (const auto& progDir : fs::directory_iterator(root_, ec)) {
    if (!progDir.is_directory()) continue;
    std::string program = progDir.path().filename().string();
    if (!programFilter.empty() && program != programFilter) continue;
    std::error_code ec2;
    for (const auto& bucket : fs::directory_iterator(progDir.path(), ec2)) {
      if (!bucket.is_directory()) continue;
      if (auto e = loadEntry(bucket.path())) out.push_back(std::move(*e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return std::tie(a.program, a.fingerprint) <
                     std::tie(b.program, b.fingerprint);
            });
  return out;
}

std::optional<CorpusEntry> Corpus::find(const std::string& program,
                                        const std::string& fingerprint) const {
  return loadEntry(bucketDir(program, fingerprint));
}

VerifyOutcome Corpus::verify(const std::string& programFilter) const {
  VerifyOutcome out;
  for (const CorpusEntry& e : entries(programFilter)) {
    ++out.checked;
    std::string where = e.program + "/" + e.fingerprint;
    try {
      replay::Scenario s = replay::loadScenario(e.scenarioPath.string());
      if (!s.program.empty() && s.program != e.program) {
        out.failures.push_back(where + ": witness names program '" +
                               s.program + "'");
        continue;
      }
      ProbeResult p = probeExact(e.program, s.schedule, toolConfigOf(s));
      if (!p.signature.failure()) {
        out.failures.push_back(where + ": replay no longer fails");
      } else if (p.signature.fingerprint() != e.fingerprint) {
        out.failures.push_back(where + ": signature drifted to " +
                               p.signature.fingerprint());
      } else {
        ++out.passed;
      }
    } catch (const std::exception& ex) {
      out.failures.push_back(where + ": " + ex.what());
    }
  }
  return out;
}

std::size_t Corpus::gc() {
  std::size_t removed = 0;
  std::error_code ec;
  if (!fs::is_directory(root_, ec)) return 0;
  core::FileLock lock((root_ / kLockFile).string());
  for (const auto& progDir : fs::directory_iterator(root_, ec)) {
    if (!progDir.is_directory()) continue;
    std::error_code ec2;
    for (const auto& bucket : fs::directory_iterator(progDir.path(), ec2)) {
      if (!bucket.is_directory()) continue;
      bool healthy = false;
      if (auto e = loadEntry(bucket.path())) {
        try {
          replay::Scenario s = replay::loadScenario(e->scenarioPath.string());
          healthy = s.program.empty() || s.program == e->program;
        } catch (const std::exception&) {
          healthy = false;
        }
      }
      if (!healthy) {
        fs::remove_all(bucket.path(), ec2);
        ++removed;
      }
    }
    // Drop program directories emptied by the sweep.
    if (fs::is_empty(progDir.path(), ec2)) {
      fs::remove(progDir.path(), ec2);
    }
  }
  rebuildIndex();
  return removed;
}

void Corpus::rebuildIndex() const {
  std::ostringstream out;
  out << "# program\tfingerprint\tkind\tdecisions\tpreemptions\tseed\t"
         "verified\tshrunk\tnoise\tdiscovered\n";
  for (const CorpusEntry& e : entries()) {
    out << e.program << '\t' << e.fingerprint << '\t' << e.kind << '\t'
        << e.decisions << '\t' << e.preemptions << '\t' << e.seed << '\t'
        << (e.replayVerified ? 1 : 0) << '\t' << (e.shrunk ? 1 : 0) << '\t'
        << e.noise << '\t' << e.discovered << '\n';
  }
  // Atomic rewrite: readers of index.tsv always see a complete index, even
  // while another process is mid-insert.
  core::atomicWriteFile((root_ / kIndexFile).string(), out.str());
}

}  // namespace mtt::triage
