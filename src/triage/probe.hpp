// Replay probes: the three ways mtt::triage re-executes a suite program
// under the controlled runtime and observes its failure signature.
//
//   * recordRun      — run a fresh named policy (the hunt/record path),
//                      capturing the decision vector.
//   * probeExact     — exact replay of a recorded schedule via
//                      rt::ReplayPolicy (what `mtt replay` does), plus the
//                      signature of what happened.
//   * probeCandidate — best-effort execution of an *edited* decision vector,
//                      the evaluation primitive of schedule minimization:
//                      decisions naming a not-currently-enabled thread are
//                      skipped, an exhausted vector falls back to a
//                      deterministic round-robin tail, and the decisions the
//                      run actually took are re-recorded.  The recorded
//                      vector is always exactly replayable by probeExact.
//
// Every probe builds its own program instance, runtime and tool stack, so
// any number of probes may run concurrently (the property farm-parallel
// candidate batches rely on).
#pragma once

#include <string>
#include <vector>

#include "replay/replay.hpp"
#include "rt/policy.hpp"
#include "triage/signature.hpp"

namespace mtt::triage {

/// The tool stack a probe attaches around the program: the noise heuristic
/// that shaped the recorded run (signature-relevant: noise changes the
/// event stream) and the seed its injections derive from.
struct ReplayToolConfig {
  std::string noiseName = "none";
  double strength = 0.25;
  std::uint64_t seed = 0;
};

/// The replay tool config stored in a scenario's header.
ReplayToolConfig toolConfigOf(const replay::Scenario& s);

struct ProbeResult {
  rt::RunResult result;
  FailureSignature signature;
  rt::Schedule recorded;  ///< decisions the run actually took
  /// Parallel to `recorded`: true where the decision scheduled a
  /// noise-injected yield/sleep (ControlledRuntime::decisionNoise).
  std::vector<bool> noiseDecisions;
  bool exact = false;     ///< followed the given decisions with no repair
  std::string outcome;    ///< program outcome string
};

/// Runs the program under a fresh policy built by name ("random", "rr",
/// "priority") at cfg.seed, recording schedule + signature.
ProbeResult recordRun(const std::string& program, const std::string& policy,
                      const ReplayToolConfig& cfg);

/// Exact replay of a recorded schedule (rt::ReplayPolicy).  exact is false
/// when the replay diverged.
ProbeResult probeExact(const std::string& program, const rt::Schedule& s,
                       const ReplayToolConfig& cfg);

/// Best-effort execution of an edited decision vector (see file comment).
/// StorePick decisions are consumed at store choice points; an edit that
/// misaligned them is repaired by observing the coherence-newest store.
ProbeResult probeCandidate(const std::string& program,
                           const std::vector<rt::Decision>& decisions,
                           const ReplayToolConfig& cfg);

/// Offline preemption estimate for a decision vector: context switches away
/// from a thread that is scheduled again later (a switch away from a thread
/// that never runs again is it finishing, not a preemption).  StorePick
/// decisions are transparent — they belong to the thread scheduled before
/// them and never count as switches.
std::size_t countPreemptions(const std::vector<rt::Decision>& decisions);

}  // namespace mtt::triage
