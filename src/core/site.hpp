// Instrumentation sites: interned source locations with optional tags and
// bug-involvement annotations.
//
// The paper (Section 3) requires that every instrumented call carry "the
// thread name, location, bytecode type, abstract type (variable, control),
// read/write".  A Site is the "location" part: file, line, function, plus an
// optional human-readable tag.  The benchmark repository (Section 4)
// additionally annotates each trace record with whether "this location is
// involved in a bug"; that is the BugMark carried here.
#pragma once

#include <cstdint>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.hpp"

namespace mtt {

/// Whether an instrumentation site is part of a documented bug in the
/// benchmark program it belongs to.  Used to compute true-positive /
/// false-alarm statistics for detectors.
enum class BugMark : std::uint8_t { No = 0, Yes = 1 };

/// One interned instrumentation site.
struct SiteInfo {
  std::string file;
  std::string function;
  std::uint32_t line = 0;
  std::string tag;  ///< optional stable label, e.g. "account.deposit.read"
  BugMark bug = BugMark::No;
};

/// Process-wide intern table for instrumentation sites.
///
/// Thread-safe.  Sites are keyed by (tag, file, line) so that the same source
/// location tagged twice yields the same id, and traces recorded in different
/// runs agree on ids as long as registration order is deterministic (it is:
/// sites are registered at static-initialization time or on first execution
/// of the access expression, which in controlled mode is deterministic).
class SiteRegistry {
 public:
  static SiteRegistry& instance();

  /// Interns a site and returns its id.  Idempotent for identical keys.
  SiteId intern(std::string_view tag, BugMark bug,
                const std::source_location& loc);

  /// Resolves an id; returns a static "unknown" record for kNoSite or
  /// out-of-range ids.
  const SiteInfo& lookup(SiteId id) const;

  /// Number of interned sites (including the reserved id 0).
  std::size_t size() const;

  /// Short human-readable rendering: "tag (file:line)" or "file:line".
  std::string describe(SiteId id) const;

 private:
  SiteRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton: lives for the whole process
};

/// A site reference as passed at instrumentation points.  Cheap to copy.
struct Site {
  SiteId id = kNoSite;
  BugMark bug = BugMark::No;
};

/// Creates (interning on first use per call site arguments) a Site.
///
/// Typical use in a benchmark program:
///   balance.read(site("account.read", BugMark::Yes));
Site site(std::string_view tag = {}, BugMark bug = BugMark::No,
          const std::source_location& loc = std::source_location::current());

}  // namespace mtt
