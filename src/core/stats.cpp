#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mtt {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {
// Wilson score interval at z = 1.96.
std::pair<double, double> wilson(std::size_t k, std::size_t n) {
  if (n == 0) return {0.0, 1.0};
  const double z = 1.96;
  const double z2 = z * z;
  const double nf = static_cast<double>(n);
  const double p = static_cast<double>(k) / nf;
  const double denom = 1.0 + z2 / nf;
  const double center = (p + z2 / (2.0 * nf)) / denom;
  const double half =
      (z * std::sqrt(p * (1.0 - p) / nf + z2 / (4.0 * nf * nf))) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}
}  // namespace

double Proportion::wilsonLow() const { return wilson(successes, trials).first; }
double Proportion::wilsonHigh() const {
  return wilson(successes, trials).second;
}

void OutcomeDistribution::add(const std::string& outcome) {
  ++counts_[outcome];
  ++total_;
}

void OutcomeDistribution::merge(const OutcomeDistribution& other) {
  for (const auto& [outcome, c] : other.counts_) counts_[outcome] += c;
  total_ += other.total_;
}

double OutcomeDistribution::entropyBits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (const auto& [_, c] : counts_) {
    double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

double OutcomeDistribution::modeFraction() const {
  if (total_ == 0) return 0.0;
  std::size_t best = 0;
  for (const auto& [_, c] : counts_) best = std::max(best, c);
  return static_cast<double>(best) / static_cast<double>(total_);
}

}  // namespace mtt
