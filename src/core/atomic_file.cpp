#include "core/atomic_file.hpp"

#include "core/fault.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define MTT_HAS_UNISTD 1
#else
#define MTT_HAS_UNISTD 0
#endif

namespace mtt::core {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

std::string tempSibling(const std::string& path) {
  // Unique per process and per call, so concurrent writers to the same
  // target never share a temporary.
  static std::atomic<unsigned long> counter{0};
  unsigned long n = counter.fetch_add(1, std::memory_order_relaxed);
#if MTT_HAS_UNISTD
  long pid = static_cast<long>(::getpid());
#else
  long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." + std::to_string(n);
}

}  // namespace

void atomicWriteFile(const std::string& path, const std::string& contents,
                     bool syncToDisk) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);

  const std::string tmp = tempSibling(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot create temporary", tmp);

  // Fault-injection seam: an injected Short writes only a prefix of the
  // contents, Fail skips the write entirely — both feed the existing
  // failure path below (temp removed, target untouched, exception thrown),
  // which is exactly the atomicity contract under test.
  using Action = FaultDecision::Action;
  const FaultDecision wfault =
      checkFault(FaultOp::DiskWrite, "core.atomic_file.write", contents.size());
  bool ok = true;
  if (wfault.action == Action::Fail) {
    errno = wfault.err != 0 ? wfault.err : ENOSPC;
    ok = false;
  } else if (wfault.action == Action::Short) {
    const std::size_t wrote = std::min(contents.size(), wfault.count);
    std::fwrite(contents.data(), 1, wrote, f);
    errno = ENOSPC;
    ok = false;
  } else {
    ok = contents.empty() ||
         std::fwrite(contents.data(), 1, contents.size(), f) ==
             contents.size();
  }
  ok = std::fflush(f) == 0 && ok;
#if MTT_HAS_UNISTD
  if (ok && syncToDisk) {
    const FaultDecision sfault =
        checkFault(FaultOp::DiskFsync, "core.atomic_file.fsync", 0);
    if (sfault.action == Action::Fail) {
      errno = sfault.err != 0 ? sfault.err : EIO;
      ok = false;
    } else {
      ok = ::fsync(::fileno(f)) == 0;
    }
  }
#else
  (void)syncToDisk;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("short write to", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename into", path);
  }
}

FileLock::FileLock(const std::string& path) {
#if MTT_HAS_UNISTD
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) fail("cannot open lock file", path);
  // Retry through signal interruption: a farm parent forwarding SIGTERM to
  // workers must not drop the corpus lock on EINTR.
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    fail("cannot lock", path);
  }
#else
  (void)path;
#endif
}

FileLock::~FileLock() {
#if MTT_HAS_UNISTD
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
}

}  // namespace mtt::core
