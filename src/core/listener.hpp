// The hook API: how tools attach to the instrumented event stream.
//
// A Listener is the paper's "component with a standard interface" (Section 4,
// third benchmark component).  Noise makers, race detectors, deadlock
// detectors, replay recorders, coverage collectors and trace recorders all
// implement this one interface; the runtime dispatches every instrumentation
// point to every registered listener, so researchers "could use a
// mix-and-match approach and complement her component with benchmark
// components".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event.hpp"

namespace mtt {

/// Which runtime executes the run.  Listeners may adapt (e.g. a noise maker
/// injects real sleeps natively but scheduler perturbation under control).
enum class RuntimeMode : std::uint8_t { Native, Controlled };

/// Per-run metadata handed to listeners at run start.
struct RunInfo {
  std::string programName;  ///< suite program name, or "" for ad-hoc bodies
  std::uint64_t seed = 0;   ///< schedule/noise seed for this run
  RuntimeMode mode = RuntimeMode::Native;
};

/// Interface every dynamic tool implements.
///
/// Threading contract: in controlled mode, onEvent calls are serialized by
/// construction (one runnable thread at a time).  In native mode, onEvent may
/// be invoked concurrently from multiple test threads; listeners with mutable
/// state must synchronize internally.  onEvent is invoked on the thread that
/// executed the instrumentation point, so a listener may delay that specific
/// thread by blocking (this is exactly how native noise makers work).
class Listener {
 public:
  virtual ~Listener() = default;

  /// Called once before the run's main body starts.
  virtual void onRunStart(const RunInfo& info) { (void)info; }

  /// Called for every instrumentation-point execution.
  virtual void onEvent(const Event& e) = 0;

  /// Called once after all managed threads finished (or the run aborted).
  virtual void onRunEnd() {}
};

/// An ordered chain of listeners.  Dispatch order is registration order;
/// noise makers are conventionally registered last so that analysis tools
/// observe the event before the noise delay is injected.
class HookChain {
 public:
  /// Registers a listener (non-owning).  The listener must outlive the runs
  /// it observes.
  void add(Listener* l);

  /// Removes a previously registered listener; no-op if absent.
  void remove(Listener* l);

  void clear() { listeners_.clear(); }
  bool empty() const { return listeners_.empty(); }
  std::size_t size() const { return listeners_.size(); }

  void dispatchRunStart(const RunInfo& info) const;
  void dispatchEvent(const Event& e) const;
  void dispatchRunEnd() const;

 private:
  std::vector<Listener*> listeners_;
};

}  // namespace mtt
