// The hook API: how tools attach to the instrumented event stream.
//
// A Listener is the paper's "component with a standard interface" (Section 4,
// third benchmark component).  Noise makers, race detectors, deadlock
// detectors, replay recorders, coverage collectors and trace recorders all
// implement this one interface; the runtime dispatches every instrumentation
// point to every registered listener, so researchers "could use a
// mix-and-match approach and complement her component with benchmark
// components".
//
// Hook API v2: each listener additionally declares the set of EventKinds it
// consumes (subscribedEvents()).  HookChain precompiles one dispatch table
// per kind, so an event only reaches subscribed tools — a race detector never
// pays for Yield noise, a variable-coverage model never sees barrier traffic,
// and the common single-tool case is one indirect call with no vector scan.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.hpp"
#include "core/event_mask.hpp"

namespace mtt::rt {
class Runtime;
}  // namespace mtt::rt

namespace mtt {

/// Which runtime executes the run.  Listeners may adapt (e.g. a noise maker
/// injects real sleeps natively but scheduler perturbation under control).
enum class RuntimeMode : std::uint8_t { Native, Controlled };

/// Interns a program name into a process-lifetime pool and returns a stable
/// view.  RunInfo carries the view, so starting a run never copies the name
/// into every listener; the view outlives every run.
std::string_view internName(std::string_view name);

/// Per-run metadata handed to listeners at run start.
///
/// programName points into the intern pool (see internName) and is valid for
/// the rest of the process, so listeners may store the view directly.
struct RunInfo {
  std::string_view programName;  ///< suite program name, or "" for ad-hoc
  std::uint64_t seed = 0;        ///< schedule/noise seed for this run
  RuntimeMode mode = RuntimeMode::Native;
};

/// Interface every dynamic tool implements.
///
/// Threading contract: in controlled mode, onEvent calls are serialized by
/// construction (one runnable thread at a time).  In native mode, onEvent may
/// be invoked concurrently from multiple test threads; listeners with mutable
/// state must synchronize internally.  onEvent is invoked on the thread that
/// executed the instrumentation point, so a listener may delay that specific
/// thread by blocking (this is exactly how native noise makers work).
class Listener {
 public:
  virtual ~Listener() = default;

  /// Called once before the run's main body starts.
  virtual void onRunStart(const RunInfo& info) { (void)info; }

  /// Called for every instrumentation-point execution the listener is
  /// subscribed to (see subscribedEvents).
  virtual void onEvent(const Event& e) = 0;

  /// Called once after all managed threads finished (or the run aborted).
  virtual void onRunEnd() {}

  /// The kinds this listener wants delivered to onEvent.  Sampled once at
  /// HookChain::add time, so the mask must be stable while registered.
  /// Defaults to everything: a pre-v2 listener keeps observing the full
  /// stream without changes.
  virtual EventMask subscribedEvents() const { return EventMask::all(); }

  /// Short stable name for observability output ("djit", "mixed-noise", ...).
  virtual std::string_view listenerName() const { return "listener"; }

  /// Called by ToolStack::attach before registration, letting a tool that
  /// queries runtime services (object names, noise posting) re-target a new
  /// runtime instance so the same tool object serves many runs.  Tools
  /// without runtime dependencies ignore it.
  virtual void bindRuntime(rt::Runtime& rt) { (void)rt; }

  /// Drops all accumulated cross-run artifacts (warnings, recorded traces,
  /// coverage).  Per-run working state is already re-initialized by
  /// onRunStart; resetTool additionally returns the tool to its
  /// freshly-constructed observable state so pooled stacks don't leak
  /// results between campaigns.
  virtual void resetTool() {}
};

/// Per-listener slice of a run's dispatch cost (only populated when timing
/// was enabled for the run).
struct ListenerDispatchStats {
  std::string name;        ///< listenerName() at registration time
  std::uint64_t calls = 0; ///< onEvent invocations delivered
  std::uint64_t ns = 0;    ///< wall nanoseconds spent inside onEvent
};

/// Built-in dispatch observability: what the hook chain saw during a run.
/// countsByKind is always collected (one relaxed atomic add per event);
/// per-listener attribution costs two clock reads per delivery and is only
/// collected when HookChain::setTimingEnabled(true).
struct DispatchStats {
  std::array<std::uint64_t, kEventKindCount> countsByKind{};
  std::uint64_t events = 0;      ///< total events dispatched
  std::uint64_t deliveries = 0;  ///< listener onEvent invocations
  bool timed = false;
  std::vector<ListenerDispatchStats> listeners;

  /// Total listener nanoseconds divided by events (0 when untimed or empty).
  double nsPerEvent() const;
};

/// An ordered chain of listeners.  Dispatch order is registration order;
/// noise makers are conventionally registered last so that analysis tools
/// observe the event before the noise delay is injected.
///
/// v2 structure: registration produces per-kind dispatch tables (slots_),
/// one contiguous slot range per EventKind, each slot an atomic Listener
/// pointer.  dispatchEvent indexes the event's kind and walks only that
/// range — tools not subscribed to the kind are never touched.
///
/// Lifetime semantics (the v1 footgun, now defined): remove() during an
/// active dispatch — e.g. a tool detaching itself from inside onEvent or
/// onRunEnd — tombstones the listener by nulling its slots instead of
/// mutating the tables.  The removed listener observes no further callbacks,
/// including the remainder of the current event's fan-out; tombstones are
/// compacted at the next add(), clear() or dispatchRunStart().  add() and
/// clear() rebuild the tables and therefore must NOT be called while a
/// dispatch is in flight.
class HookChain {
 public:
  HookChain() = default;
  HookChain(const HookChain&) = delete;
  HookChain& operator=(const HookChain&) = delete;

  /// Registers a listener (non-owning) subscribed to l->subscribedEvents().
  /// The listener must outlive the runs it observes.
  void add(Listener* l);

  /// Registers with an explicit mask, overriding subscribedEvents().
  void add(Listener* l, EventMask mask);

  /// Removes a previously registered listener; no-op if absent.  Safe to
  /// call from inside a callback (see class comment).
  void remove(Listener* l);

  void clear();
  bool empty() const { return size() == 0; }
  std::size_t size() const;

  /// Enables per-listener time attribution for subsequent dispatches.
  void setTimingEnabled(bool on) { timing_ = on; }
  bool timingEnabled() const { return timing_; }

  /// Snapshot of dispatch counters accumulated since the last reset (the
  /// runtimes reset at run start and snapshot into RunResult at run end).
  DispatchStats stats() const;
  void resetStats();

  /// Compacts tombstones, resets stats, then notifies live listeners.
  void dispatchRunStart(const RunInfo& info);
  void dispatchEvent(const Event& e);
  void dispatchRunEnd();

 private:
  struct Entry {
    Listener* listener = nullptr;
    EventMask mask;
    std::string name;      ///< cached: survives listener destruction
    bool removed = false;  ///< tombstone; compacted at the next safe point
  };

  void compact();
  void rebuild();

  std::vector<Entry> entries_;  ///< registration order, incl. tombstones
  bool dirty_ = false;          ///< tombstones pending compaction

  // Per-kind dispatch tables: slots for kind k live at
  // [kindOffset_[k], kindOffset_[k+1]) in slots_; slotEntry_ maps a slot
  // back to its entries_ index for timing attribution.  Slots are atomic so
  // a tombstoning remove() is race-free against native-mode dispatch.
  std::array<std::uint32_t, kEventKindCount + 1> kindOffset_{};
  std::vector<std::atomic<Listener*>> slots_;
  std::vector<std::uint32_t> slotEntry_;

  bool timing_ = false;
  std::array<std::atomic<std::uint64_t>, kEventKindCount> counts_{};
  std::atomic<std::uint64_t> deliveries_{0};
  std::vector<std::atomic<std::uint64_t>> entryNs_;
  std::vector<std::atomic<std::uint64_t>> entryCalls_;
};

}  // namespace mtt
