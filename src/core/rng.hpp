// Deterministic pseudo-random number generation.
//
// Everything in mtt that makes a "random" decision (schedule policies, noise
// heuristics, workload generators) draws from these generators with an
// explicit seed, so that any run is reproducible from (program, tool config,
// seed).  This is a prerequisite for the paper's replay and prepared-
// experiment components.
#pragma once

#include <cstdint>
#include <span>

namespace mtt {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (public-domain output function).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.  Small, fast, high quality, and
/// trivially seedable — exactly what per-thread noise decisions need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull);

  std::uint64_t next();

  /// Uniform in [0, bound); bound must be > 0.  Uses Lemire's multiply-shift
  /// reduction (slight modulo bias at 2^64 scale is irrelevant here).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// Picks a uniformly random element index of a non-empty span.
  template <typename T>
  std::size_t pickIndex(std::span<const T> items) {
    return static_cast<std::size_t>(below(items.size()));
  }

  /// Derives an independent child generator (for per-thread streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Stable 64-bit mix of two values; used to derive per-(seed, index) streams.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

}  // namespace mtt
