// Crash-safe artifact I/O.
//
// Every on-disk artifact the framework produces (scenarios, corpus metadata,
// index files, traces) used to be written through a truncating ofstream: a
// crash mid-write leaves a corrupt partial file under the final name.  The
// durability layer routes those writers through atomicWriteFile, which writes
// a temporary sibling and rename(2)s it into place — readers observe either
// the old contents or the new, never a torn file.
//
// FileLock serializes multi-process access to a shared directory (the triage
// corpus) via flock(2); on platforms without flock it degrades to a no-op,
// which preserves single-process correctness.
#pragma once

#include <cstdio>
#include <string>

namespace mtt::core {

/// Writes `contents` to `path` atomically: the data lands in a uniquely
/// named temporary sibling (same directory, so the rename cannot cross a
/// filesystem boundary), then rename(2) replaces `path` in one step.  With
/// `syncToDisk` the temporary is fsync'd before the rename, so the contents
/// survive a power failure, not just a process crash.  Throws
/// std::runtime_error (and removes the temporary) on any failure.
void atomicWriteFile(const std::string& path, const std::string& contents,
                     bool syncToDisk = false);

/// RAII advisory lock on a lock file.  Creates `path` if missing and holds
/// an exclusive flock(2) until destruction; cooperating processes using the
/// same path serialize against each other.  Locking is advisory — readers
/// that do not take the lock are unaffected — and recursive acquisition in
/// one process deadlocks, so scope instances tightly.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// True when the flock was actually acquired (false on platforms without
  /// flock, where the lock degrades to a no-op).
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace mtt::core
