#include "core/listener.hpp"

#include <algorithm>

namespace mtt {

void HookChain::add(Listener* l) {
  if (l == nullptr) return;
  if (std::find(listeners_.begin(), listeners_.end(), l) == listeners_.end()) {
    listeners_.push_back(l);
  }
}

void HookChain::remove(Listener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l),
                   listeners_.end());
}

void HookChain::dispatchRunStart(const RunInfo& info) const {
  for (Listener* l : listeners_) l->onRunStart(info);
}

void HookChain::dispatchEvent(const Event& e) const {
  for (Listener* l : listeners_) l->onEvent(e);
}

void HookChain::dispatchRunEnd() const {
  for (Listener* l : listeners_) l->onRunEnd();
}

}  // namespace mtt
