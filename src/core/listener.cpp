#include "core/listener.hpp"

#include <chrono>
#include <mutex>
#include <unordered_set>

namespace mtt {

namespace {

struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view internName(std::string_view name) {
  if (name.empty()) return {};
  // unordered_set is node-based: references stay valid across rehashing, so
  // the returned view lives for the rest of the process.
  static std::mutex mu;
  static std::unordered_set<std::string, SvHash, SvEq> pool;
  std::lock_guard<std::mutex> lk(mu);
  auto it = pool.find(name);
  if (it == pool.end()) it = pool.emplace(name).first;
  return *it;
}

double DispatchStats::nsPerEvent() const {
  if (!timed || events == 0) return 0.0;
  std::uint64_t total = 0;
  for (const ListenerDispatchStats& l : listeners) total += l.ns;
  return static_cast<double>(total) / static_cast<double>(events);
}

void HookChain::add(Listener* l) {
  if (l == nullptr) return;
  add(l, l->subscribedEvents());
}

void HookChain::add(Listener* l, EventMask mask) {
  if (l == nullptr) return;
  compact();
  for (const Entry& en : entries_) {
    if (en.listener == l) return;
  }
  Entry en;
  en.listener = l;
  en.mask = mask;
  en.name = std::string(l->listenerName());
  entries_.push_back(std::move(en));
  rebuild();
}

void HookChain::remove(Listener* l) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].listener != l || entries_[i].removed) continue;
    entries_[i].removed = true;
    dirty_ = true;
    // Null the listener's slots so in-flight and subsequent dispatches skip
    // it; the table structure itself is untouched (safe mid-dispatch).
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slotEntry_[s] == i) {
        slots_[s].store(nullptr, std::memory_order_release);
      }
    }
  }
}

void HookChain::clear() {
  entries_.clear();
  dirty_ = false;
  rebuild();
}

std::size_t HookChain::size() const {
  std::size_t n = 0;
  for (const Entry& en : entries_) {
    if (!en.removed) ++n;
  }
  return n;
}

void HookChain::compact() {
  if (!dirty_) return;
  std::vector<Entry> live;
  live.reserve(entries_.size());
  for (Entry& en : entries_) {
    if (!en.removed) live.push_back(std::move(en));
  }
  entries_ = std::move(live);
  dirty_ = false;
  rebuild();
}

void HookChain::rebuild() {
  std::size_t total = 0;
  for (const Entry& en : entries_) {
    if (!en.removed) total += en.mask.count();
  }
  std::vector<std::atomic<Listener*>> slots(total);
  std::vector<std::uint32_t> slotEntry(total);
  std::uint32_t at = 0;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    kindOffset_[k] = at;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& en = entries_[i];
      if (en.removed || !en.mask.contains(static_cast<EventKind>(k))) continue;
      slots[at].store(en.listener, std::memory_order_relaxed);
      slotEntry[at] = static_cast<std::uint32_t>(i);
      ++at;
    }
  }
  kindOffset_[kEventKindCount] = at;
  slots_ = std::move(slots);
  slotEntry_ = std::move(slotEntry);
  entryNs_ = std::vector<std::atomic<std::uint64_t>>(entries_.size());
  entryCalls_ = std::vector<std::atomic<std::uint64_t>>(entries_.size());
}

DispatchStats HookChain::stats() const {
  DispatchStats s;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    s.countsByKind[k] = counts_[k].load(std::memory_order_relaxed);
    s.events += s.countsByKind[k];
  }
  s.deliveries = deliveries_.load(std::memory_order_relaxed);
  s.timed = timing_;
  if (timing_) {
    s.listeners.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      ListenerDispatchStats ls;
      ls.name = entries_[i].name;
      ls.calls = i < entryCalls_.size()
                     ? entryCalls_[i].load(std::memory_order_relaxed)
                     : 0;
      ls.ns =
          i < entryNs_.size() ? entryNs_[i].load(std::memory_order_relaxed) : 0;
      s.listeners.push_back(std::move(ls));
    }
  }
  return s;
}

void HookChain::resetStats() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  deliveries_.store(0, std::memory_order_relaxed);
  for (auto& n : entryNs_) n.store(0, std::memory_order_relaxed);
  for (auto& n : entryCalls_) n.store(0, std::memory_order_relaxed);
}

void HookChain::dispatchRunStart(const RunInfo& info) {
  compact();
  resetStats();
  // Index loop, not iterators: a listener may remove() (itself or a peer)
  // from inside onRunStart, which only flips tombstone flags.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].removed) entries_[i].listener->onRunStart(info);
  }
}

void HookChain::dispatchEvent(const Event& e) {
  const auto k = static_cast<std::size_t>(e.kind);
  counts_[k].fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t begin = kindOffset_[k];
  const std::uint32_t end = kindOffset_[k + 1];
  if (begin == end) return;
  if (!timing_) {
    for (std::uint32_t s = begin; s < end; ++s) {
      Listener* l = slots_[s].load(std::memory_order_acquire);
      if (l == nullptr) continue;  // tombstoned mid-run
      deliveries_.fetch_add(1, std::memory_order_relaxed);
      l->onEvent(e);
    }
    return;
  }
  for (std::uint32_t s = begin; s < end; ++s) {
    Listener* l = slots_[s].load(std::memory_order_acquire);
    if (l == nullptr) continue;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t0 = nowNs();
    l->onEvent(e);
    const std::uint64_t dt = nowNs() - t0;
    const std::uint32_t en = slotEntry_[s];
    entryNs_[en].fetch_add(dt, std::memory_order_relaxed);
    entryCalls_[en].fetch_add(1, std::memory_order_relaxed);
  }
}

void HookChain::dispatchRunEnd() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].removed) entries_[i].listener->onRunEnd();
  }
}

}  // namespace mtt
