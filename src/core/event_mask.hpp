// Subscription masks for Hook API v2.
//
// A Listener declares, via Listener::subscribedEvents(), the set of
// EventKinds it wants delivered; HookChain uses the mask to precompile
// per-kind dispatch tables so an event only reaches subscribed tools.
// The mask is a plain 64-bit bitset over EventKind (33 kinds today, so a
// uint64_t has headroom) and every operation is constexpr: masks compose at
// compile time in tool headers without touching the hot path.
#pragma once

#include <cstdint>
#include <initializer_list>

#include "core/event.hpp"

namespace mtt {

/// Number of real event kinds (kCount excluded).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount);

/// A set of EventKinds, used as a dispatch subscription.
///
/// Category helpers (sync(), variable(), control(), ...) mirror the paper's
/// "abstract type" dimension so a tool can say "all Sync events" without
/// enumerating kinds.  test_core asserts these stay consistent with
/// abstract_type_of().
class EventMask {
 public:
  constexpr EventMask() = default;

  /// Mask containing exactly the listed kinds.
  constexpr EventMask(std::initializer_list<EventKind> kinds) {
    for (EventKind k : kinds) bits_ |= bit(k);
  }

  static constexpr EventMask none() { return EventMask(); }

  static constexpr EventMask all() {
    return fromBits((std::uint64_t{1} << kEventKindCount) - 1);
  }

  static constexpr EventMask of(EventKind k) { return fromBits(bit(k)); }

  /// All kinds operating on a synchronization object (AbstractType::Sync):
  /// mutexes, condition variables, semaphores, barriers, rw-locks.
  static constexpr EventMask sync() {
    return EventMask{
        EventKind::MutexLock,      EventKind::MutexUnlock,
        EventKind::MutexTryLockOk, EventKind::MutexTryLockFail,
        EventKind::CondWaitBegin,  EventKind::CondWaitEnd,
        EventKind::CondSignal,     EventKind::CondBroadcast,
        EventKind::SemAcquire,     EventKind::SemRelease,
        EventKind::BarrierEnter,   EventKind::BarrierExit,
        EventKind::RwLockRead,     EventKind::RwLockWrite,
        EventKind::RwUnlockRead,   EventKind::RwUnlockWrite,
    };
  }

  /// Shared-variable accesses (AbstractType::Variable).
  static constexpr EventMask variable() {
    return EventMask{EventKind::VarRead, EventKind::VarWrite};
  }

  /// Thread lifecycle + yields (AbstractType::Control).
  static constexpr EventMask control() {
    return EventMask{EventKind::ThreadStart, EventKind::ThreadFinish,
                     EventKind::ThreadSpawn, EventKind::ThreadJoin,
                     EventKind::Yield};
  }

  /// Event-loop task boundaries (AbstractType::Task): callback post/begin/
  /// end, timer fires, ready-queue take/put — the schedule points of
  /// mtt::evloop::EventLoop.
  static constexpr EventMask evloop() {
    return EventMask{EventKind::TaskPost,  EventKind::TaskBegin,
                     EventKind::TaskEnd,   EventKind::TimerFire,
                     EventKind::QueueTake, EventKind::QueuePut};
  }

  /// Instrumented-atomic operations (AbstractType::Atomic): memory-order-
  /// carrying loads/stores/RMWs and standalone fences of mtt::mem::Atomic.
  static constexpr EventMask atomics() {
    return EventMask{EventKind::AtomicLoad, EventKind::AtomicStore,
                     EventKind::AtomicRMW, EventKind::Fence};
  }

  /// Thread lifecycle only (control() minus Yield).
  static constexpr EventMask threads() {
    return EventMask{EventKind::ThreadStart, EventKind::ThreadFinish,
                     EventKind::ThreadSpawn, EventKind::ThreadJoin};
  }

  /// Lock-shaped acquire/release kinds (mutex + rw-lock), the working set of
  /// lockset analyses and lock-order deadlock detectors.
  static constexpr EventMask locks() {
    return EventMask{
        EventKind::MutexLock,      EventKind::MutexUnlock,
        EventKind::MutexTryLockOk, EventKind::MutexTryLockFail,
        EventKind::RwLockRead,     EventKind::RwLockWrite,
        EventKind::RwUnlockRead,   EventKind::RwUnlockWrite,
    };
  }

  constexpr EventMask with(EventKind k) const {
    return fromBits(bits_ | bit(k));
  }

  constexpr EventMask without(EventKind k) const {
    return fromBits(bits_ & ~bit(k));
  }

  constexpr bool contains(EventKind k) const {
    return (bits_ & bit(k)) != 0;
  }

  constexpr bool empty() const { return bits_ == 0; }

  constexpr std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t b = bits_; b != 0; b &= b - 1) ++n;
    return n;
  }

  constexpr EventMask operator|(EventMask o) const {
    return fromBits(bits_ | o.bits_);
  }
  constexpr EventMask operator&(EventMask o) const {
    return fromBits(bits_ & o.bits_);
  }
  constexpr EventMask operator~() const {
    return fromBits(~bits_ & all().bits_);
  }
  constexpr EventMask& operator|=(EventMask o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr EventMask& operator&=(EventMask o) {
    bits_ &= o.bits_;
    return *this;
  }
  constexpr bool operator==(const EventMask&) const = default;

  /// True when every kind in `o` is also in this mask.
  constexpr bool covers(EventMask o) const {
    return (o.bits_ & ~bits_) == 0;
  }

  constexpr std::uint64_t bits() const { return bits_; }

  static constexpr EventMask fromBits(std::uint64_t bits) {
    EventMask m;
    m.bits_ = bits & all_bits();
    return m;
  }

 private:
  static constexpr std::uint64_t all_bits() {
    return (std::uint64_t{1} << kEventKindCount) - 1;
  }
  static constexpr std::uint64_t bit(EventKind k) {
    return std::uint64_t{1} << static_cast<std::uint32_t>(k);
  }

  std::uint64_t bits_ = 0;
};

static_assert(kEventKindCount <= 64,
              "EventMask is a uint64_t bitset; widen it before adding kinds");

}  // namespace mtt
