// The fault-injection seam mtt::chaos plugs into.
//
// Every I/O primitive the campaign infrastructure depends on — fleet socket
// sends/recvs, worker heartbeats, journal appends, fsyncs, atomic file
// writes — consults the process-global FaultInjector (if any) immediately
// before touching the kernel.  With no injector installed (the default) the
// check is one relaxed atomic load; production paths pay nothing
// measurable.  With one installed (tests, `mtt chaos`), the injector sees
// every operation as (op kind, site tag, byte count) and may order the
// caller to sever the connection, truncate the transfer, stall, fail with a
// chosen errno, or duplicate the operation.
//
// The seam lives in core — below farm and fleet — so both layers inject
// through the same interface and a single plan can coordinate network and
// disk faults.  The injector itself (mtt::chaos::FaultPlan) lives one layer
// up; core only defines the contract.
//
// Thread-safety: onOp may be called concurrently from the coordinator
// thread, worker threads, and farm workers; implementations must be
// thread-safe.  Installation is not synchronized with in-flight I/O —
// install before starting the campaign, uninstall after it fully stops
// (FaultScope does both ends).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mtt::core {

/// Where in the I/O stack an operation is about to happen.
enum class FaultOp : std::uint8_t {
  NetSend,        ///< fleet frame/byte send
  NetRecv,        ///< fleet byte receive
  HeartbeatSend,  ///< worker idle keepalive (delay/duplicate target)
  DiskWrite,      ///< journal append / atomic-file payload write
  DiskFsync,      ///< journal or atomic-file fsync
};

const char* to_string(FaultOp op);

/// What the injector orders the I/O site to do.
struct FaultDecision {
  enum class Action : std::uint8_t {
    None,       ///< proceed normally
    Sever,      ///< let `count` bytes through, then cut the connection
    Short,      ///< transfer at most `count` bytes (partial read/write)
    Stall,      ///< sleep `delay`, then proceed
    Fail,       ///< fail the operation with errno `err`
    Duplicate,  ///< perform the operation twice (heartbeats)
  };
  Action action = Action::None;
  std::size_t count = 0;  ///< Sever / Short byte budget
  int err = 0;            ///< Fail errno
  std::chrono::milliseconds delay{0};  ///< Stall duration
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Called once per I/O operation with the operation kind, a stable site
  /// tag (e.g. "fleet.coord.recv", "farm.journal.append"), and the byte
  /// count about to move (0 when unknown).  Must be thread-safe.
  virtual FaultDecision onOp(FaultOp op, const char* site,
                             std::size_t bytes) = 0;
};

namespace fault_detail {
extern std::atomic<FaultInjector*> g_injector;
}

/// The currently installed injector, or nullptr (the common case).
inline FaultInjector* faultInjector() {
  return fault_detail::g_injector.load(std::memory_order_acquire);
}

/// Installs `injector` process-wide (nullptr uninstalls).  Returns the
/// previous injector.
FaultInjector* setFaultInjector(FaultInjector* injector);

/// One-call convenience for I/O sites: no injector -> Action::None.
inline FaultDecision checkFault(FaultOp op, const char* site,
                                std::size_t bytes) {
  FaultInjector* inj = faultInjector();
  if (inj == nullptr) return FaultDecision{};
  return inj->onOp(op, site, bytes);
}

/// RAII installation: installs on construction, restores the previous
/// injector on destruction.  Scope it around an entire campaign, never
/// around individual operations.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector* injector)
      : previous_(setFaultInjector(injector)) {}
  ~FaultScope() { setFaultInjector(previous_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace mtt::core
