#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mtt {

void TextTable::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::frac(std::size_t k, std::size_t n) {
  double pct = n ? 100.0 * static_cast<double>(k) / static_cast<double>(n) : 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu/%zu (%.1f%%)", k, n, pct);
  return buf;
}

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  total = std::max(total, title_.size());

  std::ostringstream out;
  out << title_ << '\n' << std::string(total, '=') << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      std::string cell = i < cells.size() ? cells[i] : std::string();
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TextTable::print() const {
  std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace mtt
