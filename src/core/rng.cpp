#include "core/rng.hpp"

namespace mtt {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Guard against the all-zero state (probability ~2^-256 but cheap to fix).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // 128-bit multiply-shift reduction.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next() ^ 0x6a09e667f3bcc909ull); }

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
  sm.next();
  return sm.next();
}

}  // namespace mtt
