#include "core/fault.hpp"

namespace mtt::core {

namespace fault_detail {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace fault_detail

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::NetSend:
      return "net-send";
    case FaultOp::NetRecv:
      return "net-recv";
    case FaultOp::HeartbeatSend:
      return "heartbeat";
    case FaultOp::DiskWrite:
      return "disk-write";
    case FaultOp::DiskFsync:
      return "fsync";
  }
  return "?";
}

FaultInjector* setFaultInjector(FaultInjector* injector) {
  return fault_detail::g_injector.exchange(injector,
                                           std::memory_order_acq_rel);
}

}  // namespace mtt::core
