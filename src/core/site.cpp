#include "core/site.hpp"

#include <map>
#include <mutex>
#include <tuple>

namespace mtt {

struct SiteRegistry::Impl {
  mutable std::mutex mu;
  // key: (tag, file, line)
  std::map<std::tuple<std::string, std::string, std::uint32_t>, SiteId> index;
  std::vector<SiteInfo> sites;
};

SiteRegistry::SiteRegistry() : impl_(new Impl) {
  impl_->sites.push_back(SiteInfo{"<none>", "<none>", 0, "", BugMark::No});
}

SiteRegistry& SiteRegistry::instance() {
  static SiteRegistry* reg = new SiteRegistry;  // leaked: no exit-order issues
  return *reg;
}

SiteId SiteRegistry::intern(std::string_view tag, BugMark bug,
                            const std::source_location& loc) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto key = std::make_tuple(std::string(tag), std::string(loc.file_name()),
                             static_cast<std::uint32_t>(loc.line()));
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) {
    // Upgrade the bug mark if a later registration marks the site buggy.
    if (bug == BugMark::Yes) impl_->sites[it->second].bug = BugMark::Yes;
    return it->second;
  }
  SiteId id = static_cast<SiteId>(impl_->sites.size());
  impl_->sites.push_back(SiteInfo{std::string(loc.file_name()),
                                  std::string(loc.function_name()),
                                  static_cast<std::uint32_t>(loc.line()),
                                  std::string(tag), bug});
  impl_->index.emplace(std::move(key), id);
  return id;
}

const SiteInfo& SiteRegistry::lookup(SiteId id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (id >= impl_->sites.size()) id = kNoSite;
  return impl_->sites[id];
}

std::size_t SiteRegistry::size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->sites.size();
}

std::string SiteRegistry::describe(SiteId id) const {
  const SiteInfo& info = lookup(id);
  std::string out;
  if (!info.tag.empty()) {
    out = info.tag;
    out += " (";
  }
  // Strip directories from the file path for readability.
  auto slash = info.file.find_last_of('/');
  out += (slash == std::string::npos) ? info.file : info.file.substr(slash + 1);
  out += ':';
  out += std::to_string(info.line);
  if (!info.tag.empty()) out += ')';
  return out;
}

Site site(std::string_view tag, BugMark bug, const std::source_location& loc) {
  Site s;
  s.id = SiteRegistry::instance().intern(tag, bug, loc);
  s.bug = bug;
  return s;
}

}  // namespace mtt
