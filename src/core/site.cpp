#include "core/site.hpp"

#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <tuple>

namespace mtt {

// The registry sits on the instrumentation fast path: every lock/read/write
// in every program thread re-interns its site.  Hits (everything after the
// first execution of an access expression) take only a shared lock and do a
// heterogeneous map find on string_views — no allocation, so concurrent
// campaign runs in one process don't serialize here.  SiteInfo storage is a
// deque: lookup() hands out references that must survive later interning.
struct SiteRegistry::Impl {
  mutable std::shared_mutex mu;
  // key: (tag, file, line); less<> enables allocation-free string_view finds
  std::map<std::tuple<std::string, std::string, std::uint32_t>, SiteId,
           std::less<>>
      index;
  std::deque<SiteInfo> sites;
};

SiteRegistry::SiteRegistry() : impl_(new Impl) {
  impl_->sites.push_back(SiteInfo{"<none>", "<none>", 0, "", BugMark::No});
}

SiteRegistry& SiteRegistry::instance() {
  static SiteRegistry* reg = new SiteRegistry;  // leaked: no exit-order issues
  return *reg;
}

SiteId SiteRegistry::intern(std::string_view tag, BugMark bug,
                            const std::source_location& loc) {
  const auto probe = std::make_tuple(
      tag, std::string_view(loc.file_name()),
      static_cast<std::uint32_t>(loc.line()));
  {
    std::shared_lock<std::shared_mutex> lk(impl_->mu);
    auto it = impl_->index.find(probe);
    // Hit with no bug-mark upgrade needed: the hot path, read lock only.
    if (it != impl_->index.end() &&
        (bug == BugMark::No || impl_->sites[it->second].bug == BugMark::Yes)) {
      return it->second;
    }
  }
  std::lock_guard<std::shared_mutex> lk(impl_->mu);
  auto it = impl_->index.find(probe);
  if (it != impl_->index.end()) {
    // Upgrade the bug mark if a later registration marks the site buggy.
    if (bug == BugMark::Yes) impl_->sites[it->second].bug = BugMark::Yes;
    return it->second;
  }
  SiteId id = static_cast<SiteId>(impl_->sites.size());
  impl_->sites.push_back(SiteInfo{std::string(loc.file_name()),
                                  std::string(loc.function_name()),
                                  static_cast<std::uint32_t>(loc.line()),
                                  std::string(tag), bug});
  impl_->index.emplace(
      std::make_tuple(std::string(tag), std::string(loc.file_name()),
                      static_cast<std::uint32_t>(loc.line())),
      id);
  return id;
}

const SiteInfo& SiteRegistry::lookup(SiteId id) const {
  std::shared_lock<std::shared_mutex> lk(impl_->mu);
  if (id >= impl_->sites.size()) id = kNoSite;
  return impl_->sites[id];
}

std::size_t SiteRegistry::size() const {
  std::shared_lock<std::shared_mutex> lk(impl_->mu);
  return impl_->sites.size();
}

std::string SiteRegistry::describe(SiteId id) const {
  const SiteInfo& info = lookup(id);
  std::string out;
  if (!info.tag.empty()) {
    out = info.tag;
    out += " (";
  }
  // Strip directories from the file path for readability.
  auto slash = info.file.find_last_of('/');
  out += (slash == std::string::npos) ? info.file : info.file.substr(slash + 1);
  out += ':';
  out += std::to_string(info.line);
  if (!info.tag.empty()) out += ')';
  return out;
}

Site site(std::string_view tag, BugMark bug, const std::source_location& loc) {
  Site s;
  s.id = SiteRegistry::instance().intern(tag, bug, loc);
  s.bug = bug;
  return s;
}

}  // namespace mtt
