// Unified retry backoff: capped exponential growth with deterministic
// jitter.
//
// Before mtt::chaos, three subsystems each hand-rolled the same idea with
// slightly different bugs waiting to happen: the farm's run-retry loop and
// the fleet worker's assignment-retry loop both computed
// `backoff * (1u << (attempt - 1))` (unbounded, overflow-prone past 32
// attempts), and the fleet's retrying connect slept a flat 50 ms.  This
// header is the one implementation all of them (plus the worker reconnect
// path) now share.
//
// Jitter is deterministic: it is a pure function of (seed, attempt), so a
// retry schedule is reproducible from the same inputs — chaos campaigns can
// replay the exact timing-decision sequence, and two runs of the same seed
// never diverge on sleep durations.  Spread matters only to de-synchronize
// *different* seeds (e.g. many workers reconnecting after a coordinator
// restart), which distinct seeds provide.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace mtt::core {

struct BackoffPolicy {
  /// Delay before the first retry.
  std::chrono::milliseconds initial{10};
  /// Hard ceiling on any single delay (the "capped" in capped exponential).
  std::chrono::milliseconds cap{2000};
  /// Multiplier per attempt; 2 doubles, 1 makes the backoff flat.
  unsigned factor = 2;
  /// Fraction of the pre-jitter delay that jitter may subtract, in
  /// [0, 1].  0 disables jitter entirely.
  double jitter = 0.5;
  /// Stream selector for the deterministic jitter.
  std::uint64_t seed = 0;
};

namespace backoff_detail {

/// SplitMix64 output function: a stateless 64-bit mix, good enough to turn
/// (seed, attempt) into an independent-looking jitter draw.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace backoff_detail

/// Delay before retry number `attempt` (1-based): initial * factor^(a-1),
/// clamped to the cap, minus a deterministic jitter slice.  Pure function —
/// the same (policy, attempt) always yields the same delay.
inline std::chrono::milliseconds backoffDelay(const BackoffPolicy& policy,
                                              std::uint32_t attempt) {
  if (attempt == 0) attempt = 1;
  // Grow in 64-bit and saturate instead of shifting into UB: attempt 40 of
  // a doubling schedule must hit the cap, not wrap to a tiny sleep.
  std::uint64_t ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(policy.initial.count(), 0));
  const std::uint64_t capMs = static_cast<std::uint64_t>(
      std::max<std::int64_t>(policy.cap.count(), 0));
  for (std::uint32_t i = 1; i < attempt && ms < capMs; ++i) {
    ms *= std::max(1u, policy.factor);
  }
  ms = std::min(ms, capMs);
  if (policy.jitter > 0.0 && ms > 0) {
    const double frac = std::clamp(policy.jitter, 0.0, 1.0);
    const std::uint64_t draw =
        backoff_detail::mix(policy.seed * 0x2545f4914f6cdd1dull + attempt);
    // Uniform in [0, frac): subtractive jitter keeps the cap a true ceiling.
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    ms -= static_cast<std::uint64_t>(static_cast<double>(ms) * frac * u);
  }
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

/// Stateful wrapper: next() walks the schedule, reset() rewinds it (a
/// successful attempt ends the episode).
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy) : policy_(policy) {}

  std::chrono::milliseconds next() { return backoffDelay(policy_, ++attempt_); }
  void reset() { attempt_ = 0; }
  std::uint32_t attempts() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  std::uint32_t attempt_ = 0;
};

}  // namespace mtt::core
