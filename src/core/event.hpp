// The event model: one record per instrumentation point execution.
//
// This is the open API the paper proposes (Section 3): "assume that an
// instrumented application is available in which a call is placed in every
// concurrent location that has information such as the thread name, location,
// bytecode type, abstract type (variable, control), read/write.  The writer
// of a race-detection or noise heuristic can then write his algorithm only."
//
// Every dynamic tool in this repository (noise makers, race detectors,
// deadlock detectors, replay recorders, coverage collectors, trace recorders)
// consumes exactly this Event type, online via mtt::Listener or offline via
// mtt::trace::TraceReader.
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "core/site.hpp"

namespace mtt {

/// Kind of operation executed at an instrumentation point.  This is the
/// "bytecode type" of the paper's record, adapted to the mtt runtime's
/// visible operations.
enum class EventKind : std::uint8_t {
  // Thread lifecycle.
  ThreadStart,   ///< first event of a managed thread (object = own tid)
  ThreadFinish,  ///< last event of a managed thread
  ThreadSpawn,   ///< parent spawned a child (object = child tid)
  ThreadJoin,    ///< join completed (object = joined tid)
  // Mutexes.
  MutexLock,     ///< lock acquired (after any blocking)
  MutexUnlock,   ///< lock about to be released
  MutexTryLockOk,    ///< try-lock succeeded
  MutexTryLockFail,  ///< try-lock failed
  // Condition variables.
  CondWaitBegin,  ///< about to release mutex and block
  CondWaitEnd,    ///< woken and mutex re-acquired
  CondSignal,
  CondBroadcast,
  // Counting semaphores.
  SemAcquire,  ///< permit obtained (after any blocking)
  SemRelease,
  // Barriers.
  BarrierEnter,  ///< arrived at barrier
  BarrierExit,   ///< released from barrier (generation completed)
  // Readers-writer locks.
  RwLockRead,    ///< shared (read) lock acquired
  RwLockWrite,   ///< exclusive (write) lock acquired
  RwUnlockRead,  ///< shared lock about to be released
  RwUnlockWrite, ///< exclusive lock about to be released
  // Shared variables.
  VarRead,
  VarWrite,
  // Scheduling noise / explicit yields (control events).
  Yield,
  // Event-loop runtime (mtt::evloop).  Appended after Yield so the numeric
  // values of the original kinds — and thus trace v2 recordings — are stable.
  TaskPost,   ///< callback handed to a loop (object = loop, arg = task id)
  TaskBegin,  ///< callback about to run on a scheduler slot
  TaskEnd,    ///< callback returned; slot about to be released
  TimerFire,  ///< deferred callback's delay elapsed; now ready
  QueueTake,  ///< task taken from the ready queue (arg = task id)
  QueuePut,   ///< task entered the ready queue (arg = task id)
  // Instrumented atomics (mtt::mem).  Appended after QueuePut so the numeric
  // values of the original kinds — and thus trace v2 recordings — are stable.
  // `arg` packs the memory-order payload; see rt::AtomicArg.
  AtomicLoad,   ///< atomic load committed (object = atomic id)
  AtomicStore,  ///< atomic store committed (object = atomic id)
  AtomicRMW,    ///< read-modify-write committed (object = atomic id)
  Fence,        ///< standalone memory fence (object = kNoObject)
  kCount  ///< number of kinds; not a real event
};

/// The "abstract type" dimension of the paper's record: whether the point
/// touches a variable, a synchronization object, thread control, an
/// event-loop task boundary, or an instrumented atomic (Task and Atomic are
/// mtt's extensions for the evloop and weak-memory runtimes; the paper's
/// instrumentation predates both).
enum class AbstractType : std::uint8_t { Variable, Sync, Control, Task, Atomic };

/// Read/write dimension for variable accesses; None otherwise.
enum class Access : std::uint8_t { None, Read, Write };

/// Classifies an EventKind into the paper's "abstract type".
AbstractType abstract_type_of(EventKind k);

/// Access direction implied by the kind (Read/Write for variable events).
Access access_of(EventKind k);

/// True for kinds that operate on a synchronization object (mutex, condvar,
/// semaphore, barrier).
bool is_sync_kind(EventKind k);

/// Short stable name ("MutexLock", "VarRead", ...); used in text traces.
std::string_view to_string(EventKind k);

/// Parses the short stable name; returns false on unknown names.
bool event_kind_from_string(std::string_view name, EventKind& out);

/// One instrumentation-point execution.
///
/// Field-for-field this is the record of Section 4 of the paper: "information
/// about the location in the program from which it was called, what was
/// instrumented, which variable was touched, thread name, if it is a read or
/// write, and if this location is involved in a bug".
struct Event {
  std::uint64_t seq = 0;   ///< global sequence number within the run
  ThreadId thread = kNoThread;
  EventKind kind = EventKind::Yield;
  ObjectId object = kNoObject;  ///< variable / sync object / peer thread id
  SiteId syncSite = kNoSite;    ///< site of the operation in the program text
  Access access = Access::None;
  BugMark bugSite = BugMark::No;  ///< is this site involved in a documented bug
  /// For sync objects: extra payload (e.g. semaphore permits released,
  /// barrier generation).  Zero otherwise.
  std::uint32_t arg = 0;

  AbstractType abstractType() const { return abstract_type_of(kind); }
};

/// Renders an event for debugging: "#12 T2 MutexLock obj=3 @tag(file:line)".
std::string describe(const Event& e);

}  // namespace mtt
