// Fundamental identifier types shared by every mtt module.
//
// The framework assigns small dense integer ids to threads, synchronization
// objects / shared variables, and instrumentation sites.  Ids are stable
// within one process; traces persist the symbolic names alongside the ids so
// offline tools can resolve them (see mtt::trace).
#pragma once

#include <cstdint>
#include <limits>

namespace mtt {

/// Identifies one managed thread within a single test run.  Thread ids are
/// assigned densely starting from 1; id 1 is always the "main" thread of the
/// run (the body passed to Runtime::run).
using ThreadId = std::uint32_t;

/// Identifies one instrumented object: a mutex, condition variable,
/// semaphore, barrier, or shared variable.  Object ids are assigned densely
/// per runtime instance.
using ObjectId = std::uint32_t;

/// Identifies one instrumentation site (source location + optional tag).
/// Sites are interned process-wide; see SiteRegistry.
using SiteId = std::uint32_t;

inline constexpr ThreadId kNoThread = 0;
inline constexpr ThreadId kMainThread = 1;
inline constexpr ObjectId kNoObject = 0;
inline constexpr SiteId kNoSite = 0;

inline constexpr ThreadId kMaxThreads =
    std::numeric_limits<std::uint16_t>::max();

}  // namespace mtt
