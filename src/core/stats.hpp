// Statistics utilities for the prepared-experiment component (Section 4):
// the benchmark compares tools on "the number of bugs they can find or the
// probability of finding bugs, the percentage of false alarms and in
// performance overhead" — all of which require proportion estimates,
// confidence intervals, and distribution summaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mtt {

/// Online mean / variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  /// Combines another accumulator into this one (Chan et al. parallel
  /// variance merge).  Algebraically exact; float rounding may differ from
  /// the equivalent sequence of add() calls, so order-sensitive consumers
  /// (the farm's deterministic campaign merge) fold per-run records instead.
  void merge(const OnlineStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Half-width of an approximate 95% confidence interval for the mean.
  double ci95() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Binomial proportion with Wilson-score 95% interval.  Used for
/// bug-finding-probability and replay-success-probability estimates.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  void add(bool success) {
    ++trials;
    if (success) ++successes;
  }
  /// Exact combination of two disjoint samples.
  void merge(const Proportion& other) {
    successes += other.successes;
    trials += other.trials;
  }
  double rate() const {
    return trials ? static_cast<double>(successes) / static_cast<double>(trials)
                  : 0.0;
  }
  double wilsonLow() const;
  double wilsonHigh() const;
};

/// Discrete outcome distribution; used by the MultiBenchmark (component 4)
/// to compare noise makers "as to the distribution of their results".
class OutcomeDistribution {
 public:
  void add(const std::string& outcome);
  /// Exact combination of two disjoint samples.
  void merge(const OutcomeDistribution& other);
  std::size_t total() const { return total_; }
  std::size_t distinct() const { return counts_.size(); }
  /// Shannon entropy in bits of the empirical distribution.
  double entropyBits() const;
  /// Frequency of the most common outcome.
  double modeFraction() const;
  const std::map<std::string, std::size_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  std::uint64_t elapsedMicros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mtt
