#include "core/event.hpp"

#include <array>

namespace mtt {

namespace {

constexpr std::size_t kKindCount = static_cast<std::size_t>(EventKind::kCount);

constexpr std::array<std::string_view, kKindCount> kKindNames = {
    "ThreadStart",    "ThreadFinish",    "ThreadSpawn",  "ThreadJoin",
    "MutexLock",      "MutexUnlock",     "MutexTryLockOk",
    "MutexTryLockFail",
    "CondWaitBegin",  "CondWaitEnd",     "CondSignal",   "CondBroadcast",
    "SemAcquire",     "SemRelease",      "BarrierEnter", "BarrierExit",
    "RwLockRead",     "RwLockWrite",     "RwUnlockRead", "RwUnlockWrite",
    "VarRead",        "VarWrite",        "Yield",
    "TaskPost",       "TaskBegin",       "TaskEnd",      "TimerFire",
    "QueueTake",      "QueuePut",
    "AtomicLoad",     "AtomicStore",     "AtomicRMW",    "Fence",
};

}  // namespace

AbstractType abstract_type_of(EventKind k) {
  switch (k) {
    case EventKind::VarRead:
    case EventKind::VarWrite:
      return AbstractType::Variable;
    case EventKind::ThreadStart:
    case EventKind::ThreadFinish:
    case EventKind::ThreadSpawn:
    case EventKind::ThreadJoin:
    case EventKind::Yield:
      return AbstractType::Control;
    case EventKind::TaskPost:
    case EventKind::TaskBegin:
    case EventKind::TaskEnd:
    case EventKind::TimerFire:
    case EventKind::QueueTake:
    case EventKind::QueuePut:
      return AbstractType::Task;
    case EventKind::AtomicLoad:
    case EventKind::AtomicStore:
    case EventKind::AtomicRMW:
    case EventKind::Fence:
      return AbstractType::Atomic;
    default:
      return AbstractType::Sync;
  }
}

Access access_of(EventKind k) {
  switch (k) {
    case EventKind::VarRead:
    case EventKind::AtomicLoad:
      return Access::Read;
    case EventKind::VarWrite:
    case EventKind::AtomicStore:
    case EventKind::AtomicRMW:
      return Access::Write;
    default:
      return Access::None;
  }
}

bool is_sync_kind(EventKind k) {
  return abstract_type_of(k) == AbstractType::Sync;
}

std::string_view to_string(EventKind k) {
  auto i = static_cast<std::size_t>(k);
  return i < kKindCount ? kKindNames[i] : std::string_view("?");
}

bool event_kind_from_string(std::string_view name, EventKind& out) {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (kKindNames[i] == name) {
      out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

std::string describe(const Event& e) {
  std::string out = "#" + std::to_string(e.seq);
  out += " T" + std::to_string(e.thread);
  out += ' ';
  out += to_string(e.kind);
  if (e.object != kNoObject) out += " obj=" + std::to_string(e.object);
  if (e.syncSite != kNoSite) {
    out += " @";
    out += SiteRegistry::instance().describe(e.syncSite);
  }
  if (e.bugSite == BugMark::Yes) out += " [bug-site]";
  return out;
}

}  // namespace mtt
