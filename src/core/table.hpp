// Plain-text table rendering for the "prepared evaluation report" (Section 4):
// every bench binary prints its results through this so reports share one
// easy-to-read format.
#pragma once

#include <string>
#include <vector>

namespace mtt {

/// A simple left/right-aligned text table with a title and column headers.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; call before adding rows.
  void header(std::vector<std::string> cols);

  /// Adds one data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 3);
  /// Convenience: "k/n (p%)" rendering for proportions.
  static std::string frac(std::size_t k, std::size_t n);

  /// Renders the table (title, rule, header, rows) as a string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mtt
