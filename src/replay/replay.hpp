// Replay — Section 2.2 of the paper:
//
//   "Replay has two phases: record and playback.  [...]  Partial replay,
//    which causes the program to behave as if the scheduler is deterministic
//    and repeats the previous test, is much easier and, in many cases, good
//    enough.  Partial replay algorithms can be compared on the likelihood of
//    performing replay and on their performance."
//
// Two replay mechanisms, matching the two runtimes:
//
//  * Controlled (exact) replay — a run is fully determined by its schedule
//    (the decision sequence of the controlled scheduler).  Record with
//    rt::RecordingPolicy, play back with rt::ReplayPolicy; this module adds
//    schedule persistence (save/load) so scenarios are artifacts, as the
//    benchmark requires.
//
//  * Native (partial) replay — record the global order of synchronization
//    and variable-access operations (SyncOrderRecorder, a Listener); on
//    playback, a SyncOrderEnforcer (a PreOpGate) blocks each thread until
//    its operation is next in the recorded order.  If the program takes a
//    different path (a race resolved differently before the enforcer could
//    constrain it) the enforcer times out, flags divergence and releases all
//    threads — replay "fails", which is precisely the probability
//    experiment E4 measures.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/listener.hpp"
#include "rt/native_runtime.hpp"
#include "rt/policy.hpp"

namespace mtt::replay {

// --- controlled-mode scenario persistence ----------------------------------

/// A saved scenario: the recorded schedule plus the metadata needed to
/// re-execute it "with the push of a button" — which program was run, which
/// seed, and which tool stack (policy/noise) shaped the recorded run.
/// Version-2/3 scenario files carry this header; version-1 files are the
/// bare schedule (program empty, tool fields defaulted).  Version 3 adds
/// tagged decisions: a decision line is either a bare thread id (ThreadPick)
/// or "s <idx>" (StorePick, the observable-store index a weak-memory load
/// observed).  Writers emit version 2 whenever the schedule is thread-picks
/// only, so pre-weak-memory recordings stay byte-identical.
struct Scenario {
  std::string program;           ///< suite program name ("" for v1 files)
  std::uint64_t seed = 0;        ///< run seed (noise makers derive from it)
  std::string policy = "random"; ///< policy that recorded it (informational)
  std::string noise = "none";    ///< noise heuristic active while recording
  double strength = 0.25;        ///< noise strength while recording
  rt::Schedule schedule;

  /// Pre-v3 accessor: the thread picks of the schedule, store picks
  /// projected out.  Kept as a migration shim only.
  [[deprecated("use schedule.decisions (tagged rt::Decision API)")]]
  std::vector<ThreadId> decisionThreads() const {
    return schedule.threadPicks();
  }
};

/// Upper bounds rejected by the loader before any allocation happens, so a
/// corrupt header can neither exhaust memory nor fabricate thread ids.
inline constexpr std::size_t kMaxScenarioDecisions = 16u << 20;

/// Upper bound on a StorePick index in a scenario file; the runtime's
/// observable sets are far smaller (store history is capped), so anything
/// larger is corruption.
inline constexpr std::uint32_t kMaxScenarioStoreIndex = 255;

/// Writes a scenario file, creating parent directories as needed.  Emits
/// version 2 when the schedule contains only thread picks (byte-identical
/// to the historical format), version 3 otherwise.
void saveScenario(const Scenario& s, const std::string& path);

/// Loads a version-1, -2, or -3 scenario file.  Hardened: a missing,
/// truncated, or corrupt file (bad magic, unsupported version, malformed
/// header, implausible decision count, invalid thread id or store index,
/// missing trailer) throws std::runtime_error with a diagnostic naming the
/// path and the defect — never UB and never a silently empty schedule.
Scenario loadScenario(const std::string& path);

/// Legacy helpers: bare-schedule persistence (version-1 file format for
/// thread-pick-only schedules; a headerless version-3 file otherwise).
/// loadSchedule accepts every version and discards the header.
void saveSchedule(const rt::Schedule& s, const std::string& path);
rt::Schedule loadSchedule(const std::string& path);

// --- native-mode partial replay ----------------------------------------------

/// Normalizes an event kind to its operation class (try-lock outcomes
/// collapse onto MutexTryLockOk; everything else maps to itself).
EventKind opClass(EventKind k);

/// True for the operation classes that are gated/recorded (pre-op events;
/// completion events like CondWaitEnd or BarrierExit are not enforceable).
bool isGatedClass(EventKind k);

/// True for the op classes that are recorded at *completion* time (their
/// emit event) rather than arrival: blocking acquisitions, whose winner is
/// decided only when they complete.  Recording them at completion makes the
/// order causally consistent, so the enforcer can release each acquisition
/// only after everything it depended on has happened — the acquirer then
/// wins deterministically.  All other gated ops are recorded at arrival.
bool isCompletionRecorded(EventKind k);

/// What a partial-replay algorithm records/enforces.  Full order includes
/// every gated operation (variable accesses too): near-exact replay at a
/// higher recording cost.  SyncOnly records just the synchronization
/// skeleton (the classic cheap partial replay): racy variable accesses can
/// still interleave differently, so replay may fail to reproduce the
/// outcome — the likelihood-vs-overhead tradeoff of experiment E4.
enum class OrderScope : std::uint8_t { Full, SyncOnly };

/// True when `k` is enforced under the scope.
bool inScope(EventKind k, OrderScope scope);

/// One entry of the recorded synchronization order.
struct SyncOp {
  ThreadId thread = kNoThread;
  EventKind kind = EventKind::Yield;
  ObjectId object = kNoObject;
  bool operator==(const SyncOp& o) const {
    return thread == o.thread && kind == o.kind && object == o.object;
  }
};

/// The record phase.  Non-blocking operations are recorded at arrival (as a
/// PreOpGate), blocking acquisitions at completion (as a Listener) — see
/// isCompletionRecorded.  Register it BOTH ways:
///   rt.setPreOpGate(&rec);  rt.hooks().add(&rec);
class SyncOrderRecorder final : public rt::PreOpGate, public Listener {
 public:
  explicit SyncOrderRecorder(OrderScope scope = OrderScope::Full)
      : scope_(scope) {}
  void beforeOp(ThreadId t, EventKind kind, ObjectId obj) override;
  void onEvent(const Event& e) override;
  /// Clears the recording (call between runs).
  void reset();

  /// The listener half only consumes completion-recorded acquisitions
  /// (arrival-recorded ops come through the PreOpGate, not the hook chain).
  EventMask subscribedEvents() const override {
    return EventMask{EventKind::MutexLock,      EventKind::MutexTryLockOk,
                     EventKind::MutexTryLockFail, EventKind::SemAcquire,
                     EventKind::RwLockRead,     EventKind::RwLockWrite,
                     EventKind::ThreadJoin};
  }
  std::string_view listenerName() const override { return "sync-recorder"; }
  void resetTool() override { reset(); }

  std::vector<SyncOp> order() const;
  std::vector<SyncOp> takeOrder() { return std::move(order_); }

 private:
  OrderScope scope_;
  std::vector<SyncOp> order_;
  mutable std::mutex mu_;
};

/// Projects a full recording onto a scope (e.g. derive the sync-only
/// skeleton from a full recording without re-running).
std::vector<SyncOp> projectOrder(const std::vector<SyncOp>& order,
                                 OrderScope scope);

/// The playback phase: a PreOpGate blocking each thread until its operation
/// heads the recorded order.  On timeout (the recorded head never arrives —
/// the run diverged) the gate deactivates and the run free-runs to
/// completion.
///
/// Race-window handling: passing the gate and *performing* the operation
/// are not atomic, so the next thread in the order could otherwise win a
/// contended mutex first and wedge the recorded order.  The enforcer is
/// therefore also a Listener: register it with the runtime's hooks, and it
/// holds the next gate until the in-flight operation's completion event
/// arrives.  A short grace period (default 2ms) releases the hold for
/// operations that genuinely block (a recorded lock acquisition that must
/// wait for a later unlock), which keeps the gate deadlock-free.  Without
/// the hook registration the enforcer still works, paying the grace period
/// on every operation.
class SyncOrderEnforcer final : public rt::PreOpGate, public Listener {
 public:
  explicit SyncOrderEnforcer(
      std::vector<SyncOp> order,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(200),
      OrderScope scope = OrderScope::Full,
      std::chrono::milliseconds grace = std::chrono::milliseconds(2));

  void beforeOp(ThreadId t, EventKind kind, ObjectId obj) override;
  void onEvent(const Event& e) override;

  /// Call between runs when reusing the enforcer.
  void reset();

  /// Completion matching needs every in-scope event (the in-flight op can
  /// be of any gated class); scope is fixed at construction, so the mask is
  /// stable as HookChain::add requires.
  EventMask subscribedEvents() const override {
    return scope_ == OrderScope::Full
               ? EventMask::all()
               : EventMask::all()
                     .without(EventKind::VarRead)
                     .without(EventKind::VarWrite);
  }
  std::string_view listenerName() const override { return "sync-enforcer"; }
  void resetTool() override { reset(); }

  bool diverged() const;
  /// All recorded operations were enforced in order.
  bool completed() const;
  /// Index reached in the recorded order.
  std::size_t progress() const;
  double progressRatio() const;

 private:
  std::vector<SyncOp> order_;
  std::chrono::milliseconds timeout_;
  OrderScope scope_;
  std::chrono::milliseconds grace_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t idx_ = 0;
  bool diverged_ = false;
  // In-flight operation: the last one whose gate was passed but whose
  // completion event has not been seen yet.
  bool inFlight_ = false;
  SyncOp inFlightOp_{};
  std::chrono::steady_clock::time_point inFlightDeadline_{};
};

}  // namespace mtt::replay
