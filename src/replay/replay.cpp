#include "replay/replay.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"

namespace mtt::replay {

namespace {

[[noreturn]] void badScenario(const std::string& path, const std::string& why) {
  throw std::runtime_error("bad scenario file " + path + ": " + why);
}

// Strict unsigned parse: every character must be a digit (operator>> would
// accept "12abc" and leave the junk to confuse the next field).
bool parseU64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 20) return false;
  out = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    if (out > (~std::uint64_t{0} - (c - '0')) / 10) return false;  // overflow
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

std::vector<rt::Decision> readDecisions(std::istream& f,
                                        const std::string& path,
                                        std::uint64_t n, int version) {
  if (n > kMaxScenarioDecisions) {
    badScenario(path, "implausible decision count " + std::to_string(n));
  }
  std::vector<rt::Decision> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string tok;
    if (!(f >> tok)) {
      badScenario(path, "truncated decision list (" + std::to_string(i) +
                            " of " + std::to_string(n) + " decisions)");
    }
    if (tok == "s") {
      // Store-observation pick — a version-3 decision line.
      if (version < 3) {
        badScenario(path, "store pick at decision " + std::to_string(i) +
                              " in a version-" + std::to_string(version) +
                              " file");
      }
      std::uint64_t idx = 0;
      if (!(f >> tok) || !parseU64(tok, idx)) {
        badScenario(path,
                    "malformed store index at decision " + std::to_string(i));
      }
      if (idx > kMaxScenarioStoreIndex) {
        badScenario(path, "implausible store index " + std::to_string(idx) +
                              " at decision " + std::to_string(i));
      }
      out.push_back(rt::Decision::store(static_cast<std::uint32_t>(idx)));
      continue;
    }
    std::uint64_t t = 0;
    if (!parseU64(tok, t)) {
      badScenario(path, "malformed decision '" + tok + "' at decision " +
                            std::to_string(i));
    }
    if (t == kNoThread || t > kMaxThreads) {
      badScenario(path, "invalid thread id " + std::to_string(t) +
                            " at decision " + std::to_string(i));
    }
    out.push_back(rt::Decision::thread(static_cast<ThreadId>(t)));
  }
  return out;
}

void writeDecisionLines(std::ostringstream& f, const rt::Schedule& s) {
  for (const rt::Decision& d : s.decisions) {
    if (d.isStore()) f << "s " << d.value << '\n';
    else f << d.value << '\n';
  }
}

}  // namespace

void saveScenario(const Scenario& s, const std::string& path) {
  char strength[64];
  std::snprintf(strength, sizeof(strength), "%.17g", s.strength);
  std::ostringstream f;
  // Thread-pick-only schedules keep the historical version-2 encoding
  // byte-for-byte; only schedules with store picks need version 3.
  f << (s.schedule.threadPicksOnly() ? "MTTSCHED 2\n" : "MTTSCHED 3\n")
    << "program " << s.program << '\n'
    << "seed " << s.seed << '\n'
    << "policy " << s.policy << '\n'
    << "noise " << s.noise << '\n'
    << "strength " << strength << '\n'
    << "decisions " << s.schedule.decisions.size() << '\n';
  writeDecisionLines(f, s.schedule);
  f << "end\n";
  // Atomic write-then-rename: a crash mid-save leaves the previous witness
  // (or nothing), never a torn scenario that later fails to load.
  core::atomicWriteFile(path, f.str());
}

Scenario loadScenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario file " + path);
  std::string magic;
  int version = 0;
  if (!(f >> magic) || magic != "MTTSCHED") {
    badScenario(path, "not a scenario/schedule file (bad magic)");
  }
  if (!(f >> version)) badScenario(path, "missing format version");
  Scenario s;
  if (version == 1) {
    std::uint64_t n = 0;
    if (!(f >> n)) badScenario(path, "missing decision count");
    s.schedule.decisions = readDecisions(f, path, n, 1);
    return s;
  }
  if (version != 2 && version != 3) {
    badScenario(path, "unsupported version " + std::to_string(version));
  }
  // v2/v3 header: "key value" lines until the decisions count, then the
  // decision list, then the "end" trailer that catches truncation.
  std::uint64_t n = 0;
  bool haveCount = false;
  for (std::string key; !haveCount;) {
    if (!(f >> key)) badScenario(path, "truncated header");
    if (key == "program") {
      if (!(f >> s.program)) badScenario(path, "truncated 'program' field");
    } else if (key == "seed") {
      if (!(f >> s.seed)) badScenario(path, "malformed 'seed' field");
    } else if (key == "policy") {
      if (!(f >> s.policy)) badScenario(path, "truncated 'policy' field");
    } else if (key == "noise") {
      if (!(f >> s.noise)) badScenario(path, "truncated 'noise' field");
    } else if (key == "strength") {
      if (!(f >> s.strength)) badScenario(path, "malformed 'strength' field");
    } else if (key == "decisions") {
      if (!(f >> n)) badScenario(path, "malformed decision count");
      haveCount = true;
    } else {
      badScenario(path, "unknown header key '" + key + "'");
    }
  }
  s.schedule.decisions = readDecisions(f, path, n, version);
  std::string trailer;
  if (!(f >> trailer) || trailer != "end") {
    badScenario(path, "missing 'end' trailer (file truncated?)");
  }
  return s;
}

void saveSchedule(const rt::Schedule& s, const std::string& path) {
  std::ostringstream f;
  if (s.threadPicksOnly()) {
    // Historical bare-schedule format, byte-identical.
    f << "MTTSCHED 1\n" << s.decisions.size() << '\n';
    for (const rt::Decision& d : s.decisions) f << d.value << '\n';
  } else {
    // Headerless version 3: the loader's header loop accepts zero keys.
    f << "MTTSCHED 3\n" << "decisions " << s.decisions.size() << '\n';
    writeDecisionLines(f, s);
    f << "end\n";
  }
  core::atomicWriteFile(path, f.str());
}

rt::Schedule loadSchedule(const std::string& path) {
  return loadScenario(path).schedule;
}

EventKind opClass(EventKind k) {
  switch (k) {
    case EventKind::MutexTryLockFail:
      return EventKind::MutexTryLockOk;
    default:
      return k;
  }
}

bool isGatedClass(EventKind k) {
  switch (opClass(k)) {
    case EventKind::MutexLock:
    case EventKind::MutexUnlock:
    case EventKind::MutexTryLockOk:
    case EventKind::CondWaitBegin:
    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
    case EventKind::SemAcquire:
    case EventKind::SemRelease:
    case EventKind::BarrierEnter:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
    case EventKind::RwUnlockRead:
    case EventKind::RwUnlockWrite:
    case EventKind::VarRead:
    case EventKind::VarWrite:
    case EventKind::ThreadJoin:
    case EventKind::ThreadSpawn:
      return true;
    default:
      return false;
  }
}

bool inScope(EventKind k, OrderScope scope) {
  if (scope == OrderScope::Full) return true;
  return k != EventKind::VarRead && k != EventKind::VarWrite;
}

std::vector<SyncOp> projectOrder(const std::vector<SyncOp>& order,
                                 OrderScope scope) {
  std::vector<SyncOp> out;
  out.reserve(order.size());
  for (const SyncOp& op : order) {
    if (inScope(op.kind, scope)) out.push_back(op);
  }
  return out;
}

bool isCompletionRecorded(EventKind k) {
  switch (opClass(k)) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::SemAcquire:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
    case EventKind::ThreadJoin:
      return true;
    default:
      return false;
  }
}

void SyncOrderRecorder::beforeOp(ThreadId t, EventKind kind, ObjectId obj) {
  if (!inScope(kind, scope_) || isCompletionRecorded(kind)) return;
  std::lock_guard<std::mutex> lk(mu_);
  order_.push_back(SyncOp{t, opClass(kind), obj});
}

void SyncOrderRecorder::onEvent(const Event& e) {
  if (!isGatedClass(e.kind) || !inScope(e.kind, scope_) ||
      !isCompletionRecorded(e.kind)) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  order_.push_back(SyncOp{e.thread, opClass(e.kind), e.object});
}

void SyncOrderRecorder::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  order_.clear();
}

std::vector<SyncOp> SyncOrderRecorder::order() const {
  std::lock_guard<std::mutex> lk(mu_);
  return order_;
}

SyncOrderEnforcer::SyncOrderEnforcer(std::vector<SyncOp> order,
                                     std::chrono::milliseconds timeout,
                                     OrderScope scope,
                                     std::chrono::milliseconds grace)
    : order_(std::move(order)),
      timeout_(timeout),
      scope_(scope),
      grace_(grace) {}

void SyncOrderEnforcer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  idx_ = 0;
  diverged_ = false;
  inFlight_ = false;
}

void SyncOrderEnforcer::onEvent(const Event& e) {
  if (!inScope(e.kind, scope_)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (inFlight_ && inFlightOp_.thread == e.thread &&
      inFlightOp_.kind == opClass(e.kind)) {
    inFlight_ = false;
    cv_.notify_all();
  }
}

bool SyncOrderEnforcer::diverged() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diverged_;
}

bool SyncOrderEnforcer::completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !diverged_ && idx_ == order_.size();
}

std::size_t SyncOrderEnforcer::progress() const {
  std::lock_guard<std::mutex> lk(mu_);
  return idx_;
}

double SyncOrderEnforcer::progressRatio() const {
  std::lock_guard<std::mutex> lk(mu_);
  return order_.empty()
             ? 1.0
             : static_cast<double>(idx_) / static_cast<double>(order_.size());
}

void SyncOrderEnforcer::beforeOp(ThreadId t, EventKind kind, ObjectId obj) {
  if (!inScope(kind, scope_)) return;  // out-of-scope ops free-run
  SyncOp me{t, opClass(kind), obj};
  std::unique_lock<std::mutex> lk(mu_);
  auto divergeDeadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    if (diverged_) return;            // free-running after divergence
    if (idx_ >= order_.size()) return;  // recording exhausted: free-run tail
    bool myTurn = order_[idx_] == me;
    auto now = std::chrono::steady_clock::now();
    bool held = inFlight_ && now < inFlightDeadline_;
    if (myTurn && !held) {
      ++idx_;
      inFlight_ = true;
      inFlightOp_ = me;
      inFlightDeadline_ = now + grace_;
      cv_.notify_all();
      return;
    }
    if (myTurn) {
      // Waiting only for the in-flight predecessor: does not count toward
      // the divergence timeout.
      divergeDeadline = std::max(divergeDeadline, inFlightDeadline_ + timeout_);
      cv_.wait_until(lk, inFlightDeadline_);
      continue;
    }
    // An operation the recording never saw at this point (e.g. a different
    // try-lock path) can never be scheduled: divergence.
    auto wakeAt = divergeDeadline;
    if (inFlight_) wakeAt = std::min(wakeAt, inFlightDeadline_);
    if (cv_.wait_until(lk, wakeAt) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= divergeDeadline &&
        !(idx_ < order_.size() && order_[idx_] == me)) {
      diverged_ = true;
      cv_.notify_all();
      return;
    }
  }
}

}  // namespace mtt::replay
