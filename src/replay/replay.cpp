#include "replay/replay.hpp"

#include <fstream>
#include <stdexcept>

namespace mtt::replay {

void saveSchedule(const rt::Schedule& s, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  f << "MTTSCHED 1\n" << s.decisions.size() << '\n';
  for (ThreadId t : s.decisions) f << t << '\n';
  if (!f) throw std::runtime_error("mtt: schedule write failed");
}

rt::Schedule loadSchedule(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  std::string magic;
  int version = 0;
  f >> magic >> version;
  if (magic != "MTTSCHED" || version != 1) {
    throw std::runtime_error("mtt: not a schedule file: " + path);
  }
  std::size_t n = 0;
  f >> n;
  rt::Schedule s;
  s.decisions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ThreadId t = kNoThread;
    f >> t;
    if (!f) throw std::runtime_error("mtt: truncated schedule file");
    s.decisions.push_back(t);
  }
  return s;
}

EventKind opClass(EventKind k) {
  switch (k) {
    case EventKind::MutexTryLockFail:
      return EventKind::MutexTryLockOk;
    default:
      return k;
  }
}

bool isGatedClass(EventKind k) {
  switch (opClass(k)) {
    case EventKind::MutexLock:
    case EventKind::MutexUnlock:
    case EventKind::MutexTryLockOk:
    case EventKind::CondWaitBegin:
    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
    case EventKind::SemAcquire:
    case EventKind::SemRelease:
    case EventKind::BarrierEnter:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
    case EventKind::RwUnlockRead:
    case EventKind::RwUnlockWrite:
    case EventKind::VarRead:
    case EventKind::VarWrite:
    case EventKind::ThreadJoin:
    case EventKind::ThreadSpawn:
      return true;
    default:
      return false;
  }
}

bool inScope(EventKind k, OrderScope scope) {
  if (scope == OrderScope::Full) return true;
  return k != EventKind::VarRead && k != EventKind::VarWrite;
}

std::vector<SyncOp> projectOrder(const std::vector<SyncOp>& order,
                                 OrderScope scope) {
  std::vector<SyncOp> out;
  out.reserve(order.size());
  for (const SyncOp& op : order) {
    if (inScope(op.kind, scope)) out.push_back(op);
  }
  return out;
}

bool isCompletionRecorded(EventKind k) {
  switch (opClass(k)) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::SemAcquire:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
    case EventKind::ThreadJoin:
      return true;
    default:
      return false;
  }
}

void SyncOrderRecorder::beforeOp(ThreadId t, EventKind kind, ObjectId obj) {
  if (!inScope(kind, scope_) || isCompletionRecorded(kind)) return;
  std::lock_guard<std::mutex> lk(mu_);
  order_.push_back(SyncOp{t, opClass(kind), obj});
}

void SyncOrderRecorder::onEvent(const Event& e) {
  if (!isGatedClass(e.kind) || !inScope(e.kind, scope_) ||
      !isCompletionRecorded(e.kind)) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  order_.push_back(SyncOp{e.thread, opClass(e.kind), e.object});
}

void SyncOrderRecorder::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  order_.clear();
}

std::vector<SyncOp> SyncOrderRecorder::order() const {
  std::lock_guard<std::mutex> lk(mu_);
  return order_;
}

SyncOrderEnforcer::SyncOrderEnforcer(std::vector<SyncOp> order,
                                     std::chrono::milliseconds timeout,
                                     OrderScope scope,
                                     std::chrono::milliseconds grace)
    : order_(std::move(order)),
      timeout_(timeout),
      scope_(scope),
      grace_(grace) {}

void SyncOrderEnforcer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  idx_ = 0;
  diverged_ = false;
  inFlight_ = false;
}

void SyncOrderEnforcer::onEvent(const Event& e) {
  if (!inScope(e.kind, scope_)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (inFlight_ && inFlightOp_.thread == e.thread &&
      inFlightOp_.kind == opClass(e.kind)) {
    inFlight_ = false;
    cv_.notify_all();
  }
}

bool SyncOrderEnforcer::diverged() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diverged_;
}

bool SyncOrderEnforcer::completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !diverged_ && idx_ == order_.size();
}

std::size_t SyncOrderEnforcer::progress() const {
  std::lock_guard<std::mutex> lk(mu_);
  return idx_;
}

double SyncOrderEnforcer::progressRatio() const {
  std::lock_guard<std::mutex> lk(mu_);
  return order_.empty()
             ? 1.0
             : static_cast<double>(idx_) / static_cast<double>(order_.size());
}

void SyncOrderEnforcer::beforeOp(ThreadId t, EventKind kind, ObjectId obj) {
  if (!inScope(kind, scope_)) return;  // out-of-scope ops free-run
  SyncOp me{t, opClass(kind), obj};
  std::unique_lock<std::mutex> lk(mu_);
  auto divergeDeadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    if (diverged_) return;            // free-running after divergence
    if (idx_ >= order_.size()) return;  // recording exhausted: free-run tail
    bool myTurn = order_[idx_] == me;
    auto now = std::chrono::steady_clock::now();
    bool held = inFlight_ && now < inFlightDeadline_;
    if (myTurn && !held) {
      ++idx_;
      inFlight_ = true;
      inFlightOp_ = me;
      inFlightDeadline_ = now + grace_;
      cv_.notify_all();
      return;
    }
    if (myTurn) {
      // Waiting only for the in-flight predecessor: does not count toward
      // the divergence timeout.
      divergeDeadline = std::max(divergeDeadline, inFlightDeadline_ + timeout_);
      cv_.wait_until(lk, inFlightDeadline_);
      continue;
    }
    // An operation the recording never saw at this point (e.g. a different
    // try-lock path) can never be scheduled: divergence.
    auto wakeAt = divergeDeadline;
    if (inFlight_) wakeAt = std::min(wakeAt, inFlightDeadline_);
    if (cv_.wait_until(lk, wakeAt) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= divergeDeadline &&
        !(idx_ < order_.size() && order_[idx_] == me)) {
      diverged_ = true;
      cv_.notify_all();
      return;
    }
  }
}

}  // namespace mtt::replay
