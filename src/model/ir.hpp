// A small concurrency IR — the "model" side of the paper's static
// technologies (Section 2.1).
//
// Model checkers "are traditionally used to verify models of software
// expressed in special modeling languages, which are simpler and higher-
// level than general-purpose programming languages".  This is that modeling
// language for mtt: a program is a set of threads, each a straight-line
// sequence of instructions over shared variables, per-thread registers and
// locks (loops are unrolled by the builder).  Straight-line code keeps every
// static analysis exact and the state space finite.
//
// The IR serves three paper roles:
//  1. input to the explicit-state model checker (model/checker.hpp) — the
//     formal-verification technology;
//  2. input to the static analyses (model/static.hpp) — escape analysis,
//     static lockset, static lock-order graph;
//  3. the source of "information useful for other technologies" (Section 3):
//     escape results drive instrumentation filtering, targeted noise and
//     coverage feasibility.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace mtt::model {

inline constexpr int kRegsPerThread = 4;

enum class OpKind : std::uint8_t {
  Acquire,      ///< a = lock
  Release,      ///< a = lock
  Load,         ///< reg[b] = vars[a]
  Store,        ///< vars[a] = reg[b]
  Const,        ///< reg[a] = b
  Add,          ///< reg[a] += reg[b]
  AddImm,       ///< reg[a] += b
  AssertVarEq,  ///< violation if vars[a] != b (checked atomically)
  /// if vars[a] != 0, skip the next b *visible* instructions.  The only
  /// control flow in the IR; the static analyses treat the guarded block
  /// conservatively (its accesses may or may not execute).  By convention a
  /// skipped block must not contain Acquire/Release (lock scoping stays
  /// linear); the builder enforces nothing, the checker executes faithfully.
  SkipIfNonZero,
};

struct Inst {
  OpKind kind;
  std::int32_t a = 0;
  std::int64_t b = 0;
};

/// True when the instruction touches shared state (a scheduling-visible
/// transition).  Const/Add/AddImm are thread-local and are fused into the
/// next visible instruction by the checker.
bool isVisible(OpKind k);

struct ThreadCode {
  std::string name;
  std::vector<Inst> code;
};

struct VarDecl {
  std::string name;
  std::int64_t init = 0;
};

class Program;

/// Fluent builder for one thread's code.
class ThreadBuilder {
 public:
  ThreadBuilder& acquire(int lock);
  ThreadBuilder& release(int lock);
  ThreadBuilder& load(int var, int reg);
  ThreadBuilder& store(int var, int reg);
  ThreadBuilder& constant(int reg, std::int64_t value);
  ThreadBuilder& add(int dstReg, int srcReg);
  ThreadBuilder& addImm(int reg, std::int64_t value);
  ThreadBuilder& assertVarEq(int var, std::int64_t value);
  ThreadBuilder& skipIfNonZero(int var, int visibleOps);
  /// Convenience: reg0 = var; reg0 += delta; var = reg0 (the canonical racy
  /// read-modify-write).
  ThreadBuilder& incrementVar(int var, std::int64_t delta = 1);
  /// Unrolls `body` k times.
  ThreadBuilder& repeat(int k, const std::function<void(ThreadBuilder&)>& body);

 private:
  friend class Program;
  explicit ThreadBuilder(ThreadCode& code) : code_(&code) {}
  ThreadCode* code_;
};

/// A closed concurrent program: shared variables, locks, threads, and a
/// final-state invariant.
class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  int addVar(std::string name, std::int64_t init = 0);
  int addLock(std::string name);
  ThreadBuilder thread(std::string name);

  /// Adds a final-state invariant: vars[var] == expected once every thread
  /// has terminated.
  void finalAssert(int var, std::int64_t expected);

  const std::string& name() const { return name_; }
  const std::vector<VarDecl>& vars() const { return vars_; }
  const std::vector<std::string>& locks() const { return locks_; }
  const std::deque<ThreadCode>& threads() const { return threads_; }
  const std::vector<std::pair<int, std::int64_t>>& finalAsserts() const {
    return finalAsserts_;
  }

  std::size_t totalInstructions() const;

 private:
  std::string name_;
  std::vector<VarDecl> vars_;
  std::vector<std::string> locks_;
  // deque: ThreadBuilder keeps a pointer into the container, so growth must
  // not relocate existing elements.
  std::deque<ThreadCode> threads_;
  std::vector<std::pair<int, std::int64_t>> finalAsserts_;
};

}  // namespace mtt::model
