#include "model/ir.hpp"

namespace mtt::model {

bool isVisible(OpKind k) {
  switch (k) {
    case OpKind::Const:
    case OpKind::Add:
    case OpKind::AddImm:
      return false;
    default:
      return true;
  }
}

ThreadBuilder& ThreadBuilder::acquire(int lock) {
  code_->code.push_back(Inst{OpKind::Acquire, lock, 0});
  return *this;
}
ThreadBuilder& ThreadBuilder::release(int lock) {
  code_->code.push_back(Inst{OpKind::Release, lock, 0});
  return *this;
}
ThreadBuilder& ThreadBuilder::load(int var, int reg) {
  code_->code.push_back(Inst{OpKind::Load, var, reg});
  return *this;
}
ThreadBuilder& ThreadBuilder::store(int var, int reg) {
  code_->code.push_back(Inst{OpKind::Store, var, reg});
  return *this;
}
ThreadBuilder& ThreadBuilder::constant(int reg, std::int64_t value) {
  code_->code.push_back(Inst{OpKind::Const, reg, value});
  return *this;
}
ThreadBuilder& ThreadBuilder::add(int dstReg, int srcReg) {
  code_->code.push_back(Inst{OpKind::Add, dstReg, srcReg});
  return *this;
}
ThreadBuilder& ThreadBuilder::addImm(int reg, std::int64_t value) {
  code_->code.push_back(Inst{OpKind::AddImm, reg, value});
  return *this;
}
ThreadBuilder& ThreadBuilder::assertVarEq(int var, std::int64_t value) {
  code_->code.push_back(Inst{OpKind::AssertVarEq, var, value});
  return *this;
}
ThreadBuilder& ThreadBuilder::skipIfNonZero(int var, int visibleOps) {
  code_->code.push_back(Inst{OpKind::SkipIfNonZero, var, visibleOps});
  return *this;
}
ThreadBuilder& ThreadBuilder::incrementVar(int var, std::int64_t delta) {
  load(var, 0);
  addImm(0, delta);
  store(var, 0);
  return *this;
}
ThreadBuilder& ThreadBuilder::repeat(
    int k, const std::function<void(ThreadBuilder&)>& body) {
  for (int i = 0; i < k; ++i) body(*this);
  return *this;
}

int Program::addVar(std::string name, std::int64_t init) {
  vars_.push_back(VarDecl{std::move(name), init});
  return static_cast<int>(vars_.size()) - 1;
}

int Program::addLock(std::string name) {
  locks_.push_back(std::move(name));
  return static_cast<int>(locks_.size()) - 1;
}

ThreadBuilder Program::thread(std::string name) {
  threads_.push_back(ThreadCode{std::move(name), {}});
  return ThreadBuilder(threads_.back());
}

void Program::finalAssert(int var, std::int64_t expected) {
  finalAsserts_.emplace_back(var, expected);
}

std::size_t Program::totalInstructions() const {
  std::size_t n = 0;
  for (const auto& t : threads_) n += t.code.size();
  return n;
}

}  // namespace mtt::model
