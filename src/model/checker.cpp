#include "model/checker.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_set>

#include "core/rng.hpp"

namespace mtt::model {

std::string_view to_string(SearchMode m) {
  switch (m) {
    case SearchMode::StatefulDfs: return "stateful-dfs";
    case SearchMode::StatefulBfs: return "stateful-bfs";
    case SearchMode::Stateless: return "stateless";
    case SearchMode::RandomWalk: return "random-walk";
  }
  return "?";
}

namespace {

struct State {
  std::vector<std::uint32_t> pc;
  std::vector<std::int64_t> regs;  // nthreads * kRegsPerThread
  std::vector<std::int64_t> vars;
  std::vector<std::int8_t> lockOwner;  // -1 = free
};

struct Hash128 {
  std::uint64_t a = 0, b = 0;
  bool operator==(const Hash128& o) const { return a == o.a && b == o.b; }
};

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const {
    return static_cast<std::size_t>(h.a ^ (h.b * 0x9e3779b97f4a7c15ull));
  }
};

class Engine {
 public:
  Engine(const Program& p, const CheckOptions& opts) : p_(p), opts_(opts) {
    threads_.assign(p.threads().begin(), p.threads().end());
  }

  CheckResult run() {
    switch (opts_.mode) {
      case SearchMode::StatefulDfs:
        statefulDfs();
        break;
      case SearchMode::StatefulBfs:
        statefulBfs();
        break;
      case SearchMode::Stateless:
        statelessDfs();
        break;
      case SearchMode::RandomWalk:
        randomWalk();
        break;
    }
    return result_;
  }

 private:
  State initial() const {
    State s;
    s.pc.assign(threads_.size(), 0);
    s.regs.assign(threads_.size() * kRegsPerThread, 0);
    s.vars.reserve(p_.vars().size());
    for (const auto& v : p_.vars()) s.vars.push_back(v.init);
    s.lockOwner.assign(p_.locks().size(), -1);
    State s2 = s;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      fastForward(s2, static_cast<int>(t));
    }
    return s2;
  }

  /// Executes thread-local (invisible) instructions eagerly so each pc
  /// always rests on a visible instruction or the end of the code.
  void fastForward(State& s, int t) const {
    const auto& code = threads_[t].code;
    while (s.pc[t] < code.size() && !isVisible(code[s.pc[t]].kind)) {
      const Inst& in = code[s.pc[t]];
      std::int64_t* regs = &s.regs[t * kRegsPerThread];
      switch (in.kind) {
        case OpKind::Const:
          regs[in.a] = in.b;
          break;
        case OpKind::Add:
          regs[in.a] += regs[in.b];
          break;
        case OpKind::AddImm:
          regs[in.a] += in.b;
          break;
        default:
          break;
      }
      ++s.pc[t];
    }
  }

  bool done(const State& s, int t) const {
    return s.pc[t] >= threads_[t].code.size();
  }

  bool allDone(const State& s) const {
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      if (!done(s, static_cast<int>(t))) return false;
    }
    return true;
  }

  const Inst& nextInst(const State& s, int t) const {
    return threads_[t].code[s.pc[t]];
  }

  bool enabled(const State& s, int t) const {
    if (done(s, t)) return false;
    const Inst& in = nextInst(s, t);
    return in.kind != OpKind::Acquire || s.lockOwner[in.a] == -1;
  }

  std::vector<int> enabledThreads(const State& s) const {
    std::vector<int> out;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      if (enabled(s, static_cast<int>(t))) out.push_back(static_cast<int>(t));
    }
    return out;
  }

  /// Executes one visible step of thread t.  Returns true if an assertion
  /// violated (recorded via noteViolation by the caller).
  bool step(State& s, int t) const {
    const Inst& in = nextInst(s, t);
    std::int64_t* regs = &s.regs[t * kRegsPerThread];
    bool assertFailed = false;
    switch (in.kind) {
      case OpKind::Acquire:
        s.lockOwner[in.a] = static_cast<std::int8_t>(t);
        break;
      case OpKind::Release:
        if (s.lockOwner[in.a] == t) s.lockOwner[in.a] = -1;
        break;
      case OpKind::Load:
        regs[in.b] = s.vars[in.a];
        break;
      case OpKind::Store:
        s.vars[in.a] = regs[in.b];
        break;
      case OpKind::AssertVarEq:
        assertFailed = s.vars[in.a] != in.b;
        break;
      case OpKind::SkipIfNonZero:
        if (s.vars[in.a] != 0) {
          // Skip the next in.b visible instructions (invisible ones along
          // the way are skipped too, NOT executed: the block is dead).
          std::int64_t remaining = in.b;
          const auto& code = threads_[t].code;
          while (remaining > 0 && s.pc[t] + 1 < code.size()) {
            ++s.pc[t];
            if (isVisible(code[s.pc[t]].kind)) --remaining;
          }
        }
        break;
      default:
        break;
    }
    ++s.pc[t];
    fastForward(s, t);
    ++result_.transitions;
    return assertFailed;
  }

  Hash128 hash(const State& s) const {
    auto fnv = [](const void* data, std::size_t n, std::uint64_t h) {
      const auto* p = static_cast<const unsigned char*>(data);
      for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
      }
      return h;
    };
    Hash128 h{0xcbf29ce484222325ull, 0x84222325cbf29ce4ull};
    auto mix = [&](const void* d, std::size_t n) {
      h.a = fnv(d, n, h.a);
      h.b = fnv(d, n, h.b ^ 0x5bd1e995u);
    };
    mix(s.pc.data(), s.pc.size() * sizeof(s.pc[0]));
    mix(s.regs.data(), s.regs.size() * sizeof(s.regs[0]));
    mix(s.vars.data(), s.vars.size() * sizeof(s.vars[0]));
    mix(s.lockOwner.data(), s.lockOwner.size());
    return h;
  }

  void noteViolation(Violation::Kind kind, std::string detail,
                     const std::vector<int>& path) {
    if (kind == Violation::Kind::Deadlock) {
      ++result_.deadlocks;
    } else {
      ++result_.assertViolations;
    }
    if (!result_.firstViolation) {
      Violation v;
      v.kind = kind;
      v.detail = std::move(detail);
      v.schedule = path;
      result_.firstViolation = std::move(v);
    }
  }

  /// Terminal handling shared by all searches; returns true if a violation
  /// was recorded at this terminal/deadlock state.
  bool checkLeaf(const State& s, const std::vector<int>& path) {
    if (allDone(s)) {
      for (const auto& [var, expected] : p_.finalAsserts()) {
        if (s.vars[var] != expected) {
          noteViolation(Violation::Kind::FinalAssert,
                        "final " + p_.vars()[var].name + " = " +
                            std::to_string(s.vars[var]) + ", expected " +
                            std::to_string(expected),
                        path);
          return true;
        }
      }
      return false;
    }
    noteViolation(Violation::Kind::Deadlock, "no thread enabled", path);
    return true;
  }

  bool stop() const {
    return opts_.stopAtFirstViolation && result_.firstViolation.has_value();
  }

  // --- independence (for sleep sets) ----------------------------------------

  bool conflict(const State& s, int t1, int t2) const {
    const Inst& a = nextInst(s, t1);
    const Inst& b = nextInst(s, t2);
    auto lockOf = [](const Inst& i) {
      return (i.kind == OpKind::Acquire || i.kind == OpKind::Release)
                 ? i.a
                 : -1;
    };
    auto varOf = [](const Inst& i) {
      switch (i.kind) {
        case OpKind::Load:
        case OpKind::Store:
        case OpKind::AssertVarEq:
        case OpKind::SkipIfNonZero:
          return i.a;
        default:
          return -1;
      }
    };
    auto writes = [](const Inst& i) { return i.kind == OpKind::Store; };
    if (lockOf(a) >= 0 && lockOf(a) == lockOf(b)) return true;
    if (varOf(a) >= 0 && varOf(a) == varOf(b) && (writes(a) || writes(b))) {
      return true;
    }
    return false;
  }

  // --- stateful DFS -----------------------------------------------------------

  void statefulDfs() {
    State s0 = initial();
    visited_.clear();
    visited_.insert(hash(s0));
    result_.statesVisited = 1;
    std::vector<int> path;
    bool budget = dfs(s0, path);
    result_.exhausted = budget && !(opts_.stopAtFirstViolation &&
                                    result_.firstViolation.has_value());
  }

  bool dfs(const State& s, std::vector<int>& path) {
    if (stop()) return true;
    auto en = enabledThreads(s);
    if (en.empty()) {
      checkLeaf(s, path);
      return true;
    }
    for (int t : en) {
      State child = s;
      bool assertFailed = step(child, t);
      path.push_back(t);
      if (assertFailed) {
        noteViolation(Violation::Kind::Assert,
                      "assertion in " + threads_[t].name, path);
        path.pop_back();
        if (stop()) return true;
        continue;
      }
      Hash128 h = hash(child);
      if (visited_.insert(h).second) {
        ++result_.statesVisited;
        if (result_.statesVisited > opts_.maxStates) {
          path.pop_back();
          return false;  // budget exhausted
        }
        if (!dfs(child, path)) {
          path.pop_back();
          return false;
        }
      }
      path.pop_back();
      if (stop()) return true;
    }
    return true;
  }

  // --- stateful BFS -----------------------------------------------------------

  void statefulBfs() {
    struct Node {
      State s;
      std::vector<int> path;
    };
    std::deque<Node> queue;
    visited_.clear();
    Node init{initial(), {}};
    visited_.insert(hash(init.s));
    result_.statesVisited = 1;
    queue.push_back(std::move(init));
    bool budget = true;
    while (!queue.empty() && !stop()) {
      Node n = std::move(queue.front());
      queue.pop_front();
      auto en = enabledThreads(n.s);
      if (en.empty()) {
        checkLeaf(n.s, n.path);
        continue;
      }
      for (int t : en) {
        State child = n.s;
        bool assertFailed = step(child, t);
        std::vector<int> childPath = n.path;
        childPath.push_back(t);
        if (assertFailed) {
          noteViolation(Violation::Kind::Assert,
                        "assertion in " + threads_[t].name, childPath);
          continue;
        }
        Hash128 h = hash(child);
        if (visited_.insert(h).second) {
          ++result_.statesVisited;
          if (result_.statesVisited > opts_.maxStates) {
            budget = false;
            break;
          }
          queue.push_back(Node{std::move(child), std::move(childPath)});
        }
      }
      if (!budget) break;
    }
    result_.exhausted = budget && queue.empty() &&
                        !(opts_.stopAtFirstViolation &&
                          result_.firstViolation.has_value());
  }

  // --- stateless DFS (VeriSoft-style), optional sleep sets ---------------------

  void statelessDfs() {
    State s0 = initial();
    std::vector<int> path;
    bool budget = stateless(s0, 0u, path);
    result_.exhausted = budget && !(opts_.stopAtFirstViolation &&
                                    result_.firstViolation.has_value());
  }

  // sleep is a bitmask over thread indices.
  bool stateless(const State& s, std::uint32_t sleep, std::vector<int>& path) {
    if (stop()) return true;
    auto en = enabledThreads(s);
    if (en.empty()) {
      ++result_.schedules;
      checkLeaf(s, path);
      return result_.schedules <= opts_.maxSchedules;
    }
    std::vector<int> explore;
    for (int t : en) {
      if (opts_.sleepSets && ((sleep >> t) & 1u)) continue;
      explore.push_back(t);
    }
    if (explore.empty()) {
      // Every enabled transition is asleep: this path is redundant.
      return true;
    }
    std::uint32_t exploredMask = 0;
    for (int t : explore) {
      State child = s;
      bool assertFailed = step(child, t);
      path.push_back(t);
      if (assertFailed) {
        ++result_.schedules;
        noteViolation(Violation::Kind::Assert,
                      "assertion in " + threads_[t].name, path);
        path.pop_back();
        if (result_.schedules > opts_.maxSchedules) return false;
        if (stop()) return true;
        exploredMask |= (1u << t);
        continue;
      }
      // Child's sleep set: previously sleeping or already-explored siblings
      // whose next op is independent of t's op (evaluated in state s).
      std::uint32_t childSleep = 0;
      if (opts_.sleepSets) {
        std::uint32_t candidates = sleep | exploredMask;
        for (std::size_t q = 0; q < threads_.size(); ++q) {
          if (((candidates >> q) & 1u) == 0) continue;
          if (static_cast<int>(q) == t) continue;
          if (!enabled(s, static_cast<int>(q))) continue;
          if (!conflict(s, static_cast<int>(q), t)) {
            childSleep |= (1u << q);
          }
        }
      }
      if (!stateless(child, childSleep, path)) {
        path.pop_back();
        return false;
      }
      path.pop_back();
      if (stop()) return true;
      exploredMask |= (1u << t);
    }
    return true;
  }

  // --- random walk ---------------------------------------------------------------

  void randomWalk() {
    Rng rng(opts_.seed);
    for (std::uint64_t i = 0; i < opts_.randomWalks && !stop(); ++i) {
      State s = initial();
      std::vector<int> path;
      for (;;) {
        auto en = enabledThreads(s);
        if (en.empty()) {
          checkLeaf(s, path);
          break;
        }
        int t = en[rng.below(en.size())];
        path.push_back(t);
        if (step(s, t)) {
          noteViolation(Violation::Kind::Assert,
                        "assertion in " + threads_[t].name, path);
          break;
        }
      }
      ++result_.schedules;
    }
    result_.exhausted = false;  // sampling never certifies exhaustion
  }

  const Program& p_;
  CheckOptions opts_;
  std::vector<ThreadCode> threads_;
  mutable CheckResult result_;
  std::unordered_set<Hash128, Hash128Hasher> visited_;
};

}  // namespace

CheckResult check(const Program& p, const CheckOptions& opts) {
  Engine e(p, opts);
  return e.run();
}

std::string formatCounterexample(const Program& p, const Violation& v) {
  std::vector<ThreadCode> threads(p.threads().begin(), p.threads().end());
  std::vector<std::size_t> pc(threads.size(), 0);
  std::string out;
  auto instName = [](const Inst& in) {
    switch (in.kind) {
      case OpKind::Acquire: return std::string("acquire l") + std::to_string(in.a);
      case OpKind::Release: return std::string("release l") + std::to_string(in.a);
      case OpKind::Load: return std::string("load v") + std::to_string(in.a);
      case OpKind::Store: return std::string("store v") + std::to_string(in.a);
      case OpKind::AssertVarEq: return std::string("assert v") + std::to_string(in.a);
      case OpKind::SkipIfNonZero:
        return std::string("skip-if v") + std::to_string(in.a);
      case OpKind::Const: return std::string("const");
      case OpKind::Add: return std::string("add");
      case OpKind::AddImm: return std::string("addimm");
    }
    return std::string("?");
  };
  for (int t : v.schedule) {
    if (t < 0 || static_cast<std::size_t>(t) >= threads.size()) continue;
    const auto& code = threads[t].code;
    // Skip invisible ops, mirroring the checker's fast-forward.
    while (pc[t] < code.size() && !isVisible(code[pc[t]].kind)) ++pc[t];
    if (pc[t] < code.size()) {
      out += threads[t].name + ": " + instName(code[pc[t]]) + "\n";
      ++pc[t];
    }
  }
  out += "=> " + v.detail + "\n";
  return out;
}

}  // namespace mtt::model
