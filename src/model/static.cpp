#include "model/static.hpp"

#include <algorithm>
#include <map>
#include <memory>

namespace mtt::model {

namespace {

struct AccessRecord {
  int thread;
  bool write;
  std::set<int> held;
};

/// Scans every thread's straight-line code, tracking the held-lock set, and
/// returns all variable accesses with their protection.
std::vector<std::vector<AccessRecord>> collectAccesses(const Program& p) {
  std::vector<std::vector<AccessRecord>> perVar(p.vars().size());
  int tIdx = 0;
  for (const auto& t : p.threads()) {
    std::set<int> held;
    for (const Inst& in : t.code) {
      switch (in.kind) {
        case OpKind::Acquire:
          held.insert(in.a);
          break;
        case OpKind::Release:
          held.erase(in.a);
          break;
        case OpKind::Load:
        case OpKind::AssertVarEq:
        case OpKind::SkipIfNonZero:
          perVar[in.a].push_back(AccessRecord{tIdx, false, held});
          break;
        case OpKind::Store:
          perVar[in.a].push_back(AccessRecord{tIdx, true, held});
          break;
        default:
          break;
      }
    }
    ++tIdx;
  }
  return perVar;
}

}  // namespace

EscapeResult escapeAnalysis(const Program& p) {
  auto perVar = collectAccesses(p);
  EscapeResult out;
  for (std::size_t v = 0; v < perVar.size(); ++v) {
    std::set<int> threads;
    for (const auto& a : perVar[v]) threads.insert(a.thread);
    if (threads.size() >= 2) {
      out.sharedVars.insert(static_cast<int>(v));
      out.sharedVarNames.insert(p.vars()[v].name);
    } else {
      out.localVars.insert(static_cast<int>(v));
      out.localVarNames.insert(p.vars()[v].name);
    }
  }
  return out;
}

std::vector<StaticRaceWarning> staticLockset(const Program& p) {
  auto perVar = collectAccesses(p);
  EscapeResult esc = escapeAnalysis(p);
  std::vector<StaticRaceWarning> out;
  for (std::size_t v = 0; v < perVar.size(); ++v) {
    if (!esc.isShared(static_cast<int>(v))) continue;
    const auto& accesses = perVar[v];
    if (accesses.empty()) continue;
    std::set<int> common = accesses.front().held;
    bool hasWrite = false;
    for (const auto& a : accesses) {
      std::set<int> inter;
      std::set_intersection(common.begin(), common.end(), a.held.begin(),
                            a.held.end(),
                            std::inserter(inter, inter.begin()));
      common = std::move(inter);
      hasWrite = hasWrite || a.write;
    }
    if (common.empty() && hasWrite) {
      StaticRaceWarning w;
      w.var = static_cast<int>(v);
      w.varName = p.vars()[v].name;
      w.hasWrite = true;
      w.detail = "shared variable written with empty common lockset";
      out.push_back(std::move(w));
    }
  }
  return out;
}

std::vector<StaticDeadlockWarning> staticLockGraph(const Program& p) {
  std::map<int, std::set<int>> edges;
  for (const auto& t : p.threads()) {
    std::vector<int> held;
    for (const Inst& in : t.code) {
      if (in.kind == OpKind::Acquire) {
        for (int h : held) {
          if (h != in.a) edges[h].insert(in.a);
        }
        held.push_back(in.a);
      } else if (in.kind == OpKind::Release) {
        auto it = std::find(held.rbegin(), held.rend(), in.a);
        if (it != held.rend()) held.erase(std::next(it).base());
      }
    }
  }
  // Cycle detection (small graphs: simple colored DFS).
  std::vector<StaticDeadlockWarning> out;
  std::set<std::vector<int>> seen;
  std::map<int, int> color;
  std::vector<int> path;
  std::function<void(int)> dfs = [&](int n) {
    color[n] = 1;
    path.push_back(n);
    for (int m : edges[n]) {
      if (color[m] == 1) {
        auto start = std::find(path.begin(), path.end(), m);
        std::vector<int> cycle(start, path.end());
        auto mn = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), mn, cycle.end());
        if (seen.insert(cycle).second) {
          StaticDeadlockWarning w;
          w.cycle = cycle;
          w.detail = "lock-order cycle of " + std::to_string(cycle.size()) +
                     " locks";
          out.push_back(std::move(w));
        }
      } else if (color[m] == 0) {
        dfs(m);
      }
    }
    path.pop_back();
    color[n] = 2;
  };
  for (const auto& [n, _] : edges) {
    if (color[n] == 0) dfs(n);
  }
  return out;
}

std::function<bool(const Event&)> makeSharedVarEventFilter(
    rt::Runtime& rt, std::set<std::string> sharedNames) {
  // The cache is shared by all invocations of the returned filter; the
  // filter runs under the runtime's dispatch serialization in controlled
  // mode and must be internally synchronized for native mode.
  struct State {
    rt::Runtime* rt;
    std::set<std::string> names;
    std::map<ObjectId, bool> cache;
    std::mutex mu;
  };
  auto st = std::make_shared<State>();
  st->rt = &rt;
  st->names = std::move(sharedNames);
  return [st](const Event& e) {
    if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) {
      return true;
    }
    std::lock_guard<std::mutex> lk(st->mu);
    auto it = st->cache.find(e.object);
    if (it != st->cache.end()) return it->second;
    bool shared = st->names.count(st->rt->objectInfo(e.object).name) != 0;
    st->cache[e.object] = shared;
    return shared;
  };
}

std::set<std::string> contentionTaskUniverse(const Program& p) {
  return escapeAnalysis(p).sharedVarNames;
}

}  // namespace mtt::model
