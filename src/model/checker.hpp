// Explicit-state model checker over the concurrency IR — the paper's
// "systematic and exhaustive state-space exploration" (Section 2.1), with
// the VeriSoft-vs-CMC contrast of Section 2.2 built in as search modes:
//
//   * Stateful  — CMC-style: "uses traditional state-based search
//     algorithms, not state-less search, so it uses 'clone' procedures to
//     copy the system state".  Visited-state hashing prunes re-exploration.
//   * Stateless — VeriSoft-style: enumerate schedules, re-executing from the
//     initial state each time; no visited set, so shared prefixes are
//     re-explored (experiment E6 measures the cost gap).
//   * RandomWalk — sample random complete schedules (the baseline).
//
// Sleep sets (a classic partial-order reduction) can be enabled for the
// stateful searches; E6 ablates their effect.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ir.hpp"

namespace mtt::model {

enum class SearchMode : std::uint8_t {
  StatefulDfs,
  StatefulBfs,
  Stateless,
  RandomWalk,
};

std::string_view to_string(SearchMode m);

struct CheckOptions {
  SearchMode mode = SearchMode::StatefulDfs;
  bool sleepSets = false;      ///< partial-order reduction (stateful only)
  std::uint64_t maxStates = 5'000'000;   ///< stateful exploration budget
  std::uint64_t maxSchedules = 5'000'000;  ///< stateless/random budget
  std::uint64_t randomWalks = 1000;     ///< RandomWalk sample count
  std::uint64_t seed = 1;
  bool stopAtFirstViolation = false;
};

struct Violation {
  enum class Kind : std::uint8_t { Assert, FinalAssert, Deadlock };
  Kind kind = Kind::Assert;
  std::string detail;
  /// Thread indices, in execution order, reproducing the violation.
  std::vector<int> schedule;
};

struct CheckResult {
  bool exhausted = false;  ///< full state space covered within budget
  std::uint64_t statesVisited = 0;   ///< distinct states (stateful)
  std::uint64_t transitions = 0;     ///< instructions executed
  std::uint64_t schedules = 0;       ///< complete executions (stateless)
  std::uint64_t deadlocks = 0;
  std::uint64_t assertViolations = 0;
  std::optional<Violation> firstViolation;

  bool foundBug() const { return firstViolation.has_value(); }
};

CheckResult check(const Program& p, const CheckOptions& opts = {});

/// Re-executes a violation schedule and renders a human-readable
/// counterexample listing (thread name + instruction per step).
std::string formatCounterexample(const Program& p, const Violation& v);

}  // namespace mtt::model
