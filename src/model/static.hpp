// Static analyses over the concurrency IR — Section 2.1 of the paper:
//
//   "escape analysis is used to determine which variables are thread-local
//    and which may be shared; this information can be used to optimize the
//    model, or to guide the placement of instrumentation used by dynamic
//    testing techniques."
//
// Three analyses, all exact on the straight-line IR:
//   * escapeAnalysis   — shared vs thread-local variables;
//   * staticLockset    — Eraser's discipline, statically: a shared variable
//     written without a common protecting lock is a potential race (the
//     "type systems for detecting data races" analog);
//   * staticLockGraph  — lock-order cycles = potential deadlocks.
//
// Plus the Section 3 information flow into the dynamic side:
//   * makeSharedVarEventFilter — an instrumentation filter for a Runtime
//     that suppresses events on thread-local variables ("this can be used
//     to decide on a subset of the points to be instrumented"), and
//   * contentionTaskUniverse — the feasible-task set for contention
//     coverage (only shared variables can ever experience contention).
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "model/ir.hpp"
#include "rt/runtime.hpp"

namespace mtt::model {

struct EscapeResult {
  std::set<int> sharedVars;
  std::set<std::string> sharedVarNames;
  std::set<int> localVars;
  std::set<std::string> localVarNames;

  bool isShared(int var) const { return sharedVars.count(var) != 0; }
};

EscapeResult escapeAnalysis(const Program& p);

struct StaticRaceWarning {
  int var = -1;
  std::string varName;
  /// True when at least one unprotected access is a write.
  bool hasWrite = false;
  std::string detail;
};

/// For each shared variable: intersect the lock sets held at its accesses
/// across all threads; an empty intersection with at least one write is a
/// potential race.
std::vector<StaticRaceWarning> staticLockset(const Program& p);

struct StaticDeadlockWarning {
  std::vector<int> cycle;  ///< lock indices in cycle order
  std::string detail;
};

/// Lock-order graph over the IR; cycles are potential deadlocks.
std::vector<StaticDeadlockWarning> staticLockGraph(const Program& p);

/// Builds a Runtime event filter that passes everything except variable
/// accesses on objects whose names are NOT in `sharedNames` (i.e. events on
/// thread-local variables are suppressed).  Name→id resolution is cached
/// per object id.
std::function<bool(const Event&)> makeSharedVarEventFilter(
    rt::Runtime& rt, std::set<std::string> sharedNames);

/// The feasible contention-coverage task universe: exactly the shared
/// variables (thread-local variables can never be contended — the
/// infeasible tasks the paper says plague concurrent coverage models).
std::set<std::string> contentionTaskUniverse(const Program& p);

}  // namespace mtt::model
