// Concurrency coverage — Section 2.2 of the paper:
//
//   "An equivalent process, in the multi-threaded domain, is to check that
//    variables on which contention can occur had contention in the testing.
//    [...] A new and interesting research question is to use coverage in
//    order to decide, given limited resources, how many times each test
//    should be executed."
//
// A CoverageModel defines a universe of tasks (possibly open-ended, i.e.
// discovered while running, or closed when fed by static analysis — the
// feasibility problem the paper describes) and marks tasks covered from the
// event stream.  Results are read out as coverage::Snapshot values
// (snapshot.hpp): runSnapshot() is the pure per-run delta that travels
// through the farm pipe into campaign control (mtt::guide), snapshot() the
// accumulated model state.  The CoverageAccumulator merges snapshots across
// runs and answers the how-many-runs question from the growth curve.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/listener.hpp"
#include "coverage/snapshot.hpp"

namespace mtt::coverage {

/// Base class for coverage models.  Task keys are strings so covered sets
/// are stable across runs (object *ids* are not; names are).
///
/// State lifecycle: `covered` and the per-run discovered set reset at every
/// run start (and on resetTool), so runSnapshot() is a pure function of the
/// run.  The task universe `known` persists across runs and resetTool — for
/// a closed universe it was declared up front; for an open one it is the
/// union of everything discovered so far, which is exactly what a reused
/// ToolStack must not lose between farm runs.
class CoverageModel : public Listener {
 public:
  virtual std::string name() const = 0;

  /// Declares the task universe up front (from static analysis); without
  /// this the universe is open and grows as tasks are discovered.
  void declareTasks(const std::set<std::string>& tasks);
  bool closedUniverse() const { return closed_; }

  /// Accumulated state: covered tasks of the current/last run plus the full
  /// task universe known so far.
  Snapshot snapshot() const;
  /// Pure per-run delta: covered tasks of the current/last run, and only the
  /// tasks *this run* discovered (closed universes keep the declared set —
  /// it is constant).  Identical for a fresh model and a reused one given
  /// the same run, which is what keeps farm records byte-deterministic.
  Snapshot runSnapshot() const;

  std::size_t coveredCount() const;
  std::size_t taskCount() const;
  /// coveredCount / taskCount; 0 when the universe is empty.
  double ratio() const;

  void onRunStart(const RunInfo& info) override;
  void bindRuntime(rt::Runtime& rt) override;

  std::string_view listenerName() const override { return internName(name()); }
  /// Drops per-run state (covered tasks, infeasible-hit count) but keeps the
  /// task universe: discovered tasks are a cross-campaign artifact, and a
  /// pooled stack that forgot them between runs would silently restart the
  /// universe from scratch (the E4 growth curve would never converge).
  void resetTool() override;

 protected:
  /// Registers a task (no-op against a closed universe when unknown — such
  /// a hit is an infeasible-task signal and is counted separately).
  void discover(const std::string& task);
  void cover(const std::string& task);
  /// Resolves an object's display name through the bound runtime (falls
  /// back to "obj#<id>" when unbound).  Models constructed without an
  /// explicit resolver use this, so makeCoverage() names need no runtime
  /// at construction time.
  std::string objectLabel(ObjectId id) const;
  /// Hook for models to drop per-run working state (recent-access windows,
  /// held-lock stacks); called under mu_ from onRunStart and resetTool.
  virtual void clearRunState() {}
  mutable std::mutex mu_;

 private:
  std::set<std::string> known_;
  std::set<std::string> covered_;
  std::set<std::string> runDiscovered_;
  bool closed_ = false;
  std::size_t outsideUniverse_ = 0;
  rt::Runtime* rt_ = nullptr;
};

/// Every instrumentation site executed at least once — the concurrent
/// analogue of statement coverage (the baseline the paper says is of
/// "very little utility"; included as the control model).
class SitePointCoverage final : public CoverageModel {
 public:
  /// Resolves task names through the global SiteRegistry.
  std::string name() const override { return "site-point"; }
  void onEvent(const Event& e) override;
  // Subscribes to everything: any event's site counts as executed.
};

/// ConTest's measure: a shared variable is covered once it experienced
/// contention — accessed by two distinct threads, at least one access a
/// write, within a bounded event window.
class VarContentionCoverage final : public CoverageModel {
 public:
  /// Without a resolver, names come from the bound runtime (objectLabel).
  explicit VarContentionCoverage(
      std::function<std::string(ObjectId)> varName = {},
      std::size_t window = 50)
      : varName_(std::move(varName)), window_(window) {}
  std::string name() const override { return "var-contention"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return EventMask::variable();
  }

 private:
  struct Recent {
    ThreadId thread;
    bool write;
    std::uint64_t seq;
  };
  void clearRunState() override { recent_.clear(); }
  std::function<std::string(ObjectId)> varName_;
  std::size_t window_;
  std::map<ObjectId, std::vector<Recent>> recent_;
};

/// Synchronization coverage: each mutex/semaphore should be seen acquired
/// both uncontended and contended (the runtime marks contended acquisitions
/// with arg=1).  Two tasks per object: "<name>/free" and "<name>/blocked".
class SyncContentionCoverage final : public CoverageModel {
 public:
  explicit SyncContentionCoverage(
      std::function<std::string(ObjectId)> name = {})
      : objName_(std::move(name)) {}
  std::string name() const override { return "sync-contention"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return EventMask{EventKind::MutexLock, EventKind::SemAcquire,
                     EventKind::RwLockRead, EventKind::RwLockWrite};
  }

 private:
  std::function<std::string(ObjectId)> objName_;
};

/// Ordered lock-pair coverage: task "A<B" covered when B is acquired while
/// A is held; observing both "A<B" and "B<A" across the test suite is the
/// classic deadlock-risk smell.
class LockPairCoverage final : public CoverageModel {
 public:
  explicit LockPairCoverage(std::function<std::string(ObjectId)> name = {})
      : objName_(std::move(name)) {}
  std::string name() const override { return "lock-pair"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return EventMask{EventKind::MutexLock, EventKind::MutexTryLockOk,
                     EventKind::MutexUnlock};
  }

 private:
  void clearRunState() override { held_.clear(); }
  std::function<std::string(ObjectId)> objName_;
  std::map<ThreadId, std::vector<ObjectId>> held_;
};

/// Interleaving coverage: a task per (site, site) pair where consecutive
/// events on the same variable came from different threads — a cheap proxy
/// for "this context switch location was exercised".
class SwitchPairCoverage final : public CoverageModel {
 public:
  std::string name() const override { return "switch-pair"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return EventMask::variable();
  }

 private:
  struct Last {
    ThreadId thread = kNoThread;
    SiteId site = kNoSite;
  };
  void clearRunState() override { last_.clear(); }
  std::map<ObjectId, Last> last_;
};

/// Known model names for makeCoverage, in presentation order.
std::vector<std::string> coverageNames();

/// Builds a coverage model by name ("site-point", "var-contention",
/// "sync-contention", "lock-pair", "switch-pair"); the model resolves object
/// names through whatever runtime it is later bound to (ToolStack::attach).
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<CoverageModel> makeCoverage(const std::string& name);

/// Merges covered sets across runs and models the growth curve.
class CoverageAccumulator {
 public:
  /// Folds one run's snapshot in; returns the number of newly covered tasks.
  std::size_t addRun(const Snapshot& snap);
  /// Convenience: folds in model.snapshot().
  std::size_t addRun(const CoverageModel& model) {
    return addRun(model.snapshot());
  }

  std::size_t runs() const { return perRunNew_.size(); }
  std::size_t totalCovered() const { return covered_.size(); }
  const std::vector<std::size_t>& newTasksPerRun() const {
    return perRunNew_;
  }
  /// Cumulative covered count after each run (monotone, concave in
  /// expectation — the diminishing-returns curve of experiment E5).
  std::vector<std::size_t> growthCurve() const;

  /// The paper's "how many times should a test run" estimator: the smallest
  /// run count after which `quietRuns` consecutive runs added no new tasks,
  /// or 0 if coverage was still growing at the end.
  std::size_t saturationRun(std::size_t quietRuns = 3) const;

 private:
  std::set<std::string> covered_;
  std::vector<std::size_t> perRunNew_;
};

}  // namespace mtt::coverage
