#include "coverage/coverage.hpp"

#include <algorithm>

#include "core/site.hpp"

namespace mtt::coverage {

void CoverageModel::declareTasks(const std::set<std::string>& tasks) {
  std::lock_guard<std::mutex> lk(mu_);
  known_ = tasks;
  closed_ = true;
}

std::set<std::string> CoverageModel::covered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return covered_;
}

std::set<std::string> CoverageModel::known() const {
  std::lock_guard<std::mutex> lk(mu_);
  return known_;
}

std::size_t CoverageModel::coveredCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return covered_.size();
}

std::size_t CoverageModel::taskCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return known_.size();
}

double CoverageModel::ratio() const {
  std::lock_guard<std::mutex> lk(mu_);
  return known_.empty()
             ? 0.0
             : static_cast<double>(covered_.size()) /
                   static_cast<double>(known_.size());
}

void CoverageModel::onRunStart(const RunInfo& info) {
  (void)info;
  std::lock_guard<std::mutex> lk(mu_);
  covered_.clear();
  if (!closed_) known_.clear();
  outsideUniverse_ = 0;
}

void CoverageModel::resetTool() {
  std::lock_guard<std::mutex> lk(mu_);
  covered_.clear();
  if (!closed_) known_.clear();
  outsideUniverse_ = 0;
}

void CoverageModel::discover(const std::string& task) {
  if (closed_) {
    if (known_.find(task) == known_.end()) ++outsideUniverse_;
    return;
  }
  known_.insert(task);
}

void CoverageModel::cover(const std::string& task) {
  if (closed_ && known_.find(task) == known_.end()) {
    ++outsideUniverse_;
    return;
  }
  known_.insert(task);
  covered_.insert(task);
}

// --- SitePointCoverage --------------------------------------------------------

void SitePointCoverage::onEvent(const Event& e) {
  if (e.syncSite == kNoSite) return;
  std::lock_guard<std::mutex> lk(mu_);
  cover(SiteRegistry::instance().describe(e.syncSite));
}

// --- VarContentionCoverage ----------------------------------------------------

void VarContentionCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) return;
  bool isWrite = e.kind == EventKind::VarWrite;
  std::lock_guard<std::mutex> lk(mu_);
  std::string task = varName_(e.object);
  discover(task);
  auto& hist = recent_[e.object];
  for (const Recent& r : hist) {
    if (r.thread != e.thread && (r.write || isWrite) &&
        e.seq - r.seq <= window_) {
      cover(task);
      break;
    }
  }
  hist.push_back(Recent{e.thread, isWrite, e.seq});
  if (hist.size() > window_) hist.erase(hist.begin());
}

// --- SyncContentionCoverage ----------------------------------------------------

void SyncContentionCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::MutexLock && e.kind != EventKind::SemAcquire &&
      e.kind != EventKind::RwLockRead && e.kind != EventKind::RwLockWrite) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::string base = objName_(e.object);
  discover(base + "/free");
  discover(base + "/blocked");
  cover(base + (e.arg != 0 ? "/blocked" : "/free"));
}

// --- LockPairCoverage -----------------------------------------------------------

void LockPairCoverage::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (e.kind) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk: {
      auto& stack = held_[e.thread];
      for (ObjectId h : stack) {
        if (h != e.object) {
          cover(objName_(h) + "<" + objName_(e.object));
        }
      }
      stack.push_back(e.object);
      break;
    }
    case EventKind::MutexUnlock: {
      auto& stack = held_[e.thread];
      auto it = std::find(stack.rbegin(), stack.rend(), e.object);
      if (it != stack.rend()) stack.erase(std::next(it).base());
      break;
    }
    default:
      break;
  }
}

// --- SwitchPairCoverage -----------------------------------------------------------

void SwitchPairCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) return;
  std::lock_guard<std::mutex> lk(mu_);
  Last& l = last_[e.object];
  if (l.thread != kNoThread && l.thread != e.thread) {
    auto& reg = SiteRegistry::instance();
    cover(reg.describe(l.site) + "=>" + reg.describe(e.syncSite));
  }
  l.thread = e.thread;
  l.site = e.syncSite;
}

// --- CoverageAccumulator ------------------------------------------------------------

std::size_t CoverageAccumulator::addRun(const CoverageModel& model) {
  std::size_t before = covered_.size();
  for (const auto& t : model.covered()) covered_.insert(t);
  std::size_t added = covered_.size() - before;
  perRunNew_.push_back(added);
  return added;
}

std::vector<std::size_t> CoverageAccumulator::growthCurve() const {
  std::vector<std::size_t> out;
  std::size_t sum = 0;
  for (std::size_t n : perRunNew_) {
    sum += n;
    out.push_back(sum);
  }
  return out;
}

std::size_t CoverageAccumulator::saturationRun(std::size_t quietRuns) const {
  if (perRunNew_.size() < quietRuns) return 0;
  std::size_t quiet = 0;
  for (std::size_t i = 0; i < perRunNew_.size(); ++i) {
    quiet = perRunNew_[i] == 0 ? quiet + 1 : 0;
    if (quiet >= quietRuns) return i + 1 - quietRuns + 1;
  }
  return 0;
}

}  // namespace mtt::coverage
