#include "coverage/coverage.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/site.hpp"
#include "rt/runtime.hpp"

namespace mtt::coverage {

void CoverageModel::declareTasks(const std::set<std::string>& tasks) {
  std::lock_guard<std::mutex> lk(mu_);
  known_ = tasks;
  closed_ = true;
}

Snapshot CoverageModel::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.covered = covered_;
  s.known = known_;
  s.closed = closed_;
  s.outsideUniverse = outsideUniverse_;
  return s;
}

Snapshot CoverageModel::runSnapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.covered = covered_;
  // Closed universes keep the declared task set (constant, so still a pure
  // function of the run); open universes report only this run's discoveries
  // so that a reused stack and a fresh one produce identical records.
  s.known = closed_ ? known_ : runDiscovered_;
  s.closed = closed_;
  s.outsideUniverse = outsideUniverse_;
  return s;
}

std::size_t CoverageModel::coveredCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return covered_.size();
}

std::size_t CoverageModel::taskCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return known_.size();
}

double CoverageModel::ratio() const {
  std::lock_guard<std::mutex> lk(mu_);
  return known_.empty()
             ? 0.0
             : static_cast<double>(covered_.size()) /
                   static_cast<double>(known_.size());
}

void CoverageModel::onRunStart(const RunInfo& info) {
  (void)info;
  std::lock_guard<std::mutex> lk(mu_);
  covered_.clear();
  runDiscovered_.clear();
  outsideUniverse_ = 0;
  clearRunState();
}

void CoverageModel::bindRuntime(rt::Runtime& rt) {
  std::lock_guard<std::mutex> lk(mu_);
  rt_ = &rt;
}

void CoverageModel::resetTool() {
  std::lock_guard<std::mutex> lk(mu_);
  covered_.clear();
  runDiscovered_.clear();
  outsideUniverse_ = 0;
  clearRunState();
}

void CoverageModel::discover(const std::string& task) {
  if (closed_) {
    if (known_.find(task) == known_.end()) ++outsideUniverse_;
    return;
  }
  known_.insert(task);
  runDiscovered_.insert(task);
}

void CoverageModel::cover(const std::string& task) {
  if (closed_) {
    if (known_.find(task) == known_.end()) {
      ++outsideUniverse_;
      return;
    }
    covered_.insert(task);
    return;
  }
  known_.insert(task);
  runDiscovered_.insert(task);
  covered_.insert(task);
}

std::string CoverageModel::objectLabel(ObjectId id) const {
  if (rt_ != nullptr) return rt_->objectInfo(id).name;
  return "obj#" + std::to_string(id);
}

// --- SitePointCoverage --------------------------------------------------------

void SitePointCoverage::onEvent(const Event& e) {
  if (e.syncSite == kNoSite) return;
  std::lock_guard<std::mutex> lk(mu_);
  cover(SiteRegistry::instance().describe(e.syncSite));
}

// --- VarContentionCoverage ----------------------------------------------------

void VarContentionCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) return;
  bool isWrite = e.kind == EventKind::VarWrite;
  std::lock_guard<std::mutex> lk(mu_);
  std::string task = varName_ ? varName_(e.object) : objectLabel(e.object);
  discover(task);
  auto& hist = recent_[e.object];
  for (const Recent& r : hist) {
    if (r.thread != e.thread && (r.write || isWrite) &&
        e.seq - r.seq <= window_) {
      cover(task);
      break;
    }
  }
  hist.push_back(Recent{e.thread, isWrite, e.seq});
  if (hist.size() > window_) hist.erase(hist.begin());
}

// --- SyncContentionCoverage ----------------------------------------------------

void SyncContentionCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::MutexLock && e.kind != EventKind::SemAcquire &&
      e.kind != EventKind::RwLockRead && e.kind != EventKind::RwLockWrite) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::string base = objName_ ? objName_(e.object) : objectLabel(e.object);
  discover(base + "/free");
  discover(base + "/blocked");
  cover(base + (e.arg != 0 ? "/blocked" : "/free"));
}

// --- LockPairCoverage -----------------------------------------------------------

void LockPairCoverage::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  auto label = [this](ObjectId id) {
    return objName_ ? objName_(id) : objectLabel(id);
  };
  switch (e.kind) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk: {
      auto& stack = held_[e.thread];
      for (ObjectId h : stack) {
        if (h != e.object) {
          cover(label(h) + "<" + label(e.object));
        }
      }
      stack.push_back(e.object);
      break;
    }
    case EventKind::MutexUnlock: {
      auto& stack = held_[e.thread];
      auto it = std::find(stack.rbegin(), stack.rend(), e.object);
      if (it != stack.rend()) stack.erase(std::next(it).base());
      break;
    }
    default:
      break;
  }
}

// --- SwitchPairCoverage -----------------------------------------------------------

void SwitchPairCoverage::onEvent(const Event& e) {
  if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) return;
  std::lock_guard<std::mutex> lk(mu_);
  Last& l = last_[e.object];
  if (l.thread != kNoThread && l.thread != e.thread) {
    auto& reg = SiteRegistry::instance();
    cover(reg.describe(l.site) + "=>" + reg.describe(e.syncSite));
  }
  l.thread = e.thread;
  l.site = e.syncSite;
}

// --- factory ------------------------------------------------------------------

std::vector<std::string> coverageNames() {
  return {"site-point", "var-contention", "sync-contention", "lock-pair",
          "switch-pair"};
}

std::unique_ptr<CoverageModel> makeCoverage(const std::string& name) {
  if (name == "site-point") return std::make_unique<SitePointCoverage>();
  if (name == "var-contention") {
    return std::make_unique<VarContentionCoverage>();
  }
  if (name == "sync-contention") {
    return std::make_unique<SyncContentionCoverage>();
  }
  if (name == "lock-pair") return std::make_unique<LockPairCoverage>();
  if (name == "switch-pair") return std::make_unique<SwitchPairCoverage>();
  throw std::invalid_argument("unknown coverage model: " + name);
}

// --- CoverageAccumulator ------------------------------------------------------------

std::size_t CoverageAccumulator::addRun(const Snapshot& snap) {
  std::size_t before = covered_.size();
  covered_.insert(snap.covered.begin(), snap.covered.end());
  std::size_t added = covered_.size() - before;
  perRunNew_.push_back(added);
  return added;
}

std::vector<std::size_t> CoverageAccumulator::growthCurve() const {
  std::vector<std::size_t> out;
  std::size_t sum = 0;
  for (std::size_t n : perRunNew_) {
    sum += n;
    out.push_back(sum);
  }
  return out;
}

std::size_t CoverageAccumulator::saturationRun(std::size_t quietRuns) const {
  if (perRunNew_.size() < quietRuns) return 0;
  std::size_t quiet = 0;
  for (std::size_t i = 0; i < perRunNew_.size(); ++i) {
    quiet = perRunNew_[i] == 0 ? quiet + 1 : 0;
    if (quiet >= quietRuns) return i + 1 - quietRuns + 1;
  }
  return 0;
}

}  // namespace mtt::coverage
