// coverage::Snapshot — the value-type coverage result of one (or many) runs.
//
// Earlier CoverageModel accessors copied whole string sets under the model
// mutex and left merging/novelty logic to every call site (those shims are
// gone).  A Snapshot extracts the model state once and is then a plain value:
// it merges, computes novelty against a prior, and serializes to a compact
// binary form that travels over the farm's worker pipe and into the campaign
// journal — which is what lets mtt::guide feed per-run coverage deltas back
// into campaign control without re-running anything.
//
// Binary format (MSNP1):
//
//   "MSNP" '1'            magic + version byte
//   flags u8              bit0 = closed universe
//   varint outsideUniverse
//   varint |known|        then per task: varint length + raw bytes
//                         (tasks in sorted order — std::set iteration)
//   varint |covered|      then per task: varint index into the known list
//
// Covered tasks are indices into the known list because covered ⊆ known is
// a CoverageModel invariant; encode() enforces it (a hand-built Snapshot
// with a stray covered task throws).  Varints are LEB128, same as trace v2.
// decode() validates everything and throws std::runtime_error on any
// corruption — truncation, bad magic, out-of-range index — never UB.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

namespace mtt::coverage {

struct Snapshot {
  std::set<std::string> covered;
  std::set<std::string> known;
  bool closed = false;                 ///< universe declared up front
  std::uint64_t outsideUniverse = 0;   ///< hits outside a closed universe

  std::size_t coveredCount() const { return covered.size(); }
  std::size_t taskCount() const { return known.size(); }
  /// coveredCount / taskCount; 0 when the universe is empty.
  double ratio() const;
  /// A closed universe with every task covered (false for open universes:
  /// there is no notion of "done" without a declared task set).
  bool complete() const { return closed && covered.size() == known.size(); }

  /// Folds `other` in: set union on covered/known, closed if either side
  /// was closed, outsideUniverse summed.
  void merge(const Snapshot& other);

  /// Number of covered tasks not covered in `prior` — the per-run coverage
  /// delta that is the guide engine's bandit reward signal.
  std::size_t novelty(const Snapshot& prior) const;

  /// Stable binary encoding (MSNP1).  Throws std::logic_error if covered is
  /// not a subset of known.
  std::string encode() const;
  /// Parses an MSNP1 blob; throws std::runtime_error with a diagnostic on
  /// any malformed input.
  static Snapshot decode(std::string_view bytes);

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Lowercase hex of raw bytes — how a Snapshot rides inside line-oriented
/// carriers (the farm pipe record and the journal) without escaping issues.
std::string toHex(std::string_view bytes);
/// Inverse of toHex; throws std::runtime_error on odd length or non-hex.
std::string fromHex(std::string_view hex);

}  // namespace mtt::coverage
