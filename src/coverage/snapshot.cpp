#include "coverage/snapshot.hpp"

#include <stdexcept>
#include <vector>

namespace mtt::coverage {

namespace {

void putVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t getVarint(std::string_view bytes, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= bytes.size()) {
      throw std::runtime_error("coverage snapshot: truncated varint");
    }
    auto b = static_cast<std::uint8_t>(bytes[pos++]);
    if (shift >= 63 && (b & 0x7f) > 1) {
      throw std::runtime_error("coverage snapshot: varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

constexpr char kMagic[5] = {'M', 'S', 'N', 'P', '1'};

}  // namespace

double Snapshot::ratio() const {
  return known.empty() ? 0.0
                       : static_cast<double>(covered.size()) /
                             static_cast<double>(known.size());
}

void Snapshot::merge(const Snapshot& other) {
  covered.insert(other.covered.begin(), other.covered.end());
  known.insert(other.known.begin(), other.known.end());
  closed = closed || other.closed;
  outsideUniverse += other.outsideUniverse;
}

std::size_t Snapshot::novelty(const Snapshot& prior) const {
  std::size_t n = 0;
  for (const auto& t : covered) {
    if (prior.covered.find(t) == prior.covered.end()) ++n;
  }
  return n;
}

std::string Snapshot::encode() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(closed ? 1 : 0);
  putVarint(out, outsideUniverse);
  putVarint(out, known.size());
  // The known set iterates sorted; covered entries refer to it by rank.
  std::vector<const std::string*> order;
  order.reserve(known.size());
  for (const auto& t : known) {
    putVarint(out, t.size());
    out.append(t);
    order.push_back(&t);
  }
  putVarint(out, covered.size());
  for (const auto& t : covered) {
    auto it = known.find(t);
    if (it == known.end()) {
      throw std::logic_error(
          "coverage snapshot: covered task not in known set: " + t);
    }
    // Rank of `it` in the sorted set == index in the encoded known list.
    putVarint(out, static_cast<std::uint64_t>(
                       std::distance(known.begin(), it)));
  }
  return out;
}

Snapshot Snapshot::decode(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 1 ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("coverage snapshot: bad magic");
  }
  std::size_t pos = sizeof(kMagic);
  auto flags = static_cast<std::uint8_t>(bytes[pos++]);
  if (flags > 1) {
    throw std::runtime_error("coverage snapshot: unknown flags");
  }
  Snapshot s;
  s.closed = (flags & 1) != 0;
  s.outsideUniverse = getVarint(bytes, pos);
  std::uint64_t knownCount = getVarint(bytes, pos);
  if (knownCount > bytes.size()) {  // each task costs >= 1 byte
    throw std::runtime_error("coverage snapshot: implausible known count");
  }
  std::vector<std::string> tasks;
  tasks.reserve(knownCount);
  for (std::uint64_t i = 0; i < knownCount; ++i) {
    std::uint64_t len = getVarint(bytes, pos);
    if (len > bytes.size() - pos) {
      throw std::runtime_error("coverage snapshot: truncated task name");
    }
    tasks.emplace_back(bytes.substr(pos, len));
    pos += len;
    if (i > 0 && !(tasks[i - 1] < tasks[i])) {
      throw std::runtime_error("coverage snapshot: known list not sorted");
    }
    s.known.insert(s.known.end(), tasks.back());
  }
  std::uint64_t coveredCount = getVarint(bytes, pos);
  if (coveredCount > knownCount) {
    throw std::runtime_error("coverage snapshot: covered exceeds known");
  }
  for (std::uint64_t i = 0; i < coveredCount; ++i) {
    std::uint64_t idx = getVarint(bytes, pos);
    if (idx >= tasks.size()) {
      throw std::runtime_error("coverage snapshot: covered index range");
    }
    s.covered.insert(tasks[idx]);
  }
  if (pos != bytes.size()) {
    throw std::runtime_error("coverage snapshot: trailing bytes");
  }
  return s;
}

std::string toHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string fromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("hex blob: odd length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::runtime_error("hex blob: bad digit");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace mtt::coverage
