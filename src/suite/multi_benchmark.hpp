// The "specially prepared benchmark program" — component 4 of the paper:
//
//   "a specially prepared benchmark program that has no inputs and many
//    possible results.  We create the program by having a 'main' that starts
//    many of our simpler documented sample programs in parallel, each of
//    which writes its result (with a number of possible outcomes) into a
//    variable.  The benchmark program outputs these results as well as the
//    order in which the sample programs finished.  Tools such as noise
//    makers can be compared as to the distribution of their results."
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "suite/program.hpp"

namespace mtt::suite {

class MultiBenchmark final : public Program {
 public:
  /// Uses the default component set when `programNames` is empty:
  /// ticket_lottery, account, check_then_act, order_violation — all with
  /// value outcomes and no run-aborting oracles.
  explicit MultiBenchmark(std::vector<std::string> programNames = {});

  std::string name() const override { return "multi_benchmark"; }
  std::string description() const override {
    return "no-input/many-outcomes driver: runs sample programs in parallel "
           "and reports their results plus the finish order";
  }
  void reset() override;
  void body(rt::Runtime& rt) override;
  /// The MultiBenchmark itself has no bug: every outcome is legal.  A
  /// deadlock/hang of a component is reported through the outcome string.
  Verdict evaluate(const rt::RunResult& r) const override;

  const std::vector<std::string>& componentNames() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Program>> components_;
};

}  // namespace mtt::suite
