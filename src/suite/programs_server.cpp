// The repository's "larger program": a miniature multi-threaded cache
// server combining several subsystems (connection queue, worker pool,
// session table behind a readers-writer lock, sharded statistics, a log
// lock), with three documented field-style bugs that interact:
//
//   1. stats under-count    — the hit/miss counters are updated with an
//                             unsynchronized read-modify-write;
//   2. eviction TOCTOU      — the evictor checks the session count under
//                             the read lock, drops it, then evicts under
//                             the write lock without re-checking;
//   3. log/table inversion  — one path locks log->table, another
//                             table->log (a potential deadlock that
//                             manifests only under tight interleavings).
//
// Control variant `cache_server_fixed` repairs all three (atomic updates
// under a lock, re-check under the write lock, a single global lock order).
#include <algorithm>

#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::LockGuard;
using rt::Mutex;
using rt::ReadGuard;
using rt::Runtime;
using rt::RwLock;
using rt::Semaphore;
using rt::SharedArray;
using rt::SharedVar;
using rt::Thread;
using rt::WriteGuard;

struct ServerConfig {
  int workers = 3;
  int requests = 9;       // total requests pushed through the queue
  int sessionCapacity = 2;  // evictor trims the table above this
};

/// Shared plumbing for both variants; `buggy` selects the defect paths.
class CacheServerBase : public Program {
 public:
  explicit CacheServerBase(bool buggy, ServerConfig cfg = {})
      : buggy_(buggy), cfg_(cfg) {}

  void reset() override {
    Program::reset();
    hits_ = misses_ = sessions_ = installs_ = evictions_ = -1;
  }

  void body(Runtime& rt) override {
    // --- subsystems --------------------------------------------------------
    Semaphore pending(rt, "queue.pending", 0);  // producer -> workers
    SharedVar<int> nextRequest(rt, "queue.next", 0);
    Mutex queueLock(rt, "queue.lock");

    RwLock tableLock(rt, "session.tableLock");
    SharedVar<int> sessionCount(rt, "session.count", 0);
    // Book-keeping updated only under the table WRITE lock, so it is exact
    // by construction and usable as the oracle's ground truth.
    SharedVar<int> installs(rt, "session.installs", 0);
    SharedVar<int> evictionsApplied(rt, "session.evictions", 0);

    SharedVar<int> hitCount(rt, "stats.hits", 0);
    SharedVar<int> missCount(rt, "stats.misses", 0);
    Mutex statsLock(rt, "stats.lock");

    Mutex logLock(rt, "log.lock");
    SharedVar<int> logLines(rt, "log.lines", 0);

    auto logLine = [&](Site s) {
      LockGuard g(logLock, s);
      logLines.write(logLines.read(site("srv.log.read")) + 1,
                     site("srv.log.write"));
    };

    auto bumpStat = [&](SharedVar<int>& counter, Site s) {
      if (buggy_) {
        // BUG 1: unsynchronized read-modify-write on the counters.
        int v = counter.read(site("srv.stats.read", BugMark::Yes));
        counter.write(v + 1, s);
      } else {
        LockGuard g(statsLock, site("srv.stats.lock"));
        counter.write(counter.read(site("srv.stats.read.ok")) + 1, s);
      }
    };

    // --- worker pool --------------------------------------------------------
    std::vector<Thread> workers;
    for (int w = 0; w < cfg_.workers; ++w) {
      workers.emplace_back(rt, "worker" + std::to_string(w), [&] {
        for (;;) {
          pending.acquire(site("srv.queue.acquire"));
          int req;
          {
            LockGuard g(queueLock, site("srv.queue.lock"));
            req = nextRequest.read(site("srv.queue.take"));
            nextRequest.write(req + 1, site("srv.queue.advance"));
          }
          if (req >= cfg_.requests) break;  // poison pill
          // Look up the "session" (cache hit when the table is warm).
          bool hit;
          {
            ReadGuard g(tableLock, site("srv.table.read"));
            hit = sessionCount.read(site("srv.table.peek")) > req % 3;
          }
          if (hit) {
            bumpStat(hitCount, site("srv.stats.hit", BugMark::Yes));
          } else {
            bumpStat(missCount, site("srv.stats.miss", BugMark::Yes));
            // Install a session for the missed key.
            WriteGuard g(tableLock, site("srv.table.install"));
            sessionCount.write(
                sessionCount.read(site("srv.table.count.read")) + 1,
                site("srv.table.count.write"));
            installs.write(installs.read(site("srv.table.inst.read")) + 1,
                           site("srv.table.inst.write"));
            if (buggy_) {
              // BUG 3 (one side): table lock held, now the log lock.
              logLine(site("srv.log.under-table", BugMark::Yes));
            }
          }
          if (!buggy_) logLine(site("srv.log.after-table"));
        }
      });
    }

    // --- evictor -------------------------------------------------------------
    Thread evictor(rt, "evictor", [&] {
      for (int round = 0; round < 3; ++round) {
        int count;
        {
          ReadGuard g(tableLock, site("srv.evict.check", BugMark::Yes));
          count = sessionCount.read(site("srv.evict.peek"));
        }
        if (count > cfg_.sessionCapacity) {
          if (buggy_) {
            // BUG 3 (other side): log lock first, then the table lock.
            LockGuard lg(logLock, site("srv.log.before-table",
                                       BugMark::Yes));
            logLines.write(logLines.read(site("srv.log.evict.read")) + 1,
                           site("srv.log.evict.write"));
            // BUG 2: evict based on the stale count without re-checking.
            WriteGuard g(tableLock, site("srv.evict.apply", BugMark::Yes));
            sessionCount.write(count - 1,
                               site("srv.evict.write", BugMark::Yes));
            evictionsApplied.write(
                evictionsApplied.read(site("srv.evict.count.read")) + 1,
                site("srv.evict.count.write"));
          } else {
            WriteGuard g(tableLock, site("srv.evict.apply.ok"));
            int now = sessionCount.read(site("srv.evict.recheck"));
            if (now > cfg_.sessionCapacity) {
              sessionCount.write(now - 1, site("srv.evict.write.ok"));
              evictionsApplied.write(
                  evictionsApplied.read(site("srv.evict.count.r.ok")) + 1,
                  site("srv.evict.count.w.ok"));
            }
            logLine(site("srv.log.after-evict"));
          }
        }
        rt.yieldNow(site("srv.evict.pause"));
      }
    });

    // --- request producer (main) ---------------------------------------------
    for (int r = 0; r < cfg_.requests; ++r) {
      pending.release(1, site("srv.queue.release"));
    }
    // Poison pills: one per worker.
    pending.release(static_cast<std::uint32_t>(cfg_.workers),
                    site("srv.queue.poison"));

    for (auto& w : workers) w.join();
    evictor.join();

    hits_ = hitCount.read();
    misses_ = missCount.read();
    sessions_ = sessionCount.read();
    installs_ = installs.read();
    evictions_ = evictionsApplied.read();
    setOutcome("hits=" + std::to_string(hits_) + " misses=" +
               std::to_string(misses_) + " sessions=" +
               std::to_string(sessions_));
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;  // incl. the lock inversion
    // Conservation: every request is either a hit or a miss, and every miss
    // installed a session (minus explicit evictions).  The stats race and
    // the eviction TOCTOU both break these books.
    if (hits_ + misses_ != cfg_.requests) return Verdict::BugManifested;
    // Session ledger: the table count must equal installs minus evictions;
    // the eviction TOCTOU silently discards concurrent installs.
    if (sessions_ != installs_ - evictions_) return Verdict::BugManifested;
    return Verdict::Pass;
  }

 protected:
  bool buggy_;
  ServerConfig cfg_;
  int hits_ = -1, misses_ = -1, sessions_ = -1, installs_ = -1,
      evictions_ = -1;
};

class CacheServer final : public CacheServerBase {
 public:
  CacheServer() : CacheServerBase(true) {}
  std::string name() const override { return "cache_server"; }
  std::string description() const override {
    return "multi-threaded cache server (queue + worker pool + rwlock "
           "session table + stats + log) with three interacting field bugs";
  }
  std::vector<BugInfo> bugs() const override {
    return {
        BugInfo{"server.stats-race", BugKind::DataRace,
                "hit/miss counters updated with unsynchronized "
                "read-modify-write across the worker pool",
                {"srv.stats.read", "srv.stats.hit", "srv.stats.miss"}},
        BugInfo{"server.evict-toctou", BugKind::AtomicityViolation,
                "evictor samples the session count under the read lock and "
                "applies the eviction from the stale value",
                {"srv.evict.check", "srv.evict.apply", "srv.evict.write"}},
        BugInfo{"server.log-table-inversion", BugKind::Deadlock,
                "workers lock table->log, the evictor locks log->table",
                {"srv.log.under-table", "srv.log.before-table"}},
    };
  }
};

class CacheServerFixed final : public CacheServerBase {
 public:
  CacheServerFixed() : CacheServerBase(false) {}
  std::string name() const override { return "cache_server_fixed"; }
  std::string description() const override {
    return "the cache server with all three defects repaired (control): "
           "locked stats, re-check under the write lock, one lock order";
  }
};

}  // namespace

void registerServerPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("cache_server", [] { return std::make_unique<CacheServer>(); },
          {"threads", "server"});
  reg.add("cache_server_fixed",
          [] { return std::make_unique<CacheServerFixed>(); },
          {"threads", "server"});
}

}  // namespace mtt::suite
