// Internal: per-file registration hooks assembled by registerBuiltins().
#pragma once

namespace mtt::suite {

void registerRacePrograms();
void registerSyncPrograms();
void registerDeadlockPrograms();
void registerRwlockPrograms();
void registerServerPrograms();
void registerEvloopPrograms();
void registerMemPrograms();
void registerMiscPrograms();
void registerCrashPrograms();

}  // namespace mtt::suite
