#include "suite/program.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>

namespace mtt::suite {

std::string_view to_string(BugKind k) {
  switch (k) {
    case BugKind::DataRace: return "data-race";
    case BugKind::AtomicityViolation: return "atomicity-violation";
    case BugKind::OrderViolation: return "order-violation";
    case BugKind::Deadlock: return "deadlock";
    case BugKind::LostWakeup: return "lost-wakeup";
    case BugKind::Livelock: return "livelock";
  }
  return "?";
}

struct ProgramRegistry::Impl {
  struct Entry {
    ProgramRegistry::Factory factory;
    std::vector<std::string> tags;
  };
  std::mutex mu;
  std::map<std::string, Entry> entries;
};

ProgramRegistry::Impl* ProgramRegistry::impl() {
  static Impl* impl = new Impl;  // leaked singleton
  return impl;
}

ProgramRegistry& ProgramRegistry::instance() {
  static ProgramRegistry* reg = new ProgramRegistry;
  return *reg;
}

void ProgramRegistry::add(const std::string& name, Factory f,
                          std::vector<std::string> tags) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lk(i->mu);
  i->entries[name] = Impl::Entry{std::move(f), std::move(tags)};
}

std::vector<std::string> ProgramRegistry::names() const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  std::vector<std::string> out;
  for (const auto& [n, _] : i->entries) out.push_back(n);
  return out;
}

std::vector<std::string> ProgramRegistry::names(const std::string& tag) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  std::vector<std::string> out;
  for (const auto& [n, e] : i->entries) {
    if (tag.empty() ||
        std::find(e.tags.begin(), e.tags.end(), tag) != e.tags.end()) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<std::string> ProgramRegistry::tagsOf(
    const std::string& name) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  auto it = i->entries.find(name);
  return it == i->entries.end() ? std::vector<std::string>{} : it->second.tags;
}

std::vector<std::string> ProgramRegistry::allTags() const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  std::set<std::string> tags;
  for (const auto& [_, e] : i->entries) tags.insert(e.tags.begin(), e.tags.end());
  return std::vector<std::string>(tags.begin(), tags.end());
}

std::unique_ptr<Program> ProgramRegistry::make(const std::string& name) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  auto it = i->entries.find(name);
  return it == i->entries.end() ? nullptr : it->second.factory();
}

bool ProgramRegistry::has(const std::string& name) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  return i->entries.count(name) != 0;
}

std::unique_ptr<Program> makeProgram(const std::string& name) {
  registerBuiltins();
  auto p = ProgramRegistry::instance().make(name);
  if (!p) throw std::runtime_error("unknown benchmark program " + name);
  return p;
}

std::vector<std::string> allProgramNames() {
  registerBuiltins();
  return ProgramRegistry::instance().names();
}

std::vector<std::string> allProgramNames(const std::string& tag) {
  registerBuiltins();
  return ProgramRegistry::instance().names(tag);
}

}  // namespace mtt::suite
