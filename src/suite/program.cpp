#include "suite/program.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace mtt::suite {

std::string_view to_string(BugKind k) {
  switch (k) {
    case BugKind::DataRace: return "data-race";
    case BugKind::AtomicityViolation: return "atomicity-violation";
    case BugKind::OrderViolation: return "order-violation";
    case BugKind::Deadlock: return "deadlock";
    case BugKind::LostWakeup: return "lost-wakeup";
    case BugKind::Livelock: return "livelock";
  }
  return "?";
}

struct ProgramRegistry::Impl {
  std::mutex mu;
  std::map<std::string, Factory> factories;
};

ProgramRegistry::Impl* ProgramRegistry::impl() {
  static Impl* impl = new Impl;  // leaked singleton
  return impl;
}

ProgramRegistry& ProgramRegistry::instance() {
  static ProgramRegistry* reg = new ProgramRegistry;
  return *reg;
}

void ProgramRegistry::add(const std::string& name, Factory f) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lk(i->mu);
  i->factories[name] = std::move(f);
}

std::vector<std::string> ProgramRegistry::names() const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  std::vector<std::string> out;
  for (const auto& [n, _] : i->factories) out.push_back(n);
  return out;
}

std::unique_ptr<Program> ProgramRegistry::make(const std::string& name) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  auto it = i->factories.find(name);
  return it == i->factories.end() ? nullptr : it->second();
}

bool ProgramRegistry::has(const std::string& name) const {
  Impl* i = const_cast<ProgramRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lk(i->mu);
  return i->factories.count(name) != 0;
}

std::unique_ptr<Program> makeProgram(const std::string& name) {
  registerBuiltins();
  auto p = ProgramRegistry::instance().make(name);
  if (!p) throw std::runtime_error("unknown benchmark program " + name);
  return p;
}

std::vector<std::string> allProgramNames() {
  registerBuiltins();
  return ProgramRegistry::instance().names();
}

}  // namespace mtt::suite
