// Condition-variable / semaphore / barrier / ordering benchmark programs.
#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::Barrier;
using rt::CondVar;
using rt::LockGuard;
using rt::Mutex;
using rt::Runtime;
using rt::Semaphore;
using rt::SharedVar;
using rt::Thread;

// ---------------------------------------------------------------------------
// bounded_buffer_bug: consumer re-checks the buffer with `if` instead of
// `while` after a condition wait; with two consumers a wakeup can be
// consumed by the other one first -> underflow.
// ---------------------------------------------------------------------------
class BoundedBufferBug final : public Program {
 public:
  std::string name() const override { return "bounded_buffer_bug"; }
  std::string description() const override {
    return "bounded buffer whose consumers use 'if' instead of 'while' "
           "around the condition wait; a broadcast wakes both consumers for "
           "a single item and one underflows";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"buffer.if-not-while", BugKind::LostWakeup,
                    "woken consumer does not re-check the predicate",
                    {"buffer.consume.wait", "buffer.consume.take"}}};
  }
  void body(Runtime& rt) override {
    Mutex m(rt, "buffer.lock");
    CondVar notEmpty(rt, "buffer.notEmpty");
    SharedVar<int> count(rt, "buffer.count", 0);
    SharedVar<int> produced(rt, "produced", 0);
    auto consumer = [&] {
      LockGuard g(m, site("buffer.consume.lock"));
      if (count.read(site("buffer.consume.check")) == 0) {
        notEmpty.wait(m, site("buffer.consume.wait", BugMark::Yes));
      }
      int c = count.read(site("buffer.consume.take", BugMark::Yes));
      count.write(c - 1, site("buffer.consume.dec"));
      rt.check(c - 1 >= 0, "buffer underflow: consumed from empty buffer");
    };
    Thread c1(rt, "consumer1", consumer), c2(rt, "consumer2", consumer);
    Thread producer(rt, "producer", [&] {
      for (int i = 0; i < 2; ++i) {
        LockGuard g(m, site("buffer.produce.lock"));
        count.write(count.read(site("buffer.produce.read")) + 1,
                    site("buffer.produce.write"));
        produced.write(produced.read() + 1);
        notEmpty.broadcast(site("buffer.produce.broadcast"));
      }
    });
    c1.join();
    c2.join();
    producer.join();
    setOutcome("count=" + std::to_string(count.plainGet()));
  }
};

// ---------------------------------------------------------------------------
// bounded_buffer_ok: the while-loop control variant.
// ---------------------------------------------------------------------------
class BoundedBufferOk final : public Program {
 public:
  std::string name() const override { return "bounded_buffer_ok"; }
  std::string description() const override {
    return "bounded buffer with the canonical while-loop around the wait "
           "(control: correct)";
  }
  void body(Runtime& rt) override {
    Mutex m(rt, "buffer.lock");
    CondVar notEmpty(rt, "buffer.notEmpty");
    SharedVar<int> count(rt, "buffer.count", 0);
    auto consumer = [&] {
      LockGuard g(m, site("bufok.consume.lock"));
      while (count.read(site("bufok.consume.check")) == 0) {
        notEmpty.wait(m, site("bufok.consume.wait"));
      }
      int c = count.read(site("bufok.consume.take"));
      count.write(c - 1, site("bufok.consume.dec"));
      rt.check(c - 1 >= 0, "buffer underflow in control program");
    };
    Thread c1(rt, "consumer1", consumer), c2(rt, "consumer2", consumer);
    Thread producer(rt, "producer", [&] {
      for (int i = 0; i < 2; ++i) {
        LockGuard g(m, site("bufok.produce.lock"));
        count.write(count.read(site("bufok.produce.read")) + 1,
                    site("bufok.produce.write"));
        notEmpty.broadcast(site("bufok.produce.broadcast"));
      }
    });
    c1.join();
    c2.join();
    producer.join();
    setOutcome("count=" + std::to_string(count.plainGet()));
  }
};

// ---------------------------------------------------------------------------
// notify_lost: signal races with the wait; a signal sent while nobody waits
// is lost and the waiter blocks forever.
// ---------------------------------------------------------------------------
class NotifyLost final : public Program {
 public:
  std::string name() const override { return "notify_lost"; }
  std::string description() const override {
    return "signaler sets the flag and signals without holding the waiter's "
           "lock; if the signal lands between the waiter's check and its "
           "wait, it is lost and the waiter hangs";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"notify.lost-signal", BugKind::LostWakeup,
                    "flag write and signal are not under the waiter's mutex",
                    {"notify.flag", "notify.signal", "notify.wait"}}};
  }
  void body(Runtime& rt) override {
    Mutex m(rt, "notify.lock");
    CondVar cv(rt, "notify.cv");
    SharedVar<int> flag(rt, "notify.flag", 0);
    Thread waiter(rt, "waiter", [&] {
      LockGuard g(m, site("notify.waiter.lock"));
      while (flag.read(site("notify.check")) == 0) {
        cv.wait(m, site("notify.wait", BugMark::Yes));
      }
    });
    Thread signaler(rt, "signaler", [&] {
      // BUG: no lock around flag + signal.
      flag.write(1, site("notify.flag", BugMark::Yes));
      cv.signal(site("notify.signal", BugMark::Yes));
    });
    waiter.join();
    signaler.join();
    setOutcome("done");
  }
};

// ---------------------------------------------------------------------------
// producer_consumer_sem: control; semaphore handoff.  Race-free, but
// lockset-only detectors (Eraser) flag the data handoff — the benchmark's
// false-alarm showcase.
// ---------------------------------------------------------------------------
class ProducerConsumerSem final : public Program {
 public:
  explicit ProducerConsumerSem(int items = 3) : items_(items) {}
  std::string name() const override { return "producer_consumer_sem"; }
  std::string description() const override {
    return "producer/consumer synchronized by counting semaphores (control: "
           "correct, but lock-free of locks — lockset detectors false-alarm)";
  }
  void reset() override {
    Program::reset();
    consumed_ = -1;
  }
  void body(Runtime& rt) override {
    Semaphore full(rt, "sem.full", 0);
    Semaphore empty(rt, "sem.empty", 1);
    SharedVar<int> slot(rt, "slot", 0);
    SharedVar<int> sum(rt, "sum", 0);
    Thread producer(rt, "producer", [&] {
      for (int i = 1; i <= items_; ++i) {
        empty.acquire(site("pcsem.empty.acquire"));
        slot.write(i, site("pcsem.slot.write"));
        full.release(1, site("pcsem.full.release"));
      }
    });
    Thread consumer(rt, "consumer", [&] {
      for (int i = 0; i < items_; ++i) {
        full.acquire(site("pcsem.full.acquire"));
        sum.write(sum.read(site("pcsem.sum.read")) +
                      slot.read(site("pcsem.slot.read")),
                  site("pcsem.sum.write"));
        empty.release(1, site("pcsem.empty.release"));
      }
    });
    producer.join();
    consumer.join();
    consumed_ = sum.read();
    setOutcome("sum=" + std::to_string(consumed_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return consumed_ == items_ * (items_ + 1) / 2 ? Verdict::Pass
                                                  : Verdict::BugManifested;
  }

 private:
  int items_;
  int consumed_ = -1;
};

// ---------------------------------------------------------------------------
// barrier_reuse: one worker arrives at the barrier once while the others
// loop twice; the second generation never completes.
// ---------------------------------------------------------------------------
class BarrierReuse final : public Program {
 public:
  std::string name() const override { return "barrier_reuse"; }
  std::string description() const override {
    return "three phase-synchronized workers; one skips the second barrier "
           "generation (off-by-one in its phase loop) and the rest hang";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"barrier.missing-party", BugKind::Deadlock,
                    "a party arrives fewer times than the others",
                    {"barrier.phase", "barrier.short"}}};
  }
  void body(Runtime& rt) override {
    Barrier bar(rt, "phase.barrier", 3);
    std::vector<Thread> ts;
    for (int i = 0; i < 3; ++i) {
      ts.emplace_back(rt, "worker" + std::to_string(i), [&, i] {
        // BUG: worker 2's loop runs one phase short.
        int phases = i == 2 ? 1 : 2;
        for (int p = 0; p < phases; ++p) {
          bar.arriveAndWait(i == 2 ? site("barrier.short", BugMark::Yes)
                                   : site("barrier.phase", BugMark::Yes));
        }
      });
    }
    for (auto& t : ts) t.join();
    setOutcome("done");
  }
};

// ---------------------------------------------------------------------------
// order_violation: a worker consumes a configuration value its spawner only
// writes after the spawn.
// ---------------------------------------------------------------------------
class OrderViolation final : public Program {
 public:
  std::string name() const override { return "order_violation"; }
  std::string description() const override {
    return "main spawns the worker first and fills in the configuration "
           "afterwards; the worker may read it before it is set";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"order.use-before-init", BugKind::OrderViolation,
                    "no synchronization orders config write before use",
                    {"order.init", "order.use"}}};
  }
  void reset() override {
    Program::reset();
    used_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> config(rt, "config", 0);
    Thread worker(rt, "worker", [&] {
      used_ = config.read(site("order.use", BugMark::Yes));
    });
    config.write(7, site("order.init", BugMark::Yes));
    worker.join();
    setOutcome("used=" + std::to_string(used_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return used_ == 7 ? Verdict::Pass : Verdict::BugManifested;
  }

  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("order_violation");
      int config = p->addVar("config", 0);
      int observed = p->addVar("observed", -1);
      // The IR starts every thread concurrently, which is exactly the
      // missing-ordering situation of the bug (no spawn edge constrains
      // the reader).
      p->thread("main").constant(0, 7).store(config, 0);
      p->thread("worker").load(config, 0).store(observed, 0);
      p->finalAssert(observed, 7);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int used_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// shared_flag_spin: busy-wait on a flag with no yield; under a cooperative
// (unit-test) scheduler the spinner starves the writer forever.
// ---------------------------------------------------------------------------
class SharedFlagSpin final : public Program {
 public:
  std::string name() const override { return "shared_flag_spin"; }
  std::string description() const override {
    return "worker busy-waits on a flag without yielding; livelocks under a "
           "cooperative scheduler (and burns CPU natively)";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"spin.no-yield", BugKind::Livelock,
                    "spin loop contains no blocking or yielding operation",
                    {"spin.read"}}};
  }
  rt::RunOptions defaultRunOptions() const override {
    rt::RunOptions o;
    o.maxSteps = 20'000;  // livelock guard trips quickly
    return o;
  }
  void body(Runtime& rt) override {
    SharedVar<int> flag(rt, "spin.flag", 0);
    Thread spinner(rt, "spinner", [&] {
      while (flag.read(site("spin.read", BugMark::Yes)) == 0) {
      }
    });
    // Main hands the CPU over (unit tests do other work here); under a
    // cooperative scheduler the non-yielding spinner then starves it and
    // the flag is never set.
    rt.yieldNow(site("spin.handoff"));
    flag.write(1, site("spin.set"));
    spinner.join();
    setOutcome("done");
  }
};

// ---------------------------------------------------------------------------
// sleep_sync: sleep used as synchronization; any extra delay on the writer
// breaks the "usually works" timing.
// ---------------------------------------------------------------------------
class SleepSync final : public Program {
 public:
  std::string name() const override { return "sleep_sync"; }
  std::string description() const override {
    return "writer sleeps briefly then writes; reader sleeps slightly longer "
           "then reads — sleep-as-synchronization, broken by any noise";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"sleep.as-sync", BugKind::OrderViolation,
                    "ordering depends on relative sleep durations",
                    {"sleep.write", "sleep.read"}}};
  }
  void reset() override {
    Program::reset();
    got_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> data(rt, "sleep.data", 0);
    Thread writer(rt, "writer", [&] {
      rt.sleepFor(std::chrono::microseconds(100));
      data.write(42, site("sleep.write", BugMark::Yes));
    });
    Thread reader(rt, "reader", [&] {
      // 20x the writer's delay: "plenty of margin" — until noise delays the
      // writer past it.
      rt.sleepFor(std::chrono::microseconds(2000));
      got_ = data.read(site("sleep.read", BugMark::Yes));
    });
    writer.join();
    reader.join();
    setOutcome("got=" + std::to_string(got_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return got_ == 42 ? Verdict::Pass : Verdict::BugManifested;
  }

 private:
  int got_ = -1;
};

}  // namespace

void registerSyncPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("bounded_buffer_bug",
          [] { return std::make_unique<BoundedBufferBug>(); });
  reg.add("bounded_buffer_ok",
          [] { return std::make_unique<BoundedBufferOk>(); });
  reg.add("notify_lost", [] { return std::make_unique<NotifyLost>(); });
  reg.add("producer_consumer_sem",
          [] { return std::make_unique<ProducerConsumerSem>(); });
  reg.add("barrier_reuse", [] { return std::make_unique<BarrierReuse>(); });
  reg.add("order_violation",
          [] { return std::make_unique<OrderViolation>(); });
  reg.add("shared_flag_spin",
          [] { return std::make_unique<SharedFlagSpin>(); });
  reg.add("sleep_sync", [] { return std::make_unique<SleepSync>(); });
}

}  // namespace mtt::suite
