// Outcome-diversity programs and the registry assembly.
#include <algorithm>
#include <mutex>

#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::LockGuard;
using rt::Mutex;
using rt::Runtime;
using rt::SharedVar;
using rt::Thread;

// ---------------------------------------------------------------------------
// ticket_lottery: no inputs, many legal outcomes.  Three contestants grab
// tickets; the outcome records who got which ticket — a direct probe of
// scheduler diversity (the MultiBenchmark's main ingredient, and a control
// program: every outcome is legal).
// ---------------------------------------------------------------------------
class TicketLottery final : public Program {
 public:
  explicit TicketLottery(int contestants = 3) : contestants_(contestants) {}
  std::string name() const override { return "ticket_lottery"; }
  std::string description() const override {
    return "contestants draw tickets under a lock; every draw order is "
           "legal, so the outcome distribution measures schedule diversity";
  }
  void body(Runtime& rt) override {
    SharedVar<int> nextTicket(rt, "nextTicket", 0);
    Mutex m(rt, "ticket.lock");
    std::vector<int> got(contestants_, -1);
    std::vector<Thread> ts;
    for (int i = 0; i < contestants_; ++i) {
      ts.emplace_back(rt, "contestant" + std::to_string(i), [&, i] {
        LockGuard g(m, site("ticket.lock"));
        int t = nextTicket.read(site("ticket.read"));
        nextTicket.write(t + 1, site("ticket.write"));
        got[i] = t;
      });
    }
    for (auto& t : ts) t.join();
    std::string o = "tickets=";
    for (int i = 0; i < contestants_; ++i) o += std::to_string(got[i]);
    setOutcome(o);
  }

 private:
  int contestants_;
};

}  // namespace

void registerMiscPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("ticket_lottery", [] { return std::make_unique<TicketLottery>(); });
}

void registerBuiltins() {
  static std::once_flag once;
  std::call_once(once, [] {
    registerRacePrograms();
    registerSyncPrograms();
    registerDeadlockPrograms();
    registerRwlockPrograms();
    registerServerPrograms();
    registerEvloopPrograms();
    registerMemPrograms();
    registerMiscPrograms();
    registerCrashPrograms();
  });
}

}  // namespace mtt::suite
