// Race / atomicity-violation benchmark programs (and their bug-free control
// variants).  Each documents its bug with BugInfo and marks the involved
// instrumentation sites with BugMark::Yes.
#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::LockGuard;
using rt::Mutex;
using rt::Runtime;
using rt::SharedArray;
using rt::SharedVar;
using rt::Thread;

// ---------------------------------------------------------------------------
// account: the canonical lost-update.  Two tellers deposit into one account
// with an unsynchronized read-modify-write.
// ---------------------------------------------------------------------------
class Account final : public Program {
 public:
  explicit Account(int tellers = 2, int deposits = 2)
      : tellers_(tellers), deposits_(deposits) {}

  std::string name() const override { return "account"; }
  std::string description() const override {
    return "bank account; unsynchronized deposits lose updates "
           "(read-modify-write atomicity violation)";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"account.lost-update", BugKind::AtomicityViolation,
                    "balance read and write are separate operations with no "
                    "lock; concurrent deposits overwrite each other",
                    {"account.read", "account.write"}}};
  }

  void reset() override {
    Program::reset();
    finalBalance_ = -1;
  }

  void body(Runtime& rt) override {
    SharedVar<int> balance(rt, "balance", 0);
    std::vector<Thread> ts;
    ts.reserve(tellers_);
    for (int i = 0; i < tellers_; ++i) {
      ts.emplace_back(rt, "teller" + std::to_string(i), [&] {
        for (int d = 0; d < deposits_; ++d) {
          int v = balance.read(site("account.read", BugMark::Yes));
          balance.write(v + 10, site("account.write", BugMark::Yes));
        }
      });
    }
    for (auto& t : ts) t.join();
    finalBalance_ = balance.read(site("account.check"));
    setOutcome("balance=" + std::to_string(finalBalance_));
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return finalBalance_ == tellers_ * deposits_ * 10 ? Verdict::Pass
                                                      : Verdict::BugManifested;
  }

  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("account");
      int bal = p->addVar("balance", 0);
      for (int i = 0; i < tellers_; ++i) {
        auto t = p->thread("teller" + std::to_string(i));
        t.repeat(deposits_,
                 [&](model::ThreadBuilder& b) { b.incrementVar(bal, 10); });
      }
      p->finalAssert(bal, tellers_ * deposits_ * 10);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int tellers_, deposits_;
  int finalBalance_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// account_sync: control variant with a lock.
// ---------------------------------------------------------------------------
class AccountSync final : public Program {
 public:
  explicit AccountSync(int tellers = 2, int deposits = 2)
      : tellers_(tellers), deposits_(deposits) {}
  std::string name() const override { return "account_sync"; }
  std::string description() const override {
    return "bank account with a lock around each deposit (control: race-free)";
  }
  void reset() override {
    Program::reset();
    finalBalance_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> balance(rt, "balance", 0);
    Mutex m(rt, "balance.lock");
    std::vector<Thread> ts;
    for (int i = 0; i < tellers_; ++i) {
      ts.emplace_back(rt, "teller" + std::to_string(i), [&] {
        for (int d = 0; d < deposits_; ++d) {
          LockGuard g(m, site("account_sync.lock"));
          int v = balance.read(site("account_sync.read"));
          balance.write(v + 10, site("account_sync.write"));
        }
      });
    }
    for (auto& t : ts) t.join();
    finalBalance_ = balance.read();
    setOutcome("balance=" + std::to_string(finalBalance_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return finalBalance_ == tellers_ * deposits_ * 10 ? Verdict::Pass
                                                      : Verdict::BugManifested;
  }
  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("account_sync");
      int bal = p->addVar("balance", 0);
      int lock = p->addLock("balance.lock");
      for (int i = 0; i < tellers_; ++i) {
        auto t = p->thread("teller" + std::to_string(i));
        t.repeat(deposits_, [&](model::ThreadBuilder& b) {
          b.acquire(lock).incrementVar(bal, 10).release(lock);
        });
      }
      p->finalAssert(bal, tellers_ * deposits_ * 10);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int tellers_, deposits_;
  int finalBalance_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// read_modify_write: a bare shared counter hammered by several threads.
// ---------------------------------------------------------------------------
class ReadModifyWrite final : public Program {
 public:
  explicit ReadModifyWrite(int threads = 3, int iters = 4)
      : threads_(threads), iters_(iters) {}
  std::string name() const override { return "read_modify_write"; }
  std::string description() const override {
    return "shared counter incremented without synchronization by several "
           "threads; the classic data race";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"rmw.data-race", BugKind::DataRace,
                    "counter++ compiles to load/add/store with no lock",
                    {"rmw.read", "rmw.write"}}};
  }
  void reset() override {
    Program::reset();
    final_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> counter(rt, "counter", 0);
    std::vector<Thread> ts;
    for (int i = 0; i < threads_; ++i) {
      ts.emplace_back(rt, "inc" + std::to_string(i), [&] {
        for (int k = 0; k < iters_; ++k) {
          int v = counter.read(site("rmw.read", BugMark::Yes));
          counter.write(v + 1, site("rmw.write", BugMark::Yes));
        }
      });
    }
    for (auto& t : ts) t.join();
    final_ = counter.read();
    setOutcome("count=" + std::to_string(final_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return final_ == threads_ * iters_ ? Verdict::Pass
                                       : Verdict::BugManifested;
  }

  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("read_modify_write");
      int c = p->addVar("counter", 0);
      // Keep the model small for exhaustive search: 2 iterations/thread.
      int iters = std::min(iters_, 2);
      for (int i = 0; i < threads_; ++i) {
        p->thread("inc" + std::to_string(i))
            .repeat(iters,
                    [&](model::ThreadBuilder& b) { b.incrementVar(c, 1); });
      }
      p->finalAssert(c, threads_ * iters);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int threads_, iters_;
  int final_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// check_then_act: time-of-check-to-time-of-use on lazy initialization.
// ---------------------------------------------------------------------------
class CheckThenAct final : public Program {
 public:
  std::string name() const override { return "check_then_act"; }
  std::string description() const override {
    return "lazy initialization guarded by an unsynchronized flag check; two "
           "threads can both observe 'uninitialized' and initialize twice";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"cta.toctou", BugKind::AtomicityViolation,
                    "flag check and initialization are not atomic",
                    {"cta.check", "cta.init", "cta.set"}}};
  }
  void reset() override {
    Program::reset();
    inits_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> initialized(rt, "initialized", 0);
    SharedVar<int> initCount(rt, "initCount", 0);
    auto user = [&] {
      if (initialized.read(site("cta.check", BugMark::Yes)) == 0) {
        int c = initCount.read(site("cta.init", BugMark::Yes));
        initCount.write(c + 1, site("cta.init.write", BugMark::Yes));
        initialized.write(1, site("cta.set", BugMark::Yes));
      }
    };
    Thread a(rt, "userA", user), b(rt, "userB", user);
    a.join();
    b.join();
    inits_ = initCount.read();
    setOutcome("inits=" + std::to_string(inits_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return inits_ == 1 ? Verdict::Pass : Verdict::BugManifested;
  }

  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("check_then_act");
      int initialized = p->addVar("initialized", 0);
      int initCount = p->addVar("initCount", 0);
      for (const char* name : {"userA", "userB"}) {
        auto t = p->thread(name);
        // if (initialized == 0) { initCount++; initialized = 1; }
        // The guarded block is 4 visible ops: load/store of initCount and
        // the constant store to initialized (load+store + store = 3 visible
        // plus the load in incrementVar) — count: Load(initCount),
        // Store(initCount), Store(initialized) = 3.
        t.skipIfNonZero(initialized, 3)
            .incrementVar(initCount, 1)
            .constant(1, 1)
            .store(initialized, 1);
      }
      // Serialized: the second user skips, so exactly one initialization.
      // The racy interleaving initializes twice.
      p->finalAssert(initCount, 1);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int inits_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// double_checked_lock: publication before initialization.
// ---------------------------------------------------------------------------
class DoubleCheckedLock final : public Program {
 public:
  std::string name() const override { return "double_checked_lock"; }
  std::string description() const override {
    return "double-checked locking that publishes the 'constructed' pointer "
           "before the object's fields are written; readers observe a "
           "half-built object";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"dcl.early-publish", BugKind::OrderViolation,
                    "ptr is set before data is initialized; the unlocked "
                    "fast-path read sees ptr != 0 with data still 0",
                    {"dcl.publish", "dcl.init", "dcl.fastpath", "dcl.use"}}};
  }
  void reset() override {
    Program::reset();
    sawHalfBuilt_ = false;
    observed_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> ptr(rt, "ptr", 0);
    SharedVar<int> data(rt, "data", 0);
    Mutex m(rt, "dcl.lock");
    Thread writer(rt, "writer", [&] {
      if (ptr.read(site("dcl.wcheck")) == 0) {
        LockGuard g(m, site("dcl.lock"));
        if (ptr.read(site("dcl.wcheck2")) == 0) {
          // BUG: publish before initializing.
          ptr.write(1, site("dcl.publish", BugMark::Yes));
          data.write(42, site("dcl.init", BugMark::Yes));
        }
      }
    });
    Thread reader(rt, "reader", [&] {
      if (ptr.read(site("dcl.fastpath", BugMark::Yes)) != 0) {
        observed_ = data.read(site("dcl.use", BugMark::Yes));
        if (observed_ != 42) sawHalfBuilt_ = true;
      }
    });
    writer.join();
    reader.join();
    setOutcome(observed_ < 0 ? "reader-skipped"
                             : "observed=" + std::to_string(observed_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return sawHalfBuilt_ ? Verdict::BugManifested : Verdict::Pass;
  }

 private:
  bool sawHalfBuilt_ = false;
  int observed_ = -1;
};

// ---------------------------------------------------------------------------
// bank_transfer: medium program; stale read outside the locks breaks the
// conservation invariant even though writes are locked.
// ---------------------------------------------------------------------------
class BankTransfer final : public Program {
 public:
  BankTransfer(int accounts = 4, int movers = 3, int transfers = 3)
      : accounts_(accounts), movers_(movers), transfers_(transfers) {}
  std::string name() const override { return "bank_transfer"; }
  std::string description() const override {
    return "bank with per-account locks; transfer amounts are computed from "
           "balances read before taking the locks (stale reads), violating "
           "conservation of money";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"bank.stale-read", BugKind::AtomicityViolation,
                    "source balance read outside the critical section; "
                    "concurrent transfers double-spend",
                    {"bank.stale-read", "bank.debit", "bank.credit"}}};
  }
  void reset() override {
    Program::reset();
    total_ = -1;
  }
  void body(Runtime& rt) override {
    const int initial = 100;
    SharedArray<int> balance(rt, "balance", accounts_, initial);
    std::vector<std::unique_ptr<Mutex>> locks;
    for (int i = 0; i < accounts_; ++i) {
      locks.push_back(
          std::make_unique<Mutex>(rt, "acct.lock" + std::to_string(i)));
    }
    std::vector<Thread> ts;
    for (int m = 0; m < movers_; ++m) {
      ts.emplace_back(rt, "mover" + std::to_string(m), [&, m] {
        for (int k = 0; k < transfers_; ++k) {
          int src = (m + k) % accounts_;
          int dst = (m + k + 1) % accounts_;
          // BUG: the source balance is read before taking the locks, and the
          // debit is written from that stale base — a concurrent debit of
          // the same account is silently undone (lost update), so money is
          // created or destroyed.
          int stale =
              balance.read(src, site("bank.stale-read", BugMark::Yes));
          int amount = stale / 2;
          // Locks taken in index order (no deadlock; the bug is the race).
          Mutex& first = *locks[std::min(src, dst)];
          Mutex& second = *locks[std::max(src, dst)];
          LockGuard g1(first, site("bank.lock1"));
          LockGuard g2(second, site("bank.lock2"));
          balance.write(src, stale - amount,
                        site("bank.debit", BugMark::Yes));
          balance.write(dst,
                        balance.read(dst, site("bank.credit.read")) + amount,
                        site("bank.credit", BugMark::Yes));
        }
      });
    }
    for (auto& t : ts) t.join();
    total_ = 0;
    for (int i = 0; i < accounts_; ++i) total_ += balance.read(i);
    setOutcome("total=" + std::to_string(total_));
    expected_ = accounts_ * initial;
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    // The stale read misorders debits: money is conserved only if every
    // amount was computed from an up-to-date balance.  Any drift from the
    // initial total means the race fired...
    (void)expected_;
    return total_ == expected_ ? Verdict::Pass : Verdict::BugManifested;
  }

 private:
  int accounts_, movers_, transfers_;
  int total_ = -1;
  mutable int expected_ = 0;
};

// ---------------------------------------------------------------------------
// stat_counter_sharded: control; per-thread shards, aggregated under a lock.
// ---------------------------------------------------------------------------
class StatCounterSharded final : public Program {
 public:
  StatCounterSharded(int threads = 3, int iters = 5)
      : threads_(threads), iters_(iters) {}
  std::string name() const override { return "stat_counter_sharded"; }
  std::string description() const override {
    return "statistics counter sharded per thread and aggregated under a "
           "lock after joins (control: race-free by design)";
  }
  void reset() override {
    Program::reset();
    total_ = -1;
  }
  void body(Runtime& rt) override {
    SharedArray<int> shard(rt, "shard", threads_, 0);
    SharedVar<int> total(rt, "total", 0);
    Mutex m(rt, "total.lock");
    std::vector<Thread> ts;
    for (int i = 0; i < threads_; ++i) {
      ts.emplace_back(rt, "counter" + std::to_string(i), [&, i] {
        for (int k = 0; k < iters_; ++k) {
          shard.write(i, shard.read(i, site("shard.read")) + 1,
                      site("shard.write"));
        }
        LockGuard g(m, site("shard.flush.lock"));
        total.write(total.read(site("total.read")) + shard.read(i),
                    site("total.write"));
      });
    }
    for (auto& t : ts) t.join();
    total_ = total.read();
    setOutcome("total=" + std::to_string(total_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return total_ == threads_ * iters_ ? Verdict::Pass
                                       : Verdict::BugManifested;
  }

 private:
  int threads_, iters_;
  int total_ = -1;
};

}  // namespace

void registerRacePrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("account", [] { return std::make_unique<Account>(); });
  reg.add("account_sync", [] { return std::make_unique<AccountSync>(); });
  reg.add("read_modify_write",
          [] { return std::make_unique<ReadModifyWrite>(); });
  reg.add("check_then_act", [] { return std::make_unique<CheckThenAct>(); });
  reg.add("double_checked_lock",
          [] { return std::make_unique<DoubleCheckedLock>(); });
  reg.add("bank_transfer", [] { return std::make_unique<BankTransfer>(); });
  reg.add("stat_counter_sharded",
          [] { return std::make_unique<StatCounterSharded>(); });
}

}  // namespace mtt::suite
