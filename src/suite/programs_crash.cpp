// Worker-lethal benchmark programs for the farm's crash isolation and the
// postmortem flight recorder: one that segfaults and one that wall-clock
// hangs when its order violation manifests.
//
// Both are environment-gated so the lethal behavior only fires inside a
// disposable forked worker: without the variable set, a manifestation
// reports through rt.fail() instead, which keeps in-process replay, shrink,
// and corpus verification of the postmortem scenarios safe and
// deterministic — the schedule that kills a worker is the same schedule
// that fails softly during triage.
#include <chrono>
#include <cstdlib>
#include <thread>

#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::Runtime;
using rt::SharedVar;
using rt::Thread;

// ---------------------------------------------------------------------------
// crash_deref: order violation with a lethal consequence.  The user thread
// assumes init published the pointer; when it reads first, it dereferences
// null.  With MTT_CRASH_DEREF_HARD set the dereference is real (SIGSEGV,
// killing the worker mid-run); otherwise it is reported via rt.fail().
// ---------------------------------------------------------------------------
class CrashDeref final : public Program {
 public:
  std::string name() const override { return "crash_deref"; }
  std::string description() const override {
    return "order violation: a consumer may dereference a pointer before "
           "the producer publishes it; real SIGSEGV under "
           "MTT_CRASH_DEREF_HARD, soft failure otherwise";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"crash_deref.use-before-init", BugKind::OrderViolation,
                    "no synchronization orders the publish before the use; "
                    "an early consumer dereferences null",
                    {"crash.publish", "crash.use"}}};
  }

  void reset() override {
    Program::reset();
    crashed_ = false;
  }

  void body(Runtime& rt) override {
    SharedVar<int> published(rt, "published", 0);
    int payload = 0;
    int* ptr = nullptr;
    Thread producer(rt, "producer", [&] {
      payload = 42;
      ptr = &payload;
      published.write(1, site("crash.publish", BugMark::Yes));
    });
    Thread consumer(rt, "consumer", [&] {
      int ready = published.read(site("crash.use", BugMark::Yes));
      if (ready == 0) {
        crashed_ = true;
        if (std::getenv("MTT_CRASH_DEREF_HARD") != nullptr) {
          // Real consequence: the unpublished pointer is dereferenced.  A
          // guaranteed-null write models it (ptr itself may already point
          // at payload when the producer is blocked at the publish site,
          // since the scheduling point precedes the write effect).
          volatile int* p = nullptr;
          *p = 1;  // SIGSEGV
        }
        rt.fail("null dereference: consumer ran before producer published "
                "(would segfault)");
      }
    });
    producer.join();
    consumer.join();
    setOutcome(crashed_ ? "deref-before-publish" : "ordered");
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    return !r.ok() || crashed_ ? Verdict::BugManifested : Verdict::Pass;
  }

 private:
  bool crashed_ = false;
};

// ---------------------------------------------------------------------------
// wall_stall: order violation with a wall-clock hang.  When the consumer
// observes the un-set flag it stalls the worker for MTT_STALL_MS real
// milliseconds (default 60000) — long enough for the farm watchdog to
// expire and exercise the SIGTERM postmortem drain.  With MTT_STALL_MS=0
// the stall is skipped and the run fails softly and instantly, which is
// what replay/shrink of the resulting postmortem scenario uses.
// ---------------------------------------------------------------------------
class WallStall final : public Program {
 public:
  std::string name() const override { return "wall_stall"; }
  std::string description() const override {
    return "order violation that real-sleeps the worker when it manifests "
           "(MTT_STALL_MS, default 60000); exercises watchdog timeouts and "
           "the pre-kill postmortem drain";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"wall_stall.missed-go", BugKind::OrderViolation,
                    "the consumer busy-stalls in real time when it runs "
                    "before the producer sets go",
                    {"stall.set", "stall.check"}}};
  }

  void reset() override {
    Program::reset();
    stalled_ = false;
  }

  void body(Runtime& rt) override {
    SharedVar<int> go(rt, "go", 0);
    Thread producer(rt, "producer", [&] {
      go.write(1, site("stall.set", BugMark::Yes));
    });
    Thread consumer(rt, "consumer", [&] {
      int g = go.read(site("stall.check", BugMark::Yes));
      if (g == 0) {
        stalled_ = true;
        long ms = 60000;
        if (const char* env = std::getenv("MTT_STALL_MS")) {
          ms = std::atol(env);
        }
        if (ms > 0) {
          // Real wall-clock stall, opaque to the virtual-time scheduler:
          // the run hangs until the farm watchdog kills the worker.
          std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
        rt.fail("consumer observed go=0: producer had not run yet");
      }
    });
    producer.join();
    consumer.join();
    setOutcome(stalled_ ? "stalled" : "ordered");
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    return !r.ok() || stalled_ ? Verdict::BugManifested : Verdict::Pass;
  }

 private:
  bool stalled_ = false;
};

}  // namespace

void registerCrashPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("crash_deref", [] { return std::make_unique<CrashDeref>(); });
  reg.add("wall_stall", [] { return std::make_unique<WallStall>(); });
}

}  // namespace mtt::suite
