// Server-shaped programs on the instrumented event loop (mtt::evloop) —
// field-style bugs that live in *callback order*, not in raw thread
// interleavings.  All three run their callbacks on a single scheduler slot,
// so each callback is atomic; the nondeterminism the tools explore is which
// ready callback the loop dispatches next (NodeFz's bug class):
//
//   1. evloop_conn_pool      — an async connection pool where an operation's
//                              timeout callback races its completion
//                              callback; the buggy timeout releases the
//                              connection without claiming the operation, so
//                              the late completion releases it again
//                              (callback-reentrancy double-release).
//   2. evloop_lru_cache      — an LRU cache with deferred eviction; the
//                              eviction callback races a concurrent get()
//                              and, when its victim snapshot is stale,
//                              evicts an entry that was refreshed in
//                              between (stale-entry resurrection: the next
//                              get() misses on a must-be-resident key).
//   3. evloop_quota_sessions — a quota-based session scheduler serving ~128
//                              simulated sessions; the dispatcher's
//                              idle-sleep confirmation commits idleness
//                              without re-checking the queue, losing the
//                              wakeup of work enqueued inside the window
//                              (MTL's adaptive-sleep hazard) and stranding
//                              sessions forever.
//
// Each has a `_fixed` control variant repairing exactly the documented
// defect; the fixes are correct for *every* callback order (the control
// variants are exploration-clean), and the three bugs bucket under distinct
// triage fingerprints (different bug-marked sites and failure shapes).
#include <string>
#include <vector>

#include "evloop/event_loop.hpp"
#include "suite/program.hpp"
#include "suite/register_parts.hpp"

namespace mtt::suite {
namespace {

using evloop::EventLoop;
using rt::CondVar;
using rt::LockGuard;
using rt::Mutex;
using rt::Runtime;
using rt::SharedArray;
using rt::SharedVar;

// ---------------------------------------------------------------------------
// 1. evloop_conn_pool — callback-reentrancy double-release.
// ---------------------------------------------------------------------------
//
// Each client operation acquires a pooled connection, then arms two
// callbacks against it: the completion (posted through an io-done hop, as a
// real async stack would) and a timeout timer.  Exactly one of them must
// release the connection.  The fixed timeout *claims* the operation (sets
// its done flag) before releasing; the buggy timeout releases without
// claiming, so when the completion arrives later it finds the operation
// unclaimed and releases the connection a second time — by then the pool
// may have handed it to another client.  release() checks ownership and
// reports the double release the way a production assert would.
class ConnPoolBase : public Program {
 public:
  explicit ConnPoolBase(bool buggy) : buggy_(buggy) {}

  std::string name() const override {
    return buggy_ ? "evloop_conn_pool" : "evloop_conn_pool_fixed";
  }

  std::string description() const override {
    return std::string(buggy_ ? "async connection pool with a "
                                "timeout/completion double-release"
                              : "async connection pool; the timeout claims "
                                "the operation before releasing (control)") +
           "; callbacks on a 1-slot event loop";
  }

  std::vector<BugInfo> bugs() const override {
    if (!buggy_) return {};
    return {BugInfo{
        "evloop_conn_pool.double-release", BugKind::AtomicityViolation,
        "the operation-timeout callback releases the pooled connection "
        "without claiming the operation, so the operation's completion "
        "callback — whenever the loop dispatches it after the timeout — "
        "releases the same connection again",
        {"pool.release.check", "pool.timeout.release"}}};
  }

  void reset() override {
    Program::reset();
    freeAtEnd_ = -1;
    completedOps_ = -1;
  }

  void body(Runtime& rt) override {
    constexpr int kConns = 2;
    constexpr int kOps = 4;

    EventLoop loop(rt, "pool.loop");
    SharedVar<int> freeCount(rt, "pool.free", kConns);
    SharedArray<int> owner(rt, "pool.owner", kConns, -1);  // op id or -1
    SharedArray<int> done(rt, "pool.done", kOps, 0);
    SharedVar<int> finished(rt, "pool.finished", 0);
    SharedVar<int> dropped(rt, "pool.dropped", 0);

    // All pool state is touched only from callbacks (single slot => atomic).
    auto acquire = [&](int op) -> int {
      for (int c = 0; c < kConns; ++c) {
        if (owner.read(c, site("pool.acquire.scan")) == -1) {
          owner.write(c, op, site("pool.acquire.take"));
          freeCount.write(freeCount.read(site("pool.free.read")) - 1,
                          site("pool.free.dec"));
          return c;
        }
      }
      return -1;
    };

    auto release = [&](int c, int op, Site s) {
      if (owner.read(c, buggy_ ? site("pool.release.check", BugMark::Yes)
                               : site("pool.release.check.ok")) != op) {
        rt.fail("conn pool: operation " + std::to_string(op) +
                " released connection " + std::to_string(c) +
                " it no longer owns (double release)");
      }
      owner.write(c, -1, s);
      freeCount.write(freeCount.read(site("pool.free.read2")) + 1,
                      site("pool.free.inc"));
      finished.write(finished.read(site("pool.fin.read")) + 1,
                     site("pool.fin.write"));
    };

    std::function<void(int, int)> startOp = [&](int op, int attempt) {
      int c = acquire(op);
      if (c < 0) {
        // Pool exhausted: retry later, as a real server would re-poll.
        if (attempt < 6) {
          loop.post([&startOp, op, attempt] { startOp(op, attempt + 1); },
                    site("pool.retry.post"));
        } else {
          dropped.write(dropped.read(site("pool.drop.read")) + 1,
                        site("pool.drop.write"));
        }
        return;
      }
      // Arm the timeout timer for the operation...
      loop.postDelayed(
          [&, op, c] {
            if (done.read(op, site("pool.timeout.done")) == 1) return;
            if (!buggy_) {
              // FIX: the timeout claims the operation, so the late
              // completion sees it settled and does nothing.
              done.write(op, 1, site("pool.timeout.claim"));
            }
            // BUG (buggy_): release without claiming — the completion will
            // find the operation unclaimed and release again.
            release(c, op,
                    buggy_ ? site("pool.timeout.release", BugMark::Yes)
                           : site("pool.timeout.release.ok"));
          },
          1 + op % 2, site("pool.timeout.post"));
      // ...and the async completion, arriving via an io-done hop.
      loop.post(
          [&, op, c] {
            loop.post(
                [&, op, c] {
                  if (done.read(op, site("pool.complete.done")) == 1) return;
                  done.write(op, 1, site("pool.complete.claim"));
                  release(c, op, site("pool.complete.release"));
                },
                site("pool.complete.post"));
          },
          site("pool.iodone.post"));
    };

    for (int op = 0; op < kOps; ++op) {
      loop.post([&startOp, op] { startOp(op, 0); }, site("pool.start.post"));
    }
    loop.drain();

    freeAtEnd_ = freeCount.plainGet();
    completedOps_ = finished.plainGet();
    setOutcome("free=" + std::to_string(freeAtEnd_) +
               " finished=" + std::to_string(completedOps_) +
               " dropped=" + std::to_string(dropped.plainGet()));
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    // Ledger invariant: every connection back in the pool exactly once.
    constexpr int kConns = 2;
    return freeAtEnd_ == kConns ? Verdict::Pass : Verdict::BugManifested;
  }

 protected:
  bool buggy_;
  int freeAtEnd_ = -1;
  int completedOps_ = -1;
};

class ConnPool : public ConnPoolBase {
 public:
  ConnPool() : ConnPoolBase(true) {}
};
class ConnPoolFixed : public ConnPoolBase {
 public:
  ConnPoolFixed() : ConnPoolBase(false) {}
};

// ---------------------------------------------------------------------------
// 2. evloop_lru_cache — eviction callback races a get (stale resurrection).
// ---------------------------------------------------------------------------
//
// put() schedules eviction of the current LRU victim as a *deferred
// callback*, snapshotting the victim's recency stamp at decision time.  A
// get() that lands between the decision and the callback refreshes the
// victim.  The buggy eviction trusts its snapshot and removes the entry
// anyway; the application's bookkeeping still records the key as resident,
// so the next get() — a key the cache guarantees resident — misses
// ("resurrects" a stale entry from the backing store).  The fixed eviction
// notices the stale snapshot and re-picks the *current* LRU.
class LruCacheBase : public Program {
 public:
  explicit LruCacheBase(bool buggy) : buggy_(buggy) {}

  std::string name() const override {
    return buggy_ ? "evloop_lru_cache" : "evloop_lru_cache_fixed";
  }

  std::string description() const override {
    return std::string(buggy_ ? "LRU cache whose deferred eviction callback "
                                "trusts a stale victim snapshot"
                              : "LRU cache whose deferred eviction re-picks "
                                "the current LRU (control)") +
           "; eviction races concurrent gets on a 1-slot event loop";
  }

  std::vector<BugInfo> bugs() const override {
    if (!buggy_) return {};
    return {BugInfo{
        "evloop_lru_cache.stale-eviction", BugKind::OrderViolation,
        "the deferred eviction callback removes the victim chosen at "
        "put() time even when a concurrent get() refreshed it in between, "
        "so a key the cache promised resident is gone at the next get()",
        {"lru.evict.stale", "lru.get.resurrected"}}};
  }

  void reset() override {
    Program::reset();
    resurrectable_ = -1;
  }

  void body(Runtime& rt) override {
    constexpr int kKeys = 4;
    constexpr int kCap = 2;
    constexpr int A = 0, B = 1, C = 2;

    EventLoop loop(rt, "lru.loop");
    SharedArray<int> present(rt, "lru.present", kKeys, 0);
    SharedArray<int> lastTouch(rt, "lru.touch", kKeys, 0);
    // The application-level promise: keys it has put or recently hit must
    // stay resident (this is the bookkeeping the bug violates).
    SharedArray<int> mustResident(rt, "lru.resident", kKeys, 0);
    SharedVar<int> clock(rt, "lru.clock", 0);

    auto touch = [&](int k) {
      int now = clock.read(site("lru.clock.read")) + 1;
      clock.write(now, site("lru.clock.write"));
      lastTouch.write(k, now, site("lru.touch.write"));
      mustResident.write(k, 1, site("lru.resident.set"));
    };

    auto sizeNow = [&] {
      int n = 0;
      for (int k = 0; k < kKeys; ++k) {
        n += present.read(k, site("lru.size.scan"));
      }
      return n;
    };

    auto currentLru = [&]() -> int {
      int victim = -1, oldest = 0;
      for (int k = 0; k < kKeys; ++k) {
        if (present.read(k, site("lru.lru.scan")) == 0) continue;
        int t = lastTouch.read(k, site("lru.lru.stamp"));
        if (victim == -1 || t < oldest) {
          victim = k;
          oldest = t;
        }
      }
      return victim;
    };

    std::function<void(int)> put = [&](int k) {
      present.write(k, 1, site("lru.put.present"));
      touch(k);
      if (sizeNow() > kCap) {
        int victim = currentLru();
        int snapshot = lastTouch.read(victim, site("lru.evict.snapshot"));
        // Deferred eviction: runs whenever the loop gets to it.
        loop.post(
            [&, victim, snapshot] {
              if (present.read(victim, site("lru.evict.present")) == 0) {
                return;  // already gone
              }
              int nowStamp =
                  lastTouch.read(victim, site("lru.evict.recheck"));
              if (nowStamp == snapshot) {
                // Victim untouched since the decision: legitimate eviction.
                present.write(victim, 0, site("lru.evict.apply"));
                mustResident.write(victim, 0, site("lru.evict.retire"));
                return;
              }
              if (buggy_) {
                // BUG: trust the stale snapshot — evict the refreshed entry
                // while the bookkeeping still promises it resident.
                present.write(victim, 0, site("lru.evict.stale", BugMark::Yes));
              } else if (sizeNow() > kCap) {
                // FIX: the snapshot is stale; evict the *current* LRU.
                int v2 = currentLru();
                present.write(v2, 0, site("lru.evict.repick"));
                mustResident.write(v2, 0, site("lru.evict.repick.retire"));
              }
            },
            site("lru.evict.post"));
      }
    };

    std::function<void(int)> get = [&](int k) {
      if (present.read(k, site("lru.get.probe")) == 1) {
        touch(k);  // hit refreshes recency
        return;
      }
      if (mustResident.read(k, buggy_
                                   ? site("lru.get.resurrected", BugMark::Yes)
                                   : site("lru.get.resurrected.ok")) == 1) {
        rt.fail("lru cache: key " + std::to_string(k) +
                " promised resident but missing — stale eviction "
                "resurrected it from the backing store");
      }
      put(k);  // plain miss: refetch
    };

    loop.post(
        [&] {
          put(A);
          put(B);
        },
        site("lru.warm.post"));
    loop.post(
        [&] {
          put(C);  // overflows capacity: schedules eviction of LRU (= A)
          // The racing reads: get(A) refreshes the victim, the chained
          // second get(A) observes whether the stale eviction removed it.
          loop.post(
              [&] {
                get(A);
                loop.post([&] { get(A); }, site("lru.reread.post"));
              },
              site("lru.read.post"));
          loop.post([&] { get(B); }, site("lru.mixer.post"));
        },
        site("lru.fill.post"));
    loop.drain();

    // Final-state oracle input: a key still promised resident but absent.
    resurrectable_ = 0;
    for (int k = 0; k < kKeys; ++k) {
      if (mustResident.plainGet(k) == 1 && present.plainGet(k) == 0) {
        resurrectable_ = 1;
      }
    }
    setOutcome("resident-broken=" + std::to_string(resurrectable_));
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return resurrectable_ == 0 ? Verdict::Pass : Verdict::BugManifested;
  }

 protected:
  bool buggy_;
  int resurrectable_ = -1;
};

class LruCache : public LruCacheBase {
 public:
  LruCache() : LruCacheBase(true) {}
};
class LruCacheFixed : public LruCacheBase {
 public:
  LruCacheFixed() : LruCacheBase(false) {}
};

// ---------------------------------------------------------------------------
// 3. evloop_quota_sessions — lost wakeup in the idle-sleep confirmation.
// ---------------------------------------------------------------------------
//
// A dispatcher serves a queue of session work items, up to `quota` per
// activation, re-posting itself while work remains.  When the queue looks
// empty it *defers* going idle (an adaptive sleep: post a delayed
// confirm-idle callback) — but the buggy confirmation commits idleness
// without re-checking the queue.  Work enqueued inside that window sees the
// dispatcher still marked active and does not wake it; after the
// confirmation commits, nobody ever dispatches again and the remaining
// sessions are stranded: main blocks forever on the all-done condvar (a
// deadlock under the controlled runtime, a watchdog hang natively).
class QuotaSessionsBase : public Program {
 public:
  explicit QuotaSessionsBase(bool buggy) : buggy_(buggy) {}

  std::string name() const override {
    return buggy_ ? "evloop_quota_sessions" : "evloop_quota_sessions_fixed";
  }

  std::string description() const override {
    return std::string(buggy_ ? "quota-based session scheduler whose "
                                "idle-sleep confirmation loses wakeups"
                              : "quota-based session scheduler; confirm-idle "
                                "re-checks the queue (control)") +
           "; ~128 simulated sessions on a 1-slot event loop";
  }

  std::vector<BugInfo> bugs() const override {
    if (!buggy_) return {};
    return {BugInfo{
        "evloop_quota_sessions.lost-wakeup", BugKind::LostWakeup,
        "the dispatcher defers going idle with a delayed confirm-idle "
        "callback but commits idleness without re-checking the session "
        "queue; work enqueued between the idle decision and the "
        "confirmation sees the dispatcher still active, posts no wakeup, "
        "and is stranded forever",
        {"sess.idle.commit", "sess.wake.check"}}};
  }

  void reset() override {
    Program::reset();
    completedAtEnd_ = -1;
  }

  void body(Runtime& rt) override {
    constexpr int kSessions = 128;
    constexpr int kQuota = 4;
    constexpr int kArrivalBatch = 16;

    EventLoop loop(rt, "sess.loop");
    // Callback-owned state (single slot => callbacks are atomic).
    std::vector<int> pending;
    std::vector<int> roundsLeft(kSessions, 0);
    SharedVar<int> pendingCount(rt, "sess.pending", 0);
    SharedVar<int> dispActive(rt, "sess.active", 1);
    SharedVar<int> completed(rt, "sess.completed", 0);
    Mutex doneLock(rt, "sess.doneLock");
    CondVar allDone(rt, "sess.allDone");

    std::function<void()> dispatch;  // forward declaration for enqueue

    auto enqueue = [&](int s) {
      pending.push_back(s);
      pendingCount.write(static_cast<int>(pending.size()),
                         site("sess.pending.write"));
      if (dispActive.read(buggy_ ? site("sess.wake.check", BugMark::Yes)
                                 : site("sess.wake.check.ok")) == 0) {
        dispActive.write(1, site("sess.wake.set"));
        loop.post(dispatch, site("sess.wake.post"));
      }
      // else: a dispatcher or confirm-idle callback is in flight and is
      // trusted to see the queue — which is exactly what the buggy
      // confirm-idle fails to do.
    };

    auto finishSession = [&](int s) {
      (void)s;
      LockGuard g(doneLock, site("sess.done.lock"));
      int n = completed.read(site("sess.done.read")) + 1;
      completed.write(n, site("sess.done.write"));
      if (n == kSessions) allDone.broadcast(site("sess.done.signal"));
    };

    std::function<void(int)> work = [&](int s) {
      if (roundsLeft[s] > 1) {
        --roundsLeft[s];
        // The session needs another round, but only becomes ready after
        // simulated I/O latency long enough to outlast the first-round
        // backlog — its re-enqueue arrives as a straggler while the
        // dispatcher is deciding whether to go idle, which is exactly the
        // hazard window.
        loop.postDelayed([&enqueue, s] { enqueue(s); },
                         600 + (s * 37) % 600, site("sess.ready.post"));
      } else {
        finishSession(s);
      }
    };

    dispatch = [&] {
      for (int i = 0; i < kQuota && !pending.empty(); ++i) {
        int s = pending.front();
        pending.erase(pending.begin());
        pendingCount.write(static_cast<int>(pending.size()),
                           site("sess.pending.take"));
        loop.post([&work, s] { work(s); }, site("sess.work.post"));
      }
      if (!pending.empty()) {
        loop.post(dispatch, site("sess.repost"));
        return;
      }
      // Adaptive sleep: don't go idle immediately — confirm after a delay.
      loop.postDelayed(
          [&] {
            if (buggy_) {
              // BUG: commit idleness without re-checking the queue.  Any
              // work enqueued since the idle decision saw active==1 and
              // posted no wakeup; it is now stranded.
              dispActive.write(0, site("sess.idle.commit", BugMark::Yes));
              return;
            }
            // FIX: re-check the queue before committing.
            if (pendingCount.read(site("sess.idle.recheck")) > 0) {
              loop.post(dispatch, site("sess.idle.resume"));
              return;
            }
            dispActive.write(0, site("sess.idle.commit.ok"));
          },
          250, site("sess.idle.post"));
    };

    // Sessions arrive in batches, racing the dispatcher; odd sessions need
    // two rounds of service (their re-queues race the idle decision).
    for (int b = 0; b < kSessions / kArrivalBatch; ++b) {
      loop.post(
          [&, b] {
            for (int i = 0; i < kArrivalBatch; ++i) {
              int s = b * kArrivalBatch + i;
              // One session per batch is a two-rounder; its delayed
              // re-enqueue becomes an endgame straggler.
              roundsLeft[s] = (s % kArrivalBatch == 1) ? 2 : 1;
              enqueue(s);
            }
          },
          site("sess.arrive.post"));
    }
    loop.post(dispatch, site("sess.dispatch.post"));

    // Main waits for all sessions — forever, if wakeups were lost.
    {
      LockGuard g(doneLock, site("sess.main.lock"));
      while (completed.read(site("sess.main.read")) < kSessions) {
        allDone.wait(doneLock, site("sess.main.wait"));
      }
    }
    loop.drain();

    completedAtEnd_ = completed.plainGet();
    setOutcome("completed=" + std::to_string(completedAtEnd_) + "/" +
               std::to_string(kSessions));
  }

  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    constexpr int kSessions = 128;
    return completedAtEnd_ == kSessions ? Verdict::Pass
                                        : Verdict::BugManifested;
  }

 protected:
  bool buggy_;
  int completedAtEnd_ = -1;
};

class QuotaSessions : public QuotaSessionsBase {
 public:
  QuotaSessions() : QuotaSessionsBase(true) {}
};
class QuotaSessionsFixed : public QuotaSessionsBase {
 public:
  QuotaSessionsFixed() : QuotaSessionsBase(false) {}
};

}  // namespace

void registerEvloopPrograms() {
  auto& reg = ProgramRegistry::instance();
  const std::vector<std::string> tags{"evloop", "server"};
  reg.add("evloop_conn_pool", [] { return std::make_unique<ConnPool>(); },
          tags);
  reg.add("evloop_conn_pool_fixed",
          [] { return std::make_unique<ConnPoolFixed>(); }, tags);
  reg.add("evloop_lru_cache", [] { return std::make_unique<LruCache>(); },
          tags);
  reg.add("evloop_lru_cache_fixed",
          [] { return std::make_unique<LruCacheFixed>(); }, tags);
  reg.add("evloop_quota_sessions",
          [] { return std::make_unique<QuotaSessions>(); }, tags);
  reg.add("evloop_quota_sessions_fixed",
          [] { return std::make_unique<QuotaSessionsFixed>(); }, tags);
}

}  // namespace mtt::suite
