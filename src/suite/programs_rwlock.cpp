// Readers-writer-lock benchmark programs.
#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::ReadGuard;
using rt::Runtime;
using rt::RwLock;
using rt::SharedVar;
using rt::Thread;
using rt::WriteGuard;

// ---------------------------------------------------------------------------
// rwlock_cache: the classic read-check / write-populate race.  Each client
// checks the cache under the READ lock, releases it, and repopulates under
// the WRITE lock without re-checking — two clients can both miss and both
// populate ("cache stampede" / lost-upgrade atomicity violation).
// ---------------------------------------------------------------------------
class RwlockCache final : public Program {
 public:
  explicit RwlockCache(int clients = 3) : clients_(clients) {}
  std::string name() const override { return "rwlock_cache"; }
  std::string description() const override {
    return "cache guarded by a readers-writer lock; clients check under the "
           "read lock and populate under the write lock without re-checking "
           "— concurrent misses populate twice";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"rwcache.check-upgrade", BugKind::AtomicityViolation,
                    "the miss check (read lock) and the populate (write "
                    "lock) are not atomic; the read lock must be released "
                    "before the write lock can be taken, opening the window",
                    {"rwcache.check", "rwcache.populate"}}};
  }
  void reset() override {
    Program::reset();
    populations_ = -1;
  }
  void body(Runtime& rt) override {
    RwLock cacheLock(rt, "cache.lock");
    SharedVar<int> cached(rt, "cache.value", 0);
    SharedVar<int> populations(rt, "cache.populations", 0);
    std::vector<Thread> ts;
    for (int i = 0; i < clients_; ++i) {
      ts.emplace_back(rt, "client" + std::to_string(i), [&] {
        bool miss = false;
        {
          ReadGuard g(cacheLock, site("rwcache.check", BugMark::Yes));
          miss = cached.read(site("rwcache.check.read")) == 0;
        }
        // BUG: the read lock is gone; another client can populate here.
        if (miss) {
          WriteGuard g(cacheLock, site("rwcache.populate", BugMark::Yes));
          cached.write(42, site("rwcache.populate.write"));
          populations.write(
              populations.read(site("rwcache.populate.count.r")) + 1,
              site("rwcache.populate.count.w"));
        }
      });
    }
    for (auto& t : ts) t.join();
    populations_ = populations.read();
    setOutcome("populations=" + std::to_string(populations_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return populations_ == 1 ? Verdict::Pass : Verdict::BugManifested;
  }

 private:
  int clients_;
  int populations_ = -1;
};

// ---------------------------------------------------------------------------
// rwlock_upgrade: in-place upgrade attempt — the thread requests the write
// lock while still holding its own read lock; with a second reader doing the
// same, both block forever (and even alone the writer waits on itself).
// ---------------------------------------------------------------------------
class RwlockUpgrade final : public Program {
 public:
  std::string name() const override { return "rwlock_upgrade"; }
  std::string description() const override {
    return "two threads try to upgrade a held read lock to a write lock in "
           "place; the write waits for readers to drain, which includes the "
           "upgrader itself — deadlock";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"rwupgrade.in-place", BugKind::Deadlock,
                    "write-lock request while holding the read lock",
                    {"rwupgrade.read", "rwupgrade.write"}}};
  }
  void body(Runtime& rt) override {
    RwLock l(rt, "upgrade.lock");
    SharedVar<int> v(rt, "upgrade.value", 0);
    auto upgrader = [&] {
      l.lockRead(site("rwupgrade.read", BugMark::Yes));
      int seen = v.read(site("rwupgrade.peek"));
      // BUG: "upgrade" without releasing the read lock.
      l.lockWrite(site("rwupgrade.write", BugMark::Yes));
      v.write(seen + 1, site("rwupgrade.store"));
      l.unlockWrite(site("rwupgrade.wunlock"));
      l.unlockRead(site("rwupgrade.runlock"));
    };
    Thread a(rt, "upgraderA", upgrader), b(rt, "upgraderB", upgrader);
    a.join();
    b.join();
    setOutcome("value=" + std::to_string(v.plainGet()));
  }
};

// ---------------------------------------------------------------------------
// rwlock_stats: control — readers aggregate under the read lock, the writer
// updates under the write lock; correct by construction.
// ---------------------------------------------------------------------------
class RwlockStats final : public Program {
 public:
  RwlockStats(int readers = 3, int rounds = 3)
      : readers_(readers), rounds_(rounds) {}
  std::string name() const override { return "rwlock_stats"; }
  std::string description() const override {
    return "statistics table read by many threads under the read lock and "
           "updated under the write lock (control: correct)";
  }
  void reset() override {
    Program::reset();
    torn_ = false;
    final_ = -1;
  }
  void body(Runtime& rt) override {
    RwLock l(rt, "stats.lock");
    // Invariant: a == b at every point readers can observe.
    SharedVar<int> a(rt, "stats.a", 0);
    SharedVar<int> b(rt, "stats.b", 0);
    std::vector<Thread> ts;
    for (int i = 0; i < readers_; ++i) {
      ts.emplace_back(rt, "reader" + std::to_string(i), [&] {
        for (int k = 0; k < rounds_; ++k) {
          ReadGuard g(l, site("rwstats.read.lock"));
          int x = a.read(site("rwstats.read.a"));
          int y = b.read(site("rwstats.read.b"));
          if (x != y) torn_ = true;
        }
      });
    }
    Thread writer(rt, "writer", [&] {
      for (int k = 1; k <= rounds_; ++k) {
        WriteGuard g(l, site("rwstats.write.lock"));
        a.write(k, site("rwstats.write.a"));
        b.write(k, site("rwstats.write.b"));
      }
    });
    for (auto& t : ts) t.join();
    writer.join();
    final_ = a.read();
    setOutcome("final=" + std::to_string(final_) +
               (torn_ ? "+torn" : ""));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return (!torn_ && final_ == rounds_) ? Verdict::Pass
                                         : Verdict::BugManifested;
  }

 private:
  int readers_, rounds_;
  bool torn_ = false;
  int final_ = -1;
};

}  // namespace

void registerRwlockPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("rwlock_cache", [] { return std::make_unique<RwlockCache>(); });
  reg.add("rwlock_upgrade", [] { return std::make_unique<RwlockUpgrade>(); });
  reg.add("rwlock_stats", [] { return std::make_unique<RwlockStats>(); });
}

}  // namespace mtt::suite
