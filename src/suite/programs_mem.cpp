// Weak-memory benchmark programs (tag "atomics"): bugs that NO sequentially
// consistent interleaving can manifest.  Each buggy program uses relaxed
// atomics whose reorderings are legal under the store-buffer memory model;
// the controlled runtime turns every weakly-ordered load into a StorePick
// choice point, so hunting/exploring/shrinking find these bugs with the
// same policy arsenal that finds interleaving bugs.  The `_fixed` controls
// add exactly the ordering the bug is missing (seq_cst, or release/acquire
// where that suffices) and must stay clean under every schedule AND every
// store pick.
//
// All spin loops are bounded: a reader that never observes the flag records
// a neutral outcome and passes, so the programs terminate under any policy
// (round-robin runs a spinning thread to its bound before switching).
#include "mem/atomic.hpp"
#include "suite/program.hpp"
#include "suite/register_parts.hpp"

namespace mtt::suite {
namespace {

using mem::Atomic;
using rt::Runtime;
using rt::Thread;

constexpr int kSpinBound = 24;

// ---------------------------------------------------------------------------
// mp_reorder: the canonical message-passing reordering.  The writer
// publishes data then raises a flag, both relaxed; the reader that sees the
// flag may still observe the *initial* data value, because nothing orders
// the two stores for it.
// ---------------------------------------------------------------------------
class MpReorder : public Program {
 public:
  std::string name() const override { return "mp_reorder"; }
  std::string description() const override {
    return "message passing with relaxed data and flag; the reader can see "
           "the flag yet read stale data (needs weak memory; no SC schedule "
           "manifests it)";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"mp_reorder.stale-data", BugKind::OrderViolation,
                    "data and flag stores are both relaxed, so observing "
                    "flag=1 does not make data=1 visible; the reader can "
                    "load the initial 0",
                    {"mp_reorder.data.store", "mp_reorder.data.load"}}};
  }

  void body(Runtime& rt) override {
    Atomic<int> data(rt, "data", 0);
    Atomic<int> flag(rt, "flag", 0);
    Thread writer(rt, "writer", [&] {
      data.store(1, dataOrder(), site("mp_reorder.data.store", BugMark::Yes));
      flag.store(1, flagOrder(), site("mp_reorder.flag.store"));
    });
    int seen = -1;
    Thread reader(rt, "reader", [&] {
      for (int i = 0; i < kSpinBound; ++i) {
        if (flag.load(flagOrder(), site("mp_reorder.flag.load")) == 1) {
          seen = data.load(dataOrder(),
                           site("mp_reorder.data.load", BugMark::Yes));
          return;
        }
      }
    });
    writer.join();
    reader.join();
    if (seen < 0) {
      setOutcome("flag-unseen");
    } else {
      setOutcome("data=" + std::to_string(seen));
      rt.check(seen == 1, "mp_reorder: flag observed but data is stale");
    }
  }

 protected:
  virtual std::memory_order dataOrder() const {
    return std::memory_order_relaxed;
  }
  virtual std::memory_order flagOrder() const {
    return std::memory_order_relaxed;
  }
};

class MpReorderFixed final : public MpReorder {
 public:
  std::string name() const override { return "mp_reorder_fixed"; }
  std::string description() const override {
    return "message passing with seq_cst data and flag (control: stale "
           "reads impossible)";
  }
  std::vector<BugInfo> bugs() const override { return {}; }

 protected:
  std::memory_order dataOrder() const override {
    return std::memory_order_seq_cst;
  }
  std::memory_order flagOrder() const override {
    return std::memory_order_seq_cst;
  }
};

// ---------------------------------------------------------------------------
// flag_publish: one-shot publication.  Like mp_reorder but the reader
// checks the flag exactly once — the minimal weak-memory bug (two stores,
// two loads, no loops).  Fixed with release/acquire alone: the acquire
// load that observes the release store pulls the data store into the
// reader's happens-before, no seq_cst needed.
// ---------------------------------------------------------------------------
class FlagPublish : public Program {
 public:
  std::string name() const override { return "flag_publish"; }
  std::string description() const override {
    return "one-shot relaxed publication; a reader that sees ready=1 can "
           "still read the unpublished payload";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"flag_publish.unpublished", BugKind::OrderViolation,
                    "payload store and ready store are relaxed; ready=1 "
                    "does not order the payload for the reader",
                    {"flag_publish.payload.store", "flag_publish.payload.load"}}};
  }

  void body(Runtime& rt) override {
    Atomic<int> payload(rt, "payload", 0);
    Atomic<int> ready(rt, "ready", 0);
    Thread pub(rt, "publisher", [&] {
      payload.store(42, std::memory_order_relaxed,
                    site("flag_publish.payload.store", BugMark::Yes));
      ready.store(1, storeOrder(), site("flag_publish.ready.store"));
    });
    int got = -1;
    Thread sub(rt, "subscriber", [&] {
      if (ready.load(loadOrder(), site("flag_publish.ready.load")) == 1) {
        got = payload.load(std::memory_order_relaxed,
                           site("flag_publish.payload.load", BugMark::Yes));
      }
    });
    pub.join();
    sub.join();
    if (got < 0) {
      setOutcome("not-ready");
    } else {
      setOutcome("payload=" + std::to_string(got));
      rt.check(got == 42, "flag_publish: ready observed but payload is 0");
    }
  }

 protected:
  virtual std::memory_order storeOrder() const {
    return std::memory_order_relaxed;
  }
  virtual std::memory_order loadOrder() const {
    return std::memory_order_relaxed;
  }
};

class FlagPublishFixed final : public FlagPublish {
 public:
  std::string name() const override { return "flag_publish_fixed"; }
  std::string description() const override {
    return "one-shot publication with release store / acquire load "
           "(control: acquire-of-release makes the payload visible)";
  }
  std::vector<BugInfo> bugs() const override { return {}; }

 protected:
  std::memory_order storeOrder() const override {
    return std::memory_order_release;
  }
  std::memory_order loadOrder() const override {
    return std::memory_order_acquire;
  }
};

// ---------------------------------------------------------------------------
// seqlock_torn_read: a relaxed seqlock.  The writer bumps the sequence to
// odd, writes both halves, bumps back to even; the reader validates with
// seq-before == seq-after.  With relaxed orders the validation proves
// nothing — both seq loads can observe stale values, accepting a torn pair.
// Note the acq/rel version is NOT a fix under this model (the second seq
// load could still observe the stale 0), so the control is seq_cst.
// ---------------------------------------------------------------------------
class SeqlockTornRead : public Program {
 public:
  std::string name() const override { return "seqlock_torn_read"; }
  std::string description() const override {
    return "seqlock with relaxed seq and data; the reader's seq validation "
           "accepts a torn read of the two data halves";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"seqlock_torn_read.torn", BugKind::AtomicityViolation,
                    "relaxed seq loads can both observe stale values, so "
                    "seq1==seq2 no longer implies the data halves are from "
                    "one writer generation",
                    {"seqlock_torn_read.d1.load", "seqlock_torn_read.d2.load"}}};
  }

  void body(Runtime& rt) override {
    Atomic<unsigned> seq(rt, "seq", 0);
    Atomic<int> d1(rt, "d1", 0);
    Atomic<int> d2(rt, "d2", 0);
    const std::memory_order mo = order();
    Thread writer(rt, "writer", [&] {
      seq.store(1, mo, site("seqlock_torn_read.seq.odd"));
      d1.store(1, mo, site("seqlock_torn_read.d1.store"));
      d2.store(1, mo, site("seqlock_torn_read.d2.store"));
      seq.store(2, mo, site("seqlock_torn_read.seq.even"));
    });
    int a = -1, b = -1;
    bool accepted = false;
    Thread reader(rt, "reader", [&] {
      for (int i = 0; i < 4 && !accepted; ++i) {
        const unsigned s1 = seq.load(mo, site("seqlock_torn_read.s1"));
        if ((s1 & 1u) != 0) continue;  // writer mid-flight; retry
        const int v1 =
            d1.load(mo, site("seqlock_torn_read.d1.load", BugMark::Yes));
        const int v2 =
            d2.load(mo, site("seqlock_torn_read.d2.load", BugMark::Yes));
        const unsigned s2 = seq.load(mo, site("seqlock_torn_read.s2"));
        if (s1 == s2) {
          a = v1;
          b = v2;
          accepted = true;
        }
      }
    });
    writer.join();
    reader.join();
    if (!accepted) {
      setOutcome("no-stable-read");
    } else {
      setOutcome("d1=" + std::to_string(a) + ",d2=" + std::to_string(b));
      rt.check(a == b, "seqlock_torn_read: validated read is torn");
    }
  }

 protected:
  virtual std::memory_order order() const {
    return std::memory_order_relaxed;
  }
};

class SeqlockTornReadFixed final : public SeqlockTornRead {
 public:
  std::string name() const override { return "seqlock_torn_read_fixed"; }
  std::string description() const override {
    return "seqlock with seq_cst seq and data (control: validation is "
           "sound, torn reads impossible)";
  }
  std::vector<BugInfo> bugs() const override { return {}; }

 protected:
  std::memory_order order() const override {
    return std::memory_order_seq_cst;
  }
};

// ---------------------------------------------------------------------------
// iriw: independent reads of independent writes.  Two writers store to x
// and y; two readers read the pair in opposite orders.  Relaxed atomics
// let the readers disagree on the store order (a=1,b=0 and c=1,d=0); under
// any single interleaving that outcome is a cycle, so the bug needs the
// weak model.
// ---------------------------------------------------------------------------
class Iriw : public Program {
 public:
  std::string name() const override { return "iriw"; }
  std::string description() const override {
    return "independent reads of independent writes with relaxed atomics; "
           "the two readers observe the writes in opposite orders";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"iriw.no-total-order", BugKind::OrderViolation,
                    "relaxed loads have no single total store order; reader "
                    "1 sees x before y while reader 2 sees y before x",
                    {"iriw.r1.y", "iriw.r2.x"}}};
  }

  void body(Runtime& rt) override {
    Atomic<int> x(rt, "x", 0);
    Atomic<int> y(rt, "y", 0);
    const std::memory_order mo = order();
    Thread w1(rt, "w1", [&] { x.store(1, mo, site("iriw.w1.x")); });
    Thread w2(rt, "w2", [&] { y.store(1, mo, site("iriw.w2.y")); });
    int a = 0, b = 0, c = 0, d = 0;
    Thread r1(rt, "r1", [&] {
      a = x.load(mo, site("iriw.r1.x"));
      b = y.load(mo, site("iriw.r1.y", BugMark::Yes));
    });
    Thread r2(rt, "r2", [&] {
      c = y.load(mo, site("iriw.r2.y"));
      d = x.load(mo, site("iriw.r2.x", BugMark::Yes));
    });
    w1.join();
    w2.join();
    r1.join();
    r2.join();
    setOutcome("a=" + std::to_string(a) + ",b=" + std::to_string(b) +
               ",c=" + std::to_string(c) + ",d=" + std::to_string(d));
    rt.check(!(a == 1 && b == 0 && c == 1 && d == 0),
             "iriw: readers disagree on the order of the two writes");
  }

 protected:
  virtual std::memory_order order() const {
    return std::memory_order_relaxed;
  }
};

class IriwFixed final : public Iriw {
 public:
  std::string name() const override { return "iriw_fixed"; }
  std::string description() const override {
    return "independent reads of independent writes with seq_cst atomics "
           "(control: the single total order forbids disagreement)";
  }
  std::vector<BugInfo> bugs() const override { return {}; }

 protected:
  std::memory_order order() const override {
    return std::memory_order_seq_cst;
  }
};

}  // namespace

void registerMemPrograms() {
  auto& reg = ProgramRegistry::instance();
  const std::vector<std::string> tags{"atomics"};
  reg.add("mp_reorder", [] { return std::make_unique<MpReorder>(); }, tags);
  reg.add("mp_reorder_fixed",
          [] { return std::make_unique<MpReorderFixed>(); }, tags);
  reg.add("flag_publish", [] { return std::make_unique<FlagPublish>(); },
          tags);
  reg.add("flag_publish_fixed",
          [] { return std::make_unique<FlagPublishFixed>(); }, tags);
  reg.add("seqlock_torn_read",
          [] { return std::make_unique<SeqlockTornRead>(); }, tags);
  reg.add("seqlock_torn_read_fixed",
          [] { return std::make_unique<SeqlockTornReadFixed>(); }, tags);
  reg.add("iriw", [] { return std::make_unique<Iriw>(); }, tags);
  reg.add("iriw_fixed", [] { return std::make_unique<IriwFixed>(); }, tags);
}

}  // namespace mtt::suite
