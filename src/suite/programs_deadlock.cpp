// Deadlock-family benchmark programs and medium-sized queue programs.
#include "suite/register_parts.hpp"
#include "suite/program.hpp"

namespace mtt::suite {
namespace {

using rt::LockGuard;
using rt::Mutex;
using rt::Runtime;
using rt::SharedArray;
using rt::SharedVar;
using rt::Thread;

// ---------------------------------------------------------------------------
// lock_order_inversion: the minimal two-lock deadlock.
// ---------------------------------------------------------------------------
class LockOrderInversion final : public Program {
 public:
  explicit LockOrderInversion(int rounds = 2) : rounds_(rounds) {}
  std::string name() const override { return "lock_order_inversion"; }
  std::string description() const override {
    return "two threads take two locks in opposite orders; classic deadlock";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"inversion.ab-ba", BugKind::Deadlock,
                    "thread1 locks A then B, thread2 locks B then A",
                    {"inv.t1.a", "inv.t1.b", "inv.t2.b", "inv.t2.a"}}};
  }
  void body(Runtime& rt) override {
    Mutex a(rt, "lockA"), b(rt, "lockB");
    Thread t1(rt, "t1", [&] {
      for (int i = 0; i < rounds_; ++i) {
        LockGuard ga(a, site("inv.t1.a", BugMark::Yes));
        LockGuard gb(b, site("inv.t1.b", BugMark::Yes));
      }
    });
    Thread t2(rt, "t2", [&] {
      for (int i = 0; i < rounds_; ++i) {
        LockGuard gb(b, site("inv.t2.b", BugMark::Yes));
        LockGuard ga(a, site("inv.t2.a", BugMark::Yes));
      }
    });
    t1.join();
    t2.join();
    setOutcome("done");
  }
  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("lock_order_inversion");
      int a = p->addLock("lockA");
      int b = p->addLock("lockB");
      int work = p->addVar("work", 0);
      p->thread("t1").repeat(rounds_, [&](model::ThreadBuilder& t) {
        t.acquire(a).acquire(b).incrementVar(work, 1).release(b).release(a);
      });
      p->thread("t2").repeat(rounds_, [&](model::ThreadBuilder& t) {
        t.acquire(b).acquire(a).incrementVar(work, 1).release(a).release(b);
      });
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int rounds_;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// philosophers_deadlock: N dining philosophers, everyone left-then-right.
// ---------------------------------------------------------------------------
class PhilosophersDeadlock final : public Program {
 public:
  explicit PhilosophersDeadlock(int n = 3, int meals = 2)
      : n_(n), meals_(meals) {}
  std::string name() const override { return "philosophers_deadlock"; }
  std::string description() const override {
    return "dining philosophers, all picking the left fork first; the "
           "circular wait deadlocks when every philosopher holds one fork";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"philo.circular-wait", BugKind::Deadlock,
                    "uniform left-then-right acquisition forms a cycle",
                    {"philo.left", "philo.right"}}};
  }
  void body(Runtime& rt) override {
    std::vector<std::unique_ptr<Mutex>> forks;
    for (int i = 0; i < n_; ++i) {
      forks.push_back(std::make_unique<Mutex>(rt, "fork" + std::to_string(i)));
    }
    SharedVar<int> meals(rt, "meals", 0);
    Mutex mealLock(rt, "meals.lock");
    std::vector<Thread> ts;
    for (int i = 0; i < n_; ++i) {
      ts.emplace_back(rt, "philosopher" + std::to_string(i), [&, i] {
        for (int m = 0; m < meals_; ++m) {
          LockGuard left(*forks[i], site("philo.left", BugMark::Yes));
          LockGuard right(*forks[(i + 1) % n_],
                          site("philo.right", BugMark::Yes));
          LockGuard g(mealLock, site("philo.meal.lock"));
          meals.write(meals.read(site("philo.meal.read")) + 1,
                      site("philo.meal.write"));
        }
      });
    }
    for (auto& t : ts) t.join();
    setOutcome("meals=" + std::to_string(meals.plainGet()));
  }
  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("philosophers_deadlock");
      std::vector<int> forks;
      for (int i = 0; i < n_; ++i) {
        forks.push_back(p->addLock("fork" + std::to_string(i)));
      }
      int mealLock = p->addLock("meals.lock");
      int meals = p->addVar("meals", 0);
      for (int i = 0; i < n_; ++i) {
        p->thread("philosopher" + std::to_string(i))
            .repeat(meals_, [&](model::ThreadBuilder& t) {
              t.acquire(forks[i])
                  .acquire(forks[(i + 1) % n_])
                  .acquire(mealLock)
                  .incrementVar(meals, 1)
                  .release(mealLock)
                  .release(forks[(i + 1) % n_])
                  .release(forks[i]);
            });
      }
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int n_, meals_;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// philosophers_ordered: control; global fork ordering (resource hierarchy).
// ---------------------------------------------------------------------------
class PhilosophersOrdered final : public Program {
 public:
  explicit PhilosophersOrdered(int n = 3, int meals = 2)
      : n_(n), meals_(meals) {}
  std::string name() const override { return "philosophers_ordered"; }
  std::string description() const override {
    return "dining philosophers with a global fork order (control: "
           "deadlock-free resource hierarchy)";
  }
  void reset() override {
    Program::reset();
    meals_eaten_ = -1;
  }
  void body(Runtime& rt) override {
    std::vector<std::unique_ptr<Mutex>> forks;
    for (int i = 0; i < n_; ++i) {
      forks.push_back(std::make_unique<Mutex>(rt, "fork" + std::to_string(i)));
    }
    SharedVar<int> meals(rt, "meals", 0);
    Mutex mealLock(rt, "meals.lock");
    std::vector<Thread> ts;
    for (int i = 0; i < n_; ++i) {
      ts.emplace_back(rt, "philosopher" + std::to_string(i), [&, i] {
        int first = std::min(i, (i + 1) % n_);
        int second = std::max(i, (i + 1) % n_);
        for (int m = 0; m < meals_; ++m) {
          LockGuard lo(*forks[first], site("philo_ok.first"));
          LockGuard hi(*forks[second], site("philo_ok.second"));
          LockGuard g(mealLock, site("philo_ok.meal.lock"));
          meals.write(meals.read(site("philo_ok.meal.read")) + 1,
                      site("philo_ok.meal.write"));
        }
      });
    }
    for (auto& t : ts) t.join();
    meals_eaten_ = meals.read();
    setOutcome("meals=" + std::to_string(meals_eaten_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return meals_eaten_ == n_ * meals_ ? Verdict::Pass
                                       : Verdict::BugManifested;
  }
  const model::Program* irModel() const override {
    if (!ir_) {
      auto p = std::make_unique<model::Program>("philosophers_ordered");
      std::vector<int> forks;
      for (int i = 0; i < n_; ++i) {
        forks.push_back(p->addLock("fork" + std::to_string(i)));
      }
      int mealLock = p->addLock("meals.lock");
      int meals = p->addVar("meals", 0);
      for (int i = 0; i < n_; ++i) {
        int first = std::min(i, (i + 1) % n_);
        int second = std::max(i, (i + 1) % n_);
        p->thread("philosopher" + std::to_string(i))
            .repeat(meals_, [&](model::ThreadBuilder& t) {
              t.acquire(forks[first])
                  .acquire(forks[second])
                  .acquire(mealLock)
                  .incrementVar(meals, 1)
                  .release(mealLock)
                  .release(forks[second])
                  .release(forks[first]);
            });
      }
      p->finalAssert(meals, n_ * meals_);
      ir_ = std::move(p);
    }
    return ir_.get();
  }

 private:
  int n_, meals_;
  int meals_eaten_ = -1;
  mutable std::unique_ptr<model::Program> ir_;
};

// ---------------------------------------------------------------------------
// work_queue: medium program; workers check the pending count outside the
// lock and pop inside it without re-checking.
// ---------------------------------------------------------------------------
class WorkQueue final : public Program {
 public:
  WorkQueue(int workers = 3, int tasks = 6)
      : workers_(workers), tasks_(tasks) {}
  std::string name() const override { return "work_queue"; }
  std::string description() const override {
    return "task queue whose workers test 'queue non-empty' outside the "
           "lock and pop inside it without re-checking: pops from empty";
  }
  std::vector<BugInfo> bugs() const override {
    return {BugInfo{"queue.check-outside-lock", BugKind::AtomicityViolation,
                    "emptiness check and pop are not atomic",
                    {"queue.peek", "queue.pop"}}};
  }
  void reset() override {
    Program::reset();
    processed_ = -1;
    underflow_ = false;
  }
  void body(Runtime& rt) override {
    SharedVar<int> pending(rt, "queue.pending", tasks_);
    SharedVar<int> processed(rt, "queue.processed", 0);
    SharedVar<int> underflows(rt, "queue.underflows", 0);
    Mutex m(rt, "queue.lock");
    std::vector<Thread> ts;
    for (int w = 0; w < workers_; ++w) {
      ts.emplace_back(rt, "worker" + std::to_string(w), [&] {
        for (;;) {
          // BUG: peek outside the lock.
          if (pending.read(site("queue.peek", BugMark::Yes)) <= 0) break;
          LockGuard g(m, site("queue.lock"));
          int p = pending.read(site("queue.pop", BugMark::Yes));
          pending.write(p - 1, site("queue.pop.write"));
          if (p - 1 < 0) {
            underflows.write(underflows.read() + 1, site("queue.underflow"));
            break;
          }
          processed.write(processed.read(site("queue.done.read")) + 1,
                          site("queue.done.write"));
        }
      });
    }
    for (auto& t : ts) t.join();
    processed_ = processed.read();
    underflow_ = underflows.read() > 0;
    setOutcome("processed=" + std::to_string(processed_) +
               (underflow_ ? "+underflow" : ""));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return (underflow_ || processed_ != tasks_) ? Verdict::BugManifested
                                                : Verdict::Pass;
  }

 private:
  int workers_, tasks_;
  int processed_ = -1;
  bool underflow_ = false;
};

// ---------------------------------------------------------------------------
// work_queue_ok: control; check and pop both inside the lock.
// ---------------------------------------------------------------------------
class WorkQueueOk final : public Program {
 public:
  WorkQueueOk(int workers = 3, int tasks = 6)
      : workers_(workers), tasks_(tasks) {}
  std::string name() const override { return "work_queue_ok"; }
  std::string description() const override {
    return "task queue with check-and-pop atomically under the lock "
           "(control: correct)";
  }
  void reset() override {
    Program::reset();
    processed_ = -1;
  }
  void body(Runtime& rt) override {
    SharedVar<int> pending(rt, "queue.pending", tasks_);
    SharedVar<int> processed(rt, "queue.processed", 0);
    Mutex m(rt, "queue.lock");
    std::vector<Thread> ts;
    for (int w = 0; w < workers_; ++w) {
      ts.emplace_back(rt, "worker" + std::to_string(w), [&] {
        for (;;) {
          LockGuard g(m, site("qok.lock"));
          int p = pending.read(site("qok.peek"));
          if (p <= 0) break;
          pending.write(p - 1, site("qok.pop"));
          processed.write(processed.read(site("qok.done.read")) + 1,
                          site("qok.done.write"));
        }
      });
    }
    for (auto& t : ts) t.join();
    processed_ = processed.read();
    setOutcome("processed=" + std::to_string(processed_));
  }
  Verdict evaluate(const rt::RunResult& r) const override {
    if (!r.ok()) return Verdict::BugManifested;
    return processed_ == tasks_ ? Verdict::Pass : Verdict::BugManifested;
  }

 private:
  int workers_, tasks_;
  int processed_ = -1;
};

}  // namespace

void registerDeadlockPrograms() {
  auto& reg = ProgramRegistry::instance();
  reg.add("lock_order_inversion",
          [] { return std::make_unique<LockOrderInversion>(); });
  reg.add("philosophers_deadlock",
          [] { return std::make_unique<PhilosophersDeadlock>(); });
  reg.add("philosophers_ordered",
          [] { return std::make_unique<PhilosophersOrdered>(); });
  reg.add("work_queue", [] { return std::make_unique<WorkQueue>(); });
  reg.add("work_queue_ok", [] { return std::make_unique<WorkQueueOk>(); });
}

}  // namespace mtt::suite
