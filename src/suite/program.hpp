// The benchmark program repository — component 1 of the paper's benchmark:
//
//   "a repository of programs on which the technologies can be evaluated,
//    composed of: multi-threaded programs including source code [...] tests
//    for the programs and test drivers, documentation of the repository and
//    of the bugs in each program, versions of the programs instrumented with
//    calls [...]"
//
// Every Program is written against the instrumented mtt::rt API (so the
// "instrumented version" requirement is intrinsic), documents its bugs as
// machine-readable BugInfo (kind + the instrumentation-site tags involved,
// which also mark the emitted events via BugMark), and carries its own
// oracle (evaluate) plus an outcome string for distribution analyses.
//
// "The repository of programs should include many small programs that
// illustrate specific bugs as well as larger programs" — see the program
// catalog in DESIGN.md and the files programs_*.cpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/ir.hpp"
#include "rt/primitives.hpp"
#include "rt/runtime.hpp"

namespace mtt::suite {

enum class BugKind : std::uint8_t {
  DataRace,
  AtomicityViolation,
  OrderViolation,
  Deadlock,
  LostWakeup,
  Livelock,
};

std::string_view to_string(BugKind k);

/// One documented bug.
struct BugInfo {
  std::string id;           ///< stable identifier, e.g. "account.lost-update"
  BugKind kind = BugKind::DataRace;
  std::string description;  ///< what goes wrong and why
  /// Instrumentation-site tags involved; the matching sites are registered
  /// with BugMark::Yes, so traces and detector warnings can be scored.
  std::vector<std::string> siteTags;
};

/// Did the documented bug manifest in a given run?
enum class Verdict : std::uint8_t { Pass, BugManifested };

/// One benchmark program.  Life cycle per run:
///   reset() -> Runtime::run([&]{ body(rt) }) -> evaluate(result) / outcome()
/// A Program instance may be reused across sequential runs but not shared
/// between concurrent runs.
class Program {
 public:
  virtual ~Program() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Documented bugs; empty for control (bug-free) programs.
  virtual std::vector<BugInfo> bugs() const { return {}; }
  bool isControl() const { return bugs().empty(); }

  /// Clears per-run observations.
  virtual void reset() { outcome_ = "-"; }

  /// The program under test; executes on the runtime's managed main thread.
  virtual void body(rt::Runtime& rt) = 0;

  /// The oracle: did the documented bug manifest?  The default treats any
  /// abnormal run (assert failure, deadlock, step limit) as manifestation;
  /// programs with final-state invariants extend it.
  virtual Verdict evaluate(const rt::RunResult& r) const {
    return r.ok() ? Verdict::Pass : Verdict::BugManifested;
  }

  /// Outcome string for result-distribution analyses (benchmark component
  /// 4); set by body() via setOutcome.
  const std::string& outcome() const { return outcome_; }

  /// Equivalent model in the concurrency IR, when expressible (used by the
  /// model checker and the static analyses); nullptr otherwise.
  virtual const model::Program* irModel() const { return nullptr; }

  /// Run options appropriate for this program (e.g. spin-loop programs use
  /// a small step limit so livelock detection is cheap).
  virtual rt::RunOptions defaultRunOptions() const { return {}; }

 protected:
  void setOutcome(std::string o) { outcome_ = std::move(o); }

 private:
  std::string outcome_ = "-";
};

/// Factory registry; registerBuiltins() populates it with the catalog.
class ProgramRegistry {
 public:
  static ProgramRegistry& instance();

  using Factory = std::function<std::unique_ptr<Program>()>;
  /// Registers a factory.  `tags` label the program's family for filtered
  /// listings (`mtt list --tag`, CI smokes); programs built on raw threads
  /// default to {"threads"}.
  void add(const std::string& name, Factory f,
           std::vector<std::string> tags = {"threads"});
  std::vector<std::string> names() const;
  /// Names of registered programs carrying `tag` (sorted; empty tag = all).
  std::vector<std::string> names(const std::string& tag) const;
  /// Tags of a registered program; empty for unknown names.
  std::vector<std::string> tagsOf(const std::string& name) const;
  /// Union of all registered tags, sorted.
  std::vector<std::string> allTags() const;
  /// Creates a fresh instance; nullptr for unknown names.
  std::unique_ptr<Program> make(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  ProgramRegistry() = default;
  struct Impl;
  Impl* impl();
};

/// Idempotently registers the built-in program catalog.
void registerBuiltins();

/// Convenience: registerBuiltins() + make(name); throws on unknown name.
std::unique_ptr<Program> makeProgram(const std::string& name);
/// Convenience: all catalog names.
std::vector<std::string> allProgramNames();
/// Convenience: catalog names carrying `tag` (empty tag = all).
std::vector<std::string> allProgramNames(const std::string& tag);

}  // namespace mtt::suite
