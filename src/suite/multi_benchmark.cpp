#include "suite/multi_benchmark.hpp"

namespace mtt::suite {

MultiBenchmark::MultiBenchmark(std::vector<std::string> programNames)
    : names_(std::move(programNames)) {
  if (names_.empty()) {
    names_ = {"ticket_lottery", "account", "check_then_act",
              "order_violation"};
  }
  for (const auto& n : names_) components_.push_back(makeProgram(n));
}

void MultiBenchmark::reset() {
  Program::reset();
  for (auto& c : components_) c->reset();
}

void MultiBenchmark::body(rt::Runtime& rt) {
  rt::SharedVar<int> finishSlot(rt, "mb.finishSlot", 0);
  rt::Mutex orderLock(rt, "mb.orderLock");
  std::vector<int> finishOrder(components_.size(), -1);

  std::vector<rt::Thread> drivers;
  drivers.reserve(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    drivers.emplace_back(rt, "driver." + names_[i], [&, i] {
      components_[i]->body(rt);
      rt::LockGuard g(orderLock, site("mb.order.lock"));
      int slot = finishSlot.read(site("mb.order.read"));
      finishSlot.write(slot + 1, site("mb.order.write"));
      finishOrder[i] = slot;
    });
  }
  for (auto& d : drivers) d.join();

  // "outputs these results as well as the order in which the sample
  // programs finished".
  std::string out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += ' ';
    out += names_[i] + ":" + components_[i]->outcome();
  }
  out += " order=";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    out += std::to_string(finishOrder[i]);
  }
  setOutcome(out);
}

Verdict MultiBenchmark::evaluate(const rt::RunResult& r) const {
  // A hang of any component hangs the driver; surface it as manifestation.
  return r.ok() ? Verdict::Pass : Verdict::BugManifested;
}

}  // namespace mtt::suite
