// Annotated execution traces — benchmark component 1 of the paper:
//
//   "Sample traces of executions using the standard format for race
//    detection and replay.  Each record in the traces contain information
//    about the location in the program from which it was called, what was
//    instrumented, which variable was touched, thread name, if it is a read
//    or write, and if this location is involved in a bug."
//
// A Trace is a run header (program, seed, mode), three symbol tables
// (threads, objects, sites) and the event sequence.  Offline tools (race
// detection, potential-deadlock analysis, coverage) consume traces through
// the same Event type online tools consume, so "race detection algorithms
// may be evaluated using the traces without any work on the programs
// themselves" (Section 4).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/listener.hpp"
#include "rt/runtime.hpp"

namespace mtt::trace {

/// Symbol-table entry for one instrumented object.
struct ObjectSym {
  rt::ObjectKind kind = rt::ObjectKind::Variable;
  std::string name;
};

/// Symbol-table entry for one instrumentation site.
struct SiteSym {
  std::string tag;
  std::string file;
  std::uint32_t line = 0;
  bool bug = false;
};

/// One recorded run.
struct Trace {
  std::string programName;
  std::uint64_t seed = 0;
  RuntimeMode mode = RuntimeMode::Native;
  std::map<ThreadId, std::string> threads;
  std::map<ObjectId, ObjectSym> objects;
  std::map<SiteId, SiteSym> sites;
  std::vector<Event> events;

  std::string threadName(ThreadId t) const;
  std::string objectName(ObjectId o) const;
  const SiteSym* siteInfo(SiteId s) const;

  /// Shared variables: object ids of kind Variable accessed by >= 2 threads.
  std::vector<ObjectId> sharedVariables() const;
  /// Number of events of a given kind.
  std::size_t countKind(EventKind k) const;
};

/// Serializes a trace in the line-based text format (see trace.cpp for the
/// grammar).  Throws std::runtime_error on I/O failure.
void writeText(const Trace& t, std::ostream& os);
void writeTextFile(const Trace& t, const std::string& path);

/// Parses the text format.  Throws std::runtime_error on malformed input.
Trace readText(std::istream& is);
Trace readTextFile(const std::string& path);

/// Compact binary serialization (magic "MTTB"), for high-volume trace
/// repositories; semantically identical to the text format.  The writer
/// emits format version 2: events are varint-encoded (LEB128) with
/// zigzag-delta sequence numbers and a packed kind/bug byte, so a typical
/// event costs a few bytes instead of 36.  The reader also accepts the
/// fixed-width version-1 layout of earlier builds.
void writeBinary(const Trace& t, std::ostream& os);
void writeBinaryFile(const Trace& t, const std::string& path);
Trace readBinary(std::istream& is);
Trace readBinaryFile(const std::string& path);

/// On-disk flavor of a trace, reported by the auto-detecting readers.
enum class TraceFormat : std::uint8_t { Text, Binary };

/// Reads a trace in either format, auto-detected from the magic bytes
/// ("MTTTRACE" text header vs "MTTB" binary header) — callers never branch
/// on file extensions.  Throws std::runtime_error on malformed input.
Trace read(std::istream& is);
Trace readFile(const std::string& path);

/// The uniform offline-consumption surface: loads a trace from either
/// format and replays it through listeners.  Binary and text recordings of
/// the same run are indistinguishable through this class.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  explicit TraceReader(std::istream& is);

  TraceFormat format() const { return format_; }
  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

  /// Replays the trace's events through the listener (onRunStart /
  /// onEvent* / onRunEnd), same as trace::feed.
  void feed(Listener& listener) const;

 private:
  Trace trace_;
  TraceFormat format_ = TraceFormat::Text;
};

/// A listener that records a run into a Trace, resolving thread/object/site
/// names through the runtime and the global SiteRegistry at run end.
class TraceRecorder final : public Listener {
 public:
  /// The runtime is used to resolve symbol names; it must outlive the
  /// recorder's runs.
  explicit TraceRecorder(rt::Runtime& rt) : rt_(&rt) {}

  /// Runtime-less construction for owned tool stacks; bindRuntime attaches
  /// the symbol source before each run.
  TraceRecorder() = default;

  void onRunStart(const RunInfo& info) override;
  void onEvent(const Event& e) override;
  void onRunEnd() override;

  std::string_view listenerName() const override { return "trace-recorder"; }
  void bindRuntime(rt::Runtime& rt) override { rt_ = &rt; }
  void resetTool() override;

  /// The completed trace of the most recent run (valid after onRunEnd).
  const Trace& trace() const { return trace_; }
  Trace takeTrace() { return std::move(trace_); }

 private:
  rt::Runtime* rt_ = nullptr;
  Trace trace_;
  mutable std::mutex mu_;  // native mode: events arrive concurrently
};

/// Replays a trace's events through a chain of listeners — the offline
/// evaluation path: detectors run identically on live runs and stored
/// traces.
void feed(const Trace& t, std::initializer_list<Listener*> listeners);
void feed(const Trace& t, Listener& listener);

}  // namespace mtt::trace
