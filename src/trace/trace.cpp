// Text grammar (line-based, '#' starts a comment):
//
//   MTTTRACE 1
//   program <rest-of-line>
//   seed <u64>
//   mode native|controlled
//   thread <id> <rest-of-line: name>
//   object <id> <kind> <rest-of-line: name>
//   site <id> <bug:0|1> <line> <file> <rest-of-line: tag (may be empty)>
//   events <count>
//   e <seq> <tid> <kind-name> <obj> <site> <arg> <bug:0|1>
//   end
#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"

namespace mtt::trace {

std::string Trace::threadName(ThreadId t) const {
  auto it = threads.find(t);
  return it == threads.end() ? "T" + std::to_string(t) : it->second;
}

std::string Trace::objectName(ObjectId o) const {
  auto it = objects.find(o);
  return it == objects.end() ? "obj" + std::to_string(o) : it->second.name;
}

const SiteSym* Trace::siteInfo(SiteId s) const {
  auto it = sites.find(s);
  return it == sites.end() ? nullptr : &it->second;
}

std::vector<ObjectId> Trace::sharedVariables() const {
  std::map<ObjectId, std::set<ThreadId>> touchers;
  for (const Event& e : events) {
    if (e.kind == EventKind::VarRead || e.kind == EventKind::VarWrite) {
      touchers[e.object].insert(e.thread);
    }
  }
  std::vector<ObjectId> out;
  for (const auto& [obj, ts] : touchers) {
    if (ts.size() >= 2) out.push_back(obj);
  }
  return out;
}

std::size_t Trace::countKind(EventKind k) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const Event& e) { return e.kind == k; }));
}

// --- text serialization -----------------------------------------------------

namespace {

const char* kindName(rt::ObjectKind k) {
  switch (k) {
    case rt::ObjectKind::Mutex: return "mutex";
    case rt::ObjectKind::RwLock: return "rwlock";
    case rt::ObjectKind::CondVar: return "condvar";
    case rt::ObjectKind::Semaphore: return "semaphore";
    case rt::ObjectKind::Barrier: return "barrier";
    case rt::ObjectKind::Variable: return "variable";
    case rt::ObjectKind::Thread: return "thread";
    case rt::ObjectKind::TaskQueue: return "taskqueue";
  }
  return "variable";
}

rt::ObjectKind kindFromName(const std::string& s) {
  if (s == "mutex") return rt::ObjectKind::Mutex;
  if (s == "rwlock") return rt::ObjectKind::RwLock;
  if (s == "condvar") return rt::ObjectKind::CondVar;
  if (s == "semaphore") return rt::ObjectKind::Semaphore;
  if (s == "barrier") return rt::ObjectKind::Barrier;
  if (s == "thread") return rt::ObjectKind::Thread;
  if (s == "taskqueue") return rt::ObjectKind::TaskQueue;
  return rt::ObjectKind::Variable;
}

[[noreturn]] void parseError(const std::string& what, std::size_t lineNo) {
  throw std::runtime_error("mtt trace parse error at line " +
                           std::to_string(lineNo) + ": " + what);
}

}  // namespace

void writeText(const Trace& t, std::ostream& os) {
  os << "MTTTRACE 1\n";
  os << "program " << t.programName << '\n';
  os << "seed " << t.seed << '\n';
  os << "mode "
     << (t.mode == RuntimeMode::Controlled ? "controlled" : "native") << '\n';
  for (const auto& [id, name] : t.threads) {
    os << "thread " << id << ' ' << name << '\n';
  }
  for (const auto& [id, sym] : t.objects) {
    os << "object " << id << ' ' << kindName(sym.kind) << ' ' << sym.name
       << '\n';
  }
  for (const auto& [id, sym] : t.sites) {
    os << "site " << id << ' ' << (sym.bug ? 1 : 0) << ' ' << sym.line << ' '
       << (sym.file.empty() ? "-" : sym.file) << ' ' << sym.tag << '\n';
  }
  os << "events " << t.events.size() << '\n';
  for (const Event& e : t.events) {
    os << "e " << e.seq << ' ' << e.thread << ' ' << to_string(e.kind) << ' '
       << e.object << ' ' << e.syncSite << ' ' << e.arg << ' '
       << (e.bugSite == BugMark::Yes ? 1 : 0) << '\n';
  }
  os << "end\n";
  if (!os) throw std::runtime_error("mtt: trace write failed");
}

Trace readText(std::istream& is) {
  Trace t;
  std::string line;
  std::size_t lineNo = 0;
  auto next = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineNo;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  if (!next() || line.rfind("MTTTRACE", 0) != 0) {
    parseError("missing MTTTRACE header", lineNo);
  }
  bool sawEnd = false;
  while (next()) {
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "program") {
      std::string rest;
      std::getline(ls, rest);
      t.programName = rest.empty() ? "" : rest.substr(1);
    } else if (kw == "seed") {
      ls >> t.seed;
    } else if (kw == "mode") {
      std::string m;
      ls >> m;
      t.mode =
          m == "controlled" ? RuntimeMode::Controlled : RuntimeMode::Native;
    } else if (kw == "thread") {
      ThreadId id;
      std::string rest;
      ls >> id;
      std::getline(ls, rest);
      t.threads[id] = rest.empty() ? "" : rest.substr(1);
    } else if (kw == "object") {
      ObjectId id;
      std::string kind, rest;
      ls >> id >> kind;
      std::getline(ls, rest);
      t.objects[id] =
          ObjectSym{kindFromName(kind), rest.empty() ? "" : rest.substr(1)};
    } else if (kw == "site") {
      SiteId id;
      int bug;
      SiteSym sym;
      ls >> id >> bug >> sym.line >> sym.file;
      std::string rest;
      std::getline(ls, rest);
      sym.tag = rest.empty() ? "" : rest.substr(1);
      if (sym.file == "-") sym.file.clear();
      sym.bug = bug != 0;
      t.sites[id] = std::move(sym);
    } else if (kw == "events") {
      // count is informational; records are self-delimiting
    } else if (kw == "e") {
      Event e;
      std::string kind;
      int bug;
      ls >> e.seq >> e.thread >> kind >> e.object >> e.syncSite >> e.arg >>
          bug;
      if (!ls) parseError("malformed event record", lineNo);
      if (!event_kind_from_string(kind, e.kind)) {
        parseError("unknown event kind '" + kind + "'", lineNo);
      }
      e.access = access_of(e.kind);
      e.bugSite = bug ? BugMark::Yes : BugMark::No;
      t.events.push_back(e);
    } else if (kw == "end") {
      sawEnd = true;
      break;
    } else {
      parseError("unknown keyword '" + kw + "'", lineNo);
    }
  }
  if (!sawEnd) parseError("missing 'end'", lineNo);
  return t;
}

void writeTextFile(const Trace& t, const std::string& path) {
  std::ostringstream f;
  writeText(t, f);
  core::atomicWriteFile(path, f.str());
}

Trace readTextFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  return readText(f);
}

// --- binary serialization ---------------------------------------------------

namespace {

void putU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void putU64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void putStr(std::ostream& os, const std::string& s) {
  putU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::uint32_t getU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("mtt: truncated binary trace");
  return v;
}
std::uint64_t getU64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("mtt: truncated binary trace");
  return v;
}
std::string getStr(std::istream& is) {
  std::uint32_t n = getU32(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("mtt: truncated binary trace");
  return s;
}

// Varint layer (format version 2).  Unsigned LEB128; signed values zigzag.
void putVar(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    char b = static_cast<char>((v & 0x7f) | 0x80);
    os.write(&b, 1);
    v >>= 7;
  }
  char b = static_cast<char>(v);
  os.write(&b, 1);
}

std::uint64_t getVar(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    char c = 0;
    is.read(&c, 1);
    if (!is) throw std::runtime_error("mtt: truncated binary trace");
    auto b = static_cast<std::uint8_t>(c);
    if (shift >= 64) throw std::runtime_error("mtt: malformed varint");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void putVarStr(std::ostream& os, const std::string& s) {
  putVar(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string getVarStr(std::istream& is) {
  std::uint64_t n = getVar(is);
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("mtt: truncated binary trace");
  return s;
}

constexpr std::uint8_t kBugFlag = 0x80;  // high bit of the v2 kind byte

Trace readBinaryV1(std::istream& is) {
  Trace t;
  t.programName = getStr(is);
  t.seed = getU64(is);
  t.mode = getU32(is) ? RuntimeMode::Controlled : RuntimeMode::Native;
  for (std::uint32_t n = getU32(is); n > 0; --n) {
    ThreadId id = getU32(is);
    t.threads[id] = getStr(is);
  }
  for (std::uint32_t n = getU32(is); n > 0; --n) {
    ObjectId id = getU32(is);
    ObjectSym sym;
    sym.kind = static_cast<rt::ObjectKind>(getU32(is));
    sym.name = getStr(is);
    t.objects[id] = std::move(sym);
  }
  for (std::uint32_t n = getU32(is); n > 0; --n) {
    SiteId id = getU32(is);
    SiteSym sym;
    sym.bug = getU32(is) != 0;
    sym.line = getU32(is);
    sym.file = getStr(is);
    sym.tag = getStr(is);
    t.sites[id] = std::move(sym);
  }
  std::uint64_t count = getU64(is);
  t.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    e.seq = getU64(is);
    e.thread = getU32(is);
    e.kind = static_cast<EventKind>(getU32(is));
    e.object = getU32(is);
    e.syncSite = getU32(is);
    e.arg = getU32(is);
    e.bugSite = getU32(is) ? BugMark::Yes : BugMark::No;
    e.access = access_of(e.kind);
    t.events.push_back(e);
  }
  return t;
}

Trace readBinaryV2(std::istream& is) {
  Trace t;
  t.programName = getVarStr(is);
  t.seed = getVar(is);
  t.mode = getVar(is) ? RuntimeMode::Controlled : RuntimeMode::Native;
  for (std::uint64_t n = getVar(is); n > 0; --n) {
    auto id = static_cast<ThreadId>(getVar(is));
    t.threads[id] = getVarStr(is);
  }
  for (std::uint64_t n = getVar(is); n > 0; --n) {
    auto id = static_cast<ObjectId>(getVar(is));
    ObjectSym sym;
    sym.kind = static_cast<rt::ObjectKind>(getVar(is));
    sym.name = getVarStr(is);
    t.objects[id] = std::move(sym);
  }
  for (std::uint64_t n = getVar(is); n > 0; --n) {
    auto id = static_cast<SiteId>(getVar(is));
    SiteSym sym;
    sym.bug = getVar(is) != 0;
    sym.line = static_cast<std::uint32_t>(getVar(is));
    sym.file = getVarStr(is);
    sym.tag = getVarStr(is);
    t.sites[id] = std::move(sym);
  }
  std::uint64_t count = getVar(is);
  t.events.reserve(static_cast<std::size_t>(count));
  std::int64_t prevSeq = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Event e;
    std::uint64_t kindByte = getVar(is);
    e.bugSite = (kindByte & kBugFlag) ? BugMark::Yes : BugMark::No;
    e.kind = static_cast<EventKind>(kindByte & ~std::uint64_t{kBugFlag});
    if (e.kind >= EventKind::kCount) {
      throw std::runtime_error("mtt: binary trace has unknown event kind");
    }
    // Sequence numbers are near-monotone (native-mode arrival order can
    // locally reorder), so a signed delta is 1 byte in the common case.
    prevSeq += unzigzag(getVar(is));
    e.seq = static_cast<std::uint64_t>(prevSeq);
    e.thread = static_cast<ThreadId>(getVar(is));
    e.object = static_cast<ObjectId>(getVar(is));
    e.syncSite = static_cast<SiteId>(getVar(is));
    e.arg = static_cast<std::uint32_t>(getVar(is));
    e.access = access_of(e.kind);
    t.events.push_back(e);
  }
  return t;
}

}  // namespace

void writeBinary(const Trace& t, std::ostream& os) {
  os.write("MTTB", 4);
  putU32(os, 2);  // version (fixed-width so readers can branch cheaply)
  putVarStr(os, t.programName);
  putVar(os, t.seed);
  putVar(os, t.mode == RuntimeMode::Controlled ? 1 : 0);
  putVar(os, t.threads.size());
  for (const auto& [id, name] : t.threads) {
    putVar(os, id);
    putVarStr(os, name);
  }
  putVar(os, t.objects.size());
  for (const auto& [id, sym] : t.objects) {
    putVar(os, id);
    putVar(os, static_cast<std::uint64_t>(sym.kind));
    putVarStr(os, sym.name);
  }
  putVar(os, t.sites.size());
  for (const auto& [id, sym] : t.sites) {
    putVar(os, id);
    putVar(os, sym.bug ? 1 : 0);
    putVar(os, sym.line);
    putVarStr(os, sym.file);
    putVarStr(os, sym.tag);
  }
  putVar(os, t.events.size());
  std::int64_t prevSeq = 0;
  for (const Event& e : t.events) {
    std::uint64_t kindByte = static_cast<std::uint64_t>(e.kind) |
                             (e.bugSite == BugMark::Yes ? kBugFlag : 0);
    putVar(os, kindByte);
    auto seq = static_cast<std::int64_t>(e.seq);
    putVar(os, zigzag(seq - prevSeq));
    prevSeq = seq;
    putVar(os, e.thread);
    putVar(os, e.object);
    putVar(os, e.syncSite);
    putVar(os, e.arg);
  }
  if (!os) throw std::runtime_error("mtt: binary trace write failed");
}

Trace readBinary(std::istream& is) {
  char magic[4] = {};
  is.read(magic, 4);
  if (!is || std::memcmp(magic, "MTTB", 4) != 0) {
    throw std::runtime_error("mtt: not a binary trace");
  }
  std::uint32_t version = getU32(is);
  if (version == 1) return readBinaryV1(is);
  if (version == 2) return readBinaryV2(is);
  throw std::runtime_error("mtt: unsupported trace version " +
                           std::to_string(version));
}

void writeBinaryFile(const Trace& t, const std::string& path) {
  std::ostringstream f(std::ios::binary);
  writeBinary(t, f);
  core::atomicWriteFile(path, f.str());
}

Trace readBinaryFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  return readBinary(f);
}

// --- auto-detecting readers ---------------------------------------------------

namespace {

TraceFormat detectFormat(std::istream& is) {
  // Both formats start with "MTT": byte 3 disambiguates ('B' binary,
  // 'T' from "MTTTRACE" text).  Peek without consuming.
  char magic[4] = {};
  is.read(magic, 4);
  if (!is || std::memcmp(magic, "MTT", 3) != 0) {
    throw std::runtime_error("mtt: not a trace (bad magic)");
  }
  for (int i = 3; i >= 0; --i) is.putback(magic[i]);
  return magic[3] == 'B' ? TraceFormat::Binary : TraceFormat::Text;
}

}  // namespace

Trace read(std::istream& is) {
  return detectFormat(is) == TraceFormat::Binary ? readBinary(is)
                                                 : readText(is);
}

Trace readFile(const std::string& path) {
  // Binary-safe open either way; the text parser reads through getline.
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  return read(f);
}

TraceReader::TraceReader(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("mtt: cannot open " + path);
  format_ = detectFormat(f);
  trace_ = format_ == TraceFormat::Binary ? readBinary(f) : readText(f);
}

TraceReader::TraceReader(std::istream& is) {
  format_ = detectFormat(is);
  trace_ = format_ == TraceFormat::Binary ? readBinary(is) : readText(is);
}

void TraceReader::feed(Listener& listener) const {
  trace::feed(trace_, listener);
}

// --- TraceRecorder ------------------------------------------------------------

void TraceRecorder::onRunStart(const RunInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  trace_ = Trace{};
  trace_.programName = info.programName;
  trace_.seed = info.seed;
  trace_.mode = info.mode;
}

void TraceRecorder::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  trace_.events.push_back(e);
}

void TraceRecorder::resetTool() {
  std::lock_guard<std::mutex> lk(mu_);
  trace_ = Trace{};
}

void TraceRecorder::onRunEnd() {
  std::lock_guard<std::mutex> lk(mu_);
  if (rt_ == nullptr) return;  // unbound: keep events, skip symbol tables
  // Resolve the symbol tables now: every id seen in the event stream.
  for (const Event& e : trace_.events) {
    if (trace_.threads.find(e.thread) == trace_.threads.end()) {
      trace_.threads[e.thread] = rt_->threadName(e.thread);
    }
    bool threadObj = e.kind == EventKind::ThreadStart ||
                     e.kind == EventKind::ThreadFinish ||
                     e.kind == EventKind::ThreadSpawn ||
                     e.kind == EventKind::ThreadJoin;
    if (e.object != kNoObject && !threadObj &&
        trace_.objects.find(e.object) == trace_.objects.end()) {
      rt::ObjectInfo info = rt_->objectInfo(e.object);
      trace_.objects[e.object] = ObjectSym{info.kind, info.name};
    }
    if (e.syncSite != kNoSite &&
        trace_.sites.find(e.syncSite) == trace_.sites.end()) {
      const SiteInfo& si = SiteRegistry::instance().lookup(e.syncSite);
      trace_.sites[e.syncSite] =
          SiteSym{si.tag, si.file, si.line, si.bug == BugMark::Yes};
    }
  }
}

void feed(const Trace& t, std::initializer_list<Listener*> listeners) {
  RunInfo info;
  info.programName = internName(t.programName);
  info.seed = t.seed;
  info.mode = t.mode;
  for (Listener* l : listeners) l->onRunStart(info);
  for (const Event& e : t.events) {
    for (Listener* l : listeners) l->onEvent(e);
  }
  for (Listener* l : listeners) l->onRunEnd();
}

void feed(const Trace& t, Listener& listener) { feed(t, {&listener}); }

}  // namespace mtt::trace
