#include "race/detectors.hpp"

namespace mtt::race {

void FastTrackDetector::resetState() {
  hbReset();
  vars_.clear();
}

void FastTrackDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (e.kind == EventKind::VarRead || e.kind == EventKind::VarWrite) {
    access(e);
  } else {
    hbProcess(e);
  }
}

void FastTrackDetector::access(const Event& e) {
  bool isWrite = e.kind == EventKind::VarWrite;
  VarState& v = vars_[e.object];
  const VectorClock& c = mutableClockOf(e.thread);
  Epoch now{e.thread, c.get(e.thread)};

  auto warn = [&](ThreadId u, SiteId prevSite, bool prevBug, Access prevKind,
                  const char* what) {
    auto key = std::make_pair(prevSite, e.syncSite);
    if (v.reportedPairs.count(key) != 0) return;
    v.reportedPairs.insert(key);
    RaceWarning w;
    w.variable = e.object;
    w.firstThread = u;
    w.firstSite = prevSite;
    w.firstAccess = prevKind;
    w.secondThread = e.thread;
    w.secondSite = e.syncSite;
    w.secondAccess = isWrite ? Access::Write : Access::Read;
    w.onBugSite = prevBug || e.bugSite == BugMark::Yes;
    w.detail = what;
    report(std::move(w));
  };

  if (!isWrite) {
    // READ.
    if (!v.readShared && v.read == now) return;  // same-epoch fast path
    if (!v.write.isBottom() && v.write.tid != e.thread && !v.write.leq(c)) {
      warn(v.write.tid, v.writeSite, v.writeBug, Access::Write,
           "concurrent write-read");
    }
    if (v.readShared) {
      v.readVC.set(e.thread, now.clock);
    } else if (v.read.isBottom() || v.read.tid == e.thread ||
               v.read.leq(c)) {
      v.read = now;  // stays an epoch
    } else {
      // Two concurrent-ish readers: inflate to a vector clock.
      v.readShared = true;
      v.readVC.clear();
      v.readVC.set(v.read.tid, v.read.clock);
      v.readVC.set(e.thread, now.clock);
    }
    v.lastReadSite = e.syncSite;
    v.lastReadBug = e.bugSite == BugMark::Yes;
    return;
  }

  // WRITE.
  if (v.write == now) return;  // same-epoch fast path
  if (!v.write.isBottom() && v.write.tid != e.thread && !v.write.leq(c)) {
    warn(v.write.tid, v.writeSite, v.writeBug, Access::Write,
         "concurrent write-write");
  }
  if (v.readShared) {
    ThreadId u = v.readVC.firstExceeding(c);
    if (u != kNoThread && u != e.thread) {
      warn(u, v.lastReadSite, v.lastReadBug, Access::Read,
           "concurrent read-write");
    }
    // Reads are now ordered before this write; deflate.
    v.readShared = false;
    v.read = Epoch{};
    v.readVC.clear();
  } else if (!v.read.isBottom() && v.read.tid != e.thread &&
             !v.read.leq(c)) {
    warn(v.read.tid, v.lastReadSite, v.lastReadBug, Access::Read,
         "concurrent read-write");
  }
  v.write = now;
  v.writeSite = e.syncSite;
  v.writeBug = e.bugSite == BugMark::Yes;
}

}  // namespace mtt::race
