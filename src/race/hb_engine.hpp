// Shared happens-before machinery for vector-clock-based detectors.
//
// Maintains one vector clock per thread and per synchronization object and
// applies the standard release/acquire rules for every sync event kind the
// runtime emits:
//   mutex unlock -> lock, semaphore release -> acquire, condvar signal ->
//   wakeup (plus the wait's implicit mutex release/reacquire, whose mutex id
//   travels in the event's arg), barrier generation completion, thread
//   spawn -> start and finish -> join.
#pragma once

#include <cstdint>
#include <map>

#include "core/event.hpp"
#include "race/vector_clock.hpp"

namespace mtt::race {

class HbEngine {
 public:
  /// Current clock of a thread.
  const VectorClock& clockOf(ThreadId t) const;

  /// True when the epoch (c@u) is concurrent with thread t's current clock,
  /// i.e. NOT (c <= C_t[u]).
  bool concurrentWithNow(ThreadId u, std::uint32_t c, ThreadId t) const {
    return c > clockOf(t).get(u);
  }

 protected:
  void hbReset();
  /// Feed one event; handles all control/sync kinds and ignores variable
  /// accesses (those are the subclasses' business).
  void hbProcess(const Event& e);
  VectorClock& mutableClockOf(ThreadId t);

 private:
  void release(ThreadId t, VectorClock& target);
  std::map<ThreadId, VectorClock> threads_;
  std::map<ObjectId, VectorClock> syncObjs_;  // mutexes, semaphores, signals
  // Readers-writer locks: write releases go into syncObjs_ (every later
  // acquire sees them); read releases accumulate separately and only write
  // acquisitions join them (readers are unordered among themselves).
  std::map<ObjectId, VectorClock> rwReadRel_;
  std::map<std::pair<ObjectId, std::uint64_t>, VectorClock> barriers_;
  std::map<ThreadId, VectorClock> finished_;
  std::map<ThreadId, VectorClock> pendingSpawn_;
};

}  // namespace mtt::race
