#include "race/detector.hpp"

#include "core/site.hpp"

namespace mtt::race {

std::string RaceWarning::describe() const {
  auto& reg = SiteRegistry::instance();
  std::string out = "race on var#" + std::to_string(variable) + ": T" +
                    std::to_string(firstThread) + " " +
                    (firstAccess == Access::Write ? "write" : "read") + " @" +
                    reg.describe(firstSite) + " vs T" +
                    std::to_string(secondThread) + " " +
                    (secondAccess == Access::Write ? "write" : "read") + " @" +
                    reg.describe(secondSite);
  if (onBugSite) out += " [annotated bug]";
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

std::size_t RaceDetector::trueAlarms() const {
  std::size_t n = 0;
  for (const auto& w : warnings_) {
    if (w.onBugSite) ++n;
  }
  return n;
}

void RaceDetector::onRunStart(const RunInfo& info) {
  (void)info;
  warnings_.clear();
  resetState();
}

void RaceDetector::resetTool() {
  warnings_.clear();
  resetState();
}

void RaceDetector::report(RaceWarning w) {
  if (alreadyReported(w.variable, w.firstSite, w.secondSite)) return;
  warnings_.push_back(std::move(w));
}

bool RaceDetector::alreadyReported(ObjectId var, SiteId a, SiteId b) const {
  for (const auto& w : warnings_) {
    if (w.variable != var) continue;
    if ((w.firstSite == a && w.secondSite == b) ||
        (w.firstSite == b && w.secondSite == a)) {
      return true;
    }
  }
  return false;
}

}  // namespace mtt::race
