// Race detectors — the paper's flagship dynamic technology (Section 2.2):
//
//   "A race is defined as accesses to a variable by two threads, at least
//    one of which is a write, which have no synchronization statement
//    temporally between them.  [...]  The main problem of race detectors of
//    all breeds is that they produce too many false alarms."
//
// Four detectors share this interface; all consume the standard Event
// stream, online (as Listeners) or offline (via mtt::trace::feed):
//   * EraserDetector     — lockset algorithm (Savage et al., TOCS 1997)
//   * DjitDetector       — vector-clock happens-before (DJIT+ style)
//   * FastTrackDetector  — epoch-optimized happens-before
//   * HybridDetector     — lockset candidates filtered by happens-before
//
// Warnings carry the two access sites so they can be checked against the
// benchmark's bug annotations: a warning whose sites include a bug-marked
// site is a true alarm, anything else counts toward the false-alarm rate
// the paper says detectors compete on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/listener.hpp"

namespace mtt::race {

struct RaceWarning {
  ObjectId variable = kNoObject;
  /// Previous conflicting access.
  ThreadId firstThread = kNoThread;
  SiteId firstSite = kNoSite;
  Access firstAccess = Access::None;
  /// Current access (the one that triggered the warning).
  ThreadId secondThread = kNoThread;
  SiteId secondSite = kNoSite;
  Access secondAccess = Access::None;
  /// True when either involved site carries the benchmark's bug annotation.
  bool onBugSite = false;
  std::string detail;

  std::string describe() const;
};

/// Base class: warning storage and alarm accounting.
class RaceDetector : public Listener {
 public:
  virtual std::string name() const = 0;

  const std::vector<RaceWarning>& warnings() const { return warnings_; }
  std::size_t warningCount() const { return warnings_.size(); }
  std::size_t trueAlarms() const;
  std::size_t falseAlarms() const { return warningCount() - trueAlarms(); }
  /// True when at least one warning touches a bug-annotated site.
  bool foundAnnotatedBug() const { return trueAlarms() > 0; }

  void onRunStart(const RunInfo& info) override;
  void onRunEnd() override {}

  std::string_view listenerName() const override { return internName(name()); }
  /// Clears warnings and algorithm state (same as a run-start reset).
  void resetTool() override;

 protected:
  /// Clears detector state between runs; subclasses extend.
  virtual void resetState() = 0;

  void report(RaceWarning w);

  /// At most one warning is kept per (variable, site-pair) to keep alarm
  /// counts comparable across detectors.
  bool alreadyReported(ObjectId var, SiteId a, SiteId b) const;

 private:
  std::vector<RaceWarning> warnings_;
};

}  // namespace mtt::race
