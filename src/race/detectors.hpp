// The four race detectors.  See detector.hpp for the shared interface.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "race/detector.hpp"
#include "race/hb_engine.hpp"

namespace mtt::race {

/// Kinds a happens-before engine consumes: everything that creates or
/// releases an ordering edge plus thread lifecycle, i.e. all kinds except
/// failed try-locks (no edge), Yield (pure noise) and the variable accesses
/// the concrete detector adds back itself.
constexpr EventMask hbSyncMask() {
  return EventMask::all()
      .without(EventKind::MutexTryLockFail)
      .without(EventKind::Yield)
      .without(EventKind::VarRead)
      .without(EventKind::VarWrite);
}

/// Eraser (Savage et al.): lockset algorithm with the
/// virgin/exclusive/shared/shared-modified state machine.  Fast and
/// schedule-insensitive, but blind to non-lock synchronization — semaphore-
/// or barrier-synchronized programs draw false alarms, the weakness the
/// paper highlights ("race detectors of all breeds produce too many false
/// alarms").
class EraserDetector final : public RaceDetector {
 public:
  std::string name() const override { return "eraser"; }
  void onEvent(const Event& e) override;
  /// Lockset needs lock acquire/release, condvar-protected handoffs and the
  /// variable accesses themselves — never barriers, semaphores or yields.
  EventMask subscribedEvents() const override {
    return (EventMask::locks().without(EventKind::MutexTryLockFail) |
            EventMask{EventKind::CondWaitBegin, EventKind::CondWaitEnd} |
            EventMask::variable());
  }

 protected:
  void resetState() override;

 private:
  enum class Phase : std::uint8_t { Virgin, Exclusive, Shared, SharedMod };
  struct VarState {
    Phase phase = Phase::Virgin;
    ThreadId owner = kNoThread;
    std::set<ObjectId> candidates;
    bool reported = false;
    ThreadId lastThread = kNoThread;
    SiteId lastSite = kNoSite;
    Access lastAccess = Access::None;
    bool lastBug = false;
  };
  std::map<ThreadId, std::set<ObjectId>> held_;
  std::map<ObjectId, VarState> vars_;
  std::mutex mu_;  // native mode: concurrent events
};

/// DJIT+-style happens-before detector: full vector clocks per variable.
/// No false alarms with respect to the observed execution; warnings depend
/// on the observed interleaving only through the sync order.
class DjitDetector final : public RaceDetector, private HbEngine {
 public:
  std::string name() const override { return "djit"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return hbSyncMask() | EventMask::variable();
  }

 protected:
  void resetState() override;

 private:
  struct Access_ {
    std::uint32_t clock = 0;
    SiteId site = kNoSite;
    bool bug = false;
  };
  struct VarState {
    std::map<ThreadId, Access_> reads;
    std::map<ThreadId, Access_> writes;
    std::set<std::pair<SiteId, SiteId>> reportedPairs;
  };
  void access(const Event& e);
  std::map<ObjectId, VarState> vars_;
  std::mutex mu_;
};

/// FastTrack (Flanagan & Freund): the epoch optimization of happens-before
/// detection — most accesses need O(1) work instead of O(threads).
/// Same precision class as DJIT+ at a fraction of the cost (experiment E3
/// reports events/second for both).
class FastTrackDetector final : public RaceDetector, private HbEngine {
 public:
  std::string name() const override { return "fasttrack"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return hbSyncMask() | EventMask::variable();
  }

 protected:
  void resetState() override;

 private:
  struct VarState {
    Epoch write;
    SiteId writeSite = kNoSite;
    bool writeBug = false;
    Epoch read;            // valid when !readShared
    bool readShared = false;
    VectorClock readVC;    // valid when readShared
    SiteId lastReadSite = kNoSite;
    bool lastReadBug = false;
    std::set<std::pair<SiteId, SiteId>> reportedPairs;
  };
  void access(const Event& e);
  std::map<ObjectId, VarState> vars_;
  std::mutex mu_;
};

/// Hybrid lockset + happens-before (O'Callahan/Choi style): the lockset
/// state machine proposes candidate races, happens-before confirms that the
/// two accesses are actually concurrent.  Keeps Eraser's schedule
/// insensitivity on lock-protected data while eliminating its false alarms
/// on fork/join-, semaphore- and barrier-synchronized programs.
class HybridDetector final : public RaceDetector, private HbEngine {
 public:
  std::string name() const override { return "hybrid"; }
  void onEvent(const Event& e) override;
  EventMask subscribedEvents() const override {
    return hbSyncMask() | EventMask::variable();
  }

 protected:
  void resetState() override;

 private:
  struct LastAccess {
    ThreadId thread = kNoThread;
    std::uint32_t clock = 0;
    SiteId site = kNoSite;
    Access access = Access::None;
    bool bug = false;
  };
  struct VarState {
    std::set<ObjectId> candidates;
    bool candidatesInit = false;
    std::map<ThreadId, LastAccess> lastWrite;
    std::map<ThreadId, LastAccess> lastRead;
    std::set<std::pair<SiteId, SiteId>> reportedPairs;
  };
  void access(const Event& e);
  std::map<ThreadId, std::set<ObjectId>> held_;
  std::map<ObjectId, VarState> vars_;
  std::mutex mu_;
};

/// Factory by name ("eraser", "djit", "fasttrack", "hybrid").
std::unique_ptr<RaceDetector> makeDetector(const std::string& name);
/// All detector names, in canonical order.
std::vector<std::string> detectorNames();

}  // namespace mtt::race
