#include <algorithm>

#include "race/detectors.hpp"

namespace mtt::race {

void EraserDetector::resetState() {
  held_.clear();
  vars_.clear();
}

void EraserDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (e.kind) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
    case EventKind::CondWaitEnd:  // reacquired the mutex in arg... object is
                                  // the condvar; the mutex id is in arg
      held_[e.thread].insert(e.kind == EventKind::CondWaitEnd ? e.arg
                                                              : e.object);
      break;
    case EventKind::MutexUnlock:
    case EventKind::RwUnlockRead:
    case EventKind::RwUnlockWrite:
      held_[e.thread].erase(e.object);
      break;
    case EventKind::CondWaitBegin:
      // The wait releases the mutex (id in arg).
      held_[e.thread].erase(e.arg);
      break;
    case EventKind::VarRead:
    case EventKind::VarWrite: {
      bool isWrite = e.kind == EventKind::VarWrite;
      VarState& v = vars_[e.object];
      const std::set<ObjectId>& locks = held_[e.thread];
      switch (v.phase) {
        case Phase::Virgin:
          v.phase = Phase::Exclusive;
          v.owner = e.thread;
          break;
        case Phase::Exclusive:
          if (e.thread != v.owner) {
            v.candidates = locks;
            v.phase = isWrite ? Phase::SharedMod : Phase::Shared;
          }
          break;
        case Phase::Shared:
          std::erase_if(v.candidates, [&](ObjectId l) {
            return locks.find(l) == locks.end();
          });
          if (isWrite) v.phase = Phase::SharedMod;
          break;
        case Phase::SharedMod:
          std::erase_if(v.candidates, [&](ObjectId l) {
            return locks.find(l) == locks.end();
          });
          break;
      }
      if (v.phase == Phase::SharedMod && v.candidates.empty() && !v.reported) {
        v.reported = true;
        RaceWarning w;
        w.variable = e.object;
        w.firstThread = v.lastThread;
        w.firstSite = v.lastSite;
        w.firstAccess = v.lastAccess;
        w.secondThread = e.thread;
        w.secondSite = e.syncSite;
        w.secondAccess = isWrite ? Access::Write : Access::Read;
        w.onBugSite = v.lastBug || e.bugSite == BugMark::Yes;
        w.detail = "lockset empty in shared-modified state";
        report(std::move(w));
      }
      v.lastThread = e.thread;
      v.lastSite = e.syncSite;
      v.lastAccess = isWrite ? Access::Write : Access::Read;
      v.lastBug = e.bugSite == BugMark::Yes;
      break;
    }
    default:
      break;
  }
}

}  // namespace mtt::race
