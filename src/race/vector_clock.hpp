// Vector clocks and epochs for happens-before race detection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"

namespace mtt::race {

/// A vector clock indexed by ThreadId (dense; grows on demand).  Component 0
/// is unused (kNoThread).
class VectorClock {
 public:
  std::uint32_t get(ThreadId t) const {
    return t < c_.size() ? c_[t] : 0;
  }
  void set(ThreadId t, std::uint32_t v) {
    ensure(t);
    c_[t] = v;
  }
  void tick(ThreadId t) {
    ensure(t);
    ++c_[t];
  }
  /// Pointwise maximum.
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }
  /// this <= o pointwise.
  bool leq(const VectorClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(static_cast<ThreadId>(i))) return false;
    }
    return true;
  }
  /// First thread u with this[u] > o[u], or kNoThread if none (i.e. leq).
  ThreadId firstExceeding(const VectorClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(static_cast<ThreadId>(i))) {
        return static_cast<ThreadId>(i);
      }
    }
    return kNoThread;
  }
  void clear() { c_.clear(); }
  bool empty() const {
    return std::all_of(c_.begin(), c_.end(),
                       [](std::uint32_t v) { return v == 0; });
  }
  std::string str() const {
    std::string out = "[";
    for (std::size_t i = 1; i < c_.size(); ++i) {
      if (i > 1) out += ' ';
      out += std::to_string(c_[i]);
    }
    return out + "]";
  }

 private:
  void ensure(ThreadId t) {
    if (t >= c_.size()) c_.resize(t + 1, 0);
  }
  std::vector<std::uint32_t> c_;
};

/// A scalar clock value of one thread: FastTrack's compressed representation
/// of a vector clock that is "last access by thread t at time c".
struct Epoch {
  ThreadId tid = kNoThread;
  std::uint32_t clock = 0;

  bool isBottom() const { return tid == kNoThread && clock == 0; }
  /// epoch (c@t) happens-before VC iff c <= VC[t].
  bool leq(const VectorClock& vc) const { return clock <= vc.get(tid); }
  bool operator==(const Epoch& o) const {
    return tid == o.tid && clock == o.clock;
  }
};

}  // namespace mtt::race
