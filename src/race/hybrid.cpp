#include <algorithm>

#include "race/detectors.hpp"

namespace mtt::race {

void HybridDetector::resetState() {
  hbReset();
  held_.clear();
  vars_.clear();
}

void HybridDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (e.kind) {
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::RwLockRead:
    case EventKind::RwLockWrite:
      held_[e.thread].insert(e.object);
      break;
    case EventKind::CondWaitEnd:
      held_[e.thread].insert(e.arg);
      break;
    case EventKind::MutexUnlock:
    case EventKind::RwUnlockRead:
    case EventKind::RwUnlockWrite:
      held_[e.thread].erase(e.object);
      break;
    case EventKind::CondWaitBegin:
      held_[e.thread].erase(e.arg);
      break;
    case EventKind::VarRead:
    case EventKind::VarWrite:
      access(e);
      hbProcess(e);  // no-op for accesses, kept for symmetry
      return;
    default:
      break;
  }
  hbProcess(e);
}

void HybridDetector::access(const Event& e) {
  bool isWrite = e.kind == EventKind::VarWrite;
  VarState& v = vars_[e.object];
  const std::set<ObjectId>& locks = held_[e.thread];

  // Lockset maintenance: intersect the candidate set with the locks held
  // now (initialized lazily at the first access).
  if (!v.candidatesInit) {
    v.candidates = locks;
    v.candidatesInit = true;
  } else {
    std::erase_if(v.candidates,
                  [&](ObjectId l) { return locks.find(l) == locks.end(); });
  }

  const VectorClock& c = clockOf(e.thread);
  auto confirmAndWarn = [&](const LastAccess& prev, const char* what) {
    if (prev.thread == e.thread) return;
    // Happens-before confirmation: drop the candidate if the previous
    // access is ordered before this one.
    if (prev.clock <= c.get(prev.thread)) return;
    auto key = std::make_pair(prev.site, e.syncSite);
    if (v.reportedPairs.count(key) != 0) return;
    v.reportedPairs.insert(key);
    RaceWarning w;
    w.variable = e.object;
    w.firstThread = prev.thread;
    w.firstSite = prev.site;
    w.firstAccess = prev.access;
    w.secondThread = e.thread;
    w.secondSite = e.syncSite;
    w.secondAccess = isWrite ? Access::Write : Access::Read;
    w.onBugSite = prev.bug || e.bugSite == BugMark::Yes;
    w.detail = what;
    report(std::move(w));
  };

  // Candidate race only when the lockset is empty (Eraser's criterion);
  // then confirm concurrency against every conflicting previous access.
  if (v.candidates.empty()) {
    for (const auto& [u, prev] : v.lastWrite) {
      (void)u;
      confirmAndWarn(prev, isWrite ? "lockset empty + concurrent write-write"
                                   : "lockset empty + concurrent write-read");
    }
    if (isWrite) {
      for (const auto& [u, prev] : v.lastRead) {
        (void)u;
        confirmAndWarn(prev, "lockset empty + concurrent read-write");
      }
    }
  }

  std::uint32_t now = mutableClockOf(e.thread).get(e.thread);
  LastAccess rec;
  rec.thread = e.thread;
  rec.clock = now;
  rec.site = e.syncSite;
  rec.access = isWrite ? Access::Write : Access::Read;
  rec.bug = e.bugSite == BugMark::Yes;
  if (isWrite) {
    v.lastWrite[e.thread] = rec;
  } else {
    v.lastRead[e.thread] = rec;
  }
}

std::unique_ptr<RaceDetector> makeDetector(const std::string& name) {
  if (name == "eraser") return std::make_unique<EraserDetector>();
  if (name == "djit") return std::make_unique<DjitDetector>();
  if (name == "fasttrack") return std::make_unique<FastTrackDetector>();
  if (name == "hybrid") return std::make_unique<HybridDetector>();
  return nullptr;
}

std::vector<std::string> detectorNames() {
  return {"eraser", "djit", "fasttrack", "hybrid"};
}

}  // namespace mtt::race
