#include "race/detectors.hpp"

namespace mtt::race {

void DjitDetector::resetState() {
  hbReset();
  vars_.clear();
}

void DjitDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> lk(mu_);
  if (e.kind == EventKind::VarRead || e.kind == EventKind::VarWrite) {
    access(e);
  } else {
    hbProcess(e);
  }
}

void DjitDetector::access(const Event& e) {
  bool isWrite = e.kind == EventKind::VarWrite;
  VarState& v = vars_[e.object];
  const VectorClock& c = clockOf(e.thread);
  auto warn = [&](ThreadId u, const Access_& prev, Access prevKind,
                  const char* what) {
    auto key = std::make_pair(prev.site, e.syncSite);
    if (v.reportedPairs.count(key) != 0) return;
    v.reportedPairs.insert(key);
    RaceWarning w;
    w.variable = e.object;
    w.firstThread = u;
    w.firstSite = prev.site;
    w.firstAccess = prevKind;
    w.secondThread = e.thread;
    w.secondSite = e.syncSite;
    w.secondAccess = isWrite ? Access::Write : Access::Read;
    w.onBugSite = prev.bug || e.bugSite == BugMark::Yes;
    w.detail = what;
    report(std::move(w));
  };
  // A previous write by u is concurrent with this access iff its clock
  // exceeds our view of u.
  for (const auto& [u, prev] : v.writes) {
    if (u != e.thread && prev.clock > c.get(u)) {
      warn(u, prev, Access::Write,
           isWrite ? "concurrent write-write" : "concurrent write-read");
    }
  }
  if (isWrite) {
    for (const auto& [u, prev] : v.reads) {
      if (u != e.thread && prev.clock > c.get(u)) {
        warn(u, prev, Access::Read, "concurrent read-write");
      }
    }
  }
  // mutableClockOf initializes our component on first sighting.
  std::uint32_t now = mutableClockOf(e.thread).get(e.thread);
  Access_ rec{now, e.syncSite, e.bugSite == BugMark::Yes};
  if (isWrite) {
    v.writes[e.thread] = rec;
  } else {
    v.reads[e.thread] = rec;
  }
}

}  // namespace mtt::race
