#include "race/hb_engine.hpp"

namespace mtt::race {

namespace {
const VectorClock kEmpty{};
}

const VectorClock& HbEngine::clockOf(ThreadId t) const {
  auto it = threads_.find(t);
  return it == threads_.end() ? kEmpty : it->second;
}

VectorClock& HbEngine::mutableClockOf(ThreadId t) {
  VectorClock& c = threads_[t];
  if (c.get(t) == 0) c.set(t, 1);  // first sighting: own component starts at 1
  return c;
}

void HbEngine::hbReset() {
  threads_.clear();
  syncObjs_.clear();
  rwReadRel_.clear();
  barriers_.clear();
  finished_.clear();
  pendingSpawn_.clear();
}

void HbEngine::release(ThreadId t, VectorClock& target) {
  VectorClock& c = mutableClockOf(t);
  target.join(c);
  c.tick(t);
}

void HbEngine::hbProcess(const Event& e) {
  switch (e.kind) {
    case EventKind::ThreadStart: {
      VectorClock& c = mutableClockOf(e.thread);
      auto it = pendingSpawn_.find(e.thread);
      if (it != pendingSpawn_.end()) {
        c.join(it->second);
        pendingSpawn_.erase(it);
      }
      break;
    }
    case EventKind::ThreadSpawn: {
      // e.object is the child's thread id.
      pendingSpawn_[static_cast<ThreadId>(e.object)] = mutableClockOf(e.thread);
      mutableClockOf(e.thread).tick(e.thread);
      break;
    }
    case EventKind::ThreadFinish:
      finished_[e.thread] = mutableClockOf(e.thread);
      break;
    case EventKind::ThreadJoin: {
      auto it = finished_.find(static_cast<ThreadId>(e.object));
      if (it != finished_.end()) mutableClockOf(e.thread).join(it->second);
      break;
    }
    case EventKind::MutexLock:
    case EventKind::MutexTryLockOk:
    case EventKind::SemAcquire:
    case EventKind::RwLockRead:  // readers are ordered after write releases
      mutableClockOf(e.thread).join(syncObjs_[e.object]);
      break;
    case EventKind::RwLockWrite:
      // A writer is ordered after every previous release, read or write.
      mutableClockOf(e.thread).join(syncObjs_[e.object]);
      mutableClockOf(e.thread).join(rwReadRel_[e.object]);
      break;
    case EventKind::RwUnlockWrite:
      release(e.thread, syncObjs_[e.object]);
      break;
    case EventKind::RwUnlockRead:
      release(e.thread, rwReadRel_[e.object]);
      break;
    case EventKind::MutexUnlock:
    case EventKind::SemRelease:
    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
      release(e.thread, syncObjs_[e.object]);
      break;
    case EventKind::CondWaitBegin:
      // Implicit release of the associated mutex (id in arg).
      release(e.thread, syncObjs_[e.arg]);
      break;
    case EventKind::CondWaitEnd:
      // Wake-up edge from the signal plus reacquire of the mutex.
      mutableClockOf(e.thread).join(syncObjs_[e.object]);
      mutableClockOf(e.thread).join(syncObjs_[e.arg]);
      break;
    case EventKind::BarrierEnter:
      release(e.thread, barriers_[{e.object, e.arg}]);
      break;
    case EventKind::BarrierExit: {
      // arg is the post-completion generation; arrivals accumulated under
      // the previous generation number.
      std::uint64_t gen = e.arg == 0 ? 0 : e.arg - 1;
      mutableClockOf(e.thread).join(barriers_[{e.object, gen}]);
      break;
    }
    default:
      break;  // variable accesses, yields, trylock failures
  }
}

}  // namespace mtt::race
