#include "explore/explorer.hpp"

#include <algorithm>

#include "experiment/experiment.hpp"
#include "suite/program.hpp"

namespace mtt::explore {

void ExplorerPolicy::onRunStart(std::uint64_t seed) {
  (void)seed;
  step_ = 0;
  lastSchedule_.decisions.clear();
}

std::vector<ThreadId> ExplorerPolicy::orderAlternatives(
    const rt::PickContext& ctx) const {
  // Continue-current first (a non-preemptive choice), then the others by
  // ascending id.  With this ordering, alternative index 0 along the whole
  // prefix is exactly round-robin — DFS explores low-preemption schedules
  // first, which is what makes preemption bounding effective.
  std::vector<ThreadId> out;
  bool currentEnabled =
      !ctx.currentYielding &&
      std::find(ctx.enabled.begin(), ctx.enabled.end(), ctx.current) !=
          ctx.enabled.end();
  if (currentEnabled) out.push_back(ctx.current);
  for (ThreadId t : ctx.enabled) {
    if (!(currentEnabled && t == ctx.current)) out.push_back(t);
  }
  return out;
}

int ExplorerPolicy::preemptionsUpTo(std::size_t len,
                                    std::uint32_t lastIdx) const {
  // Preemptions in prefix_[0, len), with entry len-1's idx overridden by
  // lastIdx (used to cost a hypothetical alternative during backtracking).
  int p = 0;
  for (std::size_t i = 0; i < len; ++i) {
    std::uint32_t idx = (i + 1 == len) ? lastIdx : prefix_[i].idx;
    if (idx > 0 && prefix_[i].currentWasEnabled) ++p;
  }
  return p;
}

ThreadId ExplorerPolicy::pick(const rt::PickContext& ctx) {
  std::vector<ThreadId> alts = orderAlternatives(ctx);
  bool currentEnabled = !alts.empty() && alts.front() == ctx.current &&
                        !ctx.currentYielding &&
                        std::find(ctx.enabled.begin(), ctx.enabled.end(),
                                  ctx.current) != ctx.enabled.end();
  if (step_ < prefix_.size()) {
    // Replaying the committed prefix.
    Choice& c = prefix_[step_];
    if (c.realCount != alts.size()) diverged_ = true;
    std::uint32_t idx = std::min<std::uint32_t>(
        c.idx, static_cast<std::uint32_t>(alts.size()) - 1);
    ++step_;
    lastSchedule_.decisions.push_back(alts[idx]);
    return alts[idx];
  }
  // Fresh node: take alternative 0 and record the branching degree.  When
  // the preemption budget is exhausted, preemptive alternatives are not
  // explorable, so the recorded count collapses accordingly.
  Choice c;
  c.idx = 0;
  c.currentWasEnabled = currentEnabled;
  // Would taking a preemptive alternative (idx > 0) at this node still fit
  // the budget?  If not, only alternative 0 is ever explorable here.
  bool budgetLeft =
      preemptionBound_ < 0 ||
      preemptionsUpTo(prefix_.size(),
                      prefix_.empty() ? 0 : prefix_.back().idx) +
              (currentEnabled ? 1 : 0) <=
          preemptionBound_;
  c.realCount = static_cast<std::uint32_t>(alts.size());
  c.count = (currentEnabled && !budgetLeft) ? 1 : c.realCount;
  prefix_.push_back(c);
  ++step_;
  lastSchedule_.decisions.push_back(alts[0]);
  return alts[0];
}

bool ExplorerPolicy::backtrack() {
  while (!prefix_.empty()) {
    Choice& c = prefix_.back();
    if (c.idx + 1 < c.count) {
      // Check the preemption budget for the incremented alternative.
      if (preemptionBound_ < 0 ||
          preemptionsUpTo(prefix_.size(), c.idx + 1) <= preemptionBound_) {
        ++c.idx;
        return true;
      }
    }
    prefix_.pop_back();
  }
  return false;
}

ExploreResult Explorer::explore(
    const std::function<void(rt::Runtime&)>& body,
    const std::function<bool(const rt::RunResult&)>& oracle,
    const std::function<void()>& prepare) {
  auto bugIn = [&](const rt::RunResult& r) {
    return oracle ? oracle(r) : !r.ok();
  };

  ExploreResult result;
  rt::RunOptions opts;
  opts.maxSteps = opts_.maxStepsPerRun;

  auto attachTools = [this](rt::Runtime& rt) {
    if (opts_.tools == nullptr) return;
    opts_.tools->reset();
    opts_.tools->attach(rt);
  };

  if (opts_.randomWalk) {
    for (std::uint64_t i = 0; i < opts_.maxSchedules; ++i) {
      if (prepare) prepare();
      rt::ControlledRuntime rt(
          std::make_unique<rt::RandomPolicy>());
      auto rec = std::make_unique<rt::RecordingPolicy>(
          std::make_unique<rt::RandomPolicy>());
      rt::RecordingPolicy* recPtr = rec.get();
      rt.setPolicy(std::move(rec));
      attachTools(rt);
      opts.seed = opts_.seed + i;
      rt::RunResult r = rt.run(body, opts);
      ++result.schedules;
      result.totalSteps += r.steps;
      if (r.status == rt::RunStatus::Deadlock) ++result.deadlocks;
      if (bugIn(r)) {
        ++result.oracleFailures;
        if (!result.bugFound) {
          result.bugFound = true;
          result.firstBugSchedule = result.schedules;
          result.counterexample = recPtr->schedule();
          result.bugResult = r;
        }
        if (opts_.stopAtFirstBug) return result;
      }
    }
    return result;
  }

  ExplorerPolicy policy(opts_.preemptionBound);
  for (std::uint64_t i = 0; i < opts_.maxSchedules; ++i) {
    if (prepare) prepare();
    rt::ControlledRuntime rt(std::make_unique<rt::PolicyRef>(policy));
    attachTools(rt);
    opts.seed = opts_.seed;
    rt::RunResult r = rt.run(body, opts);
    ++result.schedules;
    result.totalSteps += r.steps;
    if (r.status == rt::RunStatus::Deadlock) ++result.deadlocks;
    if (bugIn(r)) {
      ++result.oracleFailures;
      if (!result.bugFound) {
        result.bugFound = true;
        result.firstBugSchedule = result.schedules;
        result.counterexample = policy.lastSchedule();
        result.bugResult = r;
      }
      if (opts_.stopAtFirstBug) return result;
    }
    if (!policy.backtrack()) {
      result.exhausted = !policy.divergenceDetected();
      return result;
    }
  }
  return result;
}

ExploreResult exploreSpec(const experiment::RunSpec& spec,
                          ExploreOptions opts) {
  auto program = suite::makeProgram(spec.programName);
  experiment::ToolStack owned;
  if (opts.tools == nullptr) {
    owned = experiment::makeToolStack(spec.tool);
    opts.tools = &owned;
  }
  if (spec.runOptions) opts.maxStepsPerRun = spec.runOptions->maxSteps;
  if (spec.seedBase != 0) opts.seed = spec.seedBase;
  Explorer ex(opts);
  return ex.explore(
      [&](rt::Runtime& rr) { program->body(rr); },
      [&](const rt::RunResult& r) {
        return program->evaluate(r) == suite::Verdict::BugManifested;
      },
      [&] { program->reset(); });
}

}  // namespace mtt::explore
