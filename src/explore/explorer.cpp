#include "explore/explorer.hpp"

#include <algorithm>

#include "experiment/experiment.hpp"
#include "suite/program.hpp"

namespace mtt::explore {

namespace {

/// Operation descriptors in `alts` order (empty descriptors when the
/// context carries none — sleep sets then degrade to no pruning, since a
/// default-constructed op is never independent with itself).
std::vector<rt::PendingOpInfo> opsFor(const std::vector<ThreadId>& alts,
                                      const rt::PickContext& ctx) {
  std::vector<rt::PendingOpInfo> out;
  out.reserve(alts.size());
  for (ThreadId t : alts) {
    const rt::PendingOpInfo* op = ctx.opOf(t);
    rt::PendingOpInfo info;
    info.thread = t;
    out.push_back(op != nullptr ? *op : info);
  }
  return out;
}

bool inSet(const std::vector<rt::PendingOpInfo>& set,
           const rt::PendingOpInfo& op) {
  return std::find(set.begin(), set.end(), op) != set.end();
}

}  // namespace

void ExplorerPolicy::onRunStart(std::uint64_t seed) {
  (void)seed;
  step_ = 0;
  pruned_ = false;
  sleep_.clear();
  lastSchedule_.decisions.clear();
}

void ExplorerPolicy::advanceSleepSet(
    const std::vector<rt::PendingOpInfo>& altOps, std::uint32_t idx) {
  // Child sleep set = {z in S : independent(z, chosen)} plus the explored
  // earlier siblings (their subtrees are complete, so reordering the chosen
  // op before them is redundant) — kept only while independent with chosen.
  const rt::PendingOpInfo chosen = altOps[idx];
  std::vector<rt::PendingOpInfo> next;
  for (const rt::PendingOpInfo& z : sleep_) {
    if (rt::independent(z, chosen)) next.push_back(z);
  }
  for (std::uint32_t i = 0; i < idx; ++i) {
    const rt::PendingOpInfo& sib = altOps[i];
    if (!inSet(sleep_, sib) && rt::independent(sib, chosen) &&
        !inSet(next, sib)) {
      next.push_back(sib);
    }
  }
  sleep_ = std::move(next);
}

std::vector<ThreadId> ExplorerPolicy::orderAlternatives(
    const rt::PickContext& ctx) const {
  // Continue-current first (a non-preemptive choice), then the others by
  // ascending id.  With this ordering, alternative index 0 along the whole
  // prefix is exactly round-robin — DFS explores low-preemption schedules
  // first, which is what makes preemption bounding effective.
  std::vector<ThreadId> out;
  bool currentEnabled =
      !ctx.currentYielding &&
      std::find(ctx.enabled.begin(), ctx.enabled.end(), ctx.current) !=
          ctx.enabled.end();
  if (currentEnabled) out.push_back(ctx.current);
  for (ThreadId t : ctx.enabled) {
    if (!(currentEnabled && t == ctx.current)) out.push_back(t);
  }
  return out;
}

int ExplorerPolicy::preemptionsUpTo(std::size_t len,
                                    std::uint32_t lastIdx) const {
  // Preemptions in prefix_[0, len), with entry len-1's idx overridden by
  // lastIdx (used to cost a hypothetical alternative during backtracking).
  int p = 0;
  for (std::size_t i = 0; i < len; ++i) {
    std::uint32_t idx = (i + 1 == len) ? lastIdx : prefix_[i].idx;
    if (idx > 0 && prefix_[i].currentWasEnabled) ++p;
  }
  return p;
}

ThreadId ExplorerPolicy::pick(const rt::PickContext& ctx) {
  if (pruned_) {
    // Abandoned (redundant) run: finish it deterministically without
    // extending the decision tree below the pruned node.
    return ctx.enabled.front();
  }
  std::vector<ThreadId> alts = orderAlternatives(ctx);
  bool currentEnabled = !alts.empty() && alts.front() == ctx.current &&
                        !ctx.currentYielding &&
                        std::find(ctx.enabled.begin(), ctx.enabled.end(),
                                  ctx.current) != ctx.enabled.end();
  if (step_ < prefix_.size()) {
    // Replaying the committed prefix.
    Choice& c = prefix_[step_];
    if (c.realCount != alts.size()) diverged_ = true;
    std::uint32_t idx = std::min<std::uint32_t>(
        c.idx, static_cast<std::uint32_t>(alts.size()) - 1);
    if (sleepSets_) advanceSleepSet(opsFor(alts, ctx), idx);
    ++step_;
    lastSchedule_.decisions.push_back(rt::Decision::thread(alts[idx]));
    return alts[idx];
  }
  // Fresh node: take the first explorable alternative and record the
  // branching degree.  When the preemption budget is exhausted, preemptive
  // alternatives are not explorable, so the recorded count collapses
  // accordingly.
  Choice c;
  c.idx = 0;
  c.currentWasEnabled = currentEnabled;
  // Would taking a preemptive alternative (idx > 0) at this node still fit
  // the budget?  If not, only alternative 0 is ever explorable here.
  bool budgetLeft =
      preemptionBound_ < 0 ||
      preemptionsUpTo(prefix_.size(),
                      prefix_.empty() ? 0 : prefix_.back().idx) +
              (currentEnabled ? 1 : 0) <=
          preemptionBound_;
  c.realCount = static_cast<std::uint32_t>(alts.size());
  c.count = (currentEnabled && !budgetLeft) ? 1 : c.realCount;
  if (sleepSets_) {
    c.altOps = opsFor(alts, ctx);
    c.sleepIn = sleep_;
    // Asleep alternatives are not explorable: their reordering against the
    // run that put them to sleep is already covered.
    std::uint32_t j = 0;
    while (j < c.count && inSet(c.sleepIn, c.altOps[j])) ++j;
    if (j >= c.count) {
      // Every explorable alternative is asleep — the whole subtree is
      // redundant.  Mark the run pruned; backtrack() pops this node.
      pruned_ = true;
      c.count = 0;
      prefix_.push_back(c);
      ++step_;
      return alts[0];
    }
    c.idx = j;
    advanceSleepSet(c.altOps, j);
  }
  prefix_.push_back(c);
  ++step_;
  lastSchedule_.decisions.push_back(rt::Decision::thread(alts[c.idx]));
  return alts[c.idx];
}

std::uint32_t ExplorerPolicy::pickStore(const rt::StorePickContext& ctx) {
  const auto count = static_cast<std::uint32_t>(ctx.options.size());
  if (pruned_) return 0;
  if (step_ < prefix_.size()) {
    Choice& c = prefix_[step_];
    if (!c.isStore || c.realCount != count) diverged_ = true;
    std::uint32_t idx = std::min<std::uint32_t>(c.idx, count - 1);
    ++step_;
    lastSchedule_.decisions.push_back(rt::Decision::store(idx));
    return idx;
  }
  // Fresh store node: observe the coherence-newest value first (the SC
  // behaviour), enumerate older observable stores on backtracking.
  Choice c;
  c.idx = 0;
  c.isStore = true;
  c.count = count;
  c.realCount = count;
  prefix_.push_back(c);
  ++step_;
  lastSchedule_.decisions.push_back(rt::Decision::store(0));
  return 0;
}

bool ExplorerPolicy::backtrack() {
  while (!prefix_.empty()) {
    Choice& c = prefix_.back();
    std::uint32_t j = c.idx + 1;
    if (sleepSets_ && !c.isStore) {
      // Skip alternatives asleep at this node (store nodes carry no
      // operation descriptors; every store option is explorable).
      while (j < c.count && inSet(c.sleepIn, c.altOps[j])) ++j;
    }
    if (j < c.count) {
      // Check the preemption budget for the incremented alternative.
      if (preemptionBound_ < 0 ||
          preemptionsUpTo(prefix_.size(), j) <= preemptionBound_) {
        c.idx = j;
        return true;
      }
    }
    prefix_.pop_back();
  }
  return false;
}

ExploreResult Explorer::explore(
    const std::function<void(rt::Runtime&)>& body,
    const std::function<bool(const rt::RunResult&)>& oracle,
    const std::function<void()>& prepare) {
  auto bugIn = [&](const rt::RunResult& r) {
    return oracle ? oracle(r) : !r.ok();
  };

  ExploreResult result;
  rt::RunOptions opts;
  opts.maxSteps = opts_.maxStepsPerRun;

  auto attachTools = [this](rt::Runtime& rt) {
    if (opts_.tools == nullptr) return;
    opts_.tools->reset();
    opts_.tools->attach(rt);
  };

  if (opts_.randomWalk) {
    for (std::uint64_t i = 0; i < opts_.maxSchedules; ++i) {
      if (prepare) prepare();
      rt::ControlledRuntime rt(
          std::make_unique<rt::RandomPolicy>());
      auto rec = std::make_unique<rt::RecordingPolicy>(
          std::make_unique<rt::RandomPolicy>());
      rt::RecordingPolicy* recPtr = rec.get();
      rt.setPolicy(std::move(rec));
      attachTools(rt);
      opts.seed = opts_.seed + i;
      rt::RunResult r = rt.run(body, opts);
      ++result.schedules;
      result.totalSteps += r.steps;
      if (r.status == rt::RunStatus::Deadlock) ++result.deadlocks;
      if (bugIn(r)) {
        ++result.oracleFailures;
        if (!result.bugFound) {
          result.bugFound = true;
          result.firstBugSchedule = result.schedules;
          result.counterexample = recPtr->schedule();
          result.bugResult = r;
        }
        if (opts_.stopAtFirstBug) return result;
      }
    }
    return result;
  }

  ExplorerPolicy policy(opts_.preemptionBound, opts_.sleepSets);
  for (std::uint64_t i = 0; i < opts_.maxSchedules; ++i) {
    if (prepare) prepare();
    rt::ControlledRuntime rt(std::make_unique<rt::PolicyRef>(policy));
    attachTools(rt);
    opts.seed = opts_.seed;
    rt::RunResult r = rt.run(body, opts);
    result.totalSteps += r.steps;
    if (policy.prunedRun()) {
      // The run hit a fully-slept node: it is Mazurkiewicz-equivalent to an
      // already-explored schedule, so it is discarded — not counted and not
      // oracle-evaluated (its verdicts are covered by explored runs).
      ++result.prunedRuns;
    } else {
      ++result.schedules;
      if (r.status == rt::RunStatus::Deadlock) ++result.deadlocks;
      if (bugIn(r)) {
        ++result.oracleFailures;
        if (!result.bugFound) {
          result.bugFound = true;
          result.firstBugSchedule = result.schedules;
          result.counterexample = policy.lastSchedule();
          result.bugResult = r;
        }
        if (opts_.stopAtFirstBug) return result;
      }
    }
    if (!policy.backtrack()) {
      result.exhausted = !policy.divergenceDetected();
      return result;
    }
  }
  return result;
}

ExploreResult exploreSpec(const experiment::RunSpec& spec,
                          ExploreOptions opts) {
  auto program = suite::makeProgram(spec.programName);
  experiment::ToolStack owned;
  if (opts.tools == nullptr) {
    owned = experiment::makeToolStack(spec.tool);
    opts.tools = &owned;
  }
  if (spec.runOptions) opts.maxStepsPerRun = spec.runOptions->maxSteps;
  if (spec.seedBase != 0) opts.seed = spec.seedBase;
  Explorer ex(opts);
  return ex.explore(
      [&](rt::Runtime& rr) { program->body(rr); },
      [&](const rt::RunResult& r) {
        return program->evaluate(r) == suite::Verdict::BugManifested;
      },
      [&] { program->reset(); });
}

}  // namespace mtt::explore
