// Systematic state-space exploration of real (instrumented) programs —
// Section 2.2 of the paper:
//
//   "Such tools systematically explore the state space of a system by
//    controlling and observing the execution of all the components, and by
//    reinitializing their executions.  They search for deadlocks, and for
//    violations of user-specified assertions.  Whenever an error is detected
//    during state-space exploration, a scenario leading to the error state
//    is saved.  Scenarios can be executed and replayed."
//
// This is the VeriSoft-style *stateless* search over the controlled
// runtime: the schedule space is enumerated by depth-first search over
// scheduling decisions, re-running the program from scratch for each
// schedule (replay technology "is needed to force interleavings" — here the
// controlled scheduler provides it).  Knobs:
//   * preemption bounding (iterative context bounding): explore schedules
//     with at most k preemptive switches first — most bugs need few;
//   * sleep-set pruning (Godefroid): using rt::independent() over the
//     choice-point operation descriptors, skip schedules that only reorder
//     independent operations — strictly fewer runs, identical verdicts
//     (sleep sets alone preserve every reachable state, hence every
//     deadlock, assertion failure, and oracle verdict);
//   * random walk mode: sample schedules instead of enumerating (baseline).
// The saved scenario is an rt::Schedule, replayable via rt::ReplayPolicy /
// mtt::replay.
#pragma once

#include <functional>
#include <vector>

#include "experiment/tool_stack.hpp"
#include "rt/controlled_runtime.hpp"
#include "rt/policy.hpp"

namespace mtt::experiment {
struct RunSpec;
}  // namespace mtt::experiment

namespace mtt::explore {

struct ExploreOptions {
  /// Optional tool stack attached to every explored execution (detectors,
  /// coverage, noise).  Reset before each run, so the stack's final state
  /// describes the last executed schedule — with stopAtFirstBug that is the
  /// counterexample run.  Borrowed: must outlive the explore() call.
  experiment::ToolStack* tools = nullptr;
  /// Maximum complete executions to try.
  std::uint64_t maxSchedules = 10'000;
  /// Maximum preemptive context switches per schedule (-1 = unbounded).
  /// A preemption is choosing away from the running thread while it is
  /// enabled and not yielding.
  int preemptionBound = -1;
  /// Per-run step limit (livelock guard inside one schedule).
  std::uint64_t maxStepsPerRun = 200'000;
  /// Stop at the first schedule whose oracle reports a bug.
  bool stopAtFirstBug = true;
  /// Sleep-set pruning: skip runs that only commute independent operations
  /// of an already-explored run.  Sound for every property the explorer
  /// reports (the pruned runs reach no new states).
  bool sleepSets = false;
  /// Sample random schedules instead of DFS enumeration.
  bool randomWalk = false;
  std::uint64_t seed = 1;
};

struct ExploreResult {
  std::uint64_t schedules = 0;   ///< complete executions performed
  std::uint64_t prunedRuns = 0;  ///< runs discarded by sleep-set pruning
  std::uint64_t totalSteps = 0;  ///< scheduling decisions across all runs
  bool exhausted = false;        ///< schedule space fully enumerated
  bool bugFound = false;
  std::uint64_t firstBugSchedule = 0;  ///< 1-based index of the first bug
  rt::Schedule counterexample;         ///< replayable scenario
  rt::RunResult bugResult;
  std::uint64_t deadlocks = 0;
  std::uint64_t oracleFailures = 0;
};

/// The DFS-driving schedule policy.  One instance persists across runs; the
/// Explorer re-runs the program until the decision tree is exhausted.
class ExplorerPolicy final : public rt::SchedulePolicy {
 public:
  explicit ExplorerPolicy(int preemptionBound = -1, bool sleepSets = false)
      : preemptionBound_(preemptionBound), sleepSets_(sleepSets) {}

  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const rt::PickContext& ctx) override;
  /// Weak-memory store choice points are DFS nodes exactly like thread
  /// picks (no preemption cost, no sleep-set pruning — store options have
  /// no independence relation here), so backtrack() enumerates them too.
  std::uint32_t pickStore(const rt::StorePickContext& ctx) override;

  /// Advances to the next unexplored schedule; false when exhausted.
  bool backtrack();
  /// Decisions taken in the last run (the scenario).
  const rt::Schedule& lastSchedule() const { return lastSchedule_; }
  /// True when the program behaved nondeterministically under replayed
  /// prefixes (would invalidate the search).
  bool divergenceDetected() const { return diverged_; }
  /// True when the last run hit a node whose every alternative was asleep:
  /// the run is Mazurkiewicz-equivalent to an already-explored one and must
  /// be discarded (not counted, not oracle-evaluated).
  bool prunedRun() const { return pruned_; }

 private:
  struct Choice {
    std::uint32_t idx = 0;    ///< which alternative is being explored
    std::uint32_t count = 0;  ///< explorable alternatives (budget-capped)
    std::uint32_t realCount = 0;     ///< actual alternatives (for the
                                     ///< determinism/divergence check)
    bool isStore = false;            ///< store-observation node (StorePick)
    bool currentWasEnabled = false;  ///< picking idx>0 costs a preemption
    // Sleep-set mode: operation descriptors of the alternatives (parallel
    // to the orderAlternatives() order) and the sleep set inherited at this
    // node, so backtrack() can skip asleep alternatives without a context.
    std::vector<rt::PendingOpInfo> altOps;
    std::vector<rt::PendingOpInfo> sleepIn;
  };
  std::vector<ThreadId> orderAlternatives(const rt::PickContext& ctx) const;
  int preemptionsUpTo(std::size_t len, std::uint32_t lastIdx) const;
  /// Advances sleep_ to the child set after choosing alternative `idx`.
  void advanceSleepSet(const std::vector<rt::PendingOpInfo>& altOps,
                       std::uint32_t idx);

  int preemptionBound_;
  bool sleepSets_;
  std::vector<Choice> prefix_;
  std::size_t step_ = 0;
  rt::Schedule lastSchedule_;
  bool diverged_ = false;
  bool pruned_ = false;
  std::vector<rt::PendingOpInfo> sleep_;  ///< sleep set along the current path
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions opts = {}) : opts_(opts) {}

  /// Explores schedules of `body`.  `oracle` returns true when the bug
  /// manifested in a run (default: any abnormal termination).  `prepare`
  /// (optional) runs before each execution (e.g. suite::Program::reset).
  ExploreResult explore(
      const std::function<void(rt::Runtime&)>& body,
      const std::function<bool(const rt::RunResult&)>& oracle = {},
      const std::function<void()>& prepare = {});

 private:
  ExploreOptions opts_;
};

/// Spec-driven exploration: resolves the suite program named by `spec`,
/// builds the tool stack its ToolConfig describes (unless opts.tools is
/// already set), takes the per-run step limit from spec.runOptions and the
/// walk seed from spec.seedBase (when nonzero), and uses the program's own
/// oracle.  This is the RunSpec face of the explorer — the same knob struct
/// executeRun and the farm consume; exploration-only knobs (enumeration
/// budget, preemption bound, sleep sets, random walk) stay in
/// ExploreOptions.  spec.tool.policy has no effect here — the explorer owns
/// scheduling — which is why the CLI rejects an explicit --policy on the
/// explore subcommand (exit 2) instead of silently dropping it.
ExploreResult exploreSpec(const experiment::RunSpec& spec,
                          ExploreOptions opts = {});

}  // namespace mtt::explore
