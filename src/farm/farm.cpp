// mtt::farm — thread-pool worker model, work-stealing dispatch, per-run
// watchdog, retry-with-backoff, and the deterministic campaign merge.
// The forked-process worker model lives in process_pool.cpp.
#include "farm/farm.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <thread>

#include "core/backoff.hpp"
#include "core/stats.hpp"
#include "farm/collector.hpp"

namespace mtt::farm {

namespace detail {
namespace {

// One worker's share of the seed space.  Owners pop from the front (so
// dispatch order tracks run order); thieves steal from the back (so a
// steal grabs the work farthest from the victim's current position).
struct Shard {
  std::mutex mu;
  std::deque<std::uint64_t> q;
};

std::optional<std::uint64_t> popOwn(Shard& s) {
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.q.empty()) return std::nullopt;
  std::uint64_t idx = s.q.front();
  s.q.pop_front();
  return idx;
}

std::optional<std::uint64_t> steal(std::vector<Shard>& shards,
                                   std::size_t self) {
  // Victim choice: the richest shard, so repeated steals spread evenly.
  std::size_t victim = shards.size();
  std::size_t best = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i == self) continue;
    std::lock_guard<std::mutex> lk(shards[i].mu);
    if (shards[i].q.size() > best) {
      best = shards[i].q.size();
      victim = i;
    }
  }
  if (victim == shards.size()) return std::nullopt;
  std::lock_guard<std::mutex> lk(shards[victim].mu);
  if (shards[victim].q.empty()) return std::nullopt;
  std::uint64_t idx = shards[victim].q.back();
  shards[victim].q.pop_back();
  return idx;
}

void drainAll(std::vector<Shard>& shards) {
  for (auto& s : shards) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.q.clear();
  }
}

/// A run abandoned to its host thread by the watchdog; joined with a grace
/// period at campaign end so normal stragglers finish cleanly.
struct Abandoned {
  std::thread host;
  std::future<experiment::RunObservation> result;
};

class ThreadPool {
 public:
  ThreadPool(std::uint64_t total, const JobFn& fn, const FarmOptions& options,
             Collector& collector)
      : fn_(fn), options_(options), collector_(collector) {
    std::size_t workers = resolveJobs(options.jobs);
    if (total < workers) workers = static_cast<std::size_t>(total);
    if (workers == 0) workers = 1;
    workers_ = workers;
    shards_ = std::vector<Shard>(workers);
    // Contiguous blocks: worker w starts at its own slice of the seed
    // space, so with no stealing the dispatch order is exactly run order.
    // Runs already delivered by a resumed journal are never re-dispatched.
    for (std::uint64_t i = 0; i < total; ++i) {
      if (collector.isDone(i)) continue;
      shards_[static_cast<std::size_t>(i * workers / total)].q.push_back(i);
    }
  }

  void run() {
    std::vector<std::thread> pool;
    pool.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      pool.emplace_back([this, w] { workerLoop(w); });
    }
    for (auto& t : pool) t.join();
    reapAbandoned();
  }

 private:
  void workerLoop(std::size_t self) {
    for (;;) {
      if (collector_.stopped()) {
        drainAll(shards_);
        return;
      }
      std::optional<std::uint64_t> idx = popOwn(shards_[self]);
      if (!idx) idx = steal(shards_, self);
      if (!idx) return;
      collector_.deliver(executeWithRetry(*idx, self), self);
    }
  }

  experiment::RunObservation executeWithRetry(std::uint64_t idx,
                                              std::size_t self) {
    std::string lastError;
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        experiment::RunObservation obs = executeSupervised(idx);
        obs.attempts = attempt;
        return obs;
      } catch (const Deadline&) {
        // A watchdog expiry is a run outcome, not an infra failure: the
        // program (or the tool stack) hung; retrying would hang again.
        return collector_.supervisedRecord(idx, "timeout",
                                           "watchdog expired", attempt);
      } catch (const std::exception& e) {
        lastError = e.what();
      } catch (...) {
        lastError = "unknown harness error";
      }
      if (attempt > options_.maxRetries) {
        return collector_.supervisedRecord(idx, "infra-error", lastError,
                                           attempt);
      }
      std::this_thread::sleep_for(
          core::backoffDelay(retryPolicy(options_), attempt));
      (void)self;
    }
  }

  struct Deadline {};

  experiment::RunObservation executeSupervised(std::uint64_t idx) {
    if (options_.runTimeout.count() <= 0) return fn_(idx);
    // Host the run on its own thread so the watchdog can abandon it: the
    // worker stays available, the hung run keeps its thread until it
    // finishes on its own (the runtimes' step limits and block timeouts
    // make runaway runs finite in practice).
    std::packaged_task<experiment::RunObservation()> task(
        [this, idx] { return fn_(idx); });
    std::future<experiment::RunObservation> result = task.get_future();
    std::thread host(std::move(task));
    if (result.wait_for(options_.runTimeout) ==
        std::future_status::ready) {
      host.join();
      return result.get();  // rethrows job exceptions for the retry loop
    }
    {
      std::lock_guard<std::mutex> lk(abandonedMu_);
      abandoned_.push_back(Abandoned{std::move(host), std::move(result)});
    }
    throw Deadline{};
  }

  void reapAbandoned() {
    std::lock_guard<std::mutex> lk(abandonedMu_);
    auto grace = std::max<std::chrono::milliseconds>(
        options_.runTimeout * 4, std::chrono::milliseconds(500));
    for (auto& a : abandoned_) {
      if (a.result.wait_for(grace) == std::future_status::ready) {
        a.host.join();
      } else {
        a.host.detach();  // truly hung; leak the thread, keep the campaign
      }
    }
    abandoned_.clear();
  }

  const JobFn& fn_;
  const FarmOptions& options_;
  Collector& collector_;
  std::size_t workers_ = 0;
  std::vector<Shard> shards_;
  std::mutex abandonedMu_;
  std::vector<Abandoned> abandoned_;
};

}  // namespace

CampaignResult runJobsThreads(std::uint64_t total, const JobFn& fn,
                              const FarmOptions& options) {
  Stopwatch clock;
  Collector collector(total, options);
  CampaignResult cr;
  cr.requested = total;
  cr.model = WorkerModel::Thread;
  cr.workers = std::min<std::size_t>(resolveJobs(options.jobs),
                                     std::max<std::uint64_t>(total, 1));
  if (total > 0) {
    ThreadPool pool(total, fn, options, collector);
    pool.run();
  }
  cr.records = collector.finish();
  cr.timeouts = collector.timeouts();
  cr.crashes = collector.crashes();
  cr.infraErrors = collector.infraErrors();
  cr.retries = collector.retries();
  cr.resumed = collector.resumed();
  cr.quarantined = collector.quarantined();
  cr.stoppedEarly = collector.stopped();
  cr.abortDiagnostic = collector.ioError();
  cr.wallSeconds = clock.elapsedSeconds();
  return cr;
}

}  // namespace detail

CandidateScan scanCandidates(std::uint64_t total,
                             const std::function<bool(std::uint64_t)>& accept,
                             std::size_t jobs) {
  CandidateScan scan;
  auto tryIndex = [&accept](std::uint64_t i) {
    try {
      return accept(i);
    } catch (...) {
      return false;  // a throwing candidate is a rejected candidate
    }
  };
  if (jobs <= 1 || total <= 1) {
    for (std::uint64_t i = 0; i < total; ++i) {
      ++scan.evaluated;
      if (tryIndex(i)) {
        scan.found = true;
        scan.index = i;
        return scan;
      }
    }
    return scan;
  }
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> best{total};
  std::atomic<std::uint64_t> evaluated{0};
  std::size_t workers = std::min<std::size_t>(resolveJobs(jobs),
                                              static_cast<std::size_t>(total));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        // Skipping is only safe past an already-accepted smaller index:
        // every index below the final minimum is always evaluated.
        if (i >= total || i >= best.load(std::memory_order_acquire)) return;
        evaluated.fetch_add(1, std::memory_order_relaxed);
        if (tryIndex(i)) {
          std::uint64_t cur = best.load(std::memory_order_acquire);
          while (i < cur &&
                 !best.compare_exchange_weak(cur, i,
                                             std::memory_order_acq_rel)) {
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  scan.evaluated = evaluated.load();
  std::uint64_t b = best.load();
  scan.found = b < total;
  scan.index = scan.found ? b : 0;
  return scan;
}

CampaignResult runJobs(std::uint64_t total, const JobFn& fn,
                       const FarmOptions& options) {
  if (options.model == WorkerModel::Process &&
      detail::processIsolationSupported()) {
    return detail::runJobsProcesses(total, fn, options);
  }
  return detail::runJobsThreads(total, fn, options);
}

ExperimentCampaign runExperimentFarm(const experiment::ExperimentSpec& spec,
                                     const FarmOptions& options) {
  // Fail fast on configuration mistakes: a bad tool name must be a single
  // clear error, not spec.runs retried infra failures.
  experiment::validateToolConfig(spec.tool);
  suite::makeProgram(spec.programName);  // throws on unknown program

  FarmOptions opts = options;
  opts.seedForIndex = [&spec](std::uint64_t i) { return spec.seedBase + i; };
  if (!opts.journalPath.empty() && opts.journalConfig.empty()) {
    // Identity of the campaign for resume validation.  Worker count and
    // model are deliberately excluded: the merge is independent of both, so
    // a resume may change --jobs or isolation freely.
    opts.journalConfig = spec.programName + "|" + spec.tool.label() + "|" +
                         std::to_string(spec.runs) + "|" +
                         std::to_string(spec.seedBase);
  }
  const bool hasDetectors = !spec.tool.detectors.empty();

  // Workers lease pooled tool stacks instead of rebuilding the tool set per
  // run; executeRun resets each leased stack, so results are unchanged.  The
  // pool is shared-ptr captured because a timed-out worker thread can
  // outlive this call while still holding its lease.
  auto pool = std::make_shared<experiment::ToolStackPool>(
      [tool = spec.tool]() { return experiment::makeToolStack(tool); });

  ExperimentCampaign out;
  out.campaign = runJobs(
      spec.runs,
      [&spec, pool](std::uint64_t i) {
        auto lease = pool->acquire();
        return experiment::executeRun(spec, static_cast<std::size_t>(i),
                                      *lease);
      },
      opts);

  out.result.programName = spec.programName;
  out.result.toolLabel = spec.tool.label();
  out.result.runs = out.campaign.records.size();
  for (auto& obs : out.campaign.records) {
    // Farm-synthesized records don't know whether the tool stack had
    // detectors attached; patch that in so detectorHit trials stay
    // consistent with the serial path.
    if (obs.supervised()) obs.hasDetectors = hasDetectors;
    experiment::accumulate(out.result, obs);
  }
  return out;
}

}  // namespace mtt::farm
