// Record serialization for mtt::farm: the JSONL observability stream and
// the escaped-TSV framing used on the worker-process result pipe.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "coverage/snapshot.hpp"
#include "farm/farm.hpp"
#include "farm/record_io.hpp"

namespace mtt::farm {

std::string_view to_string(WorkerModel m) {
  switch (m) {
    case WorkerModel::Thread: return "thread";
    case WorkerModel::Process: return "process";
  }
  return "?";
}

std::size_t resolveJobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string toJson(const experiment::RunObservation& o) {
  std::string j = "{";
  j += "\"run\":" + std::to_string(o.runIndex);
  j += ",\"seed\":" + std::to_string(o.seed);
  j += ",\"status\":";
  appendJsonString(j, o.status);
  j += ",\"manifested\":";
  j += o.manifested ? "true" : "false";
  j += ",\"detector_hit\":";
  j += o.detectorHit ? "true" : "false";
  j += ",\"warnings\":" + std::to_string(o.warnings);
  j += ",\"true_warnings\":" + std::to_string(o.trueWarnings);
  j += ",\"false_warnings\":" + std::to_string(o.falseWarnings);
  j += ",\"deadlock_potentials\":" + std::to_string(o.deadlockPotentials);
  j += ",\"wall_ms\":" + formatDouble(o.wallSeconds * 1e3);
  j += ",\"events\":" + std::to_string(o.events);
  j += ",\"injections\":" + std::to_string(o.noiseInjections);
  j += ",\"outcome\":";
  appendJsonString(j, o.outcome);
  j += ",\"dispatch_deliveries\":" + std::to_string(o.dispatchDeliveries);
  if (o.dispatchNsPerEvent > 0.0) {
    j += ",\"dispatch_ns_per_event\":" + formatDouble(o.dispatchNsPerEvent);
  }
  j += ",\"attempts\":" + std::to_string(o.attempts);
  if (!o.coverage.empty()) {
    // Decoded covered-count for dashboards plus the full hex blob so the
    // stream is lossless (guide replays/audits read it back).
    try {
      auto snap = coverage::Snapshot::decode(o.coverage);
      j += ",\"coverage_covered\":" + std::to_string(snap.coveredCount());
      j += ",\"coverage_known\":" + std::to_string(snap.taskCount());
    } catch (const std::exception&) {
      // Malformed blob: still emit the raw bytes below.
    }
    j += ",\"coverage\":";
    appendJsonString(j, coverage::toHex(o.coverage));
  }
  if (!o.failureMessage.empty()) {
    j += ",\"error\":";
    appendJsonString(j, o.failureMessage);
  }
  if (!o.postmortemPath.empty()) {
    j += ",\"postmortem\":";
    appendJsonString(j, o.postmortemPath);
  }
  j += "}";
  return j;
}

// Pipe framing: '\t' separates fields, so embedded tabs/newlines/backslashes
// are escaped.  The format only ever talks between processes of the same
// build (farm worker pipe, journal payloads, fleet frames), so there is no
// versioning concern beyond the field count.
void appendEscapedField(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
}

std::string unescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> splitTabFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == '\t') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string encodePipeRecord(const experiment::RunObservation& o) {
  std::string line;
  line += std::to_string(o.runIndex);
  line += '\t';
  line += std::to_string(o.seed);
  line += '\t';
  appendEscapedField(line, o.status);
  line += '\t';
  line += o.manifested ? '1' : '0';
  line += '\t';
  line += o.hasDetectors ? '1' : '0';
  line += '\t';
  line += o.detectorHit ? '1' : '0';
  line += '\t';
  line += std::to_string(o.warnings);
  line += '\t';
  line += std::to_string(o.trueWarnings);
  line += '\t';
  line += std::to_string(o.falseWarnings);
  line += '\t';
  line += std::to_string(o.deadlockPotentials);
  line += '\t';
  line += formatDouble(o.wallSeconds);
  line += '\t';
  line += std::to_string(o.events);
  line += '\t';
  line += std::to_string(o.noiseInjections);
  line += '\t';
  appendEscapedField(line, o.outcome);
  line += '\t';
  appendEscapedField(line, o.failureMessage);
  line += '\t';
  line += std::to_string(o.attempts);
  line += '\t';
  line += std::to_string(o.dispatchDeliveries);
  line += '\t';
  line += formatDouble(o.dispatchNsPerEvent);
  line += '\t';
  appendEscapedField(line, o.postmortemPath);
  line += '\t';
  // Hex, not escaped raw bytes: the blob is binary and the journal format
  // wants printable payloads.
  line += coverage::toHex(o.coverage);
  return line;
}

bool decodePipeRecord(const std::string& line,
                      experiment::RunObservation& o) {
  std::vector<std::string> f = splitTabFields(line);
  // 19 fields: pre-coverage records (journals written by earlier builds);
  // 20: current format with the trailing coverage snapshot hex.
  if (f.size() != 19 && f.size() != 20) return false;
  try {
    o.runIndex = std::stoull(f[0]);
    o.seed = std::stoull(f[1]);
    o.status = unescapeField(f[2]);
    o.manifested = f[3] == "1";
    o.hasDetectors = f[4] == "1";
    o.detectorHit = f[5] == "1";
    o.warnings = std::stoull(f[6]);
    o.trueWarnings = std::stoull(f[7]);
    o.falseWarnings = std::stoull(f[8]);
    o.deadlockPotentials = std::stoull(f[9]);
    o.wallSeconds = std::stod(f[10]);
    o.events = std::stoull(f[11]);
    o.noiseInjections = std::stoull(f[12]);
    o.outcome = unescapeField(f[13]);
    o.failureMessage = unescapeField(f[14]);
    o.attempts = static_cast<std::uint32_t>(std::stoul(f[15]));
    o.dispatchDeliveries = std::stoull(f[16]);
    o.dispatchNsPerEvent = std::stod(f[17]);
    o.postmortemPath = unescapeField(f[18]);
    o.coverage = f.size() > 19 ? coverage::fromHex(f[19]) : std::string();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace mtt::farm
