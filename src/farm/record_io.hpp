// Shared run-record codec: the JSONL observability encoding and the
// escaped-TSV pipe framing that ships RunObservations across process
// boundaries — the farm's forked-worker result pipe, the MTTJOURNAL record
// payload, and the mtt::fleet wire protocol all speak this one format, so
// a record journaled by any of them is readable by all of them.
#pragma once

#include <string>
#include <vector>

#include "experiment/experiment.hpp"

namespace mtt::farm {

/// The JSONL encoding of one run record, as streamed to FarmOptions::
/// jsonlPath (one object per line; `worker` is added by the streamer).
std::string toJson(const experiment::RunObservation& o);

/// Compact escaped tab-separated encoding used on the worker-process pipe,
/// in journal record payloads, and in fleet RECORD frames; round-trips
/// exactly (doubles via %.17g, coverage as MSNP1 hex).
std::string encodePipeRecord(const experiment::RunObservation& o);

/// Strict inverse of encodePipeRecord.  Returns false (leaving `o`
/// unspecified) on any malformed input — wrong field count, non-numeric
/// numerics, bad coverage hex — never throws or crashes, so truncated or
/// corrupt frames surface as a clean diagnostic at the caller.
bool decodePipeRecord(const std::string& line, experiment::RunObservation& o);

// --- field-level helpers (shared with the fleet wire protocol) -----------

/// Appends `s` to `out` with '\\', '\t', '\n', '\r' escaped, so the result
/// can be embedded in a tab-separated, newline-terminated frame.
void appendEscapedField(std::string& out, const std::string& s);

/// Inverse of appendEscapedField for a single already-split field.
std::string unescapeField(const std::string& s);

/// Splits a frame line on raw tabs (escaped tabs survive inside fields).
std::vector<std::string> splitTabFields(const std::string& line);

/// Zeroes the wall-clock-dependent fields of a record (wallSeconds,
/// dispatchNsPerEvent).  With FarmOptions::scrubTiming this runs at
/// delivery, making JSONL and journal bytes a pure function of
/// (program, tool config, seed) in controlled mode — the property the
/// fleet's byte-identical-report guarantee and CI byte-compares rest on.
inline void scrubTimingFields(experiment::RunObservation& o) {
  o.wallSeconds = 0.0;
  o.dispatchNsPerEvent = 0.0;
}

}  // namespace mtt::farm
