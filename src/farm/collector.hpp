// Internal to mtt::farm: the thread-safe sink both worker models feed.
// Owns the JSONL stream, the live progress line, the early-stop latch, and
// the record store that the deterministic merge later folds in run order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "farm/farm.hpp"

namespace mtt::farm::detail {

class Collector {
 public:
  Collector(std::uint64_t total, const FarmOptions& options)
      : total_(total), options_(options) {
    if (!options_.jsonlPath.empty()) {
      jsonl_ = std::fopen(options_.jsonlPath.c_str(),
                          options_.jsonlAppend ? "a" : "w");
      if (jsonl_ == nullptr) {
        throw std::runtime_error("mtt::farm: cannot open JSONL path " +
                                 options_.jsonlPath);
      }
    }
  }

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  ~Collector() {
    if (jsonl_ != nullptr) std::fclose(jsonl_);
  }

  /// Records one finished run: stores it, streams the JSONL line, updates
  /// the progress display, and evaluates the early-stop predicate.
  void deliver(experiment::RunObservation obs, std::size_t worker) {
    std::lock_guard<std::mutex> lk(mu_);
    if (obs.status == "timeout") ++timeouts_;
    if (obs.status == "crashed") ++crashes_;
    if (obs.status == "infra-error") ++infraErrors_;
    retries_ += obs.attempts > 0 ? obs.attempts - 1 : 0;
    if (jsonl_ != nullptr) {
      std::string line = toJson(obs);
      // Splice the worker id in as a top-level field before the close.
      line.insert(line.size() - 1, ",\"worker\":" + std::to_string(worker));
      line += '\n';
      std::fputs(line.c_str(), jsonl_);
      std::fflush(jsonl_);
    }
    records_.push_back(std::move(obs));
    if (options_.stopOnRecord && !stop_.load(std::memory_order_relaxed) &&
        options_.stopOnRecord(records_.back())) {
      stop_.store(true, std::memory_order_relaxed);
    }
    maybeProgressLocked(false);
  }

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }
  void requestStop() { stop_.store(true, std::memory_order_relaxed); }

  std::size_t timeouts() const { return timeouts_; }
  std::size_t crashes() const { return crashes_; }
  std::size_t infraErrors() const { return infraErrors_; }
  std::size_t retries() const { return retries_; }
  std::size_t delivered() {
    std::lock_guard<std::mutex> lk(mu_);
    return records_.size();
  }

  /// Final progress line (with newline) + the records, sorted by runIndex.
  std::vector<experiment::RunObservation> finish() {
    std::lock_guard<std::mutex> lk(mu_);
    maybeProgressLocked(true);
    std::sort(records_.begin(), records_.end(),
              [](const experiment::RunObservation& a,
                 const experiment::RunObservation& b) {
                return a.runIndex < b.runIndex;
              });
    return std::move(records_);
  }

  /// Seed for a record the farm synthesizes itself (the job produced
  /// nothing — timeout, crash, or exhausted retries).
  std::uint64_t seedFor(std::uint64_t index) const {
    return options_.seedForIndex ? options_.seedForIndex(index) : index;
  }

  experiment::RunObservation supervisedRecord(std::uint64_t index,
                                              const char* status,
                                              std::string message,
                                              std::uint32_t attempts) const {
    experiment::RunObservation o;
    o.runIndex = index;
    o.seed = seedFor(index);
    o.status = status;
    o.failureMessage = std::move(message);
    o.attempts = attempts;
    return o;
  }

 private:
  void maybeProgressLocked(bool final) {
    if (!options_.progress) return;
    double elapsed = clock_.elapsedSeconds();
    if (!final && elapsed - lastPrint_ < 0.2) return;
    lastPrint_ = elapsed;
    double rate = elapsed > 0.0
                      ? static_cast<double>(records_.size()) / elapsed
                      : 0.0;
    std::fprintf(stderr,
                 "\r[farm] %zu/%llu runs  %.1f runs/s  "
                 "%zu timeout  %zu crash  %zu infra%s",
                 records_.size(), static_cast<unsigned long long>(total_),
                 rate, timeouts_, crashes_, infraErrors_, final ? "\n" : "");
    std::fflush(stderr);
  }

  const std::uint64_t total_;
  const FarmOptions& options_;
  std::FILE* jsonl_ = nullptr;
  mutable std::mutex mu_;
  std::vector<experiment::RunObservation> records_;
  std::atomic<bool> stop_{false};
  std::size_t timeouts_ = 0;
  std::size_t crashes_ = 0;
  std::size_t infraErrors_ = 0;
  std::size_t retries_ = 0;
  Stopwatch clock_;
  double lastPrint_ = -1.0;
};

}  // namespace mtt::farm::detail
