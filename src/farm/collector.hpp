// Internal to mtt::farm: the thread-safe sink both worker models feed.
// Owns the JSONL stream, the live progress line, the early-stop latch, and
// the record store that the deterministic merge later folds in run order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "farm/farm.hpp"
#include "farm/journal.hpp"

namespace mtt::farm::detail {

class Collector {
 public:
  Collector(std::uint64_t total, const FarmOptions& options)
      : total_(total), options_(options) {
    const std::uint64_t digest = journalDigest(options_.journalConfig);
    if (options_.resume && !options_.journalPath.empty()) {
      if (preloadFromJournal(digest)) {
        // Torn tail: repair the file before reopening for append, else the
        // next record would be glued onto the partial final line.
        rewriteJournal(options_.journalPath, digest, total_, records_);
      }
    }
    if (!options_.jsonlPath.empty()) {
      jsonl_ = std::fopen(options_.jsonlPath.c_str(),
                          options_.jsonlAppend ? "a" : "w");
      if (jsonl_ == nullptr) {
        throw std::runtime_error("mtt::farm: cannot open JSONL path " +
                                 options_.jsonlPath);
      }
    }
    if (!options_.journalPath.empty()) {
      journal_.open(options_.journalPath, digest, total_,
                    /*append=*/options_.resume);
    }
  }

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  ~Collector() {
    if (jsonl_ != nullptr) std::fclose(jsonl_);
  }

  /// Records one finished run: stores it, streams the JSONL line, updates
  /// the progress display, and evaluates the early-stop predicate.
  ///
  /// A journal write failure (disk full, short write — real or injected)
  /// latches ioError() and requests a stop instead of propagating: worker
  /// threads must not die on an exception, and the record is deliberately
  /// NOT stored, so a resumed campaign re-runs it — the journal never
  /// claims a run it did not durably record.
  void deliver(experiment::RunObservation obs, std::size_t worker) {
    std::lock_guard<std::mutex> lk(mu_);
    if (ioErrored_) return;  // journal is unreliable; drop further records
    if (options_.scrubTiming) scrubTimingFields(obs);
    try {
      journal_.append(obs);
    } catch (const std::exception& e) {
      ioErrored_ = true;
      ioError_ = std::string("campaign journal write failed: ") + e.what() +
                 "; stopping (the journal tail is repairable and the "
                 "campaign is resumable)";
      std::fprintf(stderr, "\n[farm] %s\n", ioError_.c_str());
      stop_.store(true, std::memory_order_relaxed);
      return;
    }
    if (obs.status == "timeout") ++timeouts_;
    if (obs.status == "crashed") ++crashes_;
    if (obs.status == "infra-error") ++infraErrors_;
    retries_ += obs.attempts > 0 ? obs.attempts - 1 : 0;
    if (jsonl_ != nullptr) {
      std::string line = toJson(obs);
      // Splice the worker id in as a top-level field before the close.
      line.insert(line.size() - 1, ",\"worker\":" + std::to_string(worker));
      line += '\n';
      std::fputs(line.c_str(), jsonl_);
      std::fflush(jsonl_);
    }
    records_.push_back(std::move(obs));
    if (options_.stopOnRecord && !stop_.load(std::memory_order_relaxed) &&
        options_.stopOnRecord(records_.back())) {
      stop_.store(true, std::memory_order_relaxed);
    }
    maybeProgressLocked(false);
  }

  /// Non-empty after a journal I/O failure latched the stop.
  std::string ioError() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ioError_;
  }

  bool stopped() const {
    return stop_.load(std::memory_order_relaxed) ||
           (options_.stopFlag != nullptr &&
            options_.stopFlag->load(std::memory_order_relaxed));
  }
  void requestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// True when run `index` was already delivered by a resumed journal and
  /// must not be dispatched again.
  bool isDone(std::uint64_t index) const { return done_.count(index) != 0; }

  std::size_t timeouts() const { return timeouts_; }
  std::size_t crashes() const { return crashes_; }
  std::size_t infraErrors() const { return infraErrors_; }
  std::size_t retries() const { return retries_; }
  std::size_t resumed() const { return resumed_; }
  std::size_t quarantined() const { return quarantined_; }
  std::size_t delivered() {
    std::lock_guard<std::mutex> lk(mu_);
    return records_.size();
  }

  /// Final progress line (with newline) + the records, sorted by runIndex.
  std::vector<experiment::RunObservation> finish() {
    std::lock_guard<std::mutex> lk(mu_);
    maybeProgressLocked(true);
    std::sort(records_.begin(), records_.end(),
              [](const experiment::RunObservation& a,
                 const experiment::RunObservation& b) {
                return a.runIndex < b.runIndex;
              });
    return std::move(records_);
  }

  /// Seed for a record the farm synthesizes itself (the job produced
  /// nothing — timeout, crash, or exhausted retries).
  std::uint64_t seedFor(std::uint64_t index) const {
    return options_.seedForIndex ? options_.seedForIndex(index) : index;
  }

  experiment::RunObservation supervisedRecord(std::uint64_t index,
                                              const char* status,
                                              std::string message,
                                              std::uint32_t attempts) const {
    experiment::RunObservation o;
    o.runIndex = index;
    o.seed = seedFor(index);
    o.status = status;
    o.failureMessage = std::move(message);
    o.attempts = attempts;
    return o;
  }

 private:
  /// Resume path: load the journal, validate it against this campaign's
  /// config, and adopt its records as already-delivered runs.  Returns
  /// true when the journal tail was torn and the file needs a repair
  /// rewrite before further appends.
  bool preloadFromJournal(std::uint64_t digest) {
    JournalData jd = loadJournal(options_.journalPath);
    // A journal torn inside the header carries no usable identity; treat it
    // as empty (nothing was recorded) rather than mismatched.
    const bool headerless = jd.configDigest == 0 && jd.total == 0;
    if (!headerless) {
      if (jd.configDigest != digest) {
        throw std::runtime_error(
            "journal " + options_.journalPath +
            " was recorded for a different campaign config (digest " +
            std::to_string(jd.configDigest) + " != " +
            std::to_string(digest) +
            "); refusing to merge incomparable records.  Expected config: " +
            options_.journalConfig);
      }
      if (jd.total != total_) {
        throw std::runtime_error(
            "journal " + options_.journalPath + " covers a campaign of " +
            std::to_string(jd.total) + " runs, but this campaign requests " +
            std::to_string(total_) + "; refusing to resume");
      }
    }
    for (experiment::RunObservation& obs : jd.records) {
      if (obs.runIndex >= total_ || !done_.insert(obs.runIndex).second) {
        continue;  // defensive: out-of-range or duplicated index
      }
      if (options_.scrubTiming) scrubTimingFields(obs);
      if (obs.status == "timeout") ++timeouts_;
      if (obs.status == "crashed") ++crashes_;
      if (obs.status == "infra-error") {
        ++infraErrors_;
        ++quarantined_;  // retry budget already exhausted; do not re-burn
      }
      retries_ += obs.attempts > 0 ? obs.attempts - 1 : 0;
      ++resumed_;
      records_.push_back(std::move(obs));
      if (options_.stopOnRecord && !stop_.load(std::memory_order_relaxed) &&
          options_.stopOnRecord(records_.back())) {
        stop_.store(true, std::memory_order_relaxed);
      }
    }
    return jd.tornTail;
  }

  void maybeProgressLocked(bool final) {
    if (!options_.progress) return;
    double elapsed = clock_.elapsedSeconds();
    if (!final && elapsed - lastPrint_ < 0.2) return;
    lastPrint_ = elapsed;
    double rate = elapsed > 0.0
                      ? static_cast<double>(records_.size()) / elapsed
                      : 0.0;
    std::fprintf(stderr,
                 "\r[farm] %zu/%llu runs  %.1f runs/s  "
                 "%zu timeout  %zu crash  %zu infra%s",
                 records_.size(), static_cast<unsigned long long>(total_),
                 rate, timeouts_, crashes_, infraErrors_, final ? "\n" : "");
    std::fflush(stderr);
  }

  const std::uint64_t total_;
  const FarmOptions& options_;
  std::FILE* jsonl_ = nullptr;
  JournalWriter journal_;
  std::unordered_set<std::uint64_t> done_;
  mutable std::mutex mu_;
  std::vector<experiment::RunObservation> records_;
  bool ioErrored_ = false;
  std::string ioError_;
  std::atomic<bool> stop_{false};
  std::size_t timeouts_ = 0;
  std::size_t crashes_ = 0;
  std::size_t infraErrors_ = 0;
  std::size_t retries_ = 0;
  std::size_t resumed_ = 0;
  std::size_t quarantined_ = 0;
  Stopwatch clock_;
  double lastPrint_ = -1.0;
};

}  // namespace mtt::farm::detail
