// Campaign journal: the crash-safe record of which runs already finished.
//
// A farm campaign with a journal path appends one checksummed line per
// completed run; if the campaign is killed (SIGKILL, OOM, power loss), a
// later invocation with `resume` loads the journal, skips the finished
// runs, and merges the journaled records with the fresh ones — in
// controlled mode the final report is byte-identical to an uninterrupted
// campaign, for any worker count.
//
// Format (text, append-only):
//
//   MTTJOURNAL 1
//   config <16-hex FNV-1a of the campaign config text> <total runs>
//   R <16-hex FNV-1a of payload> <payload = encodePipeRecord(observation)>
//   R ...
//
// Durability properties:
//  * Append-only, one record per line, each self-checksummed: truncation at
//    any byte leaves at most one torn final record, which the loader drops
//    (tornTail); every earlier record is intact or the file is declared
//    corrupt with a diagnostic.  Never UB.
//  * Kill-safe per record, power-safe per time slice: every append is
//    fflushed (a SIGKILLed campaign loses nothing the kernel accepted),
//    while the fsync that guards against machine crashes is batched by
//    wall-clock (kSyncIntervalMs) so short runs never pay a sync each.
//  * Config-guarded: resuming with a different program/tool/run-count/seed
//    base fails fast with a clear mismatch diagnostic instead of silently
//    merging incompatible records.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"

namespace mtt::farm {

/// FNV-1a 64-bit over `text`; the journal's record checksum and the digest
/// that fingerprints a campaign config for resume validation.
std::uint64_t journalDigest(const std::string& text);

/// A loaded journal.
struct JournalData {
  std::uint64_t configDigest = 0;
  std::uint64_t total = 0;  ///< requested campaign size at write time
  /// Intact records in file order (deduplicated by runIndex, first wins).
  std::vector<experiment::RunObservation> records;
  /// True when the final record was torn (truncated mid-line) and dropped.
  bool tornTail = false;
};

/// Parses a journal file.  Tolerates a torn final record; throws
/// std::runtime_error with a diagnostic on a missing file, a corrupt
/// header, or a corrupt non-final record.
JournalData loadJournal(const std::string& path);

/// Atomically rewrites `path` as a clean journal (header + records).  Used
/// on resume to repair a torn tail before reopening for append — appending
/// after a partial final line would corrupt the next record.
void rewriteJournal(const std::string& path, std::uint64_t configDigest,
                    std::uint64_t total,
                    const std::vector<experiment::RunObservation>& records);

/// Append-only journal writer.  Thread-compatible, not thread-safe — the
/// Collector serializes appends under its own mutex.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens the journal and writes the header.  With `append` the existing
  /// file is kept (resume; the header is only written when the file is
  /// empty), otherwise it is truncated for a fresh campaign.  Throws on
  /// I/O error.
  void open(const std::string& path, std::uint64_t configDigest,
            std::uint64_t total, bool append = false);

  /// Appends one completed-run record.  Always fflushes (kill-safe: the
  /// record survives SIGKILL of this process once the kernel has it) and
  /// fsyncs at most once per kSyncIntervalMs (power-crash loss bounded by
  /// one time slice, not one record).
  ///
  /// Throws std::runtime_error on a write/flush/fsync failure — real
  /// (ENOSPC, EIO) or injected through the core::checkFault seam
  /// (FaultOp::DiskWrite at "farm.journal.append", FaultOp::DiskFsync at
  /// "farm.journal.fsync").  A failure latches the writer: further appends
  /// rethrow, and close() skips the sync (it must never throw).  The
  /// on-disk damage is at most one torn final line, which loadJournal's
  /// checksum drops — exactly the crash case the format was built for.
  void append(const experiment::RunObservation& obs);

  /// Flushes + fsyncs + closes; safe to call repeatedly, never throws.
  void close();

  bool isOpen() const { return f_ != nullptr; }
  /// True after a write failure latched the writer.
  bool failed() const { return failed_; }

  static constexpr long kSyncIntervalMs = 250;

 private:
  bool sync();  ///< false on flush/fsync failure (errno describes it)
  [[noreturn]] void fail(const std::string& why);

  std::FILE* f_ = nullptr;
  std::string path_;
  bool failed_ = false;
  std::int64_t lastSyncMs_ = 0;
};

}  // namespace mtt::farm
