#include "farm/journal.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "core/atomic_file.hpp"
#include "core/fault.hpp"
#include "farm/farm.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MTT_JOURNAL_HAS_FSYNC 1
#else
#define MTT_JOURNAL_HAS_FSYNC 0
#endif

namespace mtt::farm {

std::uint64_t journalDigest(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

constexpr char kMagic[] = "MTTJOURNAL 1";

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw std::runtime_error("corrupt journal " + path + ": " + why);
}

bool parseHex16(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  out = 0;
  for (char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    out = out * 16 +
          static_cast<std::uint64_t>(c <= '9' ? c - '0'
                                              : std::tolower(c) - 'a' + 10);
  }
  return true;
}

/// One "R <hex16> <payload>" line -> observation.  False on any defect.
bool parseRecordLine(const std::string& line,
                     experiment::RunObservation& obs) {
  if (line.size() < 19 || line[0] != 'R' || line[1] != ' ' ||
      line[18] != ' ') {
    return false;
  }
  std::uint64_t sum = 0;
  if (!parseHex16(line.substr(2, 16), sum)) return false;
  std::string payload = line.substr(19);
  if (journalDigest(payload) != sum) return false;
  return decodePipeRecord(payload, obs);
}

}  // namespace

JournalData loadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Split into lines; remember whether the file ends in a newline — a
  // final line without one is the torn-tail candidate.
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  const bool unterminated = !cur.empty();
  if (unterminated) lines.push_back(cur);

  JournalData jd;
  if (lines.empty()) {
    // Killed before the first flush reached disk: nothing recorded.
    jd.tornTail = true;
    return jd;
  }
  if (lines[0] != kMagic) {
    if (lines.size() == 1 && unterminated &&
        std::string(kMagic).rfind(lines[0], 0) == 0) {
      // Torn inside the very first line: the journal died before the header
      // hit disk.  Nothing was recorded, so resume from scratch.
      jd.tornTail = true;
      return jd;
    }
    corrupt(path, "bad magic (expected '" + std::string(kMagic) + "')");
  }
  if (lines.size() < 2) {
    if (unterminated || text.size() == std::strlen(kMagic) + 1) {
      jd.tornTail = true;  // died between header lines
      return jd;
    }
    corrupt(path, "missing config line");
  }

  // config <digest> <total>
  {
    const std::string& cl = lines[1];
    std::istringstream cs(cl);
    std::string word, digest, total;
    bool ok = static_cast<bool>(cs >> word >> digest >> total) &&
              word == "config" && parseHex16(digest, jd.configDigest);
    if (ok) {
      try {
        jd.total = std::stoull(total);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (lines.size() == 2 && unterminated) {
      // The newline is the commit marker: a config line without one may be
      // truncated mid-token even when it parses (e.g. total 400 cut to 40).
      // Nothing was recorded yet, so resume from scratch.
      jd.configDigest = 0;
      jd.total = 0;
      jd.tornTail = true;
      return jd;
    }
    if (!ok) corrupt(path, "bad config line '" + cl + "'");
  }

  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      // An empty terminated line mid-file is corruption; a trailing empty
      // fragment cannot occur (cur.empty() fragments are not pushed).
      corrupt(path, "empty record line " + std::to_string(i + 1));
    }
    const bool last = i + 1 == lines.size();
    experiment::RunObservation obs;
    if (!parseRecordLine(lines[i], obs)) {
      if (last && unterminated) {
        jd.tornTail = true;  // checksum self-identifies the torn tail
        break;
      }
      // A terminated line that fails its checksum is real corruption, not
      // a crash artifact — appends land whole lines before the newline.
      corrupt(path, "bad record at line " + std::to_string(i + 1));
    }
    if (seen.insert(obs.runIndex).second) {
      jd.records.push_back(std::move(obs));
    }
    if (last && unterminated) {
      // The record survived its checksum, but the missing newline means a
      // blind append would glue the next record onto this line: the tail
      // must be rewritten before the journal accepts appends again.
      jd.tornTail = true;
    }
  }
  return jd;
}

namespace {

std::string headerText(std::uint64_t configDigest, std::uint64_t total) {
  return std::string(kMagic) + "\nconfig " + hex16(configDigest) + " " +
         std::to_string(total) + "\n";
}

std::string recordLine(const experiment::RunObservation& obs) {
  std::string payload = encodePipeRecord(obs);
  return "R " + hex16(journalDigest(payload)) + " " + payload + "\n";
}

}  // namespace

void rewriteJournal(const std::string& path, std::uint64_t configDigest,
                    std::uint64_t total,
                    const std::vector<experiment::RunObservation>& records) {
  std::string text = headerText(configDigest, total);
  for (const experiment::RunObservation& obs : records) {
    text += recordLine(obs);
  }
  core::atomicWriteFile(path, text, /*syncToDisk=*/true);
}

void JournalWriter::open(const std::string& path, std::uint64_t configDigest,
                         std::uint64_t total, bool append) {
  close();
  f_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f_ == nullptr) {
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  path_ = path;
  std::fseek(f_, 0, SEEK_END);
  if (std::ftell(f_) == 0) {
    // The header must be durable before the first record: a journal whose
    // identity line never landed is indistinguishable from corruption.
    const std::string header = headerText(configDigest, total);
    if (std::fputs(header.c_str(), f_) == EOF || !sync()) {
      const std::string why = std::strerror(errno);
      std::fclose(f_);
      f_ = nullptr;
      throw std::runtime_error("cannot write journal header to " + path +
                               ": " + why);
    }
  }
}

namespace {

std::int64_t monotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void JournalWriter::fail(const std::string& why) {
  failed_ = true;
  throw std::runtime_error("journal " + path_ + ": " + why);
}

void JournalWriter::append(const experiment::RunObservation& obs) {
  if (f_ == nullptr) return;
  if (failed_) fail("writer latched by an earlier write failure");
  const std::string line = recordLine(obs);
  using Action = core::FaultDecision::Action;
  const core::FaultDecision fault = core::checkFault(
      core::FaultOp::DiskWrite, "farm.journal.append", line.size());
  if (fault.action == Action::Short) {
    // Realistic short write: a prefix of the line lands before the device
    // fails, leaving exactly the torn tail loadJournal repairs.
    const std::size_t wrote = std::min(line.size(), fault.count);
    std::fwrite(line.data(), 1, wrote, f_);
    std::fflush(f_);
    fail("short write (injected fault): " + std::to_string(wrote) + " of " +
         std::to_string(line.size()) + " bytes");
  }
  if (fault.action == Action::Fail) {
    fail(std::string("write failed (injected fault): ") +
         std::strerror(fault.err != 0 ? fault.err : ENOSPC));
  }
  if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) {
    fail(std::string("short write: ") + std::strerror(errno));
  }
  // fflush is the kill-safety line: once the kernel holds the bytes,
  // SIGKILLing this process loses nothing.  The (much more expensive)
  // fsync only guards against machine crashes, so it is time-batched.
  if (std::fflush(f_) != 0) {
    fail(std::string("flush failed: ") + std::strerror(errno));
  }
  if (monotonicMs() - lastSyncMs_ >= kSyncIntervalMs && !sync()) {
    fail(std::string("fsync failed: ") + std::strerror(errno));
  }
}

bool JournalWriter::sync() {
  lastSyncMs_ = monotonicMs();
  if (std::fflush(f_) != 0) return false;
  const core::FaultDecision fault =
      core::checkFault(core::FaultOp::DiskFsync, "farm.journal.fsync", 0);
  if (fault.action == core::FaultDecision::Action::Fail) {
    errno = fault.err != 0 ? fault.err : EIO;
    return false;
  }
#if MTT_JOURNAL_HAS_FSYNC
  if (::fsync(::fileno(f_)) != 0) return false;
#endif
  return true;
}

void JournalWriter::close() {
  if (f_ == nullptr) return;
  if (!failed_) sync();  // best-effort; close must never throw
  std::fclose(f_);
  f_ = nullptr;
  failed_ = false;
}

}  // namespace mtt::farm
