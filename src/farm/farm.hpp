// mtt::farm — the campaign execution engine behind every "push of a button".
//
// The paper's component 2 promises that a prepared experiment "can be
// evaluated and compared to alternative approaches" with a script; this
// subsystem makes that scale: a work-stealing scheduler shards a campaign's
// seed space across a pool of worker threads (or, on POSIX, forked worker
// processes for hard crash isolation), supervises every run with a
// wall-clock watchdog, retries infrastructure failures with bounded
// backoff, and records misbehaving runs (timeout / crash / infra-error) as
// RunStatus outcomes instead of letting them abort the campaign.
//
// Observability: each completed run is streamed as one JSONL record
// (seed, status, wall time, events, warnings, outcome, attempts) the moment
// it finishes, plus an optional live progress/throughput line on stderr.
//
// Determinism: records are keyed by run index and folded back in index
// order through experiment::accumulate, so a controlled-mode campaign
// produces results identical to the serial experiment::runExperiment path
// regardless of worker count or model.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/backoff.hpp"
#include "experiment/experiment.hpp"
#include "farm/record_io.hpp"

namespace mtt::farm {

/// How runs are isolated from each other.
enum class WorkerModel : std::uint8_t {
  /// Worker threads in this process.  Cheapest; a hung run is abandoned to
  /// a watchdogged host thread, but a run that crashes the process takes
  /// the campaign with it.
  Thread,
  /// Forked worker processes (POSIX).  A run that aborts, segfaults, or
  /// hangs kills only its worker: the parent records the outcome, respawns
  /// the worker, and the campaign continues.  Falls back to Thread where
  /// fork() is unavailable.
  Process,
};

std::string_view to_string(WorkerModel m);

/// One campaign job: produce the observation for run `index`.
/// Must be thread-safe across concurrent indices (experiment::executeRun is).
using JobFn = std::function<experiment::RunObservation(std::uint64_t index)>;

struct FarmOptions {
  /// Worker count; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Per-run wall-clock watchdog; 0 disables it.  A run exceeding the
  /// deadline is recorded as RunStatus::Timeout and its worker is
  /// abandoned (Thread) or killed and respawned (Process).
  std::chrono::milliseconds runTimeout{0};
  /// Extra attempts for runs that fail with a harness error (an exception
  /// out of the job, not a program verdict).  Exhaustion records the run
  /// as RunStatus::InfraError.
  std::size_t maxRetries = 2;
  /// Backoff before the first retry; doubles per subsequent attempt.
  std::chrono::milliseconds retryBackoff{10};
  WorkerModel model = WorkerModel::Thread;
  /// When non-empty, every completed run appends one JSON object line here.
  std::string jsonlPath;
  /// Append to jsonlPath instead of truncating it (multi-campaign drivers
  /// stream every campaign of one invocation into a single file).
  bool jsonlAppend = false;
  /// Live "done/total, runs/s, timeouts, crashes" line on stderr.
  bool progress = false;
  /// Optional early cancellation: once a delivered record satisfies this,
  /// no further runs are dispatched (in-flight runs drain).  Used by
  /// parallel bug hunts to stop at the first manifestation.
  std::function<bool(const experiment::RunObservation&)> stopOnRecord;
  /// Maps a run index to its seed, for records the farm must synthesize
  /// itself (timeout / crash / infra-error, where the job produced
  /// nothing).  Defaults to identity.
  std::function<std::uint64_t(std::uint64_t)> seedForIndex;

  // --- durability (see src/farm/journal.hpp) -----------------------------

  /// When non-empty, every completed run appends one checksummed record to
  /// this append-only journal, fsync-batched; a killed campaign can then be
  /// resumed without redoing finished runs.
  std::string journalPath;
  /// Load journalPath before dispatching: journaled runs are delivered from
  /// the journal (not re-executed) and only the missing indices run.  In
  /// controlled mode the merged result is byte-identical to an
  /// uninterrupted campaign for any `jobs`.
  bool resume = false;
  /// Free-text fingerprint of the campaign config (program, tool label,
  /// run count, seed base...).  Its digest is stored in the journal header
  /// and resume refuses a journal whose digest differs — resuming under a
  /// different config would merge incomparable records.
  /// runExperimentFarm fills this automatically.
  std::string journalConfig;
  /// When non-empty (Process model): workers arm the rt flight recorder so
  /// a crashed or timed-out run dumps its partial schedule recording here,
  /// and the parent attaches the dump path to the run's record
  /// (RunObservation::postmortemPath).
  std::string postmortemDir;
  /// Per-worker-process address-space cap in MiB (0 = unlimited).  Turns a
  /// runaway allocation into an isolated worker death instead of a host
  /// OOM.  Process model only.
  std::size_t workerMemLimitMb = 0;
  /// Per-worker-process CPU-seconds cap (0 = unlimited).  Process model
  /// only.
  std::size_t workerCpuLimitSec = 0;
  /// Optional external cancellation latch (e.g. a SIGINT handler): when it
  /// becomes true, no further runs are dispatched and in-flight runs drain,
  /// exactly like stopOnRecord.
  const std::atomic<bool>* stopFlag = nullptr;
  /// Zero the wall-clock fields (wallSeconds, dispatchNsPerEvent) of every
  /// record at delivery.  In controlled mode this makes the JSONL stream
  /// and the journal byte-reproducible across machines and schedulings —
  /// the knob fleet byte-compares (and CI) turn on for both sides of a
  /// distributed-vs-serial comparison.
  bool scrubTiming = false;
};

/// What happened to a campaign, beyond the per-run records.
struct CampaignResult {
  /// Completed-run observations, sorted by runIndex.  Gaps only when the
  /// campaign was cancelled early via stopOnRecord.
  std::vector<experiment::RunObservation> records;
  std::uint64_t requested = 0;
  std::size_t workers = 0;
  WorkerModel model = WorkerModel::Thread;
  std::size_t timeouts = 0;
  std::size_t crashes = 0;
  std::size_t infraErrors = 0;
  std::size_t retries = 0;
  /// Records delivered from the journal on resume instead of re-executed.
  std::size_t resumed = 0;
  /// Journaled infra-error runs skipped on resume: their retry budget is
  /// already exhausted, so they are reported, not re-burned.
  std::size_t quarantined = 0;
  bool stoppedEarly = false;
  /// Non-empty when the campaign terminated abnormally but controllably:
  /// a fleet degraded-mode abort or a journal I/O failure.  Names the fault
  /// and states whether the journal is resumable; CLIs surface it verbatim
  /// and exit nonzero.
  std::string abortDiagnostic;
  double wallSeconds = 0.0;

  double throughput() const {
    return wallSeconds > 0.0
               ? static_cast<double>(records.size()) / wallSeconds
               : 0.0;
  }
};

/// Resolved worker count for an options block (0 → hardware concurrency).
std::size_t resolveJobs(std::size_t jobs);

/// Runs `total` jobs through the farm and returns every record.
/// The generic entry point: bench_multibench uses it for raw outcome
/// distributions; runExperimentFarm builds the experiment flow on top.
CampaignResult runJobs(std::uint64_t total, const JobFn& fn,
                       const FarmOptions& options);

/// A farm-executed prepared experiment: the merged (deterministic) result
/// plus the campaign telemetry.
struct ExperimentCampaign {
  experiment::ExperimentResult result;
  CampaignResult campaign;
};

/// Farm-parallel drop-in for experiment::runExperiment: shards spec.runs
/// across the pool and folds the records in run order, so controlled-mode
/// results (and timing-free reports) are identical to the serial path for
/// any worker count or isolation model.
ExperimentCampaign runExperimentFarm(const experiment::ExperimentSpec& spec,
                                     const FarmOptions& options);

// --- generic candidate evaluation ----------------------------------------

/// Outcome of a scanCandidates call.
struct CandidateScan {
  bool found = false;
  std::uint64_t index = 0;      ///< smallest accepted index (when found)
  std::uint64_t evaluated = 0;  ///< predicate invocations actually performed
};

/// Deterministic first-accepted-candidate selection: evaluates candidates
/// 0..total-1 with `accept` (which must be a pure, thread-safe function of
/// its index) on `jobs` workers and returns the SMALLEST accepted index.
/// Workers race ahead, but an index is only skipped when a smaller index has
/// already been accepted, so the result is identical for any worker count —
/// this is what makes farm-parallel schedule minimization byte-stable.
/// `evaluated` is exact and minimal for jobs<=1 (serial early-stop order);
/// with more workers speculative evaluations may raise it.  A predicate
/// that throws counts as a rejection.
CandidateScan scanCandidates(std::uint64_t total,
                             const std::function<bool(std::uint64_t)>& accept,
                             std::size_t jobs);

// Record serialization (toJson / encodePipeRecord / decodePipeRecord and
// the field-escaping helpers) lives in farm/record_io.hpp, shared with the
// fleet wire protocol.

// --- internal entry points shared by farm.cpp / process_pool.cpp ---------

namespace detail {

/// Sink shared by both worker models: thread-safe record delivery, JSONL
/// streaming, progress reporting, and early-stop bookkeeping.
class Collector;

CampaignResult runJobsThreads(std::uint64_t total, const JobFn& fn,
                              const FarmOptions& options);
CampaignResult runJobsProcesses(std::uint64_t total, const JobFn& fn,
                                const FarmOptions& options);
/// True when fork()-based isolation is available on this platform.
bool processIsolationSupported();

/// Applies the RLIMIT_AS / RLIMIT_CPU caps (MiB / seconds, 0 = unlimited)
/// to the calling process.  Used by forked farm workers and by the fleet
/// worker service so a runaway run dies in isolation.  No-op off POSIX.
void applyRunLimits(std::size_t memLimitMb, std::size_t cpuLimitSec);

/// The farm's unified run-retry schedule (core::backoffDelay): capped
/// doubling from FarmOptions::retryBackoff, jitter-free — retry timing must
/// be a pure function of the options for byte-stable campaigns.  Shared by
/// the thread pool and the forked-worker pool.
inline core::BackoffPolicy retryPolicy(const FarmOptions& options) {
  core::BackoffPolicy p;
  p.initial = options.retryBackoff;
  p.cap = std::chrono::milliseconds(5000);
  p.factor = 2;
  p.jitter = 0.0;
  return p;
}

}  // namespace detail

}  // namespace mtt::farm
