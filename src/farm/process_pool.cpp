// mtt::farm — forked worker processes (POSIX): hard crash isolation.
//
// The parent is the scheduler: it forks N workers up front (before creating
// any threads of its own, so fork() is safe), hands each worker one run
// index at a time over a command pipe, and reads completed records back
// over a result pipe.  A worker that segfaults, aborts, or hangs kills only
// itself: the parent records the in-flight run as crashed / timed out,
// forks a replacement, and the campaign continues.  Harness errors inside a
// worker come back as infra-error records and are re-dispatched with
// backoff up to FarmOptions::maxRetries.
#include "farm/farm.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTT_FARM_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <optional>

#include "core/stats.hpp"
#include "farm/collector.hpp"
#include "rt/flight_recorder.hpp"

namespace mtt::farm::detail {

bool processIsolationSupported() {
#ifdef MTT_FARM_HAS_FORK
  return true;
#else
  return false;
#endif
}

void applyRunLimits(std::size_t memLimitMb, std::size_t cpuLimitSec) {
#ifdef MTT_FARM_HAS_FORK
  if (memLimitMb > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(memLimitMb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (cpuLimitSec > 0) {
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(cpuLimitSec);
    ::setrlimit(RLIMIT_CPU, &rl);
  }
#else
  (void)memLimitMb;
  (void)cpuLimitSec;
#endif
}

#ifndef MTT_FARM_HAS_FORK

CampaignResult runJobsProcesses(std::uint64_t total, const JobFn& fn,
                                const FarmOptions& options) {
  return runJobsThreads(total, fn, options);  // graceful degradation
}

#else

namespace {

using Clock = std::chrono::steady_clock;

ssize_t writeAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    off += static_cast<std::size_t>(w);
  }
  return static_cast<ssize_t>(off);
}

/// Worker-side loop: read one decimal run index per line, execute, answer
/// with "R <record>\n".  "Q" (or EOF) exits.  Never returns.
[[noreturn]] void workerMain(int cmdFd, int resFd, const JobFn& fn) {
  std::string buf;
  char c;
  for (;;) {
    buf.clear();
    for (;;) {
      ssize_t r = ::read(cmdFd, &c, 1);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        ::_exit(0);  // parent went away
      }
      if (c == '\n') break;
      buf += c;
    }
    if (buf.empty() || buf == "Q") ::_exit(0);
    std::uint64_t idx = 0;
    try {
      idx = std::stoull(buf);
    } catch (const std::exception&) {
      ::_exit(3);  // protocol error; parent records the in-flight run
    }
    experiment::RunObservation obs;
    try {
      obs = fn(idx);
    } catch (const std::exception& e) {
      obs.runIndex = idx;
      obs.status = "infra-error";
      obs.failureMessage = e.what();
    } catch (...) {
      obs.runIndex = idx;
      obs.status = "infra-error";
      obs.failureMessage = "unknown harness error";
    }
    std::string line = "R " + encodePipeRecord(obs) + "\n";
    if (writeAll(resFd, line.data(), line.size()) < 0) ::_exit(0);
  }
}

struct Worker {
  pid_t pid = -1;
  int cmdFd = -1;   // parent -> worker
  int resFd = -1;   // worker -> parent
  std::string buf;  // partial result line
  bool busy = false;
  std::uint64_t idx = 0;
  std::uint32_t attempts = 0;
  Clock::time_point start;
  /// Flight-recorder dump path this worker's crash handlers write to
  /// (empty when postmortems are off).
  std::string pmPath;
};

struct Retry {
  std::uint64_t idx = 0;
  std::uint32_t attempts = 0;  // attempts already spent
  Clock::time_point readyAt;
};

class ProcessPool {
 public:
  ProcessPool(std::uint64_t total, const JobFn& fn,
              const FarmOptions& options, Collector& collector)
      : fn_(fn), options_(options), collector_(collector) {
    std::size_t workers = resolveJobs(options.jobs);
    if (total < workers) workers = static_cast<std::size_t>(total);
    if (workers == 0) workers = 1;
    // Runs already delivered by a resumed journal are never re-dispatched.
    for (std::uint64_t i = 0; i < total; ++i) {
      if (!collector.isDone(i)) queue_.push_back(i);
    }
    workers_.resize(workers);
    if (!options_.postmortemDir.empty()) {
      std::filesystem::create_directories(options_.postmortemDir);
    }
  }

  std::size_t workerCount() const { return workers_.size(); }

  void run() {
    // A worker can die while we write to its command pipe; that must be
    // an EPIPE errno, not a fatal SIGPIPE.
    struct sigaction ign {}, old {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old);

    for (auto& w : workers_) spawn(w);
    dispatchIdle();
    while (pendingWork()) {
      pollOnce();
      expireDeadlines();
      dispatchIdle();
    }
    shutdown();
    ::sigaction(SIGPIPE, &old, nullptr);
  }

 private:
  void spawn(Worker& w) {
    int cmd[2], res[2];
    if (::pipe(cmd) != 0 || ::pipe(res) != 0) {
      throw std::runtime_error("mtt::farm: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("mtt::farm: fork() failed");
    if (pid == 0) {
      // Child: keep only this worker's two fds (plus inherited stdio).
      ::close(cmd[1]);
      ::close(res[0]);
      for (const auto& other : workers_) {
        if (other.cmdFd >= 0) ::close(other.cmdFd);
        if (other.resFd >= 0) ::close(other.resFd);
      }
      applyWorkerLimits();
      if (!options_.postmortemDir.empty()) {
        // Arm the flight recorder: a crash or a pre-kill SIGTERM drain
        // dumps the in-progress schedule to this worker's partial file,
        // which the parent collects into the run record.
        std::string pm = options_.postmortemDir + "/worker" +
                         std::to_string(::getpid()) + ".partial";
        rt::fr::arm(pm.c_str());
        rt::fr::installCrashHandlers();
      }
      workerMain(cmd[0], res[1], fn_);
    }
    ::close(cmd[0]);
    ::close(res[1]);
    w.pid = pid;
    w.cmdFd = cmd[1];
    w.resFd = res[0];
    w.buf.clear();
    w.busy = false;
    w.pmPath = options_.postmortemDir.empty()
                   ? std::string()
                   : options_.postmortemDir + "/worker" +
                         std::to_string(pid) + ".partial";
  }

  /// Child-side resource caps: a runaway allocation or spin becomes an
  /// isolated worker death (recorded as crashed) instead of a host OOM.
  void applyWorkerLimits() {
    applyRunLimits(options_.workerMemLimitMb, options_.workerCpuLimitSec);
  }

  /// Pre-kill drain: SIGTERM gives the worker's flight recorder a bounded
  /// window to dump the hung run's partial schedule before the SIGKILL.
  /// Returns true when the worker exited (and was reaped) in the window.
  bool drainBeforeKill(Worker& w) {
    if (w.pmPath.empty()) return false;
    if (::kill(w.pid, SIGTERM) != 0) return false;
    timespec tick{0, 10 * 1000 * 1000};  // 10ms
    for (int i = 0; i < 50; ++i) {       // <= ~500ms total
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) return true;
      ::nanosleep(&tick, nullptr);
    }
    return false;
  }

  void despawn(Worker& w, bool kill) {
    if (w.pid < 0) return;
    bool reaped = false;
    if (kill) {
      reaped = drainBeforeKill(w);
      if (!reaped) ::kill(w.pid, SIGKILL);
    }
    if (w.cmdFd >= 0) ::close(w.cmdFd);
    if (w.resFd >= 0) ::close(w.resFd);
    if (!reaped) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
    w.cmdFd = w.resFd = -1;
    w.busy = false;
  }

  /// Claims the worker's flight-recorder dump (if the dying run produced
  /// one) under a stable per-run name; returns that path or empty.
  std::string collectPostmortem(Worker& w, std::uint64_t idx) {
    if (w.pmPath.empty()) return {};
    std::error_code ec;
    if (!std::filesystem::exists(w.pmPath, ec)) return {};
    std::string dest = options_.postmortemDir + "/run" +
                       std::to_string(idx) + ".postmortem.scenario";
    std::filesystem::rename(w.pmPath, dest, ec);
    if (ec) return {};
    return dest;
  }

  bool pendingWork() {
    if (!collector_.stopped() && (!queue_.empty() || !retries_.empty())) {
      return true;
    }
    for (const auto& w : workers_) {
      if (w.busy) return true;
    }
    return false;
  }

  std::optional<std::uint64_t> nextJob(std::uint32_t& attemptsSpent) {
    if (collector_.stopped()) return std::nullopt;
    Clock::time_point now = Clock::now();
    for (auto it = retries_.begin(); it != retries_.end(); ++it) {
      if (it->readyAt <= now) {
        attemptsSpent = it->attempts;
        std::uint64_t idx = it->idx;
        retries_.erase(it);
        return idx;
      }
    }
    if (!queue_.empty()) {
      attemptsSpent = 0;
      std::uint64_t idx = queue_.front();
      queue_.pop_front();
      return idx;
    }
    return std::nullopt;
  }

  void dispatchIdle() {
    for (auto& w : workers_) {
      if (w.busy || w.pid < 0) continue;
      std::uint32_t spent = 0;
      std::optional<std::uint64_t> idx = nextJob(spent);
      if (!idx) return;
      std::string cmd = std::to_string(*idx) + "\n";
      if (writeAll(w.cmdFd, cmd.data(), cmd.size()) < 0) {
        // Worker died between jobs; its HUP will be reaped by pollOnce.
        // Put the job back so another worker picks it up.
        queue_.push_front(*idx);
        continue;
      }
      w.busy = true;
      w.idx = *idx;
      w.attempts = spent + 1;
      w.start = Clock::now();
    }
  }

  int pollTimeoutMs() const {
    Clock::time_point next = Clock::time_point::max();
    if (options_.runTimeout.count() > 0) {
      for (const auto& w : workers_) {
        if (w.busy) next = std::min(next, w.start + options_.runTimeout);
      }
    }
    for (const auto& r : retries_) next = std::min(next, r.readyAt);
    if (next == Clock::time_point::max()) return 1000;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  next - Clock::now())
                  .count();
    return ms < 0 ? 0 : static_cast<int>(std::min<long long>(ms + 1, 1000));
  }

  void pollOnce() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].pid < 0) continue;
      fds.push_back(pollfd{workers_[i].resFd, POLLIN, 0});
      owner.push_back(i);
    }
    if (fds.empty()) return;
    int n = ::poll(fds.data(), fds.size(), pollTimeoutMs());
    if (n <= 0) return;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      Worker& w = workers_[owner[k]];
      if (fds[k].revents & POLLIN) drainWorker(w);
      if ((fds[k].revents & (POLLHUP | POLLERR)) && w.pid >= 0 &&
          !(fds[k].revents & POLLIN)) {
        onWorkerDeath(w);
      }
    }
  }

  void drainWorker(Worker& w) {
    char chunk[4096];
    ssize_t r = ::read(w.resFd, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) return;
    if (r <= 0) {
      onWorkerDeath(w);
      return;
    }
    w.buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t nl;
    while ((nl = w.buf.find('\n')) != std::string::npos) {
      std::string line = w.buf.substr(0, nl);
      w.buf.erase(0, nl + 1);
      handleLine(w, line);
    }
  }

  void handleLine(Worker& w, const std::string& line) {
    experiment::RunObservation obs;
    if (line.size() < 2 || line[0] != 'R' ||
        !decodePipeRecord(line.substr(2), obs)) {
      return;  // garbled line; worker death / timeout handling covers it
    }
    w.busy = false;
    obs.attempts = w.attempts;
    if (obs.status == "infra-error" && w.attempts <= options_.maxRetries) {
      retries_.push_back(
          Retry{obs.runIndex, w.attempts,
                Clock::now() + core::backoffDelay(retryPolicy(options_),
                                                  w.attempts)});
      return;
    }
    if (obs.status == "infra-error") {
      obs.seed = collector_.seedFor(obs.runIndex);
    }
    collector_.deliver(std::move(obs), &w - workers_.data());
  }

  void onWorkerDeath(Worker& w) {
    bool wasBusy = w.busy;
    std::uint64_t idx = w.idx;
    std::uint32_t attempts = w.attempts;
    despawn(w, /*kill=*/false);
    if (wasBusy) {
      experiment::RunObservation obs = collector_.supervisedRecord(
          idx, "crashed", "worker process died mid-run", attempts);
      obs.postmortemPath = collectPostmortem(w, idx);
      collector_.deliver(std::move(obs), &w - workers_.data());
    }
    if (moreWorkComing()) spawn(w);
  }

  void expireDeadlines() {
    if (options_.runTimeout.count() <= 0) return;
    Clock::time_point now = Clock::now();
    for (auto& w : workers_) {
      if (!w.busy || w.pid < 0) continue;
      if (now - w.start < options_.runTimeout) continue;
      std::uint64_t idx = w.idx;
      std::uint32_t attempts = w.attempts;
      despawn(w, /*kill=*/true);
      experiment::RunObservation obs = collector_.supervisedRecord(
          idx, "timeout", "watchdog expired", attempts);
      obs.postmortemPath = collectPostmortem(w, idx);
      collector_.deliver(std::move(obs), &w - workers_.data());
      if (moreWorkComing()) spawn(w);
    }
  }

  bool moreWorkComing() const {
    return !collector_.stopped() &&
           (!queue_.empty() || !retries_.empty());
  }

  void shutdown() {
    for (auto& w : workers_) {
      if (w.pid < 0) continue;
      writeAll(w.cmdFd, "Q\n", 2);
      despawn(w, /*kill=*/false);
    }
  }

  const JobFn& fn_;
  const FarmOptions& options_;
  Collector& collector_;
  std::deque<std::uint64_t> queue_;
  std::vector<Retry> retries_;
  std::vector<Worker> workers_;
};

}  // namespace

CampaignResult runJobsProcesses(std::uint64_t total, const JobFn& fn,
                                const FarmOptions& options) {
  Stopwatch clock;
  Collector collector(total, options);
  CampaignResult cr;
  cr.requested = total;
  cr.model = WorkerModel::Process;
  std::size_t workers = 0;
  if (total > 0) {
    ProcessPool pool(total, fn, options, collector);
    workers = pool.workerCount();
    pool.run();
  }
  cr.workers = workers;
  cr.records = collector.finish();
  cr.timeouts = collector.timeouts();
  cr.crashes = collector.crashes();
  cr.infraErrors = collector.infraErrors();
  cr.retries = collector.retries();
  cr.resumed = collector.resumed();
  cr.quarantined = collector.quarantined();
  cr.stoppedEarly = collector.stopped();
  cr.abortDiagnostic = collector.ioError();
  cr.wallSeconds = clock.elapsedSeconds();
  return cr;
}

#endif  // MTT_FARM_HAS_FORK

}  // namespace mtt::farm::detail
