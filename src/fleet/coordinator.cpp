// Coordinator implementation: a single-threaded poll loop (the same shape
// as the farm's forked-worker parent) over a listening socket and N worker
// connections, plus the lease table that makes reassignment and dedup
// possible.
#include "fleet/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/stats.hpp"
#include "farm/collector.hpp"
#include "farm/record_io.hpp"
#include "fleet/net.hpp"
#include "suite/program.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTT_FLEET_HAS_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace mtt::fleet {

using Clock = std::chrono::steady_clock;

namespace {
/// Stash for lastFleetCounters (per thread: tests run fleets in parallel).
thread_local FleetCounters g_lastCounters;
}  // namespace

FleetCounters lastFleetCounters() { return g_lastCounters; }

struct Coordinator::Impl {
  struct Conn {
    Socket sock;
    std::uint64_t id = 0;
    std::string peer;  ///< "ip:port" / "unix" — log attribution
    std::string rx;
    bool active = false;  ///< HELLO validated, SPEC sent
    bool quarantined = false;
    std::size_t inflight = 0;
    std::size_t infraRecords = 0;
    Clock::time_point lastActivity = Clock::now();
  };

  struct Lease {
    std::vector<RunAssignment> runs;
    std::set<std::uint64_t> remaining;
    std::uint64_t connId = 0;
  };

  experiment::RunSpec base;
  FleetOptions opts;
  std::unique_ptr<Listener> listener;
  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t nextConnId = 1;
  std::uint64_t nextLeaseId = 1;
  FleetCounters counters;
  bool shutdownDone = false;

  // Cross-batch progress bookkeeping.
  Stopwatch clock;
  double lastPrint = -1.0;
  std::uint64_t totalWanted = 0;
  std::uint64_t totalDelivered = 0;

  // --- per-batch state (reset by runBatch) -------------------------------
  std::unordered_map<std::uint64_t, RunAssignment> wanted;
  std::unordered_set<std::uint64_t> delivered;
  std::deque<std::vector<RunAssignment>> pending;
  std::map<std::uint64_t, Lease> leases;
  std::unordered_map<std::uint64_t, std::uint64_t> indexLease;
  std::unordered_map<std::uint64_t, std::size_t> indexFailures;
  BatchResult* batch = nullptr;
  const RecordSink* sink = nullptr;
  const std::function<bool(const experiment::RunObservation&)>* stopOn =
      nullptr;
  bool stopRequested = false;

  // Degraded-mode bookkeeping: the last instant the batch either delivered
  // a record or had a healthy worker to wait on.
  Clock::time_point lastProgress = Clock::now();

  bool externallyStopped() const {
    return opts.farm.stopFlag != nullptr &&
           opts.farm.stopFlag->load(std::memory_order_relaxed);
  }

  /// "worker 3 (127.0.0.1:51442)" — every fleet diagnostic names the
  /// connection id and peer address so failures are attributable from the
  /// coordinator log alone.
  std::string describeConn(const Conn& c) const {
    return "worker " + std::to_string(c.id) + " (" +
           (c.peer.empty() ? "?" : c.peer) + ")";
  }

  /// Campaign-context suffix for ERROR frames: which campaign, which
  /// connection, and (when relevant) which lease — the receiving worker's
  /// log then identifies the failure without coordinator-side correlation.
  std::string errorContext(const Conn& c, std::uint64_t leaseId = 0) const {
    std::string s = " [program=" + base.programName + " " + describeConn(c);
    if (leaseId != 0) s += " lease=" + std::to_string(leaseId);
    return s + "]";
  }

  void sendFrame(Conn& c, FrameType type, const std::string& payload) {
    const std::string bytes = encodeFrame(type, payload);
    std::string err;
    if (!sendAll(c.sock.fd(), bytes, err, "fleet.coord.send")) {
      std::fprintf(stderr, "[fleet] %s send failed: %s\n",
                   describeConn(c).c_str(), err.c_str());
      dropConn(c, "timeout",
               "fleet " + describeConn(c) + " connection lost mid-lease");
      return;
    }
    counters.bytesSent += bytes.size();
  }

  /// Closes a connection and requeues its unfinished leases.  `status` /
  /// `message` describe the cause for indices that exhaust indexGiveUp.
  void dropConn(Conn& c, const char* status, const std::string& message) {
    if (!c.sock.valid()) return;
    c.sock.close();
    if (c.active) --counters.workersActive;
    c.active = false;
    requeueConnLeases(c.id, status, message);
  }

  void quarantineConn(Conn& c, const std::string& why) {
    if (c.quarantined) return;
    c.quarantined = true;
    ++counters.workersQuarantined;
    std::fprintf(stderr, "[fleet] quarantining %s: %s\n",
                 describeConn(c).c_str(), why.c_str());
    if (c.sock.valid()) sendFrame(c, FrameType::Quit, why + errorContext(c));
    dropConn(c, "timeout",
             "fleet " + describeConn(c) + " quarantined (" + why + ")");
  }

  void requeueConnLeases(std::uint64_t connId, const char* status,
                         const std::string& message) {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, lease] : leases) {
      if (lease.connId == connId) ids.push_back(id);
    }
    for (std::uint64_t id : ids) requeueLease(id, status, message);
  }

  /// Returns the lease's unfinished assignments to the pending queue (or
  /// gives up on indices that keep killing workers).
  void requeueLease(std::uint64_t leaseId, const char* status,
                    const std::string& message) {
    auto it = leases.find(leaseId);
    if (it == leases.end()) return;
    Lease lease = std::move(it->second);
    leases.erase(it);
    ++counters.leasesReassigned;
    std::vector<RunAssignment> retry;
    for (const RunAssignment& a : lease.runs) {
      if (lease.remaining.find(a.index) == lease.remaining.end()) continue;
      indexLease.erase(a.index);
      const std::size_t failures = ++indexFailures[a.index];
      if (failures >= opts.indexGiveUp) {
        // The farm's supervision semantics: record the failure as a run
        // outcome instead of retrying forever.
        experiment::RunObservation obs;
        obs.runIndex = a.index;
        obs.seed = a.seed;
        obs.status = status;
        obs.failureMessage =
            message + " (" + std::to_string(failures) + " leases)";
        obs.attempts = static_cast<std::uint32_t>(failures);
        deliverRecord(std::move(obs), /*connId=*/0);
      } else {
        retry.push_back(a);
      }
    }
    // Front of the queue: reassigned work is the oldest and gates the
    // reorder buffer's contiguous flush.
    if (!retry.empty()) pending.push_front(std::move(retry));
  }

  /// First-delivery filter + batch bookkeeping for one record.
  void deliverRecord(experiment::RunObservation obs, std::uint64_t connId) {
    const std::uint64_t idx = obs.runIndex;
    auto w = wanted.find(idx);
    if (w == wanted.end() || delivered.find(idx) != delivered.end()) {
      ++counters.duplicatesDropped;
      return;
    }
    if (opts.farm.scrubTiming) farm::scrubTimingFields(obs);
    delivered.insert(idx);
    ++totalDelivered;
    lastProgress = Clock::now();
    // Clear the index out of whatever active lease still carries it (a
    // stale worker may deliver work that was since reassigned).
    auto il = indexLease.find(idx);
    if (il != indexLease.end()) {
      auto lt = leases.find(il->second);
      if (lt != leases.end()) {
        lt->second.remaining.erase(idx);
        if (lt->second.remaining.empty()) finishLease(lt->first);
      }
      indexLease.erase(il);
    }
    if (batch != nullptr) {
      batch->retries += obs.attempts > 0 ? obs.attempts - 1 : 0;
      if (sink != nullptr && *sink) {
        (*sink)(obs, static_cast<std::size_t>(connId));
      }
      if (stopOn != nullptr && *stopOn && !stopRequested && (*stopOn)(obs)) {
        stopRequested = true;
      }
      batch->records.emplace(idx, std::move(obs));
    }
  }

  void finishLease(std::uint64_t leaseId) {
    auto it = leases.find(leaseId);
    if (it == leases.end()) return;
    Conn* owner = connById(it->second.connId);
    if (owner != nullptr && owner->inflight > 0) --owner->inflight;
    leases.erase(it);
  }

  Conn* connById(std::uint64_t id) {
    for (auto& c : conns) {
      if (c->id == id) return c.get();
    }
    return nullptr;
  }

  void handleFrame(Conn& c, Frame frame) {
    c.lastActivity = Clock::now();
    switch (frame.type) {
      case FrameType::Hello: {
        std::uint32_t version = 0;
        std::string err;
        if (!decodeHello(frame.payload, version, err)) {
          sendFrame(c, FrameType::Error, err + errorContext(c));
          dropConn(c, "timeout", err);
          return;
        }
        if (version != kProtocolVersion) {
          const std::string msg =
              "protocol version mismatch: coordinator speaks " +
              std::to_string(kProtocolVersion) + ", worker speaks " +
              std::to_string(version);
          sendFrame(c, FrameType::Error, msg + errorContext(c));
          dropConn(c, "timeout", msg);
          return;
        }
        sendFrame(c, FrameType::Spec, encodeSpec(base));
        if (c.sock.valid()) {
          c.active = true;
          ++counters.workersActive;
        }
        return;
      }
      case FrameType::Record: {
        std::uint64_t leaseId = 0;
        experiment::RunObservation obs;
        std::string err;
        if (!decodeRecord(frame.payload, leaseId, obs, err)) {
          std::fprintf(stderr, "[fleet] %s: %s\n", describeConn(c).c_str(),
                       err.c_str());
          dropConn(c, "crashed", err + errorContext(c, leaseId));
          return;
        }
        (void)leaseId;  // delivery and lease cleanup are keyed by index
        ++counters.recordsStreamed;
        if (obs.status == "infra-error") {
          if (++c.infraRecords >= opts.quarantineAfter) {
            // Deliver first — the record itself is valid — then stop
            // trusting this worker with further leases.
            deliverRecord(std::move(obs), c.id);
            quarantineConn(c, std::to_string(c.infraRecords) +
                                  " infra-error records");
            return;
          }
        }
        deliverRecord(std::move(obs), c.id);
        return;
      }
      case FrameType::LeaseDone: {
        std::uint64_t leaseId = 0;
        std::string err;
        if (!decodeLeaseDone(frame.payload, leaseId, err)) {
          dropConn(c, "crashed", err);
          return;
        }
        auto it = leases.find(leaseId);
        if (it == leases.end()) return;  // completed or reassigned already
        if (!it->second.remaining.empty()) {
          // The worker claims completion but records are missing: treat
          // the gap like a lost lease.
          requeueLease(leaseId, "crashed",
                       "fleet " + describeConn(c) + " completed lease " +
                           std::to_string(leaseId) + " with missing records");
          if (c.inflight > 0) --c.inflight;
          return;
        }
        finishLease(leaseId);
        return;
      }
      case FrameType::Heartbeat:
        return;
      case FrameType::Error: {
        std::fprintf(stderr, "[fleet] %s error: %s\n", describeConn(c).c_str(),
                     frame.payload.c_str());
        dropConn(c, "crashed",
                 "fleet " + describeConn(c) + " reported: " + frame.payload);
        return;
      }
      case FrameType::Spec:
      case FrameType::Lease:
      case FrameType::Quit: {
        const std::string msg = "unexpected frame from worker";
        sendFrame(c, FrameType::Error, msg + errorContext(c));
        dropConn(c, "crashed", msg + " (" + describeConn(c) + ")");
        return;
      }
    }
  }

#ifdef MTT_FLEET_HAS_SOCKETS
  void readConn(Conn& c) {
    char buf[64 * 1024];
    for (;;) {
      // All coordinator reads funnel through recvSome: EINTR is retried
      // there, and the "fleet.coord.recv" site exposes the read to the
      // fault-injection seam.
      const RecvResult r =
          recvSome(c.sock.fd(), buf, sizeof buf, "fleet.coord.recv");
      if (r.status == RecvStatus::Data) {
        counters.bytesReceived += static_cast<std::uint64_t>(r.n);
        c.rx.append(buf, r.n);
        continue;
      }
      if (r.status == RecvStatus::WouldBlock) break;
      // EOF or hard error: the worker is gone.
      dropConn(c, "crashed",
               "fleet " + describeConn(c) + " died mid-lease" +
                   (r.err.empty() ? std::string() : " (" + r.err + ")"));
      return;
    }
    while (c.sock.valid()) {
      ParseResult r = tryParseFrame(c.rx);
      if (r.status == ParseStatus::NeedMore) break;
      if (r.status == ParseStatus::Corrupt) {
        std::fprintf(stderr, "[fleet] %s stream corrupt: %s\n",
                     describeConn(c).c_str(), r.error.c_str());
        dropConn(c, "crashed", r.error + " (" + describeConn(c) + ")");
        return;
      }
      c.rx.erase(0, r.consumed);
      handleFrame(c, std::move(r.frame));
    }
  }
#endif

  void grantLeases() {
    if (stopRequested) return;
    // Round-robin over healthy workers with spare lease slots.
    bool granted = true;
    while (!pending.empty() && granted) {
      granted = false;
      for (auto& cp : conns) {
        if (pending.empty()) break;
        Conn& c = *cp;
        if (!c.sock.valid() || !c.active || c.quarantined) continue;
        if (c.inflight >= opts.maxLeasesPerWorker) continue;
        LeasePayload payload;
        payload.leaseId = nextLeaseId++;
        payload.runs = std::move(pending.front());
        pending.pop_front();
        Lease lease;
        lease.connId = c.id;
        lease.runs = payload.runs;
        for (const RunAssignment& a : payload.runs) {
          lease.remaining.insert(a.index);
          indexLease[a.index] = payload.leaseId;
        }
        leases.emplace(payload.leaseId, std::move(lease));
        ++c.inflight;
        ++counters.leasesGranted;
        sendFrame(c, FrameType::Lease, encodeLease(payload));
        if (!c.sock.valid()) continue;  // send failed; lease was requeued
        granted = true;
      }
    }
  }

  void checkLeaseTimeouts() {
    const Clock::time_point now = Clock::now();
    std::vector<Conn*> hung;
    for (auto& [id, lease] : leases) {
      Conn* owner = connById(lease.connId);
      if (owner == nullptr || !owner->sock.valid()) continue;
      if (now - owner->lastActivity > opts.leaseTimeout) {
        hung.push_back(owner);
      }
    }
    std::sort(hung.begin(), hung.end());
    hung.erase(std::unique(hung.begin(), hung.end()), hung.end());
    for (Conn* c : hung) {
      quarantineConn(*c, "no record for " +
                             std::to_string(opts.leaseTimeout.count()) +
                             " ms on a held lease");
    }
  }

  void maybeProgress(bool final) {
    if (!opts.farm.progress) return;
    const double elapsed = clock.elapsedSeconds();
    if (!final && elapsed - lastPrint < 0.2) return;
    lastPrint = elapsed;
    const double rate =
        elapsed > 0.0 ? static_cast<double>(totalDelivered) / elapsed : 0.0;
    std::fprintf(
        stderr,
        "\r[fleet] %llu/%llu runs  %.1f runs/s  %zu workers  %zu leases  "
        "%zu reassigned  %zu quarantined  %.2f MiB in%s",
        static_cast<unsigned long long>(totalDelivered),
        static_cast<unsigned long long>(totalWanted), rate,
        counters.workersActive, counters.leasesGranted,
        counters.leasesReassigned, counters.workersQuarantined,
        static_cast<double>(counters.bytesReceived) / (1024.0 * 1024.0),
        final ? "\n" : "");
    std::fflush(stderr);
  }

  void pollOnce() {
#ifdef MTT_FLEET_HAS_SOCKETS
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener->fd(), POLLIN, 0});
    std::vector<Conn*> polled;
    for (auto& cp : conns) {
      if (!cp->sock.valid()) continue;
      fds.push_back(pollfd{cp->sock.fd(), POLLIN, 0});
      polled.push_back(cp.get());
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc <= 0) return;
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        Socket s = listener->accept();
        if (!s.valid()) break;
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(s);
        conn->id = nextConnId++;
        conn->peer = peerDescription(conn->sock.fd());
        conn->lastActivity = Clock::now();
        ++counters.workersConnected;
        conns.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        readConn(*polled[i]);
      }
    }
    // Compact closed connections (their leases were already requeued).
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return !c->sock.valid();
                               }),
                conns.end());
#endif
  }
};

Coordinator::Coordinator(experiment::RunSpec base, const FleetOptions& options)
    : impl_(std::make_unique<Impl>()) {
  if (base.policyFactory) {
    throw std::runtime_error(
        "fleet campaigns cannot ship a policyFactory across the wire; "
        "use a named policy (and note corpus-mutation arms are "
        "coordinator-local)");
  }
  if (options.heartbeatInterval.count() <= 0) {
    throw std::runtime_error("--heartbeat-ms must be positive");
  }
  if (options.heartbeatInterval >= options.leaseTimeout) {
    throw std::runtime_error(
        "--heartbeat-ms (" + std::to_string(options.heartbeatInterval.count()) +
        ") must be strictly less than --lease-timeout-ms (" +
        std::to_string(options.leaseTimeout.count()) +
        "): an idle worker must fit at least one heartbeat inside the "
        "lease timeout or it would be quarantined while healthy");
  }
  impl_->base = std::move(base);
  impl_->opts = options;
  impl_->listener = std::make_unique<Listener>(parseAddress(options.listen));
  if (options.onListen) options.onListen(impl_->listener->boundAddress());
}

Coordinator::~Coordinator() {
  try {
    shutdown();
  } catch (...) {
    // Destructor must not throw; the sockets close regardless.
  }
}

std::string Coordinator::address() const {
  return impl_->listener != nullptr ? impl_->listener->boundAddress()
                                    : std::string();
}

const FleetCounters& Coordinator::counters() const { return impl_->counters; }

void Coordinator::shutdown() {
  Impl& im = *impl_;
  if (im.shutdownDone) return;
  im.shutdownDone = true;
  for (auto& cp : im.conns) {
    if (cp->sock.valid()) {
      im.sendFrame(*cp, FrameType::Quit, "campaign complete");
      cp->sock.close();
    }
  }
  im.conns.clear();
  im.listener.reset();
  g_lastCounters = im.counters;
}

Coordinator::BatchResult Coordinator::runBatch(
    const std::vector<RunAssignment>& runs, const RecordSink& sink,
    const std::function<bool(const experiment::RunObservation&)>& stopOn) {
  Impl& im = *impl_;
  if (im.shutdownDone) {
    throw std::runtime_error("fleet coordinator is already shut down");
  }
  BatchResult result;
  if (runs.empty()) return result;

  im.wanted.clear();
  im.delivered.clear();
  im.pending.clear();
  im.leases.clear();
  im.indexLease.clear();
  im.indexFailures.clear();
  im.batch = &result;
  im.sink = &sink;
  im.stopOn = &stopOn;
  im.stopRequested = false;
  im.lastProgress = Clock::now();
  im.totalWanted += runs.size();

  for (const RunAssignment& a : runs) im.wanted.emplace(a.index, a);
  const std::size_t leaseSize = std::max<std::size_t>(im.opts.leaseSize, 1);
  for (std::size_t i = 0; i < runs.size(); i += leaseSize) {
    im.pending.emplace_back(
        runs.begin() + static_cast<std::ptrdiff_t>(i),
        runs.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + leaseSize, runs.size())));
  }

  while (im.delivered.size() < im.wanted.size()) {
    if (im.stopRequested || im.externallyStopped()) {
      result.stoppedEarly = true;
      break;
    }
    im.grantLeases();
    im.pollOnce();
    im.checkLeaseTimeouts();
    // Degraded mode: a healthy worker counts as progress (it may be deep in
    // a long run), but a fleet with nobody connected and nothing arriving
    // must eventually abort with a diagnostic instead of hanging — the
    // journal keeps every delivered record, so the campaign resumes.
    if (im.counters.workersActive > 0) im.lastProgress = Clock::now();
    if (im.opts.noProgressTimeout.count() > 0 &&
        Clock::now() - im.lastProgress > im.opts.noProgressTimeout) {
      const std::size_t undone = im.wanted.size() - im.delivered.size();
      result.aborted = true;
      result.stoppedEarly = true;
      result.abortDiagnostic =
          "fleet degraded: no active workers and no record for " +
          std::to_string(im.opts.noProgressTimeout.count()) + " ms with " +
          std::to_string(undone) + " of " + std::to_string(im.wanted.size()) +
          " run(s) undone; the campaign journal is resumable";
      std::fprintf(stderr, "\n[fleet] %s\n", result.abortDiagnostic.c_str());
      break;
    }
    im.maybeProgress(false);
  }
  // Active leases of a cancelled batch go stale: their indices leave the
  // tracking tables, and late records for them will be dup-dropped.
  im.pending.clear();
  im.leases.clear();
  im.indexLease.clear();
  for (auto& cp : im.conns) cp->inflight = 0;
  im.maybeProgress(true);
  im.batch = nullptr;
  im.sink = nullptr;
  im.stopOn = nullptr;
  g_lastCounters = im.counters;
  return result;
}

// --- the campaign entry point --------------------------------------------

farm::ExperimentCampaign runExperimentFleet(
    const experiment::ExperimentSpec& spec, const FleetOptions& options) {
  experiment::validateToolConfig(spec.tool);
  suite::makeProgram(spec.programName);  // throws on unknown program

  Stopwatch wall;
  farm::FarmOptions fopts = options.farm;
  fopts.seedForIndex = [&spec](std::uint64_t i) { return spec.seedBase + i; };
  if (!fopts.journalPath.empty() && fopts.journalConfig.empty()) {
    // The exact farm fingerprint: a fleet journal and a farm journal of the
    // same campaign are interchangeable (resume across the boundary works).
    fopts.journalConfig = spec.programName + "|" + spec.tool.label() + "|" +
                          std::to_string(spec.runs) + "|" +
                          std::to_string(spec.seedBase);
  }
  // The coordinator renders the fleet progress line; the collector's
  // farm-style line would fight it for the same stderr row.
  farm::FarmOptions collectorOpts = fopts;
  collectorOpts.progress = false;
  farm::detail::Collector collector(spec.runs, collectorOpts);

  Coordinator coordinator(static_cast<const experiment::RunSpec&>(spec),
                          options);

  std::vector<RunAssignment> assignments;
  assignments.reserve(spec.runs);
  for (std::uint64_t i = 0; i < spec.runs; ++i) {
    if (collector.isDone(i)) continue;  // journaled; never re-dispatched
    RunAssignment a;
    a.index = i;
    a.seed = spec.seedBase + i;
    assignments.push_back(a);
  }

  // Reorder buffer: records arrive in any order, the collector (journal,
  // JSONL, fold) sees them only in contiguous global-index order.
  std::map<std::uint64_t, std::pair<experiment::RunObservation, std::size_t>>
      held;
  std::uint64_t cursor = 0;
  auto flush = [&] {
    while (cursor < spec.runs) {
      if (collector.isDone(cursor)) {
        ++cursor;
        continue;
      }
      auto it = held.find(cursor);
      if (it == held.end()) break;
      collector.deliver(std::move(it->second.first), it->second.second);
      held.erase(it);
      ++cursor;
    }
  };
  Coordinator::RecordSink sink =
      [&](const experiment::RunObservation& obs, std::size_t worker) {
        held.emplace(obs.runIndex, std::make_pair(obs, worker));
        flush();
      };

  // The batch also stops when the collector latches (stop-on-record match,
  // or a journal I/O failure surfaced by the fault seam) — a campaign whose
  // journal can no longer be trusted must terminate promptly, not stream on.
  const std::function<bool(const experiment::RunObservation&)> stopPred =
      [&](const experiment::RunObservation& obs) {
        if (collector.stopped()) return true;
        return fopts.stopOnRecord && fopts.stopOnRecord(obs);
      };

  Coordinator::BatchResult br = coordinator.runBatch(assignments, sink, stopPred);

  // A cancelled batch leaves non-contiguous stragglers in the buffer;
  // deliver them in index order (the journal stays index-sorted, with the
  // same gaps a stopped farm campaign would leave).
  for (auto& [idx, rec] : held) {
    collector.deliver(std::move(rec.first), rec.second);
  }
  held.clear();

  const bool hasDetectors = !spec.tool.detectors.empty();
  farm::ExperimentCampaign out;
  out.campaign.records = collector.finish();
  out.campaign.requested = spec.runs;
  out.campaign.workers = coordinator.counters().workersConnected;
  out.campaign.timeouts = collector.timeouts();
  out.campaign.crashes = collector.crashes();
  out.campaign.infraErrors = collector.infraErrors();
  out.campaign.retries = collector.retries();
  out.campaign.resumed = collector.resumed();
  out.campaign.quarantined = collector.quarantined();
  out.campaign.stoppedEarly = br.stoppedEarly || collector.stopped();
  out.campaign.abortDiagnostic =
      !br.abortDiagnostic.empty() ? br.abortDiagnostic : collector.ioError();
  out.campaign.wallSeconds = wall.elapsedSeconds();

  out.result.programName = spec.programName;
  out.result.toolLabel = spec.tool.label();
  out.result.runs = out.campaign.records.size();
  for (auto& obs : out.campaign.records) {
    if (obs.supervised()) obs.hasDetectors = hasDetectors;
    experiment::accumulate(out.result, obs);
  }
  coordinator.shutdown();
  return out;
}

}  // namespace mtt::fleet
