// Minimal POSIX stream-socket layer for mtt::fleet: address parsing, an
// RAII fd, a listening endpoint, and connect-with-retry.  TCP and
// Unix-domain sockets only — everything above this file speaks the framed
// protocol (fleet/protocol.hpp) and never touches an fd directly except
// through these helpers.
//
// Off POSIX, every entry point throws std::runtime_error("mtt::fleet
// requires POSIX sockets"), mirroring the farm's graceful degradation
// pattern: the library still links, the feature reports itself missing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/fault.hpp"

namespace mtt::fleet {

/// A listen/connect endpoint: "unix:/path/to.sock" or "host:port" (TCP;
/// numeric IPv4 or a resolvable name; port 0 binds an ephemeral port).
struct Address {
  bool isUnix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< TCP host
  std::uint16_t port = 0;
};

/// Parses an endpoint string; throws std::runtime_error with the accepted
/// grammar on malformed input.
Address parseAddress(const std::string& s);

/// Renders an Address back to its endpoint string.
std::string to_string(const Address& a);

/// RAII socket fd.  Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// A bound, listening endpoint.  Unix paths are unlinked on destruction.
class Listener {
 public:
  explicit Listener(const Address& addr);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return sock_.fd(); }
  /// The actual bound endpoint ("127.0.0.1:41833" after binding port 0).
  std::string boundAddress() const { return to_string(bound_); }

  /// Accepts one pending connection (non-blocking); invalid Socket when
  /// none is waiting.  The returned socket is non-blocking.
  Socket accept();

 private:
  Socket sock_;
  Address bound_;
};

/// Connects to `addr`, retrying with capped exponential backoff
/// (core::Backoff) until `timeout` elapses — workers may be launched before
/// their coordinator is listening.  An EINTR'd connect() retries
/// immediately rather than burning a backoff slot.  Throws
/// std::runtime_error when the deadline passes, or as soon as `stop` is
/// latched — a reconnecting worker whose campaign just ended must not sit
/// out the full dial timeout against a coordinator that is already gone.
/// The returned socket is blocking.
Socket connectTo(const Address& addr, std::chrono::milliseconds timeout,
                 const std::atomic<bool>* stop = nullptr);

/// Marks `fd` non-blocking.
void setNonBlocking(int fd);

/// "ip:port" (TCP) or "unix" for the peer of a connected socket — the
/// worker-address half of attributable fleet diagnostics.
std::string peerDescription(int fd);

/// Writes all of `data`, waiting (poll POLLOUT) through partial writes,
/// EAGAIN, and EINTR.  Returns false on a peer error/close, with a
/// diagnostic in `err`.  Works for blocking and non-blocking fds.  `site`
/// tags the operation for the fault-injection seam (core::checkFault with
/// FaultOp::NetSend); an injected Sever lets the decided byte budget
/// through, shuts the socket down, and reports the injected fault in `err`.
bool sendAll(int fd, const std::string& data, std::string& err,
             const char* site = "fleet.send");

/// One recv(2) worth of bytes, with EINTR retried internally so a signal
/// never surfaces as a connection error.
enum class RecvStatus : std::uint8_t {
  Data,        ///< `n` bytes landed in the buffer
  WouldBlock,  ///< non-blocking fd with nothing pending
  Eof,         ///< orderly peer close
  Error,       ///< hard error (or injected fault), diagnostic in `err`
};
struct RecvResult {
  RecvStatus status = RecvStatus::Error;
  std::size_t n = 0;
  std::string err;
};

/// Reads at most `cap` bytes into `buf`.  All fleet reads (coordinator and
/// worker) funnel through here: EINTR handling lives in exactly one place,
/// and `site` exposes the read to the fault-injection seam
/// (FaultOp::NetRecv) — an injected Short decision truncates the read (the
/// peer's frames arrive partially), Stall sleeps first, Sever/Fail surface
/// as Error with the injected diagnostic.
RecvResult recvSome(int fd, char* buf, std::size_t cap,
                    const char* site = "fleet.recv");

}  // namespace mtt::fleet
