// Minimal POSIX stream-socket layer for mtt::fleet: address parsing, an
// RAII fd, a listening endpoint, and connect-with-retry.  TCP and
// Unix-domain sockets only — everything above this file speaks the framed
// protocol (fleet/protocol.hpp) and never touches an fd directly except
// through these helpers.
//
// Off POSIX, every entry point throws std::runtime_error("mtt::fleet
// requires POSIX sockets"), mirroring the farm's graceful degradation
// pattern: the library still links, the feature reports itself missing.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mtt::fleet {

/// A listen/connect endpoint: "unix:/path/to.sock" or "host:port" (TCP;
/// numeric IPv4 or a resolvable name; port 0 binds an ephemeral port).
struct Address {
  bool isUnix = false;
  std::string path;  ///< unix socket path
  std::string host;  ///< TCP host
  std::uint16_t port = 0;
};

/// Parses an endpoint string; throws std::runtime_error with the accepted
/// grammar on malformed input.
Address parseAddress(const std::string& s);

/// Renders an Address back to its endpoint string.
std::string to_string(const Address& a);

/// RAII socket fd.  Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// A bound, listening endpoint.  Unix paths are unlinked on destruction.
class Listener {
 public:
  explicit Listener(const Address& addr);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return sock_.fd(); }
  /// The actual bound endpoint ("127.0.0.1:41833" after binding port 0).
  std::string boundAddress() const { return to_string(bound_); }

  /// Accepts one pending connection (non-blocking); invalid Socket when
  /// none is waiting.  The returned socket is non-blocking.
  Socket accept();

 private:
  Socket sock_;
  Address bound_;
};

/// Connects to `addr`, retrying with a short backoff until `timeout`
/// elapses — workers may be launched before their coordinator is
/// listening.  Throws std::runtime_error when the deadline passes.
/// The returned socket is blocking.
Socket connectTo(const Address& addr, std::chrono::milliseconds timeout);

/// Marks `fd` non-blocking.
void setNonBlocking(int fd);

/// Writes all of `data`, waiting (poll POLLOUT) through partial writes and
/// EAGAIN.  Returns false on a peer error/close, with a diagnostic in
/// `err`.  Works for blocking and non-blocking fds.
bool sendAll(int fd, const std::string& data, std::string& err);

}  // namespace mtt::fleet
