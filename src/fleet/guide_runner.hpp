// Bridges the fleet coordinator into mtt::guide's BatchRunner seam so a
// guided (adaptive) campaign can execute its batches on remote workers:
// `mtt serve --adaptive` is runGuided with this runner installed.
//
// Determinism note: the bandit's decision sequence depends on the batch
// width (GuideOptions::farm.jobs), not on where runs execute — a fleet
// campaign served with --jobs J produces the same timing-free report as a
// local `mtt hunt --guided --jobs J` of the same spec, for any worker
// count.  Consumers link mtt_guide in addition to mtt_fleet.
#pragma once

#include <utility>
#include <vector>

#include "fleet/coordinator.hpp"
#include "guide/guide.hpp"

namespace mtt::fleet {

/// A BatchRunner that leases each guided batch across the coordinator's
/// workers.  `stopOnFirstFind` mirrors GuideOptions::stopOnFirstFind: the
/// batch is cancelled as soon as any record carries a failure fingerprint
/// (the guide still decides campaign-level stopping from the folded
/// prefix).  The coordinator must outlive the returned runner.
inline guide::BatchRunner makeGuideBatchRunner(Coordinator& coordinator,
                                               bool stopOnFirstFind) {
  return [&coordinator,
          stopOnFirstFind](const std::vector<guide::GuideBatchRun>& batch) {
    std::vector<RunAssignment> runs;
    runs.reserve(batch.size());
    for (const guide::GuideBatchRun& r : batch) {
      runs.push_back(
          RunAssignment{r.index, r.seed, r.noiseName, r.strength, r.policy});
    }
    std::function<bool(const experiment::RunObservation&)> stopOn;
    if (stopOnFirstFind) {
      stopOn = [](const experiment::RunObservation& o) {
        return !guide::observationFingerprint(o).empty();
      };
    }
    Coordinator::BatchResult br = coordinator.runBatch(runs, {}, stopOn);
    guide::GuideBatchOutcome out;
    out.records = std::move(br.records);
    out.stoppedEarly = br.stoppedEarly;
    out.retries = br.retries;
    return out;
  };
}

}  // namespace mtt::fleet
