// mtt::fleet wire protocol — length-prefixed frames over a byte stream.
//
// Frame layout (all integers little-endian):
//
//   u32  length     byte count of everything after this field (>= 1)
//   u8   type       FrameType discriminator
//   u8[] payload    length-1 bytes, format per type
//
// Payloads are printable text built from the same escaped-field discipline
// as the farm pipe records (farm/record_io.hpp): '\t' separates fields,
// '\n' separates lines, embedded separators/backslashes are escaped, and
// binary blobs (coverage snapshots) ride as MSNP1 hex.  One codec for the
// worker pipe, the journal, and the wire keeps every record readable by
// every layer.
//
// Parsing discipline: tryParseFrame and every decode* function are total —
// any byte prefix of a valid stream yields NeedMore or a complete frame,
// and corrupt input yields a diagnostic, never a crash or an exception.
// The truncation-fuzz tests in tests/test_fleet.cpp enforce this for every
// prefix length (the same discipline as the scenario/journal/MSNP1
// loaders).
//
// Conversation:
//
//   worker -> coordinator   HELLO (protocol version)
//   coordinator -> worker   SPEC (the campaign base RunSpec)
//   coordinator -> worker   LEASE (id + [index seed noise strength] runs)
//   worker -> coordinator   RECORD per finished run, then LEASE_DONE
//   worker -> coordinator   HEARTBEAT while idle
//   coordinator -> worker   QUIT when the campaign is over
//   either direction        ERROR with a diagnostic, then close
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"

namespace mtt::fleet {

/// Bumped on any incompatible payload change; HELLO carries it and the
/// coordinator refuses mismatched workers up front.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on a single frame (sanity guard: a corrupt length prefix
/// must produce a diagnostic, not a 4 GiB allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  Hello = 'H',
  Spec = 'S',
  Lease = 'L',
  Record = 'R',
  LeaseDone = 'D',
  Heartbeat = 'B',
  Quit = 'Q',
  Error = 'E',
};

/// True for the discriminators this protocol version understands.
bool knownFrameType(std::uint8_t t);

struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::string payload;
};

/// Serializes one frame (length prefix + type + payload).
std::string encodeFrame(FrameType type, const std::string& payload);

enum class ParseStatus : std::uint8_t {
  NeedMore,  ///< buffer holds a valid but incomplete frame prefix
  Ok,        ///< one frame extracted; `consumed` bytes may be dropped
  Corrupt,   ///< unrecoverable stream damage; `error` says what
};

struct ParseResult {
  ParseStatus status = ParseStatus::NeedMore;
  Frame frame;               ///< valid when status == Ok
  std::size_t consumed = 0;  ///< bytes of `buffer` this frame occupied
  std::string error;         ///< diagnostic when status == Corrupt
};

/// Incremental frame extraction from the front of `buffer`.  Never throws,
/// never reads past buffer.size(), never allocates more than one payload.
ParseResult tryParseFrame(const std::string& buffer);

// --- payload codecs -------------------------------------------------------
// Every decode returns false with a diagnostic in `err` on malformed input.

std::string encodeHello();
bool decodeHello(const std::string& payload, std::uint32_t& version,
                 std::string& err);

/// The campaign base spec a worker needs to execute assignments: program,
/// tool configuration, run-option overrides.  policyFactory does not
/// travel (the coordinator rejects specs carrying one); per-run noise
/// heuristic/strength overrides ride in the lease assignments instead.
std::string encodeSpec(const experiment::RunSpec& spec);
bool decodeSpec(const std::string& payload, experiment::RunSpec& out,
                std::string& err);

/// One unit of leased work: execute global run `index` with `seed`.
/// `noiseName` empty means the spec's own tool config; otherwise the
/// worker substitutes this heuristic and strength (how guided campaigns
/// fan bandit arms across the fleet).  `policy` empty means the spec's
/// own schedule policy; otherwise a parameterized policy spec
/// (experiment::makePolicy grammar) the worker substitutes — the wire
/// form of the guide's policy arm dimension.  Encoded as an optional
/// fifth lease field: version-1 coordinators emit four fields and
/// version-1 workers accept both, so mixed fleets stay compatible.
struct RunAssignment {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  std::string noiseName;
  double strength = 0.0;
  std::string policy;
};

struct LeasePayload {
  std::uint64_t leaseId = 0;
  std::vector<RunAssignment> runs;
};

std::string encodeLease(const LeasePayload& lease);
bool decodeLease(const std::string& payload, LeasePayload& out,
                 std::string& err);

/// RECORD payload: the lease id, then the standard pipe-record encoding of
/// the observation (runIndex already remapped to the global index).
std::string encodeRecord(std::uint64_t leaseId,
                         const experiment::RunObservation& obs);
bool decodeRecord(const std::string& payload, std::uint64_t& leaseId,
                  experiment::RunObservation& obs, std::string& err);

std::string encodeLeaseDone(std::uint64_t leaseId);
bool decodeLeaseDone(const std::string& payload, std::uint64_t& leaseId,
                     std::string& err);

}  // namespace mtt::fleet
