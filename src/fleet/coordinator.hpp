// mtt::fleet — the campaign coordinator: shards seed ranges into leases,
// streams records back from remote workers, and folds them in global
// run-index order so a fleet campaign's report and journal are
// byte-identical to the single-machine `--jobs 1` run of the same spec.
//
// Determinism argument (the fleet's core claim):
//   1. in controlled mode a RunObservation is a pure function of
//      (program, tool config, seed) — executeRun derives everything else;
//   2. a lease assignment fixes (global index, seed, noise arm), so any
//      worker, any sharding, and any arrival order produce the same record
//      for a given index (wall-clock fields excepted — scrubTiming zeroes
//      them when byte-stable journals are wanted);
//   3. the coordinator holds early-arriving records in a reorder buffer and
//      releases them to the collector only in contiguous index order, so
//      the journal, the JSONL stream, and the experiment::accumulate fold
//      all observe exactly the `--jobs 1` delivery sequence.
//
// Robustness: leases time out and are reassigned; a worker that dies
// mid-lease (EOF) has its unfinished indices requeued; a worker that times
// out or streams repeated infra-errors is quarantined; an index that kills
// `indexGiveUp` workers in a row is recorded as a supervised crashed/
// timeout record instead of livelocking the campaign (the farm's
// supervision semantics, one level up).  Duplicate records — a slow worker
// finishing a lease that was already reassigned — are accepted once and
// dropped thereafter, keyed by global index, so no index is ever lost or
// double-folded.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "fleet/protocol.hpp"

namespace mtt::fleet {

/// Fleet-level observability, threaded into the progress line and exposed
/// to the CLI epilogue.
struct FleetCounters {
  std::size_t workersConnected = 0;    ///< connections ever accepted
  std::size_t workersActive = 0;       ///< currently connected and healthy
  std::size_t workersQuarantined = 0;  ///< timed out / repeated infra-errors
  std::size_t leasesGranted = 0;
  std::size_t leasesReassigned = 0;    ///< requeued after death/timeout
  std::uint64_t recordsStreamed = 0;   ///< RECORD frames received
  std::uint64_t duplicatesDropped = 0; ///< stale/duplicate records ignored
  std::uint64_t bytesReceived = 0;     ///< wire bytes in (frames included)
  std::uint64_t bytesSent = 0;         ///< wire bytes out
};

struct FleetOptions {
  /// Endpoint to listen on: "host:port" (port 0 = ephemeral) or
  /// "unix:/path.sock".
  std::string listen = "127.0.0.1:0";
  /// Runs per lease: the sharding granularity.  Small leases spread work
  /// and shrink the reassignment blast radius; large leases amortize
  /// framing.
  std::size_t leaseSize = 16;
  /// Bounded in-flight leases per worker (backpressure): a worker never
  /// holds more than this many unfinished leases, so a slow worker cannot
  /// starve the rest of the fleet of work.
  std::size_t maxLeasesPerWorker = 2;
  /// A worker whose leases see no record for this long is presumed hung:
  /// its leases are reassigned and it is quarantined.  Must comfortably
  /// exceed the slowest single run (a worker cannot heartbeat mid-run).
  std::chrono::milliseconds leaseTimeout{30000};
  /// The idle-heartbeat cadence workers are expected to run
  /// (WorkerOptions::heartbeatInterval).  The Coordinator constructor
  /// rejects a configuration where this does not fit strictly inside
  /// leaseTimeout — an idle worker that cannot fit one heartbeat into the
  /// timeout window would be quarantined for being healthy.
  std::chrono::milliseconds heartbeatInterval{1000};
  /// Degraded mode: when the fleet has no active workers and no record has
  /// arrived for this long, the batch aborts with a diagnostic instead of
  /// waiting forever — undispatched leases stay queued in the journal's
  /// sense (their indices are simply absent), so the campaign resumes
  /// cleanly.  0 disables the deadline (a coordinator may legitimately wait
  /// indefinitely for its first worker).
  std::chrono::milliseconds noProgressTimeout{0};
  /// Quarantine a worker after this many infra-error records from it.
  std::size_t quarantineAfter = 3;
  /// Give up on an index after its lease died this many times and record
  /// it as a supervised crashed/timeout run — a poison run that kills
  /// every worker it touches must not livelock the campaign.
  std::size_t indexGiveUp = 3;
  /// Invoked once with the bound endpoint (e.g. "127.0.0.1:41833") as soon
  /// as the listener is up — how a CLI announces an ephemeral port to the
  /// operator before any worker can have connected.
  std::function<void(const std::string&)> onListen;
  /// Farm passthrough: jsonlPath/jsonlAppend, journalPath/resume/
  /// journalConfig, progress (rendered as the fleet progress line),
  /// stopOnRecord, stopFlag, and scrubTiming are honored.  jobs/model/
  /// runTimeout are meaningless here (execution happens in the workers).
  farm::FarmOptions farm;
};

/// The long-lived coordinator service.  One instance may execute many
/// batches (the guided campaign loop); workers connect and disconnect
/// freely across batches.
class Coordinator {
 public:
  /// Validates the base spec (no policyFactory — it cannot cross the
  /// wire), binds the listen endpoint, and starts accepting workers.
  /// Throws std::runtime_error on configuration or socket errors.
  Coordinator(experiment::RunSpec base, const FleetOptions& options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound endpoint, e.g. "127.0.0.1:41833" after binding port 0.
  std::string address() const;

  struct BatchResult {
    /// First-delivery records keyed by global run index.
    std::map<std::uint64_t, experiment::RunObservation> records;
    bool stoppedEarly = false;
    std::size_t retries = 0;  ///< sum of (attempts - 1) over records
    /// Degraded-mode exit: the noProgressTimeout deadline fired with runs
    /// still owed.  `abortDiagnostic` names the cause (and the undone run
    /// count); the campaign journal remains resumable.
    bool aborted = false;
    std::string abortDiagnostic;
  };

  /// Arrival-order record callback (before any reorder buffering); the
  /// std::size_t is the delivering worker's connection id.
  using RecordSink =
      std::function<void(const experiment::RunObservation&, std::size_t)>;

  /// Executes one batch of assignments across the connected workers,
  /// waiting for late joiners when none are connected.  Returns when every
  /// assignment has a record (delivered or supervised) or a stop condition
  /// fired.  `sink` observes records in arrival order; `stopOn` cancels
  /// the batch once a record satisfies it (in-flight leases are dropped).
  BatchResult runBatch(
      const std::vector<RunAssignment>& runs, const RecordSink& sink = {},
      const std::function<bool(const experiment::RunObservation&)>& stopOn =
          {});

  /// Sends QUIT to every connected worker and closes the endpoint.
  /// Idempotent; the destructor calls it.
  void shutdown();

  const FleetCounters& counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fleet-parallel drop-in for farm::runExperimentFarm: serves spec.runs to
/// whatever workers connect to options.listen and folds the records
/// deterministically.  Supports journal resume (the same MTTJOURNAL file
/// and config digest as the farm — a campaign may be resumed across the
/// farm/fleet boundary in either direction).
farm::ExperimentCampaign runExperimentFleet(
    const experiment::ExperimentSpec& spec, const FleetOptions& options);

/// The counters of the last runExperimentFleet call on this thread (the
/// coordinator object itself is not exposed by that entry point).
FleetCounters lastFleetCounters();

}  // namespace mtt::fleet
