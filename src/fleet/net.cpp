#include "fleet/net.hpp"

#include <stdexcept>

#include "core/backoff.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTT_FLEET_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#endif

namespace mtt::fleet {

Address parseAddress(const std::string& s) {
  Address a;
  const std::string unixPrefix = "unix:";
  if (s.compare(0, unixPrefix.size(), unixPrefix) == 0) {
    a.isUnix = true;
    a.path = s.substr(unixPrefix.size());
    if (a.path.empty()) {
      throw std::runtime_error(
          "fleet address \"" + s + "\" names no socket path; expected "
          "\"unix:/path/to.sock\" or \"host:port\"");
    }
    return a;
  }
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    throw std::runtime_error(
        "fleet address \"" + s + "\" is malformed; expected "
        "\"unix:/path/to.sock\" or \"host:port\"");
  }
  a.host = s.substr(0, colon);
  const std::string portStr = s.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t pos = 0;
    port = std::stoul(portStr, &pos);
    if (pos != portStr.size()) throw std::invalid_argument(portStr);
  } catch (const std::exception&) {
    throw std::runtime_error("fleet address \"" + s +
                             "\" carries a non-numeric port");
  }
  if (port > 65535) {
    throw std::runtime_error("fleet address \"" + s +
                             "\" carries an out-of-range port");
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

std::string to_string(const Address& a) {
  if (a.isUnix) return "unix:" + a.path;
  return a.host + ":" + std::to_string(a.port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

#ifdef MTT_FLEET_HAS_SOCKETS

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void setNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

namespace {

/// A worker whose coordinator vanished sees EPIPE on write, not SIGPIPE.
void ignoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

sockaddr_un unixSockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    throw std::runtime_error("unix socket path too long (" +
                             std::to_string(path.size()) + " bytes): " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in tcpSockaddr(const Address& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1) return sa;
  // Not a dotted quad: resolve the name (getaddrinfo, IPv4).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(a.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("cannot resolve fleet host \"" + a.host +
                             "\": " + ::gai_strerror(rc));
  }
  sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return sa;
}

}  // namespace

Listener::Listener(const Address& addr) : bound_(addr) {
  ignoreSigpipeOnce();
  if (addr.isUnix) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
      throw std::runtime_error(std::string("socket(AF_UNIX): ") +
                               std::strerror(errno));
    }
    ::unlink(addr.path.c_str());  // stale socket from a killed coordinator
    sockaddr_un sa = unixSockaddr(addr.path);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      throw std::runtime_error("bind(" + addr.path +
                               "): " + std::strerror(errno));
    }
    sock_ = std::move(s);
  } else {
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
      throw std::runtime_error(std::string("socket(AF_INET): ") +
                               std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa = tcpSockaddr(bound_);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      throw std::runtime_error("bind(" + to_string(addr) +
                               "): " + std::strerror(errno));
    }
    socklen_t len = sizeof sa;
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&sa), &len) == 0) {
      bound_.port = ntohs(sa.sin_port);  // resolve an ephemeral port 0
    }
    sock_ = std::move(s);
  }
  if (::listen(sock_.fd(), 64) != 0) {
    throw std::runtime_error("listen(" + boundAddress() +
                             "): " + std::strerror(errno));
  }
  setNonBlocking(sock_.fd());
}

Listener::~Listener() {
  if (bound_.isUnix && sock_.valid()) ::unlink(bound_.path.c_str());
}

Socket Listener::accept() {
  int fd;
  do {
    fd = ::accept(sock_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);  // a signal is not "no connection"
  if (fd < 0) return Socket();
  setNonBlocking(fd);
  int one = 1;
  if (!bound_.isUnix) {
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return Socket(fd);
}

std::string peerDescription(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return "?";
  }
  if (ss.ss_family == AF_INET) {
    const auto* sin = reinterpret_cast<const sockaddr_in*>(&ss);
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &sin->sin_addr, ip, sizeof ip);
    return std::string(ip) + ":" + std::to_string(ntohs(sin->sin_port));
  }
  if (ss.ss_family == AF_UNIX) return "unix";
  return "?";
}

Socket connectTo(const Address& addr, std::chrono::milliseconds timeout,
                 const std::atomic<bool>* stop) {
  ignoreSigpipeOnce();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Deterministic-jitter schedule seeded by the target port (distinct
  // endpoints de-synchronize; the same endpoint retries reproducibly).
  core::Backoff backoff(core::BackoffPolicy{
      std::chrono::milliseconds(10), std::chrono::milliseconds(250), 2, 0.5,
      static_cast<std::uint64_t>(addr.port) + addr.path.size()});
  std::string lastError;
  for (;;) {
    Socket s(::socket(addr.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
    if (s.valid()) {
      int rc;
      do {
        if (addr.isUnix) {
          sockaddr_un sa = unixSockaddr(addr.path);
          rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof sa);
        } else {
          sockaddr_in sa = tcpSockaddr(addr);
          rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof sa);
        }
        // EINTR mid-connect: retry on a fresh socket right away — the
        // interrupted attempt's state is indeterminate, but the signal is
        // not a refusal and must not consume a backoff slot.
      } while (rc != 0 && errno == EINTR &&
               (s = Socket(::socket(addr.isUnix ? AF_UNIX : AF_INET,
                                    SOCK_STREAM, 0)),
                s.valid()));
      if (rc == 0) {
        if (!addr.isUnix) {
          int one = 1;
          ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        }
        return s;
      }
      lastError = std::strerror(errno);
    } else {
      lastError = std::strerror(errno);
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      throw std::runtime_error("connect to fleet coordinator at " +
                               to_string(addr) +
                               " abandoned: stop requested");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("cannot connect to fleet coordinator at " +
                               to_string(addr) + " within " +
                               std::to_string(timeout.count()) +
                               " ms: " + lastError);
    }
    std::this_thread::sleep_for(backoff.next());
  }
}

bool sendAll(int fd, const std::string& data, std::string& err,
             const char* site) {
  std::size_t budget = data.size();  // bytes an injected Sever lets through
  bool severAfterBudget = false;
  const core::FaultDecision fault =
      core::checkFault(core::FaultOp::NetSend, site, data.size());
  switch (fault.action) {
    case core::FaultDecision::Action::None:
    case core::FaultDecision::Action::Short:  // fragments; sendAll re-sends
    case core::FaultDecision::Action::Duplicate:
      break;
    case core::FaultDecision::Action::Stall:
      std::this_thread::sleep_for(fault.delay);
      break;
    case core::FaultDecision::Action::Sever:
      budget = std::min(budget, fault.count);
      severAfterBudget = true;
      break;
    case core::FaultDecision::Action::Fail:
      err = std::string("chaos: injected send failure at ") + site + " (" +
            std::strerror(fault.err != 0 ? fault.err : EIO) + ")";
      ::shutdown(fd, SHUT_RDWR);
      return false;
  }
  std::size_t off = 0;
  while (off < budget) {
    const ssize_t n = ::send(fd, data.data() + off, budget - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&p, 1, 1000);
      } while (rc < 0 && errno == EINTR);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    err = n == 0 ? "peer closed the connection" : std::strerror(errno);
    return false;
  }
  if (severAfterBudget) {
    // The peer sees a mid-frame EOF at an arbitrary byte boundary — the
    // partial-frame edge every parser above this layer must survive.
    ::shutdown(fd, SHUT_RDWR);
    err = std::string("chaos: connection severed at ") + site + " after " +
          std::to_string(off) + " of " + std::to_string(data.size()) +
          " bytes";
    return false;
  }
  return true;
}

RecvResult recvSome(int fd, char* buf, std::size_t cap, const char* site) {
  RecvResult r;
  const core::FaultDecision fault =
      core::checkFault(core::FaultOp::NetRecv, site, cap);
  switch (fault.action) {
    case core::FaultDecision::Action::None:
    case core::FaultDecision::Action::Duplicate:
      break;
    case core::FaultDecision::Action::Stall:
      std::this_thread::sleep_for(fault.delay);
      break;
    case core::FaultDecision::Action::Short:
      // Truncated read: frames upstream arrive in pieces, exercising the
      // incremental parser on every prefix the plan chooses.
      cap = std::max<std::size_t>(1, std::min(cap, fault.count));
      break;
    case core::FaultDecision::Action::Sever:
      ::shutdown(fd, SHUT_RDWR);
      r.status = RecvStatus::Error;
      r.err = std::string("chaos: connection severed at ") + site;
      return r;
    case core::FaultDecision::Action::Fail:
      r.status = RecvStatus::Error;
      r.err = std::string("chaos: injected recv failure at ") + site + " (" +
              std::strerror(fault.err != 0 ? fault.err : EIO) + ")";
      return r;
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      r.status = RecvStatus::Data;
      r.n = static_cast<std::size_t>(n);
      return r;
    }
    if (n == 0) {
      r.status = RecvStatus::Eof;
      return r;
    }
    if (errno == EINTR) continue;  // a signal must not look like a dead peer
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.status = RecvStatus::WouldBlock;
      return r;
    }
    r.status = RecvStatus::Error;
    r.err = std::strerror(errno);
    return r;
  }
}

#else  // !MTT_FLEET_HAS_SOCKETS

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error("mtt::fleet requires POSIX sockets");
}
}  // namespace

void Socket::close() { fd_ = -1; }
void setNonBlocking(int) { unsupported(); }
Listener::Listener(const Address&) { unsupported(); }
Listener::~Listener() = default;
Socket Listener::accept() { unsupported(); }
std::string peerDescription(int) { unsupported(); }
Socket connectTo(const Address&, std::chrono::milliseconds,
                 const std::atomic<bool>*) {
  unsupported();
}
bool sendAll(int, const std::string&, std::string&, const char*) {
  unsupported();
}
RecvResult recvSome(int, char*, std::size_t, const char*) { unsupported(); }

#endif  // MTT_FLEET_HAS_SOCKETS

}  // namespace mtt::fleet
