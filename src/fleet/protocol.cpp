// Frame and payload codecs for the fleet wire protocol.  Everything here
// is a pure function of its input bytes: no I/O, no globals — which is
// what makes the byte-prefix truncation fuzz in test_fleet.cpp possible.
#include "fleet/protocol.hpp"

#include <cstdio>
#include <cstring>

#include "farm/record_io.hpp"

namespace mtt::fleet {

namespace {

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parseU32(const std::string& s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parseU64(s, v) || v > 0xffffffffull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parseDouble(const std::string& s, double& out) {
  if (s.empty()) return false;
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parseBool(const std::string& s, bool& out) {
  if (s != "0" && s != "1") return false;
  out = s == "1";
  return true;
}

std::vector<std::string> splitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace

bool knownFrameType(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::Hello:
    case FrameType::Spec:
    case FrameType::Lease:
    case FrameType::Record:
    case FrameType::LeaseDone:
    case FrameType::Heartbeat:
    case FrameType::Quit:
    case FrameType::Error:
      return true;
  }
  return false;
}

std::string encodeFrame(FrameType type, const std::string& payload) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size() + 1);
  std::string out;
  out.reserve(4 + length);
  out += static_cast<char>(length & 0xff);
  out += static_cast<char>((length >> 8) & 0xff);
  out += static_cast<char>((length >> 16) & 0xff);
  out += static_cast<char>((length >> 24) & 0xff);
  out += static_cast<char>(type);
  out += payload;
  return out;
}

ParseResult tryParseFrame(const std::string& buffer) {
  ParseResult r;
  if (buffer.size() < 4) {
    r.status = ParseStatus::NeedMore;
    return r;
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[0])) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[1])) << 8 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[2])) << 16 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[3])) << 24;
  if (length == 0) {
    r.status = ParseStatus::Corrupt;
    r.error = "fleet frame with zero length (missing type byte)";
    return r;
  }
  if (length > kMaxFrameBytes) {
    r.status = ParseStatus::Corrupt;
    r.error = "fleet frame length " + std::to_string(length) +
              " exceeds the " + std::to_string(kMaxFrameBytes) +
              "-byte limit (corrupt stream?)";
    return r;
  }
  // Validate the type as soon as it is visible: a corrupt discriminator
  // should not wait for a possibly-large payload to arrive.
  if (buffer.size() >= 5 && !knownFrameType(
          static_cast<std::uint8_t>(buffer[4]))) {
    r.status = ParseStatus::Corrupt;
    r.error = "unknown fleet frame type byte " +
              std::to_string(static_cast<unsigned char>(buffer[4]));
    return r;
  }
  if (buffer.size() < 4u + length) {
    r.status = ParseStatus::NeedMore;
    return r;
  }
  r.status = ParseStatus::Ok;
  r.frame.type = static_cast<FrameType>(buffer[4]);
  r.frame.payload = buffer.substr(5, length - 1);
  r.consumed = 4u + length;
  return r;
}

// --- HELLO ----------------------------------------------------------------

std::string encodeHello() {
  return "MTTFLEET " + std::to_string(kProtocolVersion);
}

bool decodeHello(const std::string& payload, std::uint32_t& version,
                 std::string& err) {
  const std::string magic = "MTTFLEET ";
  if (payload.compare(0, magic.size(), magic) != 0) {
    err = "HELLO payload does not start with \"MTTFLEET \"";
    return false;
  }
  if (!parseU32(payload.substr(magic.size()), version)) {
    err = "HELLO payload carries a malformed protocol version";
    return false;
  }
  return true;
}

// --- SPEC -----------------------------------------------------------------

namespace {

void appendSpecLine(std::string& out, const char* key,
                    const std::string& value) {
  out += key;
  out += '\t';
  farm::appendEscapedField(out, value);
  out += '\n';
}

}  // namespace

std::string encodeSpec(const experiment::RunSpec& spec) {
  std::string out = "MTTSPEC 1\n";
  appendSpecLine(out, "program", spec.programName);
  appendSpecLine(out, "mode", spec.tool.mode == RuntimeMode::Controlled
                                  ? "controlled"
                                  : "native");
  appendSpecLine(out, "policy", spec.tool.policy);
  appendSpecLine(out, "noise", spec.tool.noiseName);
  appendSpecLine(out, "strength", formatDouble(spec.tool.noiseOpts.strength));
  appendSpecLine(out, "max-yields",
                 std::to_string(spec.tool.noiseOpts.maxYields));
  appendSpecLine(out, "max-sleep-native",
                 std::to_string(spec.tool.noiseOpts.maxSleepNative));
  appendSpecLine(out, "max-sleep-controlled",
                 std::to_string(spec.tool.noiseOpts.maxSleepControlled));
  for (const std::string& t : spec.tool.noiseTargets) {
    appendSpecLine(out, "target", t);
  }
  for (const std::string& d : spec.tool.detectors) {
    appendSpecLine(out, "detector", d);
  }
  appendSpecLine(out, "lock-graph", spec.tool.lockGraph ? "1" : "0");
  appendSpecLine(out, "coverage", spec.tool.coverage);
  appendSpecLine(out, "closed-universe",
                 spec.tool.coverageClosedUniverse ? "1" : "0");
  appendSpecLine(out, "seed-base", std::to_string(spec.seedBase));
  if (spec.runOptions.has_value()) {
    appendSpecLine(out, "max-steps", std::to_string(spec.runOptions->maxSteps));
    appendSpecLine(out, "block-timeout-ms",
                   std::to_string(spec.runOptions->blockTimeout.count()));
    appendSpecLine(out, "dispatch-timing",
                   spec.runOptions->dispatchTiming ? "1" : "0");
  }
  return out;
}

bool decodeSpec(const std::string& payload, experiment::RunSpec& out,
                std::string& err) {
  std::vector<std::string> lines = splitLines(payload);
  if (lines.empty() || lines[0] != "MTTSPEC 1") {
    err = "SPEC payload missing the \"MTTSPEC 1\" header";
    return false;
  }
  experiment::RunSpec spec;
  bool sawProgram = false;
  rt::RunOptions runOpts;
  bool sawRunOpts = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> f = farm::splitTabFields(lines[i]);
    if (f.size() != 2) {
      err = "SPEC line " + std::to_string(i + 1) +
            " is not a key/value pair: \"" + lines[i] + "\"";
      return false;
    }
    const std::string& key = f[0];
    const std::string value = farm::unescapeField(f[1]);
    bool ok = true;
    if (key == "program") {
      spec.programName = value;
      sawProgram = true;
    } else if (key == "mode") {
      if (value == "controlled") {
        spec.tool.mode = RuntimeMode::Controlled;
      } else if (value == "native") {
        spec.tool.mode = RuntimeMode::Native;
      } else {
        ok = false;
      }
    } else if (key == "policy") {
      spec.tool.policy = value;
    } else if (key == "noise") {
      spec.tool.noiseName = value;
    } else if (key == "strength") {
      ok = parseDouble(value, spec.tool.noiseOpts.strength);
    } else if (key == "max-yields") {
      ok = parseU32(value, spec.tool.noiseOpts.maxYields);
    } else if (key == "max-sleep-native") {
      ok = parseU32(value, spec.tool.noiseOpts.maxSleepNative);
    } else if (key == "max-sleep-controlled") {
      ok = parseU32(value, spec.tool.noiseOpts.maxSleepControlled);
    } else if (key == "target") {
      spec.tool.noiseTargets.insert(value);
    } else if (key == "detector") {
      spec.tool.detectors.push_back(value);
    } else if (key == "lock-graph") {
      ok = parseBool(value, spec.tool.lockGraph);
    } else if (key == "coverage") {
      spec.tool.coverage = value;
    } else if (key == "closed-universe") {
      ok = parseBool(value, spec.tool.coverageClosedUniverse);
    } else if (key == "seed-base") {
      ok = parseU64(value, spec.seedBase);
    } else if (key == "max-steps") {
      ok = parseU64(value, runOpts.maxSteps);
      sawRunOpts = true;
    } else if (key == "block-timeout-ms") {
      std::uint64_t ms = 0;
      ok = parseU64(value, ms);
      runOpts.blockTimeout = std::chrono::milliseconds(ms);
      sawRunOpts = true;
    } else if (key == "dispatch-timing") {
      ok = parseBool(value, runOpts.dispatchTiming);
      sawRunOpts = true;
    } else {
      err = "SPEC carries unknown key \"" + key +
            "\" (worker and coordinator builds differ?)";
      return false;
    }
    if (!ok) {
      err = "SPEC key \"" + key + "\" has malformed value \"" + value + "\"";
      return false;
    }
  }
  if (!sawProgram) {
    err = "SPEC payload names no program";
    return false;
  }
  if (sawRunOpts) spec.runOptions = runOpts;
  out = std::move(spec);
  return true;
}

// --- LEASE ----------------------------------------------------------------

std::string encodeLease(const LeasePayload& lease) {
  std::string out = std::to_string(lease.leaseId);
  out += '\n';
  for (const RunAssignment& a : lease.runs) {
    out += std::to_string(a.index);
    out += '\t';
    out += std::to_string(a.seed);
    out += '\t';
    farm::appendEscapedField(out, a.noiseName);
    out += '\t';
    out += formatDouble(a.strength);
    if (!a.policy.empty()) {
      // Optional fifth field: omitted when empty so plain campaigns emit
      // the exact version-1 wire bytes (mixed fleets stay compatible).
      out += '\t';
      farm::appendEscapedField(out, a.policy);
    }
    out += '\n';
  }
  return out;
}

bool decodeLease(const std::string& payload, LeasePayload& out,
                 std::string& err) {
  std::vector<std::string> lines = splitLines(payload);
  if (lines.empty()) {
    err = "LEASE payload is empty";
    return false;
  }
  LeasePayload lease;
  if (!parseU64(lines[0], lease.leaseId)) {
    err = "LEASE payload carries a malformed lease id \"" + lines[0] + "\"";
    return false;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> f = farm::splitTabFields(lines[i]);
    RunAssignment a;
    if ((f.size() != 4 && f.size() != 5) || !parseU64(f[0], a.index) ||
        !parseU64(f[1], a.seed) || !parseDouble(f[3], a.strength)) {
      err = "LEASE assignment line " + std::to_string(i + 1) +
            " is malformed: \"" + lines[i] + "\"";
      return false;
    }
    a.noiseName = farm::unescapeField(f[2]);
    if (f.size() == 5) a.policy = farm::unescapeField(f[4]);
    lease.runs.push_back(std::move(a));
  }
  out = std::move(lease);
  return true;
}

// --- RECORD / LEASE_DONE --------------------------------------------------

std::string encodeRecord(std::uint64_t leaseId,
                         const experiment::RunObservation& obs) {
  return std::to_string(leaseId) + '\t' + farm::encodePipeRecord(obs);
}

bool decodeRecord(const std::string& payload, std::uint64_t& leaseId,
                  experiment::RunObservation& obs, std::string& err) {
  const std::size_t tab = payload.find('\t');
  if (tab == std::string::npos || !parseU64(payload.substr(0, tab), leaseId)) {
    err = "RECORD payload carries a malformed lease id prefix";
    return false;
  }
  if (!farm::decodePipeRecord(payload.substr(tab + 1), obs)) {
    err = "RECORD payload carries a malformed pipe record";
    return false;
  }
  return true;
}

std::string encodeLeaseDone(std::uint64_t leaseId) {
  return std::to_string(leaseId);
}

bool decodeLeaseDone(const std::string& payload, std::uint64_t& leaseId,
                     std::string& err) {
  if (!parseU64(payload, leaseId)) {
    err = "LEASE_DONE payload carries a malformed lease id";
    return false;
  }
  return true;
}

}  // namespace mtt::fleet
