#include "fleet/worker.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/backoff.hpp"
#include "core/fault.hpp"
#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "farm/record_io.hpp"
#include "fleet/net.hpp"
#include "fleet/protocol.hpp"
#include "suite/program.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTT_FLEET_HAS_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#endif

namespace mtt::fleet {

#ifndef MTT_FLEET_HAS_SOCKETS

WorkerStats runWorker(const WorkerOptions&) {
  throw std::runtime_error("mtt::fleet requires POSIX sockets");
}

#else

namespace {

/// Internal signal: the coordinator vanished mid-send (EPIPE/reset).
/// Handled as an orderly exit, exactly like reading EOF — the coordinator
/// races QUIT delivery against closing the socket, and a worker must not
/// treat losing that race as a crash.
struct ConnectionClosed {
  std::string detail;
};

class WorkerSession {
 public:
  WorkerSession(const WorkerOptions& options)
      : options_(options),
        sock_(connectTo(parseAddress(options.connect),
                        options.connectTimeout, options.stopFlag)) {}

  WorkerStats run() {
    farm::detail::applyRunLimits(options_.memLimitMb, options_.cpuLimitSec);
    try {
      return serve();
    } catch (const ConnectionClosed&) {
      stats_.exitReason = "coordinator connection closed";
      return stats_;
    }
  }

 private:
  WorkerStats serve() {
    send(FrameType::Hello, encodeHello());
    for (;;) {
      Frame frame;
      if (!nextFrame(frame)) {
        // EOF races QUIT delivery during normal campaign teardown; treat
        // a vanished coordinator as an orderly exit, not a crash.
        stats_.exitReason = "coordinator connection closed";
        return stats_;
      }
      if (stopped()) {
        stats_.exitReason = "stopped by signal";
        return stats_;
      }
      switch (frame.type) {
        case FrameType::Spec:
          adoptSpec(frame.payload);
          break;
        case FrameType::Lease:
          executeLease(frame.payload);
          break;
        case FrameType::Quit:
          stats_.exitReason = frame.payload.empty()
                                  ? "coordinator closed the campaign"
                                  : frame.payload;
          return stats_;
        case FrameType::Error:
          throw std::runtime_error("fleet coordinator rejected this worker: " +
                                   frame.payload);
        case FrameType::Heartbeat:
          break;
        case FrameType::Hello:
        case FrameType::Record:
        case FrameType::LeaseDone: {
          const std::string msg = "unexpected frame from coordinator";
          send(FrameType::Error, msg);
          throw std::runtime_error("fleet worker: " + msg);
        }
      }
    }
  }

  bool stopped() const {
    return options_.stopFlag != nullptr &&
           options_.stopFlag->load(std::memory_order_relaxed);
  }

  void send(FrameType type, const std::string& payload) {
    const std::string bytes = encodeFrame(type, payload);
    std::string err;
    if (!sendAll(sock_.fd(), bytes, err, "fleet.worker.send")) {
      throw ConnectionClosed{err};
    }
    stats_.bytesSent += bytes.size();
  }

  /// Blocks for the next frame, emitting idle heartbeats.  False on EOF.
  /// Throws on read errors and corrupt streams.
  bool nextFrame(Frame& out) {
    for (;;) {
      ParseResult r = tryParseFrame(rx_);
      if (r.status == ParseStatus::Ok) {
        rx_.erase(0, r.consumed);
        out = std::move(r.frame);
        return true;
      }
      if (r.status == ParseStatus::Corrupt) {
        send(FrameType::Error, r.error);
        throw std::runtime_error("fleet worker: coordinator stream corrupt: " +
                                 r.error);
      }
      pollfd p{sock_.fd(), POLLIN, 0};
      const int rc = ::poll(
          &p, 1, static_cast<int>(options_.heartbeatInterval.count()));
      if (stopped()) return false;
      if (rc == 0) {
        // The heartbeat fault site: Stall (or a bare delay) postpones the
        // beat past its cadence, Duplicate sends extras — the coordinator
        // must tolerate both (late beats only matter against leaseTimeout,
        // and HEARTBEAT frames are idempotent).
        const core::FaultDecision fault = core::checkFault(
            core::FaultOp::HeartbeatSend, "fleet.worker.heartbeat", 0);
        if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
        send(FrameType::Heartbeat, "");
        if (fault.action == core::FaultDecision::Action::Duplicate) {
          const std::size_t extra = std::max<std::size_t>(fault.count, 1);
          for (std::size_t i = 0; i < extra; ++i) {
            send(FrameType::Heartbeat, "");
          }
        }
        continue;
      }
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("fleet worker poll: ") +
                                 std::strerror(errno));
      }
      char buf[64 * 1024];
      const RecvResult rr =
          recvSome(sock_.fd(), buf, sizeof buf, "fleet.worker.recv");
      if (rr.status == RecvStatus::Eof) return false;
      if (rr.status == RecvStatus::Error) {
        // A hard read error (ECONNRESET, an injected sever...) means the
        // connection is unusable, which for a worker is the same situation
        // as an orderly close: exit this session (and let the reconnect
        // loop, when enabled, return the worker to service).
        throw ConnectionClosed{rr.err};
      }
      if (rr.status == RecvStatus::WouldBlock) continue;
      stats_.bytesReceived += static_cast<std::uint64_t>(rr.n);
      rx_.append(buf, rr.n);
    }
  }

  void adoptSpec(const std::string& payload) {
    experiment::RunSpec spec;
    std::string err;
    if (!decodeSpec(payload, spec, err)) {
      send(FrameType::Error, err);
      throw std::runtime_error("fleet worker: " + err);
    }
    // Validate on THIS build before accepting work: an unknown program or
    // tool must be one handshake error, not a stream of infra-errors.
    try {
      experiment::validateToolConfig(spec.tool);
      suite::makeProgram(spec.programName);
    } catch (const std::exception& e) {
      send(FrameType::Error, e.what());
      throw std::runtime_error(
          std::string("fleet worker cannot execute this spec: ") + e.what());
    }
    spec_ = std::move(spec);
    stacks_.clear();
    haveSpec_ = true;
  }

  experiment::ToolStack& stackFor(const experiment::ToolConfig& tool) {
    auto it = stacks_.find(tool.noiseName);
    if (it == stacks_.end()) {
      it = stacks_
               .emplace(tool.noiseName, std::make_unique<experiment::ToolStack>(
                                            experiment::makeToolStack(tool)))
               .first;
    }
    return *it->second;
  }

  void executeLease(const std::string& payload) {
    if (!haveSpec_) {
      const std::string msg = "LEASE before SPEC";
      send(FrameType::Error, msg);
      throw std::runtime_error("fleet worker: " + msg);
    }
    LeasePayload lease;
    std::string err;
    if (!decodeLease(payload, lease, err)) {
      send(FrameType::Error, err);
      throw std::runtime_error("fleet worker: " + err);
    }
    for (const RunAssignment& a : lease.runs) {
      if (stopped()) break;
      experiment::RunObservation obs = executeAssignment(a);
      obs.runIndex = a.index;  // global campaign index, not the local 0
      send(FrameType::Record, encodeRecord(lease.leaseId, obs));
      ++stats_.recordsSent;
    }
    send(FrameType::LeaseDone, encodeLeaseDone(lease.leaseId));
    ++stats_.leases;
  }

  experiment::RunObservation executeAssignment(const RunAssignment& a) {
    experiment::RunSpec rs = spec_;
    if (!a.noiseName.empty()) {
      rs.tool.noiseName = a.noiseName;
      rs.tool.noiseOpts.strength = a.strength;
    }
    // Policy-arm substitution: executeRun builds the policy per run from
    // rs.tool.policy, so no stack state changes (stacks stay keyed by noise).
    if (!a.policy.empty()) rs.tool.policy = a.policy;
    rs.seedBase = a.seed;  // executeRun(rs, 0) then runs exactly `seed`
    std::string lastError;
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        experiment::ToolStack& stack = stackFor(rs.tool);
        if (stack.noiseMaker() != nullptr) {
          stack.noiseMaker()->setOptions(rs.tool.noiseOpts);
        }
        experiment::RunObservation obs = experiment::executeRun(rs, 0, stack);
        obs.attempts = attempt;
        ++stats_.runsExecuted;
        return obs;
      } catch (const std::exception& e) {
        lastError = e.what();
      } catch (...) {
        lastError = "unknown harness error";
      }
      if (attempt > options_.maxRetries) {
        experiment::RunObservation obs;
        obs.runIndex = a.index;
        obs.seed = a.seed;
        obs.status = "infra-error";
        obs.failureMessage = lastError;
        obs.attempts = attempt;
        return obs;
      }
      core::BackoffPolicy bp;
      bp.initial = options_.retryBackoff;
      bp.cap = std::chrono::milliseconds(5000);
      bp.jitter = 0.0;  // deterministic retry timing, like the farm's
      std::this_thread::sleep_for(core::backoffDelay(bp, attempt));
    }
  }

  const WorkerOptions& options_;
  Socket sock_;
  std::string rx_;
  WorkerStats stats_;
  experiment::RunSpec spec_;
  bool haveSpec_ = false;
  std::map<std::string, std::unique_ptr<experiment::ToolStack>> stacks_;
};

void accumulateStats(WorkerStats& total, const WorkerStats& s) {
  total.leases += s.leases;
  total.runsExecuted += s.runsExecuted;
  total.recordsSent += s.recordsSent;
  total.bytesSent += s.bytesSent;
  total.bytesReceived += s.bytesReceived;
  total.exitReason = s.exitReason;
}

std::uint64_t addressSeed(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

WorkerStats runWorker(const WorkerOptions& options) {
  WorkerStats total;
  // Reconnect-with-session-resume: a dropped connection ends one session,
  // not the worker.  The coordinator requeues the dropped leases and dedups
  // records by global index, so a fresh HELLO/SPEC handshake resumes the
  // campaign with zero output difference; the only things the worker must
  // NOT reconnect after are QUIT (campaign over), a stop latch, and a
  // coordinator that rejected it (those exceptions still propagate).
  core::BackoffPolicy dialPolicy;
  dialPolicy.initial = std::chrono::milliseconds(50);
  dialPolicy.cap = std::chrono::milliseconds(2000);
  dialPolicy.seed = addressSeed(options.connect);
  core::Backoff dialBackoff(dialPolicy);
  bool everConnected = false;
  std::size_t failedDials = 0;
  for (;;) {
    std::unique_ptr<WorkerSession> session;
    try {
      session = std::make_unique<WorkerSession>(options);
    } catch (const std::exception& e) {
      // Dial failure.  On the very first dial (or without reconnect) this
      // is fatal, as it always was; in reconnect mode a bounded run of
      // re-dial failures is how a worker discovers the campaign is over.
      if (!options.reconnect || !everConnected) throw;
      if (options.stopFlag != nullptr &&
          options.stopFlag->load(std::memory_order_relaxed)) {
        total.exitReason = "coordinator connection closed (stop requested "
                           "during reconnect)";
        return total;
      }
      if (++failedDials > options.reconnectAttempts) {
        total.exitReason = "coordinator connection closed (gave up after " +
                           std::to_string(failedDials - 1) +
                           " failed reconnect attempts: " + e.what() + ")";
        return total;
      }
      std::this_thread::sleep_for(dialBackoff.next());
      continue;
    }
    everConnected = true;
    failedDials = 0;
    accumulateStats(total, session->run());
    const bool connectionLost =
        total.exitReason == "coordinator connection closed";
    const bool stopped = options.stopFlag != nullptr &&
                         options.stopFlag->load(std::memory_order_relaxed);
    if (!options.reconnect || !connectionLost || stopped) return total;
    ++total.reconnects;
    std::this_thread::sleep_for(dialBackoff.next());
  }
}

#endif  // MTT_FLEET_HAS_SOCKETS

}  // namespace mtt::fleet
