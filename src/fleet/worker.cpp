#include "fleet/worker.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "farm/record_io.hpp"
#include "fleet/net.hpp"
#include "fleet/protocol.hpp"
#include "suite/program.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTT_FLEET_HAS_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#endif

namespace mtt::fleet {

#ifndef MTT_FLEET_HAS_SOCKETS

WorkerStats runWorker(const WorkerOptions&) {
  throw std::runtime_error("mtt::fleet requires POSIX sockets");
}

#else

namespace {

/// Internal signal: the coordinator vanished mid-send (EPIPE/reset).
/// Handled as an orderly exit, exactly like reading EOF — the coordinator
/// races QUIT delivery against closing the socket, and a worker must not
/// treat losing that race as a crash.
struct ConnectionClosed {
  std::string detail;
};

class WorkerSession {
 public:
  WorkerSession(const WorkerOptions& options)
      : options_(options),
        sock_(connectTo(parseAddress(options.connect),
                        options.connectTimeout)) {}

  WorkerStats run() {
    farm::detail::applyRunLimits(options_.memLimitMb, options_.cpuLimitSec);
    try {
      return serve();
    } catch (const ConnectionClosed&) {
      stats_.exitReason = "coordinator connection closed";
      return stats_;
    }
  }

 private:
  WorkerStats serve() {
    send(FrameType::Hello, encodeHello());
    for (;;) {
      Frame frame;
      if (!nextFrame(frame)) {
        // EOF races QUIT delivery during normal campaign teardown; treat
        // a vanished coordinator as an orderly exit, not a crash.
        stats_.exitReason = "coordinator connection closed";
        return stats_;
      }
      if (stopped()) {
        stats_.exitReason = "stopped by signal";
        return stats_;
      }
      switch (frame.type) {
        case FrameType::Spec:
          adoptSpec(frame.payload);
          break;
        case FrameType::Lease:
          executeLease(frame.payload);
          break;
        case FrameType::Quit:
          stats_.exitReason = frame.payload.empty()
                                  ? "coordinator closed the campaign"
                                  : frame.payload;
          return stats_;
        case FrameType::Error:
          throw std::runtime_error("fleet coordinator rejected this worker: " +
                                   frame.payload);
        case FrameType::Heartbeat:
          break;
        case FrameType::Hello:
        case FrameType::Record:
        case FrameType::LeaseDone: {
          const std::string msg = "unexpected frame from coordinator";
          send(FrameType::Error, msg);
          throw std::runtime_error("fleet worker: " + msg);
        }
      }
    }
  }

  bool stopped() const {
    return options_.stopFlag != nullptr &&
           options_.stopFlag->load(std::memory_order_relaxed);
  }

  void send(FrameType type, const std::string& payload) {
    const std::string bytes = encodeFrame(type, payload);
    std::string err;
    if (!sendAll(sock_.fd(), bytes, err)) throw ConnectionClosed{err};
    stats_.bytesSent += bytes.size();
  }

  /// Blocks for the next frame, emitting idle heartbeats.  False on EOF.
  /// Throws on read errors and corrupt streams.
  bool nextFrame(Frame& out) {
    for (;;) {
      ParseResult r = tryParseFrame(rx_);
      if (r.status == ParseStatus::Ok) {
        rx_.erase(0, r.consumed);
        out = std::move(r.frame);
        return true;
      }
      if (r.status == ParseStatus::Corrupt) {
        send(FrameType::Error, r.error);
        throw std::runtime_error("fleet worker: coordinator stream corrupt: " +
                                 r.error);
      }
      pollfd p{sock_.fd(), POLLIN, 0};
      const int rc = ::poll(
          &p, 1, static_cast<int>(options_.heartbeatInterval.count()));
      if (stopped()) return false;
      if (rc == 0) {
        send(FrameType::Heartbeat, "");
        continue;
      }
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("fleet worker poll: ") +
                                 std::strerror(errno));
      }
      char buf[64 * 1024];
      const ssize_t n = ::recv(sock_.fd(), buf, sizeof buf, 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        throw std::runtime_error(std::string("fleet worker recv: ") +
                                 std::strerror(errno));
      }
      stats_.bytesReceived += static_cast<std::uint64_t>(n);
      rx_.append(buf, static_cast<std::size_t>(n));
    }
  }

  void adoptSpec(const std::string& payload) {
    experiment::RunSpec spec;
    std::string err;
    if (!decodeSpec(payload, spec, err)) {
      send(FrameType::Error, err);
      throw std::runtime_error("fleet worker: " + err);
    }
    // Validate on THIS build before accepting work: an unknown program or
    // tool must be one handshake error, not a stream of infra-errors.
    try {
      experiment::validateToolConfig(spec.tool);
      suite::makeProgram(spec.programName);
    } catch (const std::exception& e) {
      send(FrameType::Error, e.what());
      throw std::runtime_error(
          std::string("fleet worker cannot execute this spec: ") + e.what());
    }
    spec_ = std::move(spec);
    stacks_.clear();
    haveSpec_ = true;
  }

  experiment::ToolStack& stackFor(const experiment::ToolConfig& tool) {
    auto it = stacks_.find(tool.noiseName);
    if (it == stacks_.end()) {
      it = stacks_
               .emplace(tool.noiseName, std::make_unique<experiment::ToolStack>(
                                            experiment::makeToolStack(tool)))
               .first;
    }
    return *it->second;
  }

  void executeLease(const std::string& payload) {
    if (!haveSpec_) {
      const std::string msg = "LEASE before SPEC";
      send(FrameType::Error, msg);
      throw std::runtime_error("fleet worker: " + msg);
    }
    LeasePayload lease;
    std::string err;
    if (!decodeLease(payload, lease, err)) {
      send(FrameType::Error, err);
      throw std::runtime_error("fleet worker: " + err);
    }
    for (const RunAssignment& a : lease.runs) {
      if (stopped()) break;
      experiment::RunObservation obs = executeAssignment(a);
      obs.runIndex = a.index;  // global campaign index, not the local 0
      send(FrameType::Record, encodeRecord(lease.leaseId, obs));
      ++stats_.recordsSent;
    }
    send(FrameType::LeaseDone, encodeLeaseDone(lease.leaseId));
    ++stats_.leases;
  }

  experiment::RunObservation executeAssignment(const RunAssignment& a) {
    experiment::RunSpec rs = spec_;
    if (!a.noiseName.empty()) {
      rs.tool.noiseName = a.noiseName;
      rs.tool.noiseOpts.strength = a.strength;
    }
    // Policy-arm substitution: executeRun builds the policy per run from
    // rs.tool.policy, so no stack state changes (stacks stay keyed by noise).
    if (!a.policy.empty()) rs.tool.policy = a.policy;
    rs.seedBase = a.seed;  // executeRun(rs, 0) then runs exactly `seed`
    std::string lastError;
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        experiment::ToolStack& stack = stackFor(rs.tool);
        if (stack.noiseMaker() != nullptr) {
          stack.noiseMaker()->setOptions(rs.tool.noiseOpts);
        }
        experiment::RunObservation obs = experiment::executeRun(rs, 0, stack);
        obs.attempts = attempt;
        ++stats_.runsExecuted;
        return obs;
      } catch (const std::exception& e) {
        lastError = e.what();
      } catch (...) {
        lastError = "unknown harness error";
      }
      if (attempt > options_.maxRetries) {
        experiment::RunObservation obs;
        obs.runIndex = a.index;
        obs.seed = a.seed;
        obs.status = "infra-error";
        obs.failureMessage = lastError;
        obs.attempts = attempt;
        return obs;
      }
      std::this_thread::sleep_for(options_.retryBackoff * (1u << (attempt - 1)));
    }
  }

  const WorkerOptions& options_;
  Socket sock_;
  std::string rx_;
  WorkerStats stats_;
  experiment::RunSpec spec_;
  bool haveSpec_ = false;
  std::map<std::string, std::unique_ptr<experiment::ToolStack>> stacks_;
};

}  // namespace

WorkerStats runWorker(const WorkerOptions& options) {
  WorkerSession session(options);
  return session.run();
}

#endif  // MTT_FLEET_HAS_SOCKETS

}  // namespace mtt::fleet
