// mtt::fleet worker — the executor half of the coordinator/worker split.
//
// A worker is one process that connects to a coordinator, receives the
// campaign base spec, and then executes leased runs serially, streaming a
// RECORD frame per finished run.  Scale comes from running more workers
// (possibly on more machines), not from threads inside one worker: a
// single-threaded executor keeps the worker itself the crash-isolation
// boundary — a run that segfaults or hangs takes down only its worker,
// and the coordinator reassigns the lease (the forked farm worker's
// containment story, stretched over a socket).
//
// Harness errors inside a run are retried with backoff and surface as
// infra-error records after maxRetries, exactly like the farm's retry
// machinery; the coordinator quarantines workers that stream too many.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace mtt::fleet {

struct WorkerOptions {
  /// Coordinator endpoint: "host:port" or "unix:/path.sock".
  std::string connect;
  /// How long to keep retrying the initial connect — workers are routinely
  /// launched before their coordinator is listening.
  std::chrono::milliseconds connectTimeout{10000};
  /// Farm-style infra retry budget per run.
  std::size_t maxRetries = 2;
  std::chrono::milliseconds retryBackoff{10};
  /// Idle keepalive cadence (no effect while a lease is executing — a
  /// worker cannot heartbeat mid-run, which is why the coordinator's
  /// leaseTimeout must exceed the slowest run).
  std::chrono::milliseconds heartbeatInterval{1000};
  /// Self-applied RLIMIT_AS / RLIMIT_CPU caps (MiB / seconds, 0 = off):
  /// a runaway run becomes an isolated worker death and a reassigned
  /// lease instead of a host OOM.
  std::size_t memLimitMb = 0;
  std::size_t cpuLimitSec = 0;
  /// External stop latch (SIGINT): finish the current run, send what is
  /// done, and disconnect.
  const std::atomic<bool>* stopFlag = nullptr;
  /// Reconnect after a dropped connection (never after QUIT or a stop
  /// latch): the worker re-dials, re-HELLOs, and receives the SPEC again.
  /// The coordinator already requeued the dropped leases, and records are
  /// deduplicated by global index, so a reconnect changes nothing about the
  /// campaign's output — it only returns this worker to service.
  bool reconnect = false;
  /// Consecutive failed reconnect dials before giving up (a vanished
  /// coordinator must not trap the worker in a dial loop forever).
  std::size_t reconnectAttempts = 5;
};

struct WorkerStats {
  std::uint64_t leases = 0;
  std::uint64_t runsExecuted = 0;
  std::uint64_t recordsSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  /// Successful re-dials after a dropped connection (reconnect mode).
  std::uint64_t reconnects = 0;
  /// Why the worker exited ("coordinator closed the campaign", ...).
  std::string exitReason;
};

/// Runs the worker service until the coordinator sends QUIT, the
/// connection drops, or the stop latch fires.  Throws std::runtime_error
/// on connect/handshake failures and on spec validation errors (unknown
/// program or tool names on this build).
WorkerStats runWorker(const WorkerOptions& options);

}  // namespace mtt::fleet
