// mtt::evloop — the instrumented event-loop runtime.
//
// Production event-driven systems (libuv/Node, cooperative tasklet kernels)
// keep their concurrency in *callbacks* multiplexed onto one or a few
// scheduler threads; the interesting nondeterminism is which ready callback
// fires next, not which OS thread runs.  EventLoop brings that model into
// the mtt benchmark: tasks are plain callbacks posted to a loop, optionally
// deferred by a virtual-tick timer, and executed on a fixed number of
// scheduler slots (default 1: classic run-to-completion event-loop
// atomicity — callbacks never overlap, only interleave *between* callbacks).
//
// Every task boundary is routed through the Runtime as an instrumentation
// point, using NodeFz's exact yield-point inventory:
//
//   TaskPost   — post()/postDelayed() accepted the callback
//   TimerFire  — a deferred callback's delay elapsed (after rt::sleepFor)
//   QueuePut   — the callback entered the ready queue
//   QueueTake  — the callback was taken off the ready queue
//   TaskBegin  — the callback is about to run on a scheduler slot
//   TaskEnd    — the callback returned; the slot is about to be released
//
// Mechanically, each posted callback becomes a *tasklet*: a managed runtime
// thread whose whole body is put → acquire a scheduler slot (rt::Semaphore
// with `schedulers` permits) → take/begin → callback → end → release.  The
// slot acquire is the dispatch point: under ControlledRuntime every ready
// tasklet is a blocked semAcquire and the SchedulePolicy's thread pick *is*
// the choice of which ready callback fires next — so recording, replay,
// shrinking, exploration, guided campaigns and farm/fleet distribution all
// work on event-loop programs with zero changes (a schedule is still just a
// decision vector of thread ids).  Under NativeRuntime the tasklets are real
// threads racing for the slot semaphore and noise makers jitter the evloop
// events like any other kind.
//
// Callbacks must not block (no joins, no condition waits — they occupy a
// scheduler slot) and must not throw; they may freely post() more work,
// including from inside a callback.  drain() blocks the calling non-callback
// thread until every accepted task has finished.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "rt/primitives.hpp"
#include "rt/runtime.hpp"

namespace mtt::evloop {

/// Uninstrumented counters for oracles and benchmarks; read them after
/// drain() (they are not synchronization).
struct LoopStats {
  std::uint64_t posted = 0;      ///< tasks accepted (post + postDelayed)
  std::uint64_t executed = 0;    ///< callbacks that ran to completion
  std::uint64_t timersFired = 0; ///< deferred callbacks whose delay elapsed
  std::uint32_t maxQueueDepth = 0;  ///< high-water mark of ready callbacks
};

class EventLoop {
 public:
  using Task = std::function<void()>;

  /// `schedulers` is the number of callbacks allowed to run concurrently
  /// (the loop's scheduler-thread count); 1 gives run-to-completion
  /// semantics.  The loop registers itself as a TaskQueue object named
  /// `name`, so traces and the flight recorder label its events.
  EventLoop(rt::Runtime& rt, std::string name, std::uint32_t schedulers = 1);

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Blocks until every tasklet has finished (never throws: it runs during
  /// the stack unwinding of aborted runs, like rt::Thread's destructor).
  ~EventLoop();

  /// Schedules `fn` to run on a scheduler slot.  Returns the task id (also
  /// the `arg` of the task's events).  Callable from any managed thread,
  /// including from inside a callback.
  std::uint32_t post(Task fn, Site s = site());

  /// Schedules `fn` to become ready only after `delayTicks` of virtual time
  /// (controlled: scheduling steps; native: 100µs per tick) — the loop's
  /// timer primitive.  Fires TimerFire when the delay elapses.
  std::uint32_t postDelayed(Task fn, std::uint32_t delayTicks,
                            Site s = site());

  /// Blocks until all accepted tasks (including ones posted while draining)
  /// have finished.  Must not be called from inside a callback of this loop
  /// (the callback occupies a slot the drain would wait on); doing so is
  /// reported via Runtime::fail.
  void drain(Site s = site());

  /// True when the calling thread is inside a callback of this loop.
  bool inCallback() const;

  std::uint32_t schedulers() const { return schedulers_; }
  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  LoopStats stats() const;

 private:
  void runTask(Task fn, std::uint32_t taskId, std::uint32_t delayTicks,
               Site s);
  void spawnTasklet(Task fn, std::uint32_t taskId, std::uint32_t delayTicks,
                    Site s);

  rt::Runtime* rt_;
  std::string name_;
  std::uint32_t schedulers_;
  ObjectId id_ = kNoObject;

  rt::Semaphore slots_;  ///< scheduler slots; the dispatch choice point
  rt::Mutex mu_;         ///< guards live_ (the drain monitor)
  rt::CondVar idle_;     ///< broadcast when live_ drops to zero
  std::uint32_t live_ = 0;  ///< accepted tasks not yet finished (under mu_)

  // Tasklet bookkeeping.  tidMu_ is a plain mutex: it is never held across a
  // runtime operation, so it cannot invert with the cooperative scheduler.
  std::mutex tidMu_;
  std::vector<ThreadId> tids_;

  std::atomic<std::uint32_t> taskSeq_{0};
  std::atomic<std::int32_t> depth_{0};
  std::atomic<std::uint32_t> maxDepth_{0};
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> timersFired_{0};
};

}  // namespace mtt::evloop
