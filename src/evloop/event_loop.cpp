#include "evloop/event_loop.hpp"

#include <algorithm>
#include <chrono>

namespace mtt::evloop {

namespace {
// The loop whose callback the current thread is executing (nullptr outside
// callbacks).  Callbacks never nest on one thread — a callback that post()s
// runs the new task on a *different* tasklet — so one pointer suffices.
thread_local const EventLoop* tl_inCallback = nullptr;
}  // namespace

EventLoop::EventLoop(rt::Runtime& rt, std::string name,
                     std::uint32_t schedulers)
    : rt_(&rt),
      name_(name),
      schedulers_(std::max<std::uint32_t>(schedulers, 1)),
      id_(rt.registerObject(rt::ObjectKind::TaskQueue, name)),
      slots_(rt, name + ".slots", std::max<std::uint32_t>(schedulers, 1)),
      mu_(rt, name + ".state"),
      idle_(rt, name + ".idle") {}

EventLoop::~EventLoop() {
  // Reap every tasklet, including ones spawned (by callbacks posting more
  // work) while we reap — loop until the list stops growing.  reapThread is
  // noexcept and abort-safe, mirroring rt::Thread's destructor contract.
  std::size_t reaped = 0;
  for (;;) {
    std::vector<ThreadId> batch;
    {
      std::lock_guard<std::mutex> lk(tidMu_);
      if (reaped == tids_.size()) break;
      batch.assign(tids_.begin() + static_cast<std::ptrdiff_t>(reaped),
                   tids_.end());
      reaped = tids_.size();
    }
    for (ThreadId t : batch) rt_->reapThread(t);
  }
}

std::uint32_t EventLoop::post(Task fn, Site s) {
  const std::uint32_t taskId = ++taskSeq_;
  rt_->evloopPoint(EventKind::TaskPost, id_, s, taskId);
  spawnTasklet(std::move(fn), taskId, 0, s);
  return taskId;
}

std::uint32_t EventLoop::postDelayed(Task fn, std::uint32_t delayTicks,
                                     Site s) {
  const std::uint32_t taskId = ++taskSeq_;
  rt_->evloopPoint(EventKind::TaskPost, id_, s, taskId);
  spawnTasklet(std::move(fn), taskId, std::max<std::uint32_t>(delayTicks, 1),
               s);
  return taskId;
}

void EventLoop::spawnTasklet(Task fn, std::uint32_t taskId,
                             std::uint32_t delayTicks, Site s) {
  posted_.fetch_add(1, std::memory_order_relaxed);
  {
    rt::LockGuard g(mu_, s);
    ++live_;
  }
  ThreadId tid = rt_->spawnThread(
      name_ + ".t" + std::to_string(taskId),
      [this, fn = std::move(fn), taskId, delayTicks, s]() mutable {
        runTask(std::move(fn), taskId, delayTicks, s);
      });
  std::lock_guard<std::mutex> lk(tidMu_);
  tids_.push_back(tid);
}

void EventLoop::runTask(Task fn, std::uint32_t taskId,
                        std::uint32_t delayTicks, Site s) {
  if (delayTicks > 0) {
    // Virtual-tick timer: controlled mode advances `delayTicks` scheduling
    // steps (sleepFor counts one tick per 100µs), native mode really sleeps.
    rt_->sleepFor(std::chrono::microseconds(delayTicks * 100));
    rt_->evloopPoint(EventKind::TimerFire, id_, s, taskId);
    timersFired_.fetch_add(1, std::memory_order_relaxed);
  }
  rt_->evloopPoint(EventKind::QueuePut, id_, s, taskId);
  const auto d = static_cast<std::uint32_t>(
      depth_.fetch_add(1, std::memory_order_relaxed) + 1);
  std::uint32_t seen = maxDepth_.load(std::memory_order_relaxed);
  while (d > seen &&
         !maxDepth_.compare_exchange_weak(seen, d, std::memory_order_relaxed))
    ;
  // The dispatch point: every ready callback is a tasklet blocked here, and
  // in controlled mode the schedule policy's pick among them *is* the choice
  // of which callback the loop runs next.
  slots_.acquire(s);
  depth_.fetch_sub(1, std::memory_order_relaxed);
  rt_->evloopPoint(EventKind::QueueTake, id_, s, taskId);
  rt_->evloopPoint(EventKind::TaskBegin, id_, s, taskId);
  const EventLoop* prev = tl_inCallback;
  tl_inCallback = this;
  fn();
  tl_inCallback = prev;
  rt_->evloopPoint(EventKind::TaskEnd, id_, s, taskId);
  executed_.fetch_add(1, std::memory_order_relaxed);
  slots_.release(1, s);
  rt::LockGuard g(mu_, s);
  if (--live_ == 0) idle_.broadcast(s);
}

void EventLoop::drain(Site s) {
  if (inCallback()) {
    rt_->fail("evloop " + name_ +
              ": drain() called from inside a callback (the callback "
              "occupies the slot drain would wait on)");
  }
  rt::LockGuard g(mu_, s);
  while (live_ > 0) idle_.wait(mu_, s);
}

bool EventLoop::inCallback() const { return tl_inCallback == this; }

LoopStats EventLoop::stats() const {
  LoopStats st;
  st.posted = posted_.load(std::memory_order_relaxed);
  st.executed = executed_.load(std::memory_order_relaxed);
  st.timersFired = timersFired_.load(std::memory_order_relaxed);
  st.maxQueueDepth = maxDepth_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace mtt::evloop
