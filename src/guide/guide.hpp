// mtt::guide — coverage-guided adaptive campaigns.
//
// The paper's coverage section ends with the operational question: "the
// coverage information could be used to decide how many times each test
// should be executed" (Section 2.2).  This subsystem answers it, and the
// dual question of *which variant* to execute, with a feedback loop over
// the farm:
//
//   1. every run's tool stack carries a coverage model; executeRun extracts
//      a coverage::Snapshot delta that rides in RunObservation::coverage
//      through the worker pipe, the JSONL stream, and the journal;
//   2. a UCB1 bandit (src/guide/bandit.hpp) allocates each next run to one
//      of the configured arms — noise heuristic × strength, plus
//      corpus-seeded schedule-mutation arms built from triage witnesses —
//      rewarding arms whose runs still produce novel coverage tasks or
//      novel failure fingerprints;
//   3. a Good–Turing unseen-mass estimate of the coverage growth curve
//      provides the stopping rule: the campaign ends when the budget is
//      exhausted OR coverage has saturated (--saturate), replacing the
//      blind `--runs N` with `--budget N` as an upper bound.
//
// Determinism: every arm decision is appended to a decision log; replaying
// a campaign from its log (GuideOptions::replayLogPath) folds records in
// global run-index order and produces byte-identical timing-free reports
// for ANY --jobs value.  Journaled guided campaigns resume mid-flight: the
// journal supplies finished records, the log supplies their arms, and the
// bandit/coverage state is reconstructed by re-folding — the continuation
// then proceeds exactly as the uninterrupted campaign would have.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coverage/snapshot.hpp"
#include "farm/farm.hpp"
#include "guide/bandit.hpp"
#include "rt/policy.hpp"

namespace mtt::guide {

/// One bandit arm: a noise heuristic at a strength, optionally under a
/// non-default schedule policy, optionally seeded with a corpus witness
/// schedule that each run replays a random prefix of.
struct Arm {
  std::string noise = "none";
  double strength = 0.25;
  /// Schedule policy of this arm ("" = the base spec's policy).  Adds the
  /// policy dimension to the bandit: arms = policy × noise × strength.
  /// Never set on mutation arms (the witness owns scheduling).
  std::string policy;
  /// Corpus fingerprint of the witness this arm mutates; empty for the
  /// plain heuristic×strength arms.
  std::string mutationFingerprint;
  /// The witness schedule (mutation arms only; shared across runs).
  std::shared_ptr<const rt::Schedule> witness;

  /// Stable single-token label ("mixed@0.25", "pct:d=3/mixed@0.25",
  /// "sleep@0.1~4f2a..."): the identity stored in the decision log and
  /// checked on replay/resume.
  std::string label() const;
};

/// Corpus-seeded schedule mutation: replays a seed-chosen prefix of the
/// witness schedule, then hands over to a RandomPolicy tail — the classic
/// "mutate a known-interesting schedule" move, built from the decision
/// sequences the triage corpus already stores.  Deterministic per seed.
class MutatedReplayPolicy final : public rt::SchedulePolicy {
 public:
  explicit MutatedReplayPolicy(std::shared_ptr<const rt::Schedule> witness)
      : witness_(std::move(witness)) {}
  void onRunStart(std::uint64_t seed) override;
  ThreadId pick(const rt::PickContext& ctx) override;
  /// Weak-memory witnesses carry StorePick decisions; the prefix replays
  /// them at store choice points and abandons the prefix on misalignment,
  /// exactly like pick() does for thread decisions.
  std::uint32_t pickStore(const rt::StorePickContext& ctx) override;
  /// Prefix length chosen for the current run (for tests).
  std::size_t prefixLength() const { return prefixLen_; }

 private:
  std::shared_ptr<const rt::Schedule> witness_;
  std::size_t prefixLen_ = 0;
  std::size_t step_ = 0;
  bool replaying_ = false;
  rt::RandomPolicy tail_;
};

/// One run of a guided batch, as handed to an external BatchRunner: the
/// (global index, seed, noise arm) triple that pins the observation in
/// controlled mode.  Mutation arms carry in-process witness state and are
/// therefore never expressed as a GuideBatchRun (see GuideOptions).
struct GuideBatchRun {
  std::uint64_t index = 0;   ///< campaign-global run index
  std::uint64_t seed = 0;
  std::size_t armIndex = 0;  ///< into the campaign's arm vector
  std::string noiseName;     ///< the arm's heuristic
  double strength = 0.0;     ///< the arm's noise strength
  std::string policy;        ///< the arm's policy ("" = the spec's policy)
};

struct GuideBatchOutcome {
  /// Executed records keyed by campaign-global index.  Missing indices are
  /// treated as a cancelled batch tail (exactly like the in-process farm
  /// path after an early stop).
  std::map<std::uint64_t, experiment::RunObservation> records;
  bool stoppedEarly = false;
  std::size_t retries = 0;
};

/// External batch executor (the fleet coordinator, in practice): receives
/// the batch's assignments and returns their records.  The guide folds the
/// records in global index order regardless of how the runner produced
/// them, so a correct runner yields byte-identical timing-free reports to
/// the in-process farm path.
using BatchRunner =
    std::function<GuideBatchOutcome(const std::vector<GuideBatchRun>&)>;

struct GuideOptions {
  /// Plain arms = policies × heuristics × strengths.
  std::vector<std::string> heuristics{"yield", "sleep", "mixed",
                                      "coverage-directed"};
  std::vector<double> strengths{0.1, 0.25, 0.5};
  /// Schedule-policy arm dimension ("--policies").  Empty = a single
  /// implicit entry for the base spec's policy, so the default arm set is
  /// unchanged.  An entry of "" also means "the base spec's policy";
  /// non-empty entries are parameterized policy specs ("pct:d=3", "pos"),
  /// validated up front.
  std::vector<std::string> policies;
  /// Run budget — the campaign never exceeds it ("--budget N").
  std::uint64_t budget = 200;
  /// Stop early when coverage saturates ("--saturate"): a closed universe
  /// stops only when fully covered; an open universe stops when the
  /// Good–Turing unseen-mass estimate drops below unseenMassThreshold AND
  /// quietRuns consecutive runs produced no reward.
  bool saturate = false;
  std::size_t quietRuns = 24;
  double unseenMassThreshold = 0.02;
  /// UCB1 exploration constant (sqrt(2) is the classic choice).
  double exploration = 1.4142135623730951;
  /// Triage corpus to harvest mutation arms from ("" = no mutation arms).
  std::string corpusDir;
  std::size_t maxMutationArms = 4;
  /// Where arm decisions are appended ("" = journalPath + ".arms" when
  /// journaling, else no log).  Required for resume and replay.
  std::string decisionLogPath;
  /// Replay a previous campaign's decisions instead of consulting the
  /// bandit: with the same log and budget, timing-free reports are
  /// byte-identical for any farm.jobs.
  std::string replayLogPath;
  /// Stop at the first manifested bug / failure fingerprint (mtt hunt).
  bool stopOnFirstFind = false;
  /// Stop once every fingerprint in this set has been observed (bench
  /// harnesses: "reach the fixed campaign's bug set in fewer runs").
  std::set<std::string> targetFingerprints;
  /// When set, batches execute through this runner instead of the
  /// in-process farm (mtt serve --adaptive routes them to fleet workers).
  /// Incompatible with corpus mutation arms: their witness schedules live
  /// in this process and cannot cross the wire, so runGuided throws when
  /// both are configured.
  BatchRunner batchRunner;
  /// Farm passthrough: jobs, runTimeout, model, jsonl, progress, limits,
  /// stopFlag... journalPath/resume are honored by the GUIDE (which owns
  /// the journal so batches share one file); inner batches never journal.
  /// With a batchRunner, jobs still fixes the batch width (and with it the
  /// bandit decision sequence) but spawns no local workers.
  farm::FarmOptions farm;
};

struct ArmReport {
  Arm arm;
  ArmStats stats;
};

struct GuideResult {
  /// Deterministic merged experiment result (timing-free fields are a pure
  /// function of the folded record prefix).
  experiment::ExperimentResult result;
  /// Folded records in global run-index order.  May be shorter than the
  /// number of executed runs when a stopping rule fired mid-batch: records
  /// past the stop index are discarded, which is what keeps the folded
  /// prefix identical for any --jobs.
  std::vector<experiment::RunObservation> records;
  std::vector<ArmReport> arms;
  coverage::Snapshot coverage;       ///< merged over all folded runs
  std::set<std::string> fingerprints;///< distinct failure fingerprints seen
  std::uint64_t budget = 0;
  bool saturated = false;
  std::uint64_t saturatedAtRun = 0;  ///< folded-run count when rule fired
  double unseenMass = 1.0;           ///< final Good–Turing estimate
  bool targetReached = false;        ///< targetFingerprints all observed
  bool stoppedEarly = false;         ///< stopFlag / first-find / target
  bool found = false;                ///< any failure fingerprint observed
  std::uint64_t firstFindRun = 0;    ///< run index of the first failure
  std::uint64_t firstFindSeed = 0;
  std::size_t firstFindArm = 0;
  std::string firstFindFingerprint;
  std::size_t resumed = 0;           ///< records served from the journal
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t crashes = 0;
  std::size_t infraErrors = 0;
  double wallSeconds = 0.0;
  std::string decisionLogPath;       ///< log actually written ("" if none)

  std::size_t runs() const { return records.size(); }
};

/// Builds the arm set for a spec: policies × heuristics × strengths, then
/// up to maxMutationArms corpus-seeded mutation arms for base.programName
/// (sorted corpus order; unloadable witnesses are skipped).  Deterministic.
std::vector<Arm> buildArms(const experiment::RunSpec& base,
                           const GuideOptions& opts);

/// The spec an arm's runs execute under: base with the arm's noise
/// heuristic/strength (and policy, when the arm carries one) substituted
/// and, for mutation arms, the MutatedReplayPolicy factory installed.
experiment::RunSpec armSpec(const experiment::RunSpec& base, const Arm& arm);

/// A fresh scheduling policy for one run of `arm` (what armSpec's factory
/// returns for mutation arms; makePolicy(arm.policy or basePolicy)
/// otherwise).  Exposed so callers can wrap it in a RecordingPolicy to
/// capture a witness of a find for the triage corpus.
std::unique_ptr<rt::SchedulePolicy> makeArmPolicy(const Arm& arm,
                                                  const std::string& basePolicy);

/// The failure fingerprint of one observation ("" for a clean run):
/// 16-hex FNV-1a over (status, oracle verdict, normalized outcome,
/// normalized failure message).  A pure function of the record, so guided
/// resume and replay re-derive identical bandit rewards from the journal.
std::string observationFingerprint(const experiment::RunObservation& o);

/// Runs a guided campaign.  base.tool.coverage defaults to "switch-pair"
/// when unset (the guide needs a coverage signal).  Throws
/// std::runtime_error on configuration errors (unknown names, digest
/// mismatch on resume/replay, decision log missing for journaled runs).
GuideResult runGuided(const experiment::RunSpec& base,
                      const GuideOptions& opts);

/// Renders the per-arm allocation table plus the campaign summary
/// (coverage, saturation, first find).  timing=false omits wall-clock
/// lines for byte-stable reports.
std::string guideReport(const GuideResult& g, bool timing = true);

}  // namespace mtt::guide
