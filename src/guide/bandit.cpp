#include "guide/bandit.hpp"

#include <cmath>
#include <stdexcept>

namespace mtt::guide {

Ucb1::Ucb1(std::size_t arms, double exploration)
    : stats_(arms), exploration_(exploration) {
  if (arms == 0) throw std::invalid_argument("Ucb1: need at least one arm");
}

std::size_t Ucb1::assign() {
  // Round-robin through untried arms first: UCB1's ln(N)/n_i term is
  // undefined at n_i = 0, and every arm deserves one look.
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (stats_[i].pulls == 0) {
      ++stats_[i].pulls;
      ++totalPulls_;
      return i;
    }
  }
  double logN = std::log(static_cast<double>(totalPulls_));
  std::size_t best = 0;
  double bestScore = -1.0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    double score =
        stats_[i].meanReward() +
        exploration_ *
            std::sqrt(logN / static_cast<double>(stats_[i].pulls));
    if (score > bestScore) {  // strict: ties keep the lowest index
      bestScore = score;
      best = i;
    }
  }
  ++stats_[best].pulls;
  ++totalPulls_;
  return best;
}

void Ucb1::reward(std::size_t arm, double value) {
  ArmStats& s = stats_.at(arm);
  ++s.completed;
  s.totalReward += value;
}

void Ucb1::assignFixed(std::size_t arm) {
  ++stats_.at(arm).pulls;
  ++totalPulls_;
}

}  // namespace mtt::guide
