// UCB1 multi-armed bandit — the allocation rule of the guided campaign.
//
// Arms are (noise heuristic × strength × optional corpus-schedule mutation)
// configurations; the reward of a run is 1 when it produced a novel coverage
// task or a novel failure fingerprint, 0 otherwise.  UCB1 (Auer,
// Cesa-Bianchi & Fischer 2002) plays the arm maximizing
//
//     mean_reward(i) + c * sqrt(ln(N) / n_i)
//
// which spends the run budget on whichever configuration is still producing
// new behavior while periodically revisiting the others — exactly the
// paper's "use coverage to decide how many times each test should be
// executed", generalized to *which variant* runs next.
//
// Assignment and reward are split (assign() / reward()) because the farm
// executes runs in batches: the engine assigns a whole batch before any of
// its rewards exist.  assign() counts a provisional pull so a batch spreads
// across arms instead of hammering the current argmax; reward() later adds
// the observed payoff.  Everything is deterministic — ties break toward the
// lowest arm index, and no wall-clock or global RNG is consulted — which is
// what makes a guided campaign reproducible from its decision log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtt::guide {

struct ArmStats {
  std::uint64_t pulls = 0;     ///< assigned runs (incl. in-flight)
  std::uint64_t completed = 0; ///< runs whose reward has been folded
  double totalReward = 0.0;
  std::uint64_t novelCoverageRuns = 0;
  std::uint64_t novelFingerprintRuns = 0;
  std::uint64_t manifestations = 0;

  double meanReward() const {
    return completed == 0 ? 0.0
                          : totalReward / static_cast<double>(completed);
  }
};

class Ucb1 {
 public:
  /// `exploration` is the c constant; sqrt(2) is the classic choice.
  explicit Ucb1(std::size_t arms, double exploration);

  /// Picks the next arm and counts a provisional pull.  Untried arms first
  /// (lowest index), then the UCB1 argmax (ties toward lowest index).
  std::size_t assign();

  /// Folds the observed reward of a completed pull of `arm`.
  void reward(std::size_t arm, double value);

  /// Re-plays a logged assignment (decision-log replay / resume): counts
  /// the pull against `arm` without consulting the argmax.
  void assignFixed(std::size_t arm);

  std::size_t arms() const { return stats_.size(); }
  std::uint64_t totalPulls() const { return totalPulls_; }
  const std::vector<ArmStats>& stats() const { return stats_; }
  ArmStats& statsOf(std::size_t arm) { return stats_[arm]; }

 private:
  std::vector<ArmStats> stats_;
  double exploration_;
  std::uint64_t totalPulls_ = 0;
};

/// Good–Turing unseen-mass estimator over task-coverage observations: with
/// n total observations of which f1 are of tasks seen exactly once, the
/// probability that the *next* observation is a never-seen task is ~ f1/n
/// (Good 1953).  The guided campaign's open-universe stopping rule: when
/// the estimated unseen mass falls below a threshold, more runs are
/// unlikely to buy new coverage.
class UnseenMass {
 public:
  /// Folds one run: `taskSeenCounts` must be the post-update observation
  /// counts of the tasks this run covered (the caller owns the task->count
  /// map; this class only needs the f1 bookkeeping).
  void observe(std::uint64_t newCount) {
    ++n_;
    if (newCount == 1) {
      ++f1_;
    } else if (newCount == 2) {
      // The task just left the seen-once class.
      --f1_;
    }
  }

  std::uint64_t observations() const { return n_; }
  std::uint64_t seenOnce() const { return f1_; }
  /// f1/n; 1.0 before any observation (everything is unseen).
  double estimate() const {
    return n_ == 0 ? 1.0
                   : static_cast<double>(f1_) / static_cast<double>(n_);
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t f1_ = 0;
};

}  // namespace mtt::guide
