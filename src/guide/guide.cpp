#include "guide/guide.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "farm/journal.hpp"
#include "replay/replay.hpp"
#include "triage/corpus.hpp"
#include "triage/signature.hpp"

namespace mtt::guide {

namespace {

std::string formatStrength(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string Arm::label() const {
  // Policy prefix only when the arm overrides the base policy, so the
  // default arm set's labels (and thus campaign digests and decision logs)
  // are unchanged by the policy dimension's existence.
  std::string out;
  if (!policy.empty()) out += policy + "/";
  out += noise + "@" + formatStrength(strength);
  if (!mutationFingerprint.empty()) out += "~" + mutationFingerprint;
  return out;
}

// --- corpus-seeded schedule mutation ---------------------------------------

void MutatedReplayPolicy::onRunStart(std::uint64_t seed) {
  // A seed-derived prefix length: 0 (pure random run) up to the full
  // witness.  Deriving from the run seed keeps the whole run a pure
  // function of (arm, seed), which is what the decision log replays.
  Rng rng(mix_seed(seed, 0x6d757461ull));  // "muta"
  const std::size_t n = witness_ ? witness_->decisions.size() : 0;
  prefixLen_ = n == 0 ? 0 : static_cast<std::size_t>(rng.below(n + 1));
  replaying_ = prefixLen_ > 0;
  step_ = 0;
  tail_.onRunStart(seed);
}

ThreadId MutatedReplayPolicy::pick(const rt::PickContext& ctx) {
  if (replaying_ && step_ < prefixLen_) {
    const rt::Decision& d = witness_->decisions[step_];
    if (d.isThread()) {
      auto want = static_cast<ThreadId>(d.value);
      if (std::find(ctx.enabled.begin(), ctx.enabled.end(), want) !=
          ctx.enabled.end()) {
        ++step_;
        return want;
      }
    }
    // Divergence (a store pick where the run wants a thread, or a thread no
    // longer enabled — e.g. different noise decisions upstream): abandon the
    // prefix and free-run — the mutation already did its job of steering
    // the run into the witness's neighborhood.
    replaying_ = false;
  }
  return tail_.pick(ctx);
}

std::uint32_t MutatedReplayPolicy::pickStore(const rt::StorePickContext& ctx) {
  if (replaying_ && step_ < prefixLen_) {
    const rt::Decision& d = witness_->decisions[step_];
    if (d.isStore() && d.value < ctx.options.size()) {
      ++step_;
      return d.value;
    }
    replaying_ = false;
  }
  return tail_.pickStore(ctx);
}

// --- arms ------------------------------------------------------------------

std::vector<Arm> buildArms(const experiment::RunSpec& base,
                           const GuideOptions& opts) {
  std::vector<Arm> arms;
  // Policy dimension: an empty list means a single implicit entry for the
  // base spec's policy, so campaigns that never pass --policies get exactly
  // the historical arm set (same labels, same digests, same logs).
  std::vector<std::string> policies = opts.policies;
  if (policies.empty()) policies.push_back("");
  for (const std::string& p : policies) {
    for (const std::string& h : opts.heuristics) {
      for (double s : opts.strengths) {
        Arm a;
        a.policy = p;
        a.noise = h;
        a.strength = s;
        arms.push_back(std::move(a));
      }
    }
  }
  if (!opts.corpusDir.empty() && opts.maxMutationArms > 0) {
    triage::Corpus corpus(opts.corpusDir);
    std::size_t added = 0;
    // entries() is sorted by (program, fingerprint), so the arm set is a
    // deterministic function of the corpus contents.
    for (const triage::CorpusEntry& e : corpus.entries(base.programName)) {
      if (added >= opts.maxMutationArms) break;
      try {
        replay::Scenario sc = replay::loadScenario(e.scenarioPath.string());
        if (sc.schedule.empty()) continue;
        Arm a;
        a.noise = e.noise.empty() ? "none" : e.noise;
        a.strength = e.strength;
        a.mutationFingerprint = e.fingerprint;
        a.witness = std::make_shared<rt::Schedule>(std::move(sc.schedule));
        arms.push_back(std::move(a));
        ++added;
      } catch (const std::exception&) {
        // Unloadable witness: skip the bucket, keep hunting.
      }
    }
  }
  return arms;
}

std::unique_ptr<rt::SchedulePolicy> makeArmPolicy(
    const Arm& arm, const std::string& basePolicy) {
  if (arm.witness) return std::make_unique<MutatedReplayPolicy>(arm.witness);
  return experiment::makePolicy(arm.policy.empty() ? basePolicy : arm.policy);
}

experiment::RunSpec armSpec(const experiment::RunSpec& base, const Arm& arm) {
  experiment::RunSpec spec = base;
  spec.tool.noiseName = arm.noise;
  spec.tool.noiseOpts.strength = arm.strength;
  if (!arm.policy.empty()) spec.tool.policy = arm.policy;
  if (arm.witness) {
    spec.policyFactory = [w = arm.witness] {
      return std::unique_ptr<rt::SchedulePolicy>(
          std::make_unique<MutatedReplayPolicy>(w));
    };
  }
  return spec;
}

// --- failure fingerprints --------------------------------------------------

std::string observationFingerprint(const experiment::RunObservation& o) {
  // Program failures only: step-limit is a budget artifact and infra-error
  // a harness problem — neither identifies a bug, so neither earns reward
  // nor stops a hunt.
  const bool failed = o.manifested || o.status == "deadlock" ||
                      o.status == "assert-failed" || o.status == "timeout" ||
                      o.status == "crashed";
  if (!failed) return "";
  std::string text = o.status;
  text += '|';
  if (o.manifested) {
    text += "oracle:";
    text += triage::normalizeTokens(o.outcome);
  }
  text += '|';
  text += triage::normalizeTokens(o.failureMessage);
  return hex16(farm::journalDigest(text));
}

// --- decision log ----------------------------------------------------------
//
// Text, append-only, torn-tail tolerant (same discipline as the journal):
//
//   MTTGUIDE 1
//   config <16-hex FNV-1a of the campaign config text>
//   arms <n>
//   arm <index> <label>          (n lines; labels are single tokens)
//   A <runIndex> <armIndex> <seed>

namespace {

struct DecisionLog {
  std::uint64_t digest = 0;
  std::vector<std::string> labels;
  /// runIndex -> (arm index, seed); first occurrence wins.
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> assignments;
};

DecisionLog loadDecisionLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("guide: cannot open decision log " + path);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  auto corrupt = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error("guide: corrupt decision log " + path + ": " +
                              why);
  };
  if (lines.size() < 3 || lines[0] != "MTTGUIDE 1") {
    throw corrupt("missing MTTGUIDE 1 header");
  }
  DecisionLog log;
  {
    unsigned long long d = 0;
    if (std::sscanf(lines[1].c_str(), "config %16llx", &d) != 1) {
      throw corrupt("bad config line");
    }
    log.digest = d;
  }
  unsigned long long nArms = 0;
  if (std::sscanf(lines[2].c_str(), "arms %llu", &nArms) != 1 ||
      nArms == 0 || nArms > 4096) {
    throw corrupt("bad arms line");
  }
  std::size_t pos = 3;
  log.labels.resize(static_cast<std::size_t>(nArms));
  for (std::size_t i = 0; i < nArms; ++i, ++pos) {
    if (pos >= lines.size()) throw corrupt("truncated arm list");
    std::istringstream ls(lines[pos]);
    std::string tag, label;
    unsigned long long idx = 0;
    if (!(ls >> tag >> idx >> label) || tag != "arm" || idx != i) {
      throw corrupt("bad arm line " + std::to_string(i));
    }
    log.labels[i] = label;
  }
  for (; pos < lines.size(); ++pos) {
    unsigned long long idx = 0, arm = 0, seed = 0;
    if (std::sscanf(lines[pos].c_str(), "A %llu %llu %llu", &idx, &arm,
                    &seed) != 3 ||
        arm >= nArms) {
      // A torn final line (crash mid-append) is dropped, like the
      // journal's torn tail; anything earlier is real corruption.
      if (pos + 1 == lines.size()) break;
      throw corrupt("bad assignment line " + std::to_string(pos + 1));
    }
    log.assignments.emplace(
        idx, std::make_pair(static_cast<std::size_t>(arm),
                            static_cast<std::uint64_t>(seed)));
  }
  return log;
}

std::string renderDecisionLog(
    std::uint64_t digest, const std::vector<Arm>& arms,
    const std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>>&
        assignments) {
  std::string out = "MTTGUIDE 1\nconfig " + hex16(digest) + "\narms " +
                    std::to_string(arms.size()) + "\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    out += "arm " + std::to_string(i) + " " + arms[i].label() + "\n";
  }
  for (const auto& [idx, as] : assignments) {
    out += "A " + std::to_string(idx) + " " + std::to_string(as.first) +
           " " + std::to_string(as.second) + "\n";
  }
  return out;
}

void checkLogMatches(const DecisionLog& log, std::uint64_t digest,
                     const std::vector<Arm>& arms, const std::string& path) {
  if (log.digest != digest) {
    throw std::runtime_error(
        "guide: decision log " + path +
        " was recorded under a different campaign config (digest " +
        hex16(log.digest) + ", expected " + hex16(digest) + ")");
  }
  if (log.labels.size() != arms.size()) {
    throw std::runtime_error("guide: decision log " + path + " has " +
                             std::to_string(log.labels.size()) +
                             " arms, campaign has " +
                             std::to_string(arms.size()));
  }
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (log.labels[i] != arms[i].label()) {
      throw std::runtime_error("guide: decision log " + path + " arm " +
                               std::to_string(i) + " is " + log.labels[i] +
                               ", campaign built " + arms[i].label());
    }
  }
}

/// Append-only decision-log writer.  open() rewrites the file cleanly
/// (header + already-known assignments) via atomicWriteFile — repairing a
/// possible torn tail before appending, the same move the journal makes on
/// resume — then reopens it for appends, each fflushed.
class LogWriter {
 public:
  ~LogWriter() { close(); }

  void open(const std::string& path, std::uint64_t digest,
            const std::vector<Arm>& arms,
            const std::map<std::uint64_t,
                           std::pair<std::size_t, std::uint64_t>>& existing) {
    close();
    core::atomicWriteFile(path, renderDecisionLog(digest, arms, existing));
    f_ = std::fopen(path.c_str(), "ab");
    if (f_ == nullptr) {
      throw std::runtime_error("guide: cannot open decision log " + path +
                               " for append");
    }
  }

  void append(std::uint64_t idx, std::size_t arm, std::uint64_t seed) {
    if (f_ == nullptr) return;
    std::fprintf(f_, "A %llu %llu %llu\n",
                 static_cast<unsigned long long>(idx),
                 static_cast<unsigned long long>(arm),
                 static_cast<unsigned long long>(seed));
    std::fflush(f_);
  }

  void close() {
    if (f_ != nullptr) {
      std::fclose(f_);
      f_ = nullptr;
    }
  }

  bool isOpen() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace

// --- the guided campaign ---------------------------------------------------

GuideResult runGuided(const experiment::RunSpec& baseIn,
                      const GuideOptions& opts) {
  experiment::RunSpec base = baseIn;
  if (base.tool.coverage.empty()) base.tool.coverage = "switch-pair";
  experiment::validateToolConfig(base.tool);
  if (opts.budget == 0) {
    throw std::runtime_error("guide: budget must be > 0");
  }
  // Fail fast on malformed policy-arm specs: makePolicy throws the same
  // grammar-naming error a per-run failure would, but before any run starts.
  for (const std::string& p : opts.policies) {
    if (!p.empty()) experiment::makePolicy(p);
  }

  std::vector<Arm> arms = buildArms(base, opts);
  if (arms.empty()) {
    throw std::runtime_error(
        "guide: no arms — configure at least one heuristic and strength, "
        "or a corpus with entries for the program");
  }
  if (opts.batchRunner) {
    for (const Arm& a : arms) {
      if (a.witness != nullptr) {
        throw std::runtime_error(
            "guide: schedule-mutation arms require in-process execution — "
            "fleet workers have no corpus (drop --corpus or the "
            "batch runner)");
      }
    }
  }

  // The campaign identity: program, tool config, seed base, arm set.  The
  // digest guards both the journal and the decision log against resuming
  // or replaying under a different configuration.
  std::string cfgText =
      "guide|" + base.programName + "|" + base.tool.label() +
      "|seed:" + std::to_string(base.seedBase) + "|arms:";
  for (const Arm& a : arms) {
    cfgText += a.label();
    cfgText += ',';
  }
  const std::uint64_t digest = farm::journalDigest(cfgText);

  // runIndex -> (arm, seed): replayed from a log, loaded from a resumed
  // campaign's log, or decided live by the bandit.
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> assigned;
  std::uint64_t budget = opts.budget;
  const bool replayMode = !opts.replayLogPath.empty();
  if (replayMode) {
    DecisionLog log = loadDecisionLog(opts.replayLogPath);
    checkLogMatches(log, digest, arms, opts.replayLogPath);
    assigned = std::move(log.assignments);
    // A recording that stopped early (first find, saturation) logged fewer
    // assignments than its budget; replay exactly the recorded prefix.
    std::uint64_t recorded = 0;
    while (assigned.find(recorded) != assigned.end()) ++recorded;
    if (recorded == 0) {
      throw std::runtime_error("guide: decision log " + opts.replayLogPath +
                               " has no assignments");
    }
    budget = std::min(budget, recorded);
  }

  // Journal resume: the guide owns the journal (inner farm batches never
  // journal), so one file spans the whole adaptive campaign.
  const std::string& journalPath = opts.farm.journalPath;
  std::map<std::uint64_t, experiment::RunObservation> journaled;
  bool resuming = false;
  if (!journalPath.empty() && opts.farm.resume &&
      std::filesystem::exists(journalPath)) {
    farm::JournalData jd = farm::loadJournal(journalPath);
    if (jd.configDigest != digest) {
      throw std::runtime_error(
          "guide: journal " + journalPath +
          " belongs to a different campaign config (digest " +
          hex16(jd.configDigest) + ", expected " + hex16(digest) + ")");
    }
    if (jd.total != budget) {
      throw std::runtime_error(
          "guide: journal " + journalPath + " was written for budget " +
          std::to_string(jd.total) + "; resume with the same budget");
    }
    if (jd.tornTail) {
      farm::rewriteJournal(journalPath, digest, budget, jd.records);
    }
    for (auto& r : jd.records) journaled.emplace(r.runIndex, std::move(r));
    resuming = !journaled.empty();
  }

  std::string logPath = opts.decisionLogPath;
  if (logPath.empty() && !journalPath.empty()) logPath = journalPath + ".arms";
  LogWriter logWriter;
  if (!replayMode) {
    if (resuming) {
      // Journaled records need their original arms to rebuild the bandit
      // state; without the log the campaign identity is lost.
      if (logPath.empty() || !std::filesystem::exists(logPath)) {
        throw std::runtime_error(
            "guide: resuming a guided journal requires its decision log (" +
            (logPath.empty() ? std::string("none configured") : logPath) +
            ")");
      }
      DecisionLog log = loadDecisionLog(logPath);
      checkLogMatches(log, digest, arms, logPath);
      assigned = std::move(log.assignments);
      for (const auto& [idx, rec] : journaled) {
        (void)rec;
        if (assigned.find(idx) == assigned.end()) {
          throw std::runtime_error("guide: journaled run " +
                                   std::to_string(idx) +
                                   " has no arm in decision log " + logPath);
        }
      }
    }
    if (!logPath.empty()) logWriter.open(logPath, digest, arms, assigned);
  } else {
    logPath.clear();  // replay consults a log; it does not write one
  }

  farm::JournalWriter journal;
  if (!journalPath.empty()) {
    journal.open(journalPath, digest, budget, /*append=*/resuming);
  }

  // One tool-stack pool per distinct heuristic: strength rebinds per run
  // via NoiseMaker::setOptions, so arms share stacks instead of each
  // owning a pool.  Validate every derived config up front so a corpus
  // entry with an unknown heuristic fails fast, not per-run.
  std::map<std::string, std::unique_ptr<experiment::ToolStackPool>> pools;
  for (const Arm& a : arms) {
    if (pools.find(a.noise) != pools.end()) continue;
    experiment::ToolConfig cfg = base.tool;
    cfg.noiseName = a.noise;
    experiment::validateToolConfig(cfg);
    pools.emplace(a.noise,
                  std::make_unique<experiment::ToolStackPool>(
                      [cfg] { return experiment::makeToolStack(cfg); }));
  }

  Ucb1 bandit(arms.size(), opts.exploration);
  UnseenMass unseen;
  std::map<std::string, std::uint64_t> taskRuns;

  GuideResult g;
  g.budget = budget;
  g.result.programName = base.programName;
  g.result.toolLabel = base.tool.label() + "+guide";
  g.decisionLogPath = logPath;

  std::size_t quiet = 0;
  bool stopped = false;
  const std::size_t minRuns =
      std::max<std::size_t>(2 * arms.size(), opts.quietRuns);

  // Folds one record (journaled or fresh) in global index order.  All
  // campaign state — bandit rewards, coverage, fingerprints, stopping
  // rules — advances only here, which is what makes the folded prefix a
  // pure function of (records, assignments) independent of batching.
  auto fold = [&](const experiment::RunObservation& obs, std::size_t armIdx,
                  bool fromJournal) {
    if (!fromJournal && journal.isOpen()) journal.append(obs);
    if (fromJournal) ++g.resumed;
    g.records.push_back(obs);
    experiment::accumulate(g.result, obs);
    if (obs.status == "timeout") ++g.timeouts;
    if (obs.status == "crashed") ++g.crashes;
    if (obs.status == "infra-error") ++g.infraErrors;

    std::size_t novel = 0;
    if (!obs.coverage.empty()) {
      try {
        coverage::Snapshot snap = coverage::Snapshot::decode(obs.coverage);
        novel = snap.novelty(g.coverage);
        for (const std::string& t : snap.covered) {
          unseen.observe(++taskRuns[t]);
        }
        g.coverage.merge(snap);
      } catch (const std::exception&) {
        // A corrupt snapshot (crashed worker mid-pipe) earns no reward.
      }
    }
    const std::string fp = observationFingerprint(obs);
    const bool newFp = !fp.empty() && g.fingerprints.insert(fp).second;
    const double reward = (novel > 0 || newFp) ? 1.0 : 0.0;
    bandit.reward(armIdx, reward);
    ArmStats& st = bandit.statsOf(armIdx);
    if (novel > 0) ++st.novelCoverageRuns;
    if (newFp) ++st.novelFingerprintRuns;
    if (obs.manifested) ++st.manifestations;
    quiet = reward > 0.0 ? 0 : quiet + 1;

    if (!fp.empty()) {
      if (!g.found) {
        g.found = true;
        g.firstFindRun = obs.runIndex;
        g.firstFindSeed = obs.seed;
        g.firstFindArm = armIdx;
        g.firstFindFingerprint = fp;
      }
      if (opts.stopOnFirstFind) {
        stopped = true;
        g.stoppedEarly = true;
      }
    }
    if (!opts.targetFingerprints.empty() && !g.targetReached) {
      bool all = true;
      for (const std::string& t : opts.targetFingerprints) {
        if (g.fingerprints.find(t) == g.fingerprints.end()) {
          all = false;
          break;
        }
      }
      if (all) {
        g.targetReached = true;
        stopped = true;
        g.stoppedEarly = true;
      }
    }
    if (opts.saturate && !stopped) {
      if (g.coverage.closed) {
        // A declared universe is saturated exactly when it is covered —
        // never earlier.
        if (g.coverage.complete()) {
          g.saturated = true;
          g.saturatedAtRun = g.records.size();
          stopped = true;
        }
      } else if (g.records.size() >= minRuns && quiet >= opts.quietRuns &&
                 unseen.estimate() <= opts.unseenMassThreshold) {
        g.saturated = true;
        g.saturatedAtRun = g.records.size();
        stopped = true;
      }
    }
  };

  struct Slot {
    std::uint64_t idx;
    std::size_t arm;
    std::uint64_t seed;
  };

  // Fixed index-aligned batches of one worker-pool width each.  Arms are
  // assigned for the whole batch up front (a provisional pull each, so the
  // batch spreads across arms), the farm executes the non-journaled slots,
  // and the results fold back in global index order.  Batch boundaries
  // depend on --jobs, but the fold sequence does not — all determinism
  // claims are about the folded prefix.
  const std::uint64_t batchSize =
      std::max<std::size_t>(farm::resolveJobs(opts.farm.jobs), 1);

  for (std::uint64_t start = 0; start < budget && !stopped;
       start += batchSize) {
    const std::uint64_t end = std::min(budget, start + batchSize);
    std::vector<Slot> slots;
    std::vector<Slot> toRun;
    for (std::uint64_t idx = start; idx < end; ++idx) {
      std::size_t armIdx;
      std::uint64_t seed;
      auto it = assigned.find(idx);
      if (it != assigned.end()) {
        armIdx = it->second.first;
        seed = it->second.second;
        bandit.assignFixed(armIdx);
      } else {
        armIdx = bandit.assign();
        seed = base.seedBase + idx;
        assigned.emplace(idx, std::make_pair(armIdx, seed));
        logWriter.append(idx, armIdx, seed);
      }
      slots.push_back(Slot{idx, armIdx, seed});
      if (journaled.find(idx) == journaled.end()) {
        toRun.push_back(Slot{idx, armIdx, seed});
      }
    }

    std::map<std::uint64_t, experiment::RunObservation> fresh;
    bool batchCancelled = false;
    if (!toRun.empty() && opts.batchRunner) {
      // External executor (fleet): ship (index, seed, arm) and take the
      // records back.  The fold below is identical to the farm path, so
      // where a run executed cannot leak into the folded prefix.
      std::vector<GuideBatchRun> req;
      req.reserve(toRun.size());
      for (const Slot& s : toRun) {
        req.push_back(GuideBatchRun{s.idx, s.seed, s.arm, arms[s.arm].noise,
                                    arms[s.arm].strength,
                                    arms[s.arm].policy});
      }
      GuideBatchOutcome out = opts.batchRunner(req);
      g.retries += out.retries;
      batchCancelled = out.stoppedEarly;
      for (auto& [idx, r] : out.records) {
        r.runIndex = idx;  // the map key is authoritative
        fresh.emplace(idx, std::move(r));
      }
    } else if (!toRun.empty()) {
      farm::FarmOptions inner = opts.farm;
      inner.journalPath.clear();
      inner.resume = false;
      inner.journalConfig.clear();
      // One JSONL stream across all batches of this invocation.
      inner.jsonlAppend =
          opts.farm.jsonlAppend || start > 0 || !journaled.empty();
      inner.stopOnRecord = nullptr;
      if (opts.stopOnFirstFind) {
        inner.stopOnRecord = [](const experiment::RunObservation& o) {
          return !observationFingerprint(o).empty();
        };
      }
      inner.seedForIndex = [&toRun](std::uint64_t local) {
        return toRun[static_cast<std::size_t>(local)].seed;
      };

      farm::CampaignResult cr = farm::runJobs(
          toRun.size(),
          [&](std::uint64_t local) {
            const Slot& s = toRun[static_cast<std::size_t>(local)];
            const Arm& arm = arms[s.arm];
            experiment::RunSpec rs = armSpec(base, arm);
            rs.seedBase = s.seed;
            auto lease = pools.at(arm.noise)->acquire();
            if (lease->noiseMaker() != nullptr) {
              noise::NoiseOptions no = base.tool.noiseOpts;
              no.strength = arm.strength;
              lease->noiseMaker()->setOptions(no);
            }
            experiment::RunObservation obs =
                experiment::executeRun(rs, 0, *lease);
            // Local index on the wire (the farm keys records by it);
            // remapped to the campaign-global index below.
            obs.runIndex = local;
            return obs;
          },
          inner);
      g.retries += cr.retries;
      g.wallSeconds += cr.wallSeconds;
      batchCancelled = cr.stoppedEarly;
      for (auto& r : cr.records) {
        const std::size_t local = static_cast<std::size_t>(r.runIndex);
        if (local >= toRun.size()) continue;  // defensive
        r.runIndex = toRun[local].idx;
        fresh.emplace(r.runIndex, std::move(r));
      }
    }

    for (const Slot& s : slots) {
      if (stopped) break;
      auto jt = journaled.find(s.idx);
      if (jt != journaled.end()) {
        fold(jt->second, s.arm, /*fromJournal=*/true);
        continue;
      }
      auto ft = fresh.find(s.idx);
      if (ft == fresh.end()) continue;  // cancelled before executing
      fold(ft->second, s.arm, /*fromJournal=*/false);
    }
    if (batchCancelled && !stopped) {
      // stopFlag / in-batch early stop drained the batch without a fold
      // rule firing: surface the cancellation.
      stopped = true;
      g.stoppedEarly = true;
    }
  }

  g.unseenMass = unseen.estimate();
  g.arms.reserve(arms.size());
  for (std::size_t i = 0; i < arms.size(); ++i) {
    g.arms.push_back(ArmReport{arms[i], bandit.stats()[i]});
  }
  journal.close();
  logWriter.close();
  return g;
}

// --- report ----------------------------------------------------------------

std::string guideReport(const GuideResult& g, bool timing) {
  TextTable t("guided campaign — " + g.result.programName + " (" +
              g.result.toolLabel + ")");
  t.header({"arm", "pulls", "folded", "mean reward", "novel cov",
            "novel fp", "bugs"});
  for (const ArmReport& ar : g.arms) {
    t.row({ar.arm.label(), std::to_string(ar.stats.pulls),
           std::to_string(ar.stats.completed),
           TextTable::num(ar.stats.meanReward()),
           std::to_string(ar.stats.novelCoverageRuns),
           std::to_string(ar.stats.novelFingerprintRuns),
           std::to_string(ar.stats.manifestations)});
  }
  std::string out = t.render();
  out += "runs: " + std::to_string(g.runs()) + "/" +
         std::to_string(g.budget);
  if (g.resumed > 0) {
    out += " (" + std::to_string(g.resumed) + " from journal)";
  }
  out += "\n";
  out += "coverage: " + std::to_string(g.coverage.coveredCount());
  if (g.coverage.closed) {
    out += "/" + std::to_string(g.coverage.taskCount()) +
           " tasks (closed universe)";
  } else {
    out += " tasks (open universe), unseen mass ~" +
           TextTable::num(g.unseenMass);
  }
  out += "\n";
  out += "fingerprints: " + std::to_string(g.fingerprints.size()) +
         " distinct\n";
  if (g.saturated) {
    out += "saturated at run " + std::to_string(g.saturatedAtRun) + "\n";
  }
  if (g.targetReached) {
    out += "target fingerprint set reached\n";
  }
  if (g.found) {
    out += "first failure: run " + std::to_string(g.firstFindRun) +
           ", seed " + std::to_string(g.firstFindSeed) + ", arm " +
           (g.firstFindArm < g.arms.size() ? g.arms[g.firstFindArm].arm.label()
                                           : std::to_string(g.firstFindArm)) +
           ", fingerprint " + g.firstFindFingerprint + "\n";
  }
  if (timing) {
    out += "wall: " + TextTable::num(g.wallSeconds) + "s\n";
  }
  return out;
}

}  // namespace mtt::guide
