#include "noise/noise.hpp"

#include <vector>

namespace mtt::noise {

void NoiseMaker::onRunStart(const RunInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  // Derive the noise stream from the run seed but keep it distinct from the
  // schedule policy's stream.
  rng_ = Rng(mix_seed(info.seed, 0x6e6f697365ull /* "noise" */));
  mode_ = info.mode;
  injections_ = 0;
}

bool NoiseMaker::eligible(const Event& e) {
  switch (e.kind) {
    case EventKind::Yield:  // never recurse on noise's own yields
    case EventKind::ThreadFinish:
      return false;
    default:
      // ThreadStart is eligible on purpose: noise right after start delays
      // a thread's *first* operation, which is what exposes order
      // violations and sleep-based synchronization.
      return true;
  }
}

std::uint32_t NoiseMaker::sampleSleep() {
  std::uint32_t max = mode_ == RuntimeMode::Native ? opts_.maxSleepNative
                                                   : opts_.maxSleepControlled;
  if (max == 0) return 1;
  return static_cast<std::uint32_t>(rng_.below(max)) + 1;
}

void NoiseMaker::onEvent(const Event& e) {
  // Masked dispatch already filters to the eligible set; the explicit check
  // stays for direct calls (trace feeding, tests) and unmasked chains.
  if (rt_ == nullptr || !eligible(e)) return;
  rt::Runtime::NoiseRequest req;
  {
    std::lock_guard<std::mutex> lk(mu_);
    req = decide(e);
    if (req.kind != rt::Runtime::NoiseRequest::Kind::None) ++injections_;
  }
  if (req.kind != rt::Runtime::NoiseRequest::Kind::None) {
    rt_->postNoise(req);
  }
}

rt::Runtime::NoiseRequest YieldNoise::decide(const Event& e) {
  (void)e;
  rt::Runtime::NoiseRequest req;
  if (rng().chance(opts().strength)) {
    req.kind = rt::Runtime::NoiseRequest::Kind::Yield;
    req.amount =
        static_cast<std::uint32_t>(rng().below(opts().maxYields)) + 1;
  }
  return req;
}

rt::Runtime::NoiseRequest SleepNoise::decide(const Event& e) {
  (void)e;
  rt::Runtime::NoiseRequest req;
  if (rng().chance(opts().strength)) {
    req.kind = rt::Runtime::NoiseRequest::Kind::Sleep;
    req.amount = sampleSleep();
  }
  return req;
}

rt::Runtime::NoiseRequest MixedNoise::decide(const Event& e) {
  (void)e;
  rt::Runtime::NoiseRequest req;
  if (rng().chance(opts().strength)) {
    if (rng().chance(0.5)) {
      req.kind = rt::Runtime::NoiseRequest::Kind::Yield;
      req.amount =
          static_cast<std::uint32_t>(rng().below(opts().maxYields)) + 1;
    } else {
      req.kind = rt::Runtime::NoiseRequest::Kind::Sleep;
      req.amount = sampleSleep();
    }
  }
  return req;
}

TargetedNoise::TargetedNoise(rt::Runtime& rt, std::set<ObjectId> sharedVars,
                             NoiseOptions opts)
    : NoiseMaker(rt, opts), rtForNames_(&rt), targets_(std::move(sharedVars)) {}

TargetedNoise::TargetedNoise(rt::Runtime& rt,
                             std::set<std::string> sharedVarNames,
                             NoiseOptions opts)
    : NoiseMaker(rt, opts),
      rtForNames_(&rt),
      targetNames_(std::move(sharedVarNames)) {}

TargetedNoise::TargetedNoise(std::set<std::string> sharedVarNames,
                             NoiseOptions opts)
    : NoiseMaker(opts),
      rtForNames_(nullptr),
      targetNames_(std::move(sharedVarNames)) {}

void TargetedNoise::bindRuntime(rt::Runtime& rt) {
  NoiseMaker::bindRuntime(rt);
  rtForNames_ = &rt;
  cache_.clear();  // ObjectIds are per-runtime; names are the stable key
}

bool TargetedNoise::isTarget(ObjectId var) {
  if (targets_.count(var) != 0) return true;
  if (targetNames_.empty()) return false;
  auto it = cache_.find(var);
  if (it != cache_.end()) return it->second;
  bool hit = targetNames_.count(rtForNames_->objectInfo(var).name) != 0;
  cache_[var] = hit;
  return hit;
}

rt::Runtime::NoiseRequest TargetedNoise::decide(const Event& e) {
  rt::Runtime::NoiseRequest req;
  if (e.kind != EventKind::VarRead && e.kind != EventKind::VarWrite) {
    return req;  // only variable accesses are targeted
  }
  if (!isTarget(e.object)) return req;
  // Full-strength perturbation at the interesting points only.
  if (rng().chance(std::min(1.0, opts().strength * 4.0))) {
    if (rng().chance(0.5)) {
      req.kind = rt::Runtime::NoiseRequest::Kind::Yield;
      req.amount =
          static_cast<std::uint32_t>(rng().below(opts().maxYields)) + 1;
    } else {
      req.kind = rt::Runtime::NoiseRequest::Kind::Sleep;
      req.amount = sampleSleep();
    }
  }
  return req;
}

void CoverageDirectedNoise::onRunStart(const RunInfo& info) {
  NoiseMaker::onRunStart(info);
  // siteInjections_ deliberately persists: the heuristic learns across runs.
  siteHits_.clear();
}

void CoverageDirectedNoise::resetTool() {
  NoiseMaker::resetTool();
  siteInjections_.clear();
  siteHits_.clear();
}

rt::Runtime::NoiseRequest CoverageDirectedNoise::decide(const Event& e) {
  rt::Runtime::NoiseRequest req;
  ++siteHits_[e.syncSite];
  std::uint64_t inj = siteInjections_[e.syncSite];
  // Cold sites get boosted probability, hot sites get throttled: the
  // injection probability decays with the count of past injections here.
  double p = opts().strength * 4.0 / (1.0 + static_cast<double>(inj));
  if (rng().chance(std::min(1.0, p))) {
    ++siteInjections_[e.syncSite];
    if (rng().chance(0.5)) {
      req.kind = rt::Runtime::NoiseRequest::Kind::Yield;
      req.amount =
          static_cast<std::uint32_t>(rng().below(opts().maxYields)) + 1;
    } else {
      req.kind = rt::Runtime::NoiseRequest::Kind::Sleep;
      req.amount = sampleSleep();
    }
  }
  return req;
}

std::unique_ptr<NoiseMaker> makeNoise(const std::string& name,
                                      rt::Runtime& rt, NoiseOptions opts) {
  auto made = makeNoise(name, opts);
  if (made) made->bindRuntime(rt);
  return made;
}

std::unique_ptr<NoiseMaker> makeNoise(const std::string& name,
                                      NoiseOptions opts) {
  if (name == "none") return std::make_unique<NoNoise>(opts);
  if (name == "yield") return std::make_unique<YieldNoise>(opts);
  if (name == "sleep") return std::make_unique<SleepNoise>(opts);
  if (name == "mixed") return std::make_unique<MixedNoise>(opts);
  if (name == "coverage-directed") {
    return std::make_unique<CoverageDirectedNoise>(opts);
  }
  return nullptr;
}

std::vector<std::string> noiseNames() {
  return {"none", "yield", "sleep", "mixed", "coverage-directed"};
}

}  // namespace mtt::noise
