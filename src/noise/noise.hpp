// Noise makers — Section 2.2 of the paper:
//
//   "In the concurrent domain, noise makers are tools that force different
//    legal interleavings for each execution of the test [...] The noise
//    heuristic, during the execution of the program, receives calls embedded
//    by the instrumentor.  When such a call is received, the noise heuristic
//    decides, randomly or based on specific statistics or coverage, if some
//    kind of delay is needed."
//
// Every noise maker is a Listener: it observes the event stream and posts
// NoiseRequests back to the runtime (Runtime::postNoise), which injects a
// real yield/sleep natively or an extra scheduling decision in controlled
// mode.  The two research questions the paper names — which heuristic, and
// where to embed it — map to the heuristic subclasses and to the
// TargetedNoise filter (driven by static-analysis results) respectively.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "core/listener.hpp"
#include "core/rng.hpp"
#include "rt/runtime.hpp"

namespace mtt::noise {

/// Tuning knobs shared by all heuristics.
struct NoiseOptions {
  /// Probability of injecting a perturbation at an eligible event.
  double strength = 0.1;
  /// Maximum yields per injection (yield heuristics).
  std::uint32_t maxYields = 4;
  /// Maximum sleep per injection: microseconds natively, virtual ticks in
  /// controlled mode (sampled uniformly in [1, max]).
  std::uint32_t maxSleepNative = 1000;
  std::uint32_t maxSleepControlled = 40;
};

/// Base class: seed handling and the injection plumbing.
class NoiseMaker : public Listener {
 public:
  explicit NoiseMaker(rt::Runtime& rt, NoiseOptions opts = {})
      : rt_(&rt), opts_(opts) {}

  /// Runtime-less construction for owned tool stacks: the stack calls
  /// bindRuntime before every run, so one noise maker serves many runtimes.
  explicit NoiseMaker(NoiseOptions opts = {}) : rt_(nullptr), opts_(opts) {}

  virtual std::string name() const = 0;

  void onRunStart(const RunInfo& info) override;
  void onEvent(const Event& e) override;

  /// Noise subscribes to exactly its eligible() set (everything except
  /// Yield and ThreadFinish).  The mask must stay equal to eligible() —
  /// heuristics consume one RNG draw per *delivered* eligible event, so a
  /// narrower mask would shift the noise stream and break replay/report
  /// determinism for a given seed.
  EventMask subscribedEvents() const override {
    return EventMask::all()
        .without(EventKind::Yield)
        .without(EventKind::ThreadFinish);
  }
  std::string_view listenerName() const override { return internName(name()); }
  void bindRuntime(rt::Runtime& rt) override { rt_ = &rt; }
  void resetTool() override { injections_ = 0; }

  std::uint64_t injections() const { return injections_; }

  /// Re-tunes the heuristic in place (between runs, never mid-run): the
  /// guide engine's bandit rebinds strength per leased stack instead of
  /// reallocating a noise maker per arm.  The per-run RNG stream depends
  /// only on the run seed, so retuning keeps seed determinism.
  void setOptions(const NoiseOptions& opts) {
    std::lock_guard<std::mutex> lk(mu_);
    opts_ = opts;
  }
  NoiseOptions options() const {
    std::lock_guard<std::mutex> lk(mu_);
    return opts_;
  }

 protected:
  /// Decides whether/how to perturb at this event; kNone for no noise.
  /// Called with the internal lock held; implementations use rng() freely.
  virtual rt::Runtime::NoiseRequest decide(const Event& e) = 0;

  /// True for event kinds where noise is meaningful (variable accesses and
  /// synchronization operations; never Yield, which would recurse).
  static bool eligible(const Event& e);

  Rng& rng() { return rng_; }
  const NoiseOptions& opts() const { return opts_; }
  RuntimeMode mode() const { return mode_; }

  /// Sleep amount in the current mode's unit.
  std::uint32_t sampleSleep();

 private:
  rt::Runtime* rt_;
  NoiseOptions opts_;
  Rng rng_{0};
  RuntimeMode mode_ = RuntimeMode::Native;
  std::uint64_t injections_ = 0;
  mutable std::mutex mu_;  // native mode: events arrive concurrently
};

/// No perturbation at all — the baseline every experiment compares against.
class NoNoise final : public NoiseMaker {
 public:
  using NoiseMaker::NoiseMaker;
  std::string name() const override { return "none"; }
  /// Never perturbs and never draws RNG, so it can unsubscribe entirely:
  /// baseline runs pay zero dispatch cost.
  EventMask subscribedEvents() const override { return EventMask::none(); }

 protected:
  rt::Runtime::NoiseRequest decide(const Event&) override { return {}; }
};

/// Random yields: cheap, mild perturbation.
class YieldNoise final : public NoiseMaker {
 public:
  using NoiseMaker::NoiseMaker;
  std::string name() const override { return "yield"; }

 protected:
  rt::Runtime::NoiseRequest decide(const Event& e) override;
};

/// Random sleeps: stronger perturbation (a sleeping thread lets every other
/// thread pass it), at a higher runtime cost.
class SleepNoise final : public NoiseMaker {
 public:
  using NoiseMaker::NoiseMaker;
  std::string name() const override { return "sleep"; }

 protected:
  rt::Runtime::NoiseRequest decide(const Event& e) override;
};

/// ConTest-style mixed heuristic: each injection randomly chooses yield or
/// sleep with random intensity.
class MixedNoise final : public NoiseMaker {
 public:
  using NoiseMaker::NoiseMaker;
  std::string name() const override { return "mixed"; }

 protected:
  rt::Runtime::NoiseRequest decide(const Event& e) override;
};

/// Decorator answering the paper's "where should calls be embedded"
/// question: perturb only at accesses to a given set of shared variables
/// (typically the escape-analysis result from mtt::model), with full
/// strength there.  Sync events pass through to the inner heuristic.
class TargetedNoise final : public NoiseMaker {
 public:
  TargetedNoise(rt::Runtime& rt, std::set<ObjectId> sharedVars,
                NoiseOptions opts = {});
  /// Variant that resolves variable *names* to ids lazily through the
  /// runtime's object registry (names are stable across runs, ids are not).
  TargetedNoise(rt::Runtime& rt, std::set<std::string> sharedVarNames,
                NoiseOptions opts = {});
  /// Runtime-less name-based variant for owned stacks (bindRuntime rebinds
  /// the registry and drops the id cache before each run).
  explicit TargetedNoise(std::set<std::string> sharedVarNames,
                         NoiseOptions opts = {});
  std::string name() const override { return "targeted"; }
  /// Only variable accesses are targeted; sync/control events never reach
  /// decide() and never draw RNG, so the narrow mask is stream-preserving.
  EventMask subscribedEvents() const override {
    return EventMask::variable();
  }
  void bindRuntime(rt::Runtime& rt) override;

 protected:
  rt::Runtime::NoiseRequest decide(const Event& e) override;

 private:
  bool isTarget(ObjectId var);
  rt::Runtime* rtForNames_;
  std::set<ObjectId> targets_;
  std::set<std::string> targetNames_;
  std::map<ObjectId, bool> cache_;
};

/// Coverage-directed heuristic: keeps per-site injection counts and focuses
/// noise on rarely-perturbed sites, so over many runs the perturbation
/// budget spreads across the program instead of hammering hot inner loops.
class CoverageDirectedNoise final : public NoiseMaker {
 public:
  using NoiseMaker::NoiseMaker;
  std::string name() const override { return "coverage-directed"; }
  void onRunStart(const RunInfo& info) override;
  /// Drops the cross-run learning state along with the base counters.
  void resetTool() override;

 protected:
  rt::Runtime::NoiseRequest decide(const Event& e) override;

 private:
  std::map<SiteId, std::uint64_t> siteInjections_;  // persists across runs
  std::map<SiteId, std::uint64_t> siteHits_;
};

/// Factory by heuristic name ("none", "yield", "sleep", "mixed",
/// "coverage-directed"); TargetedNoise needs its variable set and is built
/// explicitly.
std::unique_ptr<NoiseMaker> makeNoise(const std::string& name,
                                      rt::Runtime& rt,
                                      NoiseOptions opts = {});
/// Runtime-less factory for owned tool stacks (bindRuntime attaches later).
std::unique_ptr<NoiseMaker> makeNoise(const std::string& name,
                                      NoiseOptions opts = {});
std::vector<std::string> noiseNames();

}  // namespace mtt::noise
