#include "cloning/cloning.hpp"

#include "rt/primitives.hpp"

namespace mtt::cloning {

CloneResult runCloned(rt::Runtime& rt, const CloneSpec& spec,
                      const rt::RunOptions& opts) {
  CloneResult result;
  rt::RunOptions ro = opts;
  if (ro.programName.empty()) ro.programName = "cloned:" + spec.name;
  result.run = rt.run(
      [&](rt::Runtime& rr) {
        std::vector<rt::Thread> clones;
        clones.reserve(static_cast<std::size_t>(spec.clones));
        for (int i = 0; i < spec.clones; ++i) {
          clones.emplace_back(rr, spec.name + ".clone" + std::to_string(i),
                              [&, i] { spec.body(rr, i); });
        }
        for (auto& c : clones) c.join();
      },
      ro);
  result.clonePassed.resize(static_cast<std::size_t>(spec.clones), false);
  for (int i = 0; i < spec.clones; ++i) {
    bool ok = result.run.ok() && (!spec.check || spec.check(i));
    result.clonePassed[static_cast<std::size_t>(i)] = ok;
    if (!ok) ++result.failedClones;
  }
  result.allPassed = result.run.ok() && result.failedClones == 0;
  return result;
}

CloneComparison compareCloning(
    const std::function<CloneResult(int clones, std::uint64_t seed)>& makeRun,
    int clones, std::size_t runs, std::uint64_t seedBase) {
  CloneComparison cmp;
  for (std::size_t i = 0; i < runs; ++i) {
    cmp.sequentialFail.add(!makeRun(1, seedBase + i).allPassed);
    cmp.clonedFail.add(!makeRun(clones, seedBase + i).allPassed);
  }
  return cmp;
}

}  // namespace mtt::cloning
