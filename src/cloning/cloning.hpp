// Cloning / load testing — Section 2.3 of the paper:
//
//   "The idea, used in common commercial tools [...] is to take sequential
//    tests and clone them many times.  [...] Because the same test is cloned
//    many times, contentions are almost guaranteed.  [...] the expected
//    results of each clone need to be interpreted [...] Many times, changes
//    that distinguish between the clones are necessary."
//
// runCloned spawns k managed threads, each executing the (per-clone
// parameterized) test body, and interprets each clone's expected result via
// a per-clone oracle — the black-box technique, composable with noise and
// coverage simply by registering those listeners on the same runtime
// (Figure 1's dashed box: "value in using the techniques at the same time;
// however, no integration is needed").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "rt/harness.hpp"

namespace mtt::cloning {

struct CloneSpec {
  std::string name;
  /// The test body; idx distinguishes the clones ("changes that distinguish
  /// between the clones"), e.g. each clone uses its own session slot.
  std::function<void(rt::Runtime&, int idx)> body;
  /// Per-clone oracle, evaluated after the run completes.
  std::function<bool(int idx)> check;
  int clones = 4;
};

struct CloneResult {
  rt::RunResult run;
  std::vector<bool> clonePassed;
  bool allPassed = false;
  std::size_t failedClones = 0;
};

/// Runs spec.clones copies of the body concurrently on the given runtime
/// (fixtures the body captures must already be registered against it).
CloneResult runCloned(rt::Runtime& rt, const CloneSpec& spec,
                      const rt::RunOptions& opts = {});

/// The comparison the technique motivates: failure probability with 1 clone
/// (sequential test) vs k clones, over `runs` seeded runs.  `makeRun` builds
/// a fresh runtime + spec for each run (fixtures must be per-run).
struct CloneComparison {
  Proportion sequentialFail;  ///< 1 clone
  Proportion clonedFail;      ///< k clones
};
CloneComparison compareCloning(
    const std::function<CloneResult(int clones, std::uint64_t seed)>& makeRun,
    int clones, std::size_t runs, std::uint64_t seedBase = 0);

}  // namespace mtt::cloning
