#include "mem/mmrace.hpp"

#include "rt/runtime.hpp"

namespace mtt::mem {
namespace {

bool isAcquireOrStronger(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

bool isReleaseOrStronger(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace

void MemoryModelRaceDetector::onEvent(const Event& e) {
  std::lock_guard<std::mutex> g(mu_);
  const std::uint32_t arg = e.arg;
  switch (e.kind) {
    case EventKind::AtomicStore:
    case EventKind::AtomicRMW: {
      StoreInfo& si = lastStore_[e.object][e.thread];
      si.site = e.syncSite;
      // Stores carry the release bit in the arg flag; RMWs use the flag for
      // the CAS outcome, so derive release-ness from the order instead.
      si.release = e.kind == EventKind::AtomicStore
                       ? rt::AtomicArg::flag(arg)
                       : isReleaseOrStronger(rt::AtomicArg::order(arg));
      si.bug = e.bugSite == BugMark::Yes;
      break;
    }
    case EventKind::AtomicLoad: {
      const ThreadId storer = rt::AtomicArg::storer(arg);
      if (storer == kNoThread || storer == e.thread) break;
      if (rt::AtomicArg::flag(arg)) break;  // synchronized observation
      const StoreInfo si = lastStore_[e.object][storer];
      if (alreadyReported(e.object, si.site, e.syncSite)) break;
      bool dup = false;
      for (const Pending& q : pending_) {
        if (q.warning.variable == e.object && q.warning.firstSite == si.site &&
            q.warning.secondSite == e.syncSite) {
          dup = true;
          break;
        }
      }
      if (dup) break;
      Pending p;
      p.warning.variable = e.object;
      p.warning.firstThread = storer;
      p.warning.firstSite = si.site;
      p.warning.firstAccess = Access::Write;
      p.warning.secondThread = e.thread;
      p.warning.secondSite = e.syncSite;
      p.warning.secondAccess = Access::Read;
      p.warning.onBugSite = si.bug || e.bugSite == BugMark::Yes;
      p.warning.detail =
          rt::AtomicArg::age(arg) == 0
              ? "unsynchronized atomic observation (no happens-before edge)"
              : "unsynchronized atomic observation of a stale store (age " +
                    std::to_string(rt::AtomicArg::age(arg)) + ")";
      p.loader = e.thread;
      p.storeWasRelease = si.release;
      pending_.push_back(std::move(p));
      break;
    }
    case EventKind::Fence: {
      if (!isAcquireOrStronger(rt::AtomicArg::order(arg))) break;
      // The fence retroactively synchronizes this thread's earlier relaxed
      // observations of release stores.
      std::erase_if(pending_, [&](const Pending& p) {
        return p.loader == e.thread && p.storeWasRelease;
      });
      break;
    }
    default:
      break;
  }
}

void MemoryModelRaceDetector::onRunEnd() {
  std::lock_guard<std::mutex> g(mu_);
  for (Pending& p : pending_) {
    if (alreadyReported(p.warning.variable, p.warning.firstSite,
                        p.warning.secondSite)) {
      continue;
    }
    report(std::move(p.warning));
  }
  pending_.clear();
}

void MemoryModelRaceDetector::resetState() {
  std::lock_guard<std::mutex> g(mu_);
  lastStore_.clear();
  pending_.clear();
}

}  // namespace mtt::mem
