// Instrumented atomics — the weak-memory face of the benchmark.
//
// mtt::mem::Atomic<T> is to std::atomic<T> what rt::SharedVar<T> is to a
// plain shared variable: every operation is an instrumentation point that
// emits an Event (AtomicLoad / AtomicStore / AtomicRMW / Fence, with the
// std::memory_order packed into Event::arg — see rt::AtomicArg) and, in
// controlled mode, a scheduling decision.  Unlike SharedVar, a relaxed or
// acquire load is additionally a *StorePick* choice point: the controlled
// runtime computes the set of stores the load may observe under its
// store-buffer memory model and asks the schedule policy which one commits.
// Under seq_cst orders (the default) that set is always the singleton
// coherence-newest store, so programs written entirely with the defaults
// behave exactly like SC programs and record thread-pick-only schedules.
//
// Values travel through the runtime as raw 64-bit images; the wrapper
// memcpys T in and out, so T must be trivially copyable and at most 8 bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "rt/runtime.hpp"

namespace mtt::mem {

/// Instrumented atomic cell.  Operations mirror std::atomic<T>'s, with the
/// memory order an explicit (defaulted) argument so benchmark programs can
/// spell the exact ordering their bug depends on.
template <typename T>
class Atomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "mem::Atomic requires a trivially copyable type");
  static_assert(sizeof(T) <= sizeof(std::uint64_t),
                "mem::Atomic values travel as 64-bit images");

 public:
  Atomic(rt::Runtime& rt, std::string name, T init = T{}) : rt_(&rt) {
    st_.id = rt.registerObject(rt::ObjectKind::Atomic, std::move(name));
    const std::uint64_t img = encode(init);
    st_.init = img;
    st_.native.store(img, std::memory_order_relaxed);
    st_.value = img;
  }
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  /// Instrumented load.  Controlled mode: non-seq_cst loads may observe any
  /// store in the observable-store set (a StorePick choice point when the
  /// set has more than one element).
  T load(std::memory_order mo = std::memory_order_seq_cst,
         Site s = site()) {
    return decode(rt_->atomicLoad(st_, mo, s));
  }

  /// Instrumented store.
  void store(T v, std::memory_order mo = std::memory_order_seq_cst,
             Site s = site()) {
    rt_->atomicStore(st_, encode(v), mo, s);
  }

  /// Unconditional swap; returns the previous value.  RMWs always read the
  /// coherence-newest store, so they are never StorePick choice points.
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst,
             Site s = site()) {
    return decode(
        rt_->atomicRmw(st_, rt::RmwOp::Exchange, encode(v), 0, mo, s));
  }

  /// Atomic add; returns the previous value.  Integral T only.
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetchAdd(T delta, std::memory_order mo = std::memory_order_seq_cst,
             Site s = site()) {
    return decode(
        rt_->atomicRmw(st_, rt::RmwOp::FetchAdd, encode(delta), 0, mo, s));
  }

  /// Strong compare-exchange.  On failure `expected` receives the observed
  /// value, matching std::atomic::compare_exchange_strong.
  bool compareExchange(T& expected, T desired,
                       std::memory_order mo = std::memory_order_seq_cst,
                       Site s = site()) {
    bool ok = false;
    const std::uint64_t old = rt_->atomicRmw(
        st_, rt::RmwOp::CompareExchange, encode(desired), encode(expected),
        mo, s, &ok);
    if (!ok) expected = decode(old);
    return ok;
  }

  /// Uninstrumented access for oracles / setup outside the measured run.
  /// Reads the coherence-newest value (what a seq_cst load would observe).
  T plainGet() const {
    return decode(rt_->mode() == RuntimeMode::Controlled
                      ? st_.value
                      : st_.native.load(std::memory_order_relaxed));
  }
  void plainSet(T v) {
    const std::uint64_t img = encode(v);
    st_.value = img;
    st_.native.store(img, std::memory_order_relaxed);
  }

  ObjectId id() const { return st_.id; }
  rt::AtomicState& state() { return st_; }

 private:
  static std::uint64_t encode(T v) {
    std::uint64_t img = 0;
    std::memcpy(&img, &v, sizeof(T));
    return img;
  }
  static T decode(std::uint64_t img) {
    T v;
    std::memcpy(&v, &img, sizeof(T));
    return v;
  }

  rt::Runtime* rt_;
  rt::AtomicState st_;
};

/// Standalone memory fence (emits a Fence event).  An acquire or stronger
/// fence upgrades the current thread's earlier relaxed loads: stores they
/// observed become synchronized as if loaded with memory_order_acquire.
inline void fence(rt::Runtime& rt,
                  std::memory_order mo = std::memory_order_seq_cst,
                  Site s = site()) {
  rt.atomicFence(mo, s);
}

}  // namespace mtt::mem
