// Memory-model-aware race check over the EventMask::atomics() kinds.
//
// The classic detectors (race/) reason about *plain* variable accesses and
// treat every atomic as synchronization.  Under the weak-memory runtime that
// is exactly backwards: an atomic access is always atomic (never a data race
// in the C++ sense), but a *relaxed* load that observes another thread's
// store without any synchronizing edge is the weak-memory analogue of a
// race — the observation is unordered, so the program may see stale or
// reordered values (the very bugs the `atomics` suite family documents).
//
// MemoryModelRaceDetector flags exactly those observations.  It reads the
// rt::AtomicArg payload the runtime packs into Event::arg:
//
//   * AtomicStore / AtomicRMW — remember, per (object, storing thread), the
//     store's site, whether it had release semantics, and its bug mark.
//   * AtomicLoad — the arg carries the observed storer and a `synced` flag
//     (set when an acquire-or-stronger load observed a release-or-stronger
//     store, or the load was seq_cst).  A cross-thread observation with the
//     flag clear becomes a *pending* warning.
//   * Fence — an acquire-or-stronger fence by thread T retroactively
//     synchronizes T's earlier relaxed observations of *release* stores
//     (mirroring the runtime's fence-claiming rule), so matching pending
//     warnings are cancelled rather than reported.
//
// Remaining pending warnings are reported at run end.  Approximations: the
// observed store is attributed to the storer's most recent store site to
// that object (older same-thread stores share the site), and RMW reads are
// not flagged (RMWs always read the coherence-newest store atomically).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "race/detector.hpp"

namespace mtt::mem {

class MemoryModelRaceDetector final : public race::RaceDetector {
 public:
  std::string name() const override { return "mmrace"; }
  void onEvent(const Event& e) override;
  void onRunEnd() override;
  EventMask subscribedEvents() const override {
    return EventMask::atomics();
  }

 protected:
  void resetState() override;

 private:
  /// Last store to an object by a given thread.
  struct StoreInfo {
    SiteId site = kNoSite;
    bool release = false;
    bool bug = false;
  };
  /// A suspect observation, held back until run end so an acquire fence can
  /// still claim it.
  struct Pending {
    race::RaceWarning warning;
    ThreadId loader = kNoThread;
    bool storeWasRelease = false;
  };

  std::map<ObjectId, std::map<ThreadId, StoreInfo>> lastStore_;
  std::vector<Pending> pending_;
  std::mutex mu_;  // native mode: concurrent events
};

}  // namespace mtt::mem
