// E2 — Noise makers compared on "performance overhead" (Section 2.2: "Two
// noise makers can be compared to each other with regard to the performance
// overhead and the likelihood of uncovering bugs"; E1 covers the latter).
//
// google-benchmark micro-harness: one fixed, race-free workload (so noise
// changes nothing semantically) per heuristic, controlled and native.
#include <benchmark/benchmark.h>

#include "noise/noise.hpp"
#include "rt/harness.hpp"
#include "rt/primitives.hpp"

using namespace mtt;

namespace {

void workload(rt::Runtime& rt) {
  rt::SharedVar<int> counter(rt, "counter", 0);
  rt::Mutex m(rt, "m");
  auto inc = [&] {
    for (int i = 0; i < 50; ++i) {
      rt::LockGuard g(m);
      counter.write(counter.read() + 1);
    }
  };
  rt::Thread a(rt, "a", inc), b(rt, "b", inc);
  a.join();
  b.join();
}

void runControlled(benchmark::State& state, const std::string& heuristic) {
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    rt::ControlledRuntime rt;
    noise::NoiseOptions no;
    no.strength = 0.25;
    auto nm = noise::makeNoise(heuristic, rt, no);
    rt.hooks().add(nm.get());
    rt::RunOptions o;
    o.seed = seed++;
    rt::RunResult r = rt.run(workload, o);
    events += r.events;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void runNative(benchmark::State& state, const std::string& heuristic) {
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    rt::NativeRuntime rt;
    noise::NoiseOptions no;
    no.strength = 0.25;
    no.maxSleepNative = 200;
    auto nm = noise::makeNoise(heuristic, rt, no);
    rt.hooks().add(nm.get());
    rt::RunOptions o;
    o.seed = seed++;
    rt::RunResult r = rt.run(workload, o);
    events += r.events;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_Controlled_none(benchmark::State& s) { runControlled(s, "none"); }
void BM_Controlled_yield(benchmark::State& s) { runControlled(s, "yield"); }
void BM_Controlled_sleep(benchmark::State& s) { runControlled(s, "sleep"); }
void BM_Controlled_mixed(benchmark::State& s) { runControlled(s, "mixed"); }
void BM_Controlled_covdir(benchmark::State& s) {
  runControlled(s, "coverage-directed");
}
void BM_Native_none(benchmark::State& s) { runNative(s, "none"); }
void BM_Native_yield(benchmark::State& s) { runNative(s, "yield"); }
void BM_Native_sleep(benchmark::State& s) { runNative(s, "sleep"); }
void BM_Native_mixed(benchmark::State& s) { runNative(s, "mixed"); }

// Fixed iteration counts: runs involve real thread creation (and, for the
// native sleep heuristics, real delays), so auto-tuned iteration counts
// would make the harness needlessly slow without improving the comparison.
BENCHMARK(BM_Controlled_none)->Unit(benchmark::kMicrosecond)->Iterations(200);
BENCHMARK(BM_Controlled_yield)->Unit(benchmark::kMicrosecond)->Iterations(200);
BENCHMARK(BM_Controlled_sleep)->Unit(benchmark::kMicrosecond)->Iterations(200);
BENCHMARK(BM_Controlled_mixed)->Unit(benchmark::kMicrosecond)->Iterations(200);
BENCHMARK(BM_Controlled_covdir)->Unit(benchmark::kMicrosecond)->Iterations(200);
BENCHMARK(BM_Native_none)->Unit(benchmark::kMicrosecond)->Iterations(60);
BENCHMARK(BM_Native_yield)->Unit(benchmark::kMicrosecond)->Iterations(60);
BENCHMARK(BM_Native_sleep)->Unit(benchmark::kMicrosecond)->Iterations(60);
BENCHMARK(BM_Native_mixed)->Unit(benchmark::kMicrosecond)->Iterations(60);

}  // namespace

BENCHMARK_MAIN();
