// M1/M2 — weak-memory runtime cost.
//
// M1 compares the per-event cost of the two instrumentation families under
// the controlled runtime: an Atomic fetch-add (one AtomicRMW event, store
// history append, vector-clock joins for seq_cst) against a Mutex-protected
// plain increment (two lock events, no store history).  Two threads contend
// on one object in both rows, so scheduling overhead is identical and the
// delta is the atomic bookkeeping itself.
//
// M2 measures observable-store-set construction: a writer issues K relaxed
// stores to one location while a reader (never synchronized with it, so the
// happens-before floor stays at the initial store) issues relaxed loads.
// Every load walks the retained history to build its candidate set and asks
// the policy for a StorePick, so ns/load as a function of K is the cost of
// the candidate machinery at that history depth.  Results go to stdout and
// BENCH_mem.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "mem/atomic.hpp"
#include "rt/controlled_runtime.hpp"
#include "rt/primitives.hpp"

using namespace mtt;

namespace {

struct M1Row {
  std::string primitive;
  std::uint64_t ops = 0;      // total operations across both threads
  std::uint64_t events = 0;   // events those operations emit
  double nsPerOp = 0.0;
  double nsPerEvent = 0.0;
};

/// Runs `body` once under a fresh controlled runtime and returns seconds.
double timedRun(const std::function<void(rt::Runtime&)>& body,
                std::uint64_t steps) {
  rt::ControlledRuntime rt;
  rt::RunOptions o;
  o.seed = 1;
  o.maxSteps = steps;
  o.programName = "bench_mem";
  Stopwatch sw;
  rt::RunResult r = rt.run(body, o);
  double seconds = sw.elapsedSeconds();
  if (r.status != rt::RunStatus::Completed) {
    std::fprintf(stderr, "bench_mem: run did not complete cleanly\n");
    std::exit(2);
  }
  return seconds;
}

M1Row measureAtomic(std::uint64_t opsPerThread) {
  auto body = [&](rt::Runtime& rr) {
    mem::Atomic<std::uint64_t> counter(rr, "counter", 0);
    auto work = [&] {
      for (std::uint64_t i = 0; i < opsPerThread; ++i) {
        counter.fetchAdd(1, std::memory_order_seq_cst);
      }
    };
    rt::Thread a(rr, "a", work);
    rt::Thread b(rr, "b", work);
    a.join();
    b.join();
  };
  // Warm-up run, then the timed one.
  (void)timedRun(body, opsPerThread * 16 + 4096);
  double seconds = timedRun(body, opsPerThread * 16 + 4096);
  M1Row row;
  row.primitive = "atomic fetch_add";
  row.ops = opsPerThread * 2;
  row.events = row.ops;  // one AtomicRMW event per op
  row.nsPerOp = seconds * 1e9 / static_cast<double>(row.ops);
  row.nsPerEvent = seconds * 1e9 / static_cast<double>(row.events);
  return row;
}

M1Row measureMutex(std::uint64_t opsPerThread) {
  auto body = [&](rt::Runtime& rr) {
    rt::Mutex m(rr, "m");
    std::uint64_t counter = 0;
    auto work = [&] {
      for (std::uint64_t i = 0; i < opsPerThread; ++i) {
        m.lock();
        ++counter;
        m.unlock();
      }
    };
    rt::Thread a(rr, "a", work);
    rt::Thread b(rr, "b", work);
    a.join();
    b.join();
  };
  (void)timedRun(body, opsPerThread * 16 + 4096);
  double seconds = timedRun(body, opsPerThread * 16 + 4096);
  M1Row row;
  row.primitive = "mutex increment";
  row.ops = opsPerThread * 2;
  row.events = row.ops * 2;  // MutexLock + MutexUnlock per op
  row.nsPerOp = seconds * 1e9 / static_cast<double>(row.ops);
  row.nsPerEvent = seconds * 1e9 / static_cast<double>(row.events);
  return row;
}

struct M2Row {
  std::uint64_t depth = 0;  // stores retained in the location's history
  double nsPerLoad = 0.0;
};

M2Row measureStoreSet(std::uint64_t depth, std::uint64_t loads) {
  auto body = [&](rt::Runtime& rr) {
    mem::Atomic<std::uint64_t> x(rr, "x", 0);
    rt::Thread writer(rr, "writer", [&] {
      for (std::uint64_t i = 0; i < depth; ++i) {
        x.store(i + 1, std::memory_order_relaxed);
      }
    });
    // The writer runs to completion first so every reader load sees the
    // full depth-(K+1) candidate set; the reader never joins the writer,
    // so no happens-before edge prunes it.
    writer.join();
    std::uint64_t sink = 0;
    rt::Thread reader(rr, "reader", [&] {
      for (std::uint64_t i = 0; i < loads; ++i) {
        sink += x.load(std::memory_order_relaxed);
      }
    });
    reader.join();
    rr.check(sink < ~std::uint64_t{0}, "sink overflow");
  };
  (void)timedRun(body, (depth + loads) * 16 + 4096);
  double seconds = timedRun(body, (depth + loads) * 16 + 4096);
  M2Row row;
  row.depth = depth;
  row.nsPerLoad = seconds * 1e9 / static_cast<double>(loads);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t opsPerThread =
      argc > 1 ? std::stoull(argv[1]) : 4000;
  const std::uint64_t loads = argc > 2 ? std::stoull(argv[2]) : 2000;

  std::printf("M1: per-event cost, 2 threads x %llu ops each\n",
              static_cast<unsigned long long>(opsPerThread));
  std::vector<M1Row> m1;
  m1.push_back(measureAtomic(opsPerThread));
  m1.push_back(measureMutex(opsPerThread));

  TextTable t1("M1 / Atomic vs Mutex under the controlled runtime");
  t1.header({"primitive", "ops", "events", "ns/op", "ns/event"});
  for (const M1Row& r : m1) {
    t1.row({r.primitive, std::to_string(r.ops), std::to_string(r.events),
            TextTable::num(r.nsPerOp, 1), TextTable::num(r.nsPerEvent, 1)});
  }
  t1.print();

  std::printf("\nM2: store-set construction, %llu relaxed loads per row\n",
              static_cast<unsigned long long>(loads));
  std::vector<M2Row> m2;
  for (std::uint64_t depth : {1u, 8u, 32u, 128u}) {
    m2.push_back(measureStoreSet(depth, loads));
  }

  TextTable t2("M2 / ns per load vs retained store-history depth");
  t2.header({"depth", "ns/load"});
  for (const M2Row& r : m2) {
    t2.row({std::to_string(r.depth), TextTable::num(r.nsPerLoad, 1)});
  }
  t2.print();

  double atomicNs = m1[0].nsPerEvent;
  double mutexNs = m1[1].nsPerEvent;
  std::printf(
      "\natomic: %.1f ns/event vs mutex: %.1f ns/event (%.2fx); "
      "store-set depth 128: %.1f ns/load vs depth 1: %.1f (%.2fx)\n",
      atomicNs, mutexNs, atomicNs / mutexNs, m2.back().nsPerLoad,
      m2.front().nsPerLoad, m2.back().nsPerLoad / m2.front().nsPerLoad);

  std::ofstream js("BENCH_mem.json");
  js << "{\n  \"bench\": \"mem\",\n  \"ops_per_thread\": " << opsPerThread
     << ",\n  \"loads\": " << loads << ",\n  \"per_event\": [\n";
  for (std::size_t i = 0; i < m1.size(); ++i) {
    const M1Row& r = m1[i];
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "    {\"primitive\": \"%s\", \"ops\": %llu, \"events\": "
                  "%llu, \"ns_per_op\": %.2f, \"ns_per_event\": %.2f}%s\n",
                  r.primitive.c_str(),
                  static_cast<unsigned long long>(r.ops),
                  static_cast<unsigned long long>(r.events), r.nsPerOp,
                  r.nsPerEvent, i + 1 < m1.size() ? "," : "");
    js << buf;
  }
  js << "  ],\n  \"store_set\": [\n";
  for (std::size_t i = 0; i < m2.size(); ++i) {
    const M2Row& r = m2[i];
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "    {\"depth\": %llu, \"ns_per_load\": %.2f}%s\n",
                  static_cast<unsigned long long>(r.depth), r.nsPerLoad,
                  i + 1 < m2.size() ? "," : "");
    js << buf;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"atomic_vs_mutex_per_event\": %.3f\n}\n",
                atomicNs / mutexNs);
  js << tail;
  std::printf("wrote BENCH_mem.json\n");

  bool sane = atomicNs > 0.0 && mutexNs > 0.0;
  for (const M2Row& r : m2) sane = sane && r.nsPerLoad > 0.0;
  return sane ? 0 : 1;
}
