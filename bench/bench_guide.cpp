// E11 — guided vs. fixed campaigns: does coverage/fingerprint feedback
// actually buy anything?
//
// The paper's Section 2.2 closes with "use coverage in order to decide,
// given limited resources, how many times each test should be executed";
// mtt::guide generalizes that to *which configuration* runs next.  This
// bench pits the UCB1-guided campaign against the obvious fixed baseline —
// the same arm set (noise heuristic × strength) cycled uniformly over the
// same seed sequence — and measures how many runs each needs to observe the
// complete failure-fingerprint set that the fixed campaign discovers within
// its whole budget.  Acceptance: guided reaches the fixed-budget bug set in
// <= 60% of the budget on at least three suite programs.
//
// A second table measures the --saturate stopping rule on a closed
// (statically declared) universe: runs spent until saturation vs. the blind
// budget, with the invariant that saturation never fires before the
// universe is fully covered.
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "experiment/experiment.hpp"
#include "guide/guide.hpp"
#include "suite/program.hpp"

using namespace mtt;

namespace {

constexpr std::uint64_t kBudget = 120;
constexpr double kTargetFraction = 0.6;

experiment::RunSpec baseSpec(const std::string& program) {
  experiment::RunSpec base;
  base.programName = program;
  base.tool.policy = "random";
  base.tool.coverage = "switch-pair";
  base.seedBase = 1;
  return base;
}

guide::GuideOptions campaignArms() {
  guide::GuideOptions o;
  o.heuristics = {"yield", "sleep", "mixed"};
  o.strengths = {0.1, 0.25, 0.5};
  o.budget = kBudget;
  o.farm.jobs = 1;
  return o;
}

struct FixedOutcome {
  std::set<std::string> fingerprints;
  std::uint64_t runsToSet = 0;  ///< 1-based run index of the last new fp
};

/// The baseline every farm user runs today: the same arms, cycled
/// uniformly, no feedback.  Same seeds as the guided campaign.
FixedOutcome runFixed(const experiment::RunSpec& base,
                      const std::vector<guide::Arm>& arms) {
  FixedOutcome out;
  for (std::uint64_t i = 0; i < kBudget; ++i) {
    const guide::Arm& arm = arms[static_cast<std::size_t>(i) % arms.size()];
    experiment::RunSpec spec = guide::armSpec(base, arm);
    spec.seedBase = base.seedBase + i;
    experiment::RunObservation obs = experiment::executeRun(spec, 0);
    std::string fp = guide::observationFingerprint(obs);
    if (!fp.empty() && out.fingerprints.insert(fp).second) {
      out.runsToSet = i + 1;
    }
  }
  return out;
}

}  // namespace

int main() {
  suite::registerBuiltins();
  const std::vector<std::string> programs = {
      "account", "check_then_act", "read_modify_write", "work_queue",
      "cache_server"};

  std::printf(
      "E11: guided (UCB1 over noise-heuristic x strength arms) vs. fixed\n"
      "uniform arm cycling, %llu-run budget each, identical seed sequence.\n"
      "'to set' = runs until every failure fingerprint the fixed campaign\n"
      "finds in its WHOLE budget has been observed.\n\n",
      static_cast<unsigned long long>(kBudget));

  TextTable t("E11 / runs to reach the fixed-budget bug set");
  t.header({"program", "fps", "fixed to set", "guided to set", "fraction",
            "<=60%"});

  struct Row {
    std::string program;
    std::size_t fingerprints;
    std::uint64_t fixedRuns;
    std::uint64_t guidedRuns;
    bool reached;
    bool pass;
  };
  std::vector<Row> rows;
  std::size_t passes = 0;

  for (const std::string& program : programs) {
    experiment::RunSpec base = baseSpec(program);
    guide::GuideOptions opts = campaignArms();
    std::vector<guide::Arm> arms = guide::buildArms(base, opts);

    FixedOutcome fixed = runFixed(base, arms);
    if (fixed.fingerprints.empty()) {
      std::printf("%s: fixed campaign found no failures in %llu runs; "
                  "skipping\n",
                  program.c_str(),
                  static_cast<unsigned long long>(kBudget));
      continue;
    }

    guide::GuideOptions guided = campaignArms();
    guided.targetFingerprints = fixed.fingerprints;
    guide::GuideResult g = guide::runGuided(base, guided);

    Row r;
    r.program = program;
    r.fingerprints = fixed.fingerprints.size();
    r.fixedRuns = fixed.runsToSet;
    r.guidedRuns = g.runs();
    r.reached = g.targetReached;
    r.pass = g.targetReached &&
             static_cast<double>(r.guidedRuns) <=
                 kTargetFraction * static_cast<double>(kBudget);
    if (r.pass) ++passes;
    rows.push_back(r);

    t.row({r.program, std::to_string(r.fingerprints),
           std::to_string(r.fixedRuns),
           r.reached ? std::to_string(r.guidedRuns) : "not reached",
           TextTable::frac(static_cast<std::size_t>(r.guidedRuns),
                           static_cast<std::size_t>(kBudget)),
           r.pass ? "yes" : "NO"});
  }
  t.print();

  // --- saturation overshoot on a closed universe ---------------------------
  experiment::RunSpec closed = baseSpec("account");
  closed.tool.coverage = "var-contention";
  closed.tool.coverageClosedUniverse = true;
  guide::GuideOptions sat = campaignArms();
  sat.saturate = true;
  guide::GuideResult gs = guide::runGuided(closed, sat);
  std::printf(
      "\nsaturation (account, closed var-contention universe): "
      "%zu/%llu runs, complete=%s, saved %lld runs of the blind budget\n",
      gs.runs(), static_cast<unsigned long long>(kBudget),
      gs.coverage.complete() ? "yes" : "no",
      static_cast<long long>(kBudget) - static_cast<long long>(gs.runs()));

  const bool overall = passes >= 3;
  std::printf("\ncriterion: guided reaches the fixed-budget bug set in "
              "<=%.0f%% of the budget on >=3 programs: %zu/%zu -> %s\n",
              kTargetFraction * 100, passes, rows.size(),
              overall ? "PASS" : "FAIL");

  std::ofstream json("BENCH_guide.json");
  json << "{\n \"bench\": \"guide\",\n \"budget\": " << kBudget
       << ",\n \"target_fraction\": " << kTargetFraction
       << ",\n \"programs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"program\": \"" << r.program
         << "\", \"fingerprints\": " << r.fingerprints
         << ", \"fixed_runs_to_set\": " << r.fixedRuns
         << ", \"guided_runs_to_set\": " << r.guidedRuns
         << ", \"target_reached\": " << (r.reached ? "true" : "false")
         << ", \"pass\": " << (r.pass ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << " ],\n \"saturation\": {\"program\": \"account\", \"runs\": "
       << gs.runs() << ", \"budget\": " << kBudget
       << ", \"complete\": " << (gs.coverage.complete() ? "true" : "false")
       << "},\n \"pass\": " << (overall ? "true" : "false") << "\n}\n";

  return overall ? 0 : 1;
}
