// E1 — Noise makers compared on "likelihood of uncovering bugs"
// (paper Section 2.2 / Section 4: "how frequently they uncover faults").
//
// Setup: each buggy benchmark program runs 100 seeded times under the
// deterministic round-robin scheduler (the paper's "unit testing" scheduler
// that masks everything) with each noise heuristic attached; the oracle
// decides manifestation.  Controls are included to show noise does not
// break correct programs.  A native-mode table repeats the headline
// comparison with real threads and real delays.
//
// Campaigns run on the mtt::farm engine with all cores: controlled-mode
// cells are byte-identical to the serial path, and the per-run watchdog
// keeps one pathological native-mode run from wedging the whole table.
#include <cstdio>

#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "model/static.hpp"
#include "suite/program.hpp"

using namespace mtt;

namespace {

experiment::ExperimentResult runRow(const std::string& program,
                                    const std::string& noiseName,
                                    RuntimeMode mode, std::size_t runs) {
  experiment::ExperimentSpec spec;
  spec.programName = program;
  spec.runs = runs;
  spec.tool.mode = mode;
  spec.tool.policy = "rr";
  spec.tool.noiseName = noiseName;
  spec.tool.noiseOpts.strength = 0.25;
  spec.tool.noiseOpts.maxSleepNative = 3000;
  if (noiseName == "targeted") {
    auto p = suite::makeProgram(program);
    const model::Program* ir = p->irModel();
    if (ir == nullptr) return {};  // targeted needs the static model
    spec.tool.noiseTargets = model::escapeAnalysis(*ir).sharedVarNames;
  }
  if (mode == RuntimeMode::Native) {
    rt::RunOptions o = suite::makeProgram(program)->defaultRunOptions();
    o.blockTimeout = std::chrono::milliseconds(120);
    spec.runOptions = o;
  }
  farm::FarmOptions fo;
  fo.runTimeout = std::chrono::seconds(30);
  return farm::runExperimentFarm(spec, fo).result;
}

}  // namespace

int main() {
  suite::registerBuiltins();
  std::printf(
      "E1: bug-finding probability per noise heuristic (controlled mode,\n"
      "deterministic base scheduler, 100 seeded runs per cell).\n\n");

  const std::vector<std::string> buggy = {
      "account",         "read_modify_write", "check_then_act",
      "double_checked_lock", "bank_transfer", "bounded_buffer_bug",
      "notify_lost",     "order_violation",   "sleep_sync",
      "work_queue",      "lock_order_inversion"};
  const std::vector<std::string> heuristics = {"none", "yield", "sleep",
                                               "mixed", "coverage-directed",
                                               "targeted"};

  for (const auto& prog : buggy) {
    std::vector<experiment::ExperimentResult> rows;
    for (const auto& h : heuristics) {
      auto r = runRow(prog, h, RuntimeMode::Controlled, 100);
      if (r.runs > 0) rows.push_back(std::move(r));
    }
    std::fputs(
        experiment::findRateReport("E1 / " + prog, rows).c_str(), stdout);
    std::fputs("\n", stdout);
  }

  std::printf("Controls (noise must not make correct programs fail):\n\n");
  {
    std::vector<experiment::ExperimentResult> rows;
    for (const auto& prog :
         {"account_sync", "producer_consumer_sem", "philosophers_ordered"}) {
      rows.push_back(runRow(prog, "mixed", RuntimeMode::Controlled, 60));
    }
    std::fputs(
        experiment::findRateReport("E1 / controls with mixed noise", rows)
            .c_str(),
        stdout);
    std::fputs("\n", stdout);
  }

  std::printf("Native mode (real threads, real sleeps; 30 runs per cell):\n\n");
  for (const auto& prog : {"account", "check_then_act", "work_queue"}) {
    std::vector<experiment::ExperimentResult> rows;
    for (const auto& h : {"none", "sleep", "mixed"}) {
      rows.push_back(runRow(prog, h, RuntimeMode::Native, 30));
    }
    std::fputs(
        experiment::findRateReport(std::string("E1-native / ") + prog, rows)
            .c_str(),
        stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}
