// E3 — Race detectors compared on detection rate, false alarms, and
// throughput, evaluated on the annotated trace repository (Section 4:
// "race detection algorithms may be evaluated using the traces without any
// work on the programs themselves").
//
// Setup: generate 25 annotated traces per program (mixed noise, random
// scheduler, so racy interleavings are represented), then feed every trace
// to each detector offline.  Ground truth = the BugMark annotations.
#include <cstdio>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "noise/noise.hpp"
#include "race/detectors.hpp"
#include "rt/harness.hpp"
#include "suite/program.hpp"
#include "trace/trace.hpp"

using namespace mtt;

namespace {

struct ProgramTraces {
  std::string name;
  bool buggyRaceProgram;  // annotated race/atomicity bug
  std::vector<trace::Trace> traces;
};

std::vector<ProgramTraces> generateRepository() {
  // Race-family bugs plus controls; deadlock-family programs are excluded
  // (their annotated bugs are not data races, so they would skew recall).
  const std::vector<std::pair<std::string, bool>> programs = {
      {"account", true},          {"read_modify_write", true},
      {"check_then_act", true},   {"double_checked_lock", true},
      {"bank_transfer", true},    {"work_queue", true},
      {"order_violation", true},  {"account_sync", false},
      {"producer_consumer_sem", false},
      {"stat_counter_sharded", false},
      {"work_queue_ok", false},
  };
  std::vector<ProgramTraces> out;
  for (const auto& [name, buggy] : programs) {
    ProgramTraces pt;
    pt.name = name;
    pt.buggyRaceProgram = buggy;
    auto program = suite::makeProgram(name);
    for (std::uint64_t s = 0; s < 25; ++s) {
      program->reset();
      rt::ControlledRuntime rt;
      trace::TraceRecorder rec(rt);
      noise::NoiseOptions no;
      no.strength = 0.2;
      noise::MixedNoise nm(rt, no);
      rt.hooks().add(&rec);
      rt.hooks().add(&nm);
      rt::RunOptions o = program->defaultRunOptions();
      o.seed = s;
      o.programName = name;
      rt.run([&](rt::Runtime& rr) { program->body(rr); }, o);
      pt.traces.push_back(rec.takeTrace());
    }
    out.push_back(std::move(pt));
  }
  return out;
}

}  // namespace

int main() {
  suite::registerBuiltins();
  std::printf("E3: race detectors on the annotated trace repository\n");
  auto repo = generateRepository();
  std::size_t totalTraces = 0, totalEvents = 0;
  for (const auto& pt : repo) {
    totalTraces += pt.traces.size();
    for (const auto& t : pt.traces) totalEvents += t.events.size();
  }
  std::printf("(%zu traces, %zu events total)\n\n", totalTraces, totalEvents);

  TextTable summary("E3 / detector summary over the repository");
  summary.header({"detector", "recall (buggy traces hit)", "false alarms",
                  "true alarms", "false-rate", "events/sec"});

  for (const auto& name : race::detectorNames()) {
    Proportion recall;
    std::size_t trueAlarms = 0, falseAlarms = 0;
    Stopwatch sw;
    std::uint64_t fed = 0;
    for (const auto& pt : repo) {
      for (const auto& t : pt.traces) {
        auto det = race::makeDetector(name);
        trace::feed(t, *det);
        fed += t.events.size();
        if (pt.buggyRaceProgram) recall.add(det->foundAnnotatedBug());
        trueAlarms += det->trueAlarms();
        falseAlarms += det->falseAlarms();
      }
    }
    double secs = sw.elapsedSeconds();
    double rate = secs > 0 ? static_cast<double>(fed) / secs : 0.0;
    double falseRate =
        trueAlarms + falseAlarms
            ? 100.0 * static_cast<double>(falseAlarms) /
                  static_cast<double>(trueAlarms + falseAlarms)
            : 0.0;
    summary.row({name, TextTable::frac(recall.successes, recall.trials),
                 std::to_string(falseAlarms), std::to_string(trueAlarms),
                 TextTable::num(falseRate, 1) + "%",
                 TextTable::num(rate / 1e6, 2) + "M"});
  }
  summary.print();

  // Per-program detail: where do the false alarms come from?
  TextTable detail("E3 / false alarms by control program");
  detail.header({"program", "eraser", "djit", "fasttrack", "hybrid"});
  for (const auto& pt : repo) {
    if (pt.buggyRaceProgram) continue;
    std::vector<std::string> row = {pt.name};
    for (const auto& name : race::detectorNames()) {
      std::size_t alarms = 0;
      for (const auto& t : pt.traces) {
        auto det = race::makeDetector(name);
        trace::feed(t, *det);
        alarms += det->warningCount();
      }
      row.push_back(std::to_string(alarms));
    }
    detail.row(std::move(row));
  }
  detail.print();

  std::printf(
      "\nExpected shape (paper Section 2.2): lockset (eraser) has the best\n"
      "schedule-insensitivity but 'produces too many false alarms' — all of\n"
      "them on the fork/join- and semaphore-synchronized controls; the\n"
      "happens-before family is precise; fasttrack matches djit at higher\n"
      "throughput; the hybrid keeps lockset coverage with HB confirmation.\n");
  return 0;
}
