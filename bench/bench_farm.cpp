// E8 — the farm engine itself: campaign throughput vs. worker count, and
// the cost of hard crash isolation (forked worker processes) relative to
// in-process worker threads.
//
// The paper's framework pitch is push-button evaluation; the farm is what
// keeps that button cheap once campaigns reach thousands of seeded runs.
// Expected shape: near-linear scaling to the core count (>=3x at 4 jobs),
// process isolation a modest constant factor behind threads, and the
// deterministic merge byte-identical to the serial path at every scale.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "suite/program.hpp"

using namespace mtt;

namespace {

experiment::ExperimentSpec campaignSpec(std::size_t runs) {
  experiment::ExperimentSpec spec;
  spec.programName = "bounded_buffer_bug";
  spec.runs = runs;
  spec.seedBase = 1;
  spec.tool.policy = "random";
  spec.tool.noiseName = "mixed";
  spec.tool.noiseOpts.strength = 0.3;
  return spec;
}

std::string reportLine(const experiment::ExperimentResult& r) {
  experiment::ReportOptions ro;
  ro.timing = false;
  return experiment::findRateReport("x", {r}, ro);
}

}  // namespace

int main() {
  suite::registerBuiltins();
  const std::size_t kRuns = 800;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "E8: farm campaign throughput (%zu controlled runs of\n"
      "bounded_buffer_bug with mixed noise per configuration).\n"
      "Hardware concurrency: %u — speedup is bounded by min(jobs, cores);\n"
      "on a single-core host every row is expected to be ~1x.\n\n",
      kRuns, cores);

  const auto spec = campaignSpec(kRuns);

  Stopwatch serialClock;
  experiment::ExperimentResult serial = experiment::runExperiment(spec);
  const double serialSec = serialClock.elapsedSeconds();
  const std::string serialReport = reportLine(serial);
  std::printf("serial baseline: %.2f s  (%.0f runs/s)\n\n", serialSec,
              kRuns / serialSec);

  TextTable t("E8 / speedup vs. worker count");
  t.header({"model", "jobs", "wall s", "runs/s", "speedup", "identical"});
  for (farm::WorkerModel model :
       {farm::WorkerModel::Thread, farm::WorkerModel::Process}) {
    for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
      farm::FarmOptions fo;
      fo.jobs = jobs;
      fo.model = model;
      farm::ExperimentCampaign ec = farm::runExperimentFarm(spec, fo);
      const double sec = ec.campaign.wallSeconds;
      t.row({std::string(to_string(ec.campaign.model)),
             std::to_string(ec.campaign.workers), TextTable::num(sec, 2),
             TextTable::num(ec.campaign.throughput(), 0),
             TextTable::num(serialSec / sec, 2) + "x",
             reportLine(ec.result) == serialReport ? "yes" : "NO"});
    }
  }
  t.print();

  std::printf(
      "\n'identical' compares the timing-free find-rate report against the\n"
      "serial baseline: the deterministic merge must make every cell 'yes'.\n"
      "Expected shape on an N-core host: thread rows approach min(jobs, N)x\n"
      "(>=3x at 4 jobs on 4+ cores); process rows price hard crash isolation\n"
      "(fork + record pipe) a constant factor behind threads.  The watchdog\n"
      "and retry paths are exercised in tests/test_farm.cpp, not timed here.\n");

  // --- durability: what does the crash-safe journal cost? -----------------
  // Same campaign with and without the checksummed journal; best-of-3
  // filters scheduler noise.  Target: < 2% wall-clock overhead (one
  // ~100-byte formatted append + fflush per run; the fsync is wall-clock
  // batched so microsecond-scale runs never pay one each).
  const std::string journalPath = "BENCH_farm.journal";
  auto timeCampaign = [&spec](const std::string& journal) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      if (!journal.empty()) std::remove(journal.c_str());
      farm::FarmOptions fo;
      fo.jobs = 2;
      fo.journalPath = journal;
      farm::ExperimentCampaign ec = farm::runExperimentFarm(spec, fo);
      best = std::min(best, ec.campaign.wallSeconds);
    }
    return best;
  };
  const double plainSec = timeCampaign("");
  const double journaledSec = timeCampaign(journalPath);
  const double overhead = plainSec > 0.0 ? journaledSec / plainSec - 1.0 : 0.0;
  std::remove(journalPath.c_str());
  std::printf(
      "\njournal overhead: %.2f s plain vs %.2f s journaled "
      "(%+.2f%%, target < 2%%)\n",
      plainSec, journaledSec, overhead * 100.0);

  std::ofstream js("BENCH_durability.json");
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"durability\",\n  \"runs\": %zu,\n"
                "  \"jobs\": 2,\n  \"plain_wall_s\": %.4f,\n"
                "  \"journaled_wall_s\": %.4f,\n"
                "  \"journal_overhead\": %.4f,\n"
                "  \"target_overhead\": 0.02\n}\n",
                kRuns, plainSec, journaledSec, overhead);
  js << buf;
  std::printf("wrote BENCH_durability.json\n");
  return overhead < 0.02 ? 0 : 1;
}
