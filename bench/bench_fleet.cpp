// E12 — the fleet dispatch tax: what does moving a campaign's runs across
// a socket cost per run, and how fast can the coordinator fold the records
// coming back?
//
// Two measurements:
//   (a) socket-dispatch overhead — the same campaign through the serial
//       farm (`--jobs 1`) and through a coordinator + one local worker on
//       a unix socket.  The delta, divided by the run count, is the per-run
//       price of framing + wire + reorder-buffered fold; the timing-free
//       reports must stay byte-identical (the fleet's core claim).
//   (b) fold throughput — RECORD payload decode + experiment::accumulate,
//       the coordinator's per-record hot path, over pre-encoded payloads.
//       This bounds how large a fleet one coordinator can feed.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "experiment/experiment.hpp"
#include "farm/farm.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/protocol.hpp"
#include "fleet/worker.hpp"
#include "suite/program.hpp"

using namespace mtt;

namespace {

experiment::ExperimentSpec campaignSpec(std::size_t runs) {
  experiment::ExperimentSpec spec;
  spec.programName = "bounded_buffer_bug";
  spec.runs = runs;
  spec.seedBase = 1;
  spec.tool.policy = "random";
  spec.tool.noiseName = "mixed";
  spec.tool.noiseOpts.strength = 0.3;
  return spec;
}

std::string reportLine(const experiment::ExperimentResult& r) {
  experiment::ReportOptions ro;
  ro.timing = false;
  return experiment::findRateReport("x", {r}, ro);
}

}  // namespace

int main() {
  suite::registerBuiltins();
  const std::size_t kRuns = 800;
  std::printf(
      "E12: fleet dispatch overhead and coordinator fold throughput\n"
      "(%zu controlled runs of bounded_buffer_bug with mixed noise).\n\n",
      kRuns);

  const auto spec = campaignSpec(kRuns);
  const std::string sock =
      (std::filesystem::temp_directory_path() /
       ("bench-fleet-" + std::to_string(::getpid()) + ".sock"))
          .string();

  // --- (a) serial farm vs. coordinator + one local worker ----------------
  double farmSec = 1e300;
  farm::ExperimentCampaign farmRun;
  for (int rep = 0; rep < 3; ++rep) {
    farm::FarmOptions fo;
    fo.jobs = 1;
    farm::ExperimentCampaign ec = farm::runExperimentFarm(spec, fo);
    if (ec.campaign.wallSeconds < farmSec) {
      farmSec = ec.campaign.wallSeconds;
      farmRun = std::move(ec);
    }
  }

  double fleetSec = 1e300;
  farm::ExperimentCampaign fleetRun;
  for (int rep = 0; rep < 3; ++rep) {
    fleet::FleetOptions fl;
    fl.listen = "unix:" + sock;
    std::thread worker([&sock] {
      fleet::WorkerOptions wo;
      wo.connect = "unix:" + sock;
      fleet::runWorker(wo);
    });
    farm::ExperimentCampaign ec = fleet::runExperimentFleet(spec, fl);
    worker.join();
    if (ec.campaign.wallSeconds < fleetSec) {
      fleetSec = ec.campaign.wallSeconds;
      fleetRun = std::move(ec);
    }
  }
  std::filesystem::remove(sock);

  const bool identical =
      reportLine(farmRun.result) == reportLine(fleetRun.result);
  const double perRunUs = (fleetSec - farmSec) / kRuns * 1e6;

  TextTable t("E12 / socket dispatch vs. in-process farm (best of 3)");
  t.header({"path", "wall s", "runs/s", "per-run overhead", "identical"});
  t.row({"farm --jobs 1", TextTable::num(farmSec, 3),
         TextTable::num(kRuns / farmSec, 0), "-", "-"});
  t.row({"fleet, 1 worker", TextTable::num(fleetSec, 3),
         TextTable::num(kRuns / fleetSec, 0),
         TextTable::num(perRunUs, 1) + " us", identical ? "yes" : "NO"});
  t.print();
  std::printf(
      "\nThe overhead column prices one lease/record round trip: frame\n"
      "encode + unix-socket write + coordinator decode + reorder-buffer\n"
      "fold.  Expected well under 1 ms/run — microsecond-scale controlled\n"
      "runs should not be dominated by their own transport.\n");

  // --- (b) coordinator fold throughput -----------------------------------
  // Pre-encode RECORD payloads from real observations, then time the
  // coordinator's receive path: decodeRecord + accumulate.
  std::vector<std::string> payloads;
  payloads.reserve(farmRun.campaign.records.size());
  for (const experiment::RunObservation& obs : farmRun.campaign.records) {
    payloads.push_back(fleet::encodeRecord(1, obs));
  }
  const std::size_t kFold = 200000;
  experiment::ExperimentResult fold;
  Stopwatch foldClock;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < kFold; ++i) {
    std::uint64_t leaseId = 0;
    experiment::RunObservation obs;
    std::string err;
    if (!fleet::decodeRecord(payloads[i % payloads.size()], leaseId, obs,
                             err)) {
      ++bad;
      continue;
    }
    experiment::accumulate(fold, obs);
  }
  const double foldSec = foldClock.elapsedSeconds();
  const double foldRate = kFold / foldSec;
  std::printf(
      "\nfold throughput: %zu records in %.3f s = %.0f records/s"
      " (%zu decode failures)\n"
      "At ~%.0f runs/s per serial worker, one coordinator keeps roughly\n"
      "%.0f such workers saturated before the fold itself is the ceiling.\n",
      kFold, foldSec, foldRate, bad, kRuns / farmSec,
      foldRate / (kRuns / farmSec));

  const bool pass = identical && bad == 0 && perRunUs < 1000.0;
  std::ofstream js("BENCH_fleet.json");
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"fleet\",\n  \"runs\": %zu,\n"
                "  \"farm_jobs1_wall_s\": %.4f,\n"
                "  \"fleet_1worker_wall_s\": %.4f,\n"
                "  \"per_run_overhead_us\": %.1f,\n"
                "  \"target_overhead_us\": 1000,\n"
                "  \"reports_identical\": %s,\n"
                "  \"fold_records_per_s\": %.0f,\n"
                "  \"pass\": %s\n}\n",
                kRuns, farmSec, fleetSec, perRunUs,
                identical ? "true" : "false", foldRate,
                pass ? "true" : "false");
  js << buf;
  std::printf("wrote BENCH_fleet.json\n");
  return pass ? 0 : 1;
}
