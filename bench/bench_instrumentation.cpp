// E8 — Instrumentation cost and the static-analysis filter (Section 3):
// "If the instrumentor is told some information by the static analyzer, on
// every instrumentation point, this can be used to decide on a subset of
// the points to be instrumented."
//
// Measures event throughput with 0..4 listeners attached, and the effect of
// the escape-analysis filter (suppressing events on thread-local variables)
// on a workload dominated by thread-local accesses.
#include <atomic>
#include <cstdio>

#include "core/stats.hpp"
#include "core/table.hpp"
#include "coverage/coverage.hpp"
#include "model/static.hpp"
#include "race/detectors.hpp"
#include "rt/harness.hpp"
#include "rt/primitives.hpp"
#include "trace/trace.hpp"

using namespace mtt;

namespace {

// Workload: 2 threads, each hammering a private variable and occasionally a
// shared one — the common case static filtering exploits.
void workload(rt::Runtime& rt) {
  rt::SharedVar<int> shared(rt, "shared", 0);
  rt::SharedArray<int> privates(rt, "private", 2, 0);
  rt::Mutex m(rt, "m");
  auto worker = [&](std::size_t idx) {
    for (int i = 0; i < 200; ++i) {
      privates.write(idx, privates.read(idx) + 1);
      if (i % 20 == 0) {
        rt::LockGuard g(m);
        shared.write(shared.read() + 1);
      }
    }
  };
  rt::Thread a(rt, "a", [&] { worker(0); });
  rt::Thread b(rt, "b", [&] { worker(1); });
  a.join();
  b.join();
}

/// The statically computed shared set for the workload (what
/// model::escapeAnalysis would produce for its IR model).
std::set<std::string> sharedNames() { return {"shared"}; }

struct Measurement {
  double msPerRun = 0;
  double eventsPerRun = 0;
};

/// Counts events actually dispatched through the (possibly filtered) hook
/// chain — the probe distinguishing emitted from dispatched events.
class DispatchProbe final : public Listener {
 public:
  void onEvent(const Event&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

Measurement measure(bool filtered, int listenerCount, std::size_t runs) {
  OnlineStats ms, events;
  for (std::uint64_t s = 0; s < runs; ++s) {
    rt::NativeRuntime rt;
    race::FastTrackDetector d1;
    race::EraserDetector d2;
    coverage::SwitchPairCoverage d3;
    trace::TraceRecorder d4(rt);
    DispatchProbe probe;
    Listener* listeners[] = {&d1, &d2, &d3, &d4};
    for (int i = 0; i < listenerCount; ++i) rt.hooks().add(listeners[i]);
    rt.hooks().add(&probe);
    if (filtered) {
      rt.setEventFilter(model::makeSharedVarEventFilter(rt, sharedNames()));
    }
    rt::RunOptions o;
    o.seed = s;
    Stopwatch sw;
    rt::RunResult r = rt.run(workload, o);
    (void)r;
    ms.add(sw.elapsedSeconds() * 1e3);
    events.add(static_cast<double>(probe.count()));
  }
  return {ms.mean(), events.mean()};
}

}  // namespace

int main() {
  const std::size_t kRuns = 30;
  std::printf("E8: instrumentation overhead and static filtering (native,\n"
              "%zu runs per row; listeners: fasttrack, eraser, coverage,\n"
              "trace recorder)\n\n",
              kRuns);

  TextTable t("E8 / listener-chain cost and the escape-analysis filter");
  t.header({"listeners", "filter", "avg ms/run", "events dispatched"});
  Measurement base = measure(false, 0, kRuns);
  for (int n : {0, 1, 2, 4}) {
    for (bool filtered : {false, true}) {
      Measurement m = measure(filtered, n, kRuns);
      t.row({std::to_string(n), filtered ? "shared-only" : "full",
             TextTable::num(m.msPerRun, 3),
             TextTable::num(m.eventsPerRun, 0)});
    }
  }
  t.print();
  std::printf("(baseline, no listeners, full instrumentation: %.3f ms)\n",
              base.msPerRun);

  std::printf(
      "\nNote: the filter suppresses *dispatch* of thread-local variable\n"
      "events; with ~95%% of accesses thread-local in this workload the\n"
      "listener cost shrinks roughly proportionally, while every sync event\n"
      "still reaches the tools — the Section 3 information flow from static\n"
      "analysis to the instrumentor.\n");

  // Sanity check printed for the record: filtering must not change detector
  // verdicts on the shared variable.
  rt::NativeRuntime rt;
  race::FastTrackDetector det;
  rt.hooks().add(&det);
  rt.setEventFilter(model::makeSharedVarEventFilter(rt, sharedNames()));
  rt.run(workload, rt::RunOptions{});
  std::printf("\nfiltered-run fasttrack warnings on 'shared': %zu "
              "(expected 0: it is lock-protected)\n",
              det.warningCount());
  return 0;
}
